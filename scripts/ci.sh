#!/usr/bin/env bash
# Tier-1 gate for the TradeFL workspace.
#
# Must pass with the crates.io registry unreachable: the workspace is
# zero-dependency by policy (every dependency is a path dependency into
# crates/, enforced by tests/no_external_deps.rs). See DESIGN.md §6.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> static analysis: tradefl-lint --workspace --json (DESIGN.md §7)"
cargo build -p tradefl-lint --release -q
lint_json="$(mktemp -t tradefl-lint.XXXXXX.json)"
# The runtime budget times the analysis itself (the binary is already
# built above), keeping the gate cheap enough to run on every push.
lint_start_ms=$(($(date +%s%N) / 1000000))
target/release/tradefl-lint --workspace --json > "$lint_json"
lint_elapsed_ms=$((($(date +%s%N) / 1000000) - lint_start_ms))
echo "  lint runtime: ${lint_elapsed_ms}ms (budget 5000ms, release)"
if [ "$lint_elapsed_ms" -ge 5000 ]; then
  echo "ci.sh: lint runtime budget exceeded (${lint_elapsed_ms}ms >= 5000ms)" >&2
  exit 1
fi
# The emitted report must satisfy the tradefl-lint/v2 schema contract
# (in-tree checker, no external tooling).
target/release/tradefl-lint --check-json "$lint_json"
rm -f "$lint_json"

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (all crates, property suites included)"
cargo test -q --workspace

echo "==> bench targets build (harness = false, tradefl_runtime::bench)"
cargo build --benches

echo "==> examples build"
cargo build --examples

echo "==> perf smoke: scripts/bench.sh --fast (TRADEFL_BENCH_FAST scale)"
scripts/bench.sh --fast

echo "==> committed BENCH_*.json baselines are well-formed"
if [ -e BENCH_solvers.json ]; then
  target/release/perf_baseline --check BENCH_solvers.json
fi
if [ -e BENCH_gemm.json ]; then
  target/release/gemm_baseline --check BENCH_gemm.json
fi
if [ -e BENCH_engine.json ]; then
  target/release/engine_baseline --check BENCH_engine.json
fi
if [ -e BENCH_scale.json ]; then
  # --check also re-enforces the scaling criteria recorded in the
  # committed file: dbr_solve_n1000 within 20x dbr_solve_n100,
  # dbr_solve_n10000 within 25x dbr_solve_n1000 with its resident
  # sparse-rho bytes under 100 MB, and the sparse-vs-dense agreement
  # row bit-identical.
  target/release/scale_baseline --check BENCH_scale.json
fi

echo "==> bench-regression gate: smoke medians vs committed baselines (3x tolerance)"
# The GEMM smoke reuses the committed shapes, so this is like-for-like;
# the solver smoke runs smaller instances, so only order-of-magnitude
# regressions can trip its half of the gate.
if [ -e BENCH_solvers.json ]; then
  target/release/perf_baseline --gate target/BENCH_solvers.fast.json BENCH_solvers.json
fi
if [ -e BENCH_gemm.json ]; then
  target/release/gemm_baseline --gate target/BENCH_gemm.fast.json BENCH_gemm.json
fi
if [ -e BENCH_engine.json ]; then
  target/release/engine_baseline --gate target/BENCH_engine.fast.json BENCH_engine.json
fi
if [ -e BENCH_scale.json ]; then
  # Fast mode skips the N=1000 rows; the gate only compares rows both
  # sides share (N=10/100 DBR solves, the FedAvg round, batched GEMM).
  target/release/scale_baseline --gate target/BENCH_scale.fast.json BENCH_scale.json
fi

echo "==> DST smoke: market_daemon under three seeded fault schedules"
# Each run injects dropped/duplicated/delayed/corrupted gossip plus
# kill-and-restart from the seed's schedule — and, with --byzantine,
# proposers that tamper with their own blocks in flight. Exits non-zero
# unless every surviving validator converges to bit-identical state and
# every session settles (the full 100-seed adversarial sweep lives in
# crates/engine/tests/sim_engine.rs).
cargo build --release -q --example market_daemon
for dst_seed in 7 19 83; do
  target/release/examples/market_daemon --seed "$dst_seed" --faults > /dev/null
  echo "  seed $dst_seed: converged"
done
for dst_seed in 7 19 83; do
  target/release/examples/market_daemon --seed "$dst_seed" --faults --byzantine > /dev/null
  echo "  seed $dst_seed (byzantine): converged"
done

echo "==> DST shrinker smoke: a known-bad schedule minimizes strictly"
# Seed 7's drawn schedule forces ledger repairs; the structural
# shrinker must cut the failing draw tape strictly smaller and print
# the minimal fault + crash + Byzantine schedule (exit 1 otherwise).
target/release/examples/market_daemon --shrink-demo 7 | sed 's/^/  /'

echo "==> observability: end_to_end --trace emits a valid tradefl-trace/v1 stream"
trace_file="$(mktemp -t tradefl-trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_file"' EXIT
cargo build --release --example end_to_end
target/release/examples/end_to_end --trace "$trace_file" > /dev/null
cargo run -q --release -p tradefl-bench --bin trace_check -- "$trace_file"

echo "ci.sh: all gates passed"
