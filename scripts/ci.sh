#!/usr/bin/env bash
# Tier-1 gate for the TradeFL workspace.
#
# Must pass with the crates.io registry unreachable: the workspace is
# zero-dependency by policy (every dependency is a path dependency into
# crates/, enforced by tests/no_external_deps.rs). See DESIGN.md §6.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> static analysis: tradefl-lint --workspace (DESIGN.md §7)"
cargo run -p tradefl-lint --release -- --workspace

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (all crates, property suites included)"
cargo test -q --workspace

echo "==> bench targets build (harness = false, tradefl_runtime::bench)"
cargo build --benches

echo "==> examples build"
cargo build --examples

echo "==> perf smoke: scripts/bench.sh --fast (TRADEFL_BENCH_FAST scale)"
scripts/bench.sh --fast

echo "==> committed BENCH_*.json baselines are well-formed"
if [ -e BENCH_solvers.json ]; then
  target/release/perf_baseline --check BENCH_solvers.json
fi
if [ -e BENCH_gemm.json ]; then
  target/release/gemm_baseline --check BENCH_gemm.json
fi

echo "==> bench-regression gate: smoke medians vs committed baselines (3x tolerance)"
# The GEMM smoke reuses the committed shapes, so this is like-for-like;
# the solver smoke runs smaller instances, so only order-of-magnitude
# regressions can trip its half of the gate.
if [ -e BENCH_solvers.json ]; then
  target/release/perf_baseline --gate target/BENCH_solvers.fast.json BENCH_solvers.json
fi
if [ -e BENCH_gemm.json ]; then
  target/release/gemm_baseline --gate target/BENCH_gemm.fast.json BENCH_gemm.json
fi

echo "==> observability: end_to_end --trace emits a valid tradefl-trace/v1 stream"
trace_file="$(mktemp -t tradefl-trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_file"' EXIT
cargo build --release --example end_to_end
target/release/examples/end_to_end --trace "$trace_file" > /dev/null
cargo run -q --release -p tradefl-bench --bin trace_check -- "$trace_file"

echo "ci.sh: all gates passed"
