#!/usr/bin/env bash
# Records the perf baselines: serial-vs-pooled solver/FL timings
# (BENCH_solvers.json) and naive-vs-blocked GEMM kernel timings
# (BENCH_gemm.json).
#
# Full mode writes the committed baselines at the repo root; --fast
# (or TRADEFL_BENCH_FAST=1) runs smoke scale and writes under target/
# so CI never clobbers the recorded files. Full-mode scale rows include
# the ten-thousand-org sparse-rho solve and the sparse-vs-dense
# agreement row; both are validated by scale_baseline --check below. The solver smoke shrinks
# instance sizes; the GEMM smoke keeps the same shapes and only cuts
# repeats, so its fast output gates like-for-like against the
# committed file. Either way every emitted file is re-validated with
# the binary's own --check, which fails on malformed JSON.
#
# Usage: scripts/bench.sh [--fast]
set -euo pipefail
cd "$(dirname "$0")/.."

FAST="${TRADEFL_BENCH_FAST:-}"
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "bench.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

cargo build --release -q -p tradefl-bench --bin perf_baseline --bin gemm_baseline --bin engine_baseline --bin scale_baseline
SOLVERS=target/release/perf_baseline
GEMM=target/release/gemm_baseline
ENGINE=target/release/engine_baseline
SCALE=target/release/scale_baseline

if [ -n "$FAST" ]; then
  SOLVERS_OUT=target/BENCH_solvers.fast.json
  GEMM_OUT=target/BENCH_gemm.fast.json
  ENGINE_OUT=target/BENCH_engine.fast.json
  SCALE_OUT=target/BENCH_scale.fast.json
  TRADEFL_BENCH_FAST=1 "$SOLVERS" --fast --out "$SOLVERS_OUT"
  TRADEFL_BENCH_FAST=1 "$GEMM" --fast --out "$GEMM_OUT"
  TRADEFL_BENCH_FAST=1 "$ENGINE" --fast --out "$ENGINE_OUT"
  TRADEFL_BENCH_FAST=1 "$SCALE" --fast --out "$SCALE_OUT"
else
  SOLVERS_OUT=BENCH_solvers.json
  GEMM_OUT=BENCH_gemm.json
  ENGINE_OUT=BENCH_engine.json
  SCALE_OUT=BENCH_scale.json
  "$SOLVERS" --out "$SOLVERS_OUT"
  "$GEMM" --out "$GEMM_OUT"
  "$ENGINE" --out "$ENGINE_OUT"
  "$SCALE" --out "$SCALE_OUT"
fi

"$SOLVERS" --check "$SOLVERS_OUT"
"$GEMM" --check "$GEMM_OUT"
"$ENGINE" --check "$ENGINE_OUT"
"$SCALE" --check "$SCALE_OUT"
echo "bench.sh: baselines at $SOLVERS_OUT, $GEMM_OUT, $ENGINE_OUT and $SCALE_OUT"
