#!/usr/bin/env bash
# Records the serial-vs-pooled solver/FL perf baseline.
#
# Full mode writes BENCH_solvers.json at the repo root (the committed
# perf trajectory); --fast (or TRADEFL_BENCH_FAST=1) runs smoke-scale
# instances and writes under target/ so CI never clobbers the recorded
# baseline. Either way the emitted file is re-validated with
# `perf_baseline --check`, which fails on malformed JSON.
#
# Usage: scripts/bench.sh [--fast]
set -euo pipefail
cd "$(dirname "$0")/.."

FAST="${TRADEFL_BENCH_FAST:-}"
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "bench.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

cargo build --release -q -p tradefl-bench --bin perf_baseline
BIN=target/release/perf_baseline

if [ -n "$FAST" ]; then
  OUT=target/BENCH_solvers.fast.json
  TRADEFL_BENCH_FAST=1 "$BIN" --fast --out "$OUT"
else
  OUT=BENCH_solvers.json
  "$BIN" --out "$OUT"
fi

"$BIN" --check "$OUT"
echo "bench.sh: baseline at $OUT"
