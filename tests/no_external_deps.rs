//! Guard: the workspace must stay zero-dependency.
//!
//! The tier-1 gate (`cargo build --release && cargo test -q`) runs in
//! an environment with no crates.io access, so a single registry
//! dependency anywhere in the workspace breaks every build at step
//! zero. This test walks every `Cargo.toml` and fails if any
//! `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]` or
//! `[workspace.dependencies]` entry is not a `path` dependency — so a
//! future PR cannot silently reintroduce one.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// All manifests of the workspace: the root plus every `crates/*`
/// member.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ exists") {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(out.len() >= 6, "expected root + >=5 member manifests, found {}", out.len());
    out
}

/// Minimal TOML section scan — enough to classify dependency tables
/// without a TOML parser (which would itself be a registry crate).
///
/// Returns `(section, key, value)` for every `key = value` line inside
/// a dependency-declaring section, handling both `[deps]` tables with
/// inline values and `[deps.name]` subtables.
fn dependency_entries(text: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            // `[dependencies.foo]` style subtable: record the entry
            // itself; its keys are validated by the subtable pass.
            if let Some(name) = section
                .strip_prefix("dependencies.")
                .or_else(|| section.strip_prefix("dev-dependencies."))
                .or_else(|| section.strip_prefix("build-dependencies."))
                .or_else(|| section.strip_prefix("workspace.dependencies."))
            {
                out.push((section.clone(), name.to_string(), "<subtable>".to_string()));
            }
            continue;
        }
        let in_dep_table = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
        );
        let in_dep_subtable = section.starts_with("dependencies.")
            || section.starts_with("dev-dependencies.")
            || section.starts_with("build-dependencies.")
            || section.starts_with("workspace.dependencies.");
        if !in_dep_table && !in_dep_subtable {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            out.push((section.clone(), key.trim().to_string(), value.trim().to_string()));
        }
    }
    out
}

/// Whether one dependency declaration line is path-only.
///
/// Accepted shapes:
///   `name.workspace = true`              (resolved at the root)
///   `name = { path = "..." , ... }`      (inline table with a path)
///   `version = / path = ...` keys inside a `[deps.name]` subtable
///     — allowed only when a `path` key is present in that subtable.
fn is_path_dependency(value: &str) -> bool {
    if value == "true" {
        // `name.workspace = true` arrives with key `name.workspace`;
        // the caller checks the key suffix.
        return true;
    }
    value.contains("path") && value.contains('{')
}

#[test]
fn workspace_has_no_registry_dependencies() {
    let mut violations = String::new();
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let entries = dependency_entries(&text);
        for (section, key, value) in &entries {
            let ok = if key.ends_with(".workspace") {
                // `name.workspace = true` — the root declaration is
                // itself checked below.
                value == "true"
            } else if value == "<subtable>" {
                // `[dependencies.name]` — require a `path` key within.
                entries.iter().any(|(s, k, _)| s == section && k == "path")
            } else if section.ends_with(&format!(".{key}")) || key == "path" || key == "version" {
                // keys inside a subtable; `path` legitimizes, other
                // keys are inert details.
                true
            } else {
                is_path_dependency(value)
            };
            if !ok {
                let _ = writeln!(
                    violations,
                    "  {}: [{section}] {key} = {value}",
                    manifest.display()
                );
            }
        }
    }
    assert!(
        violations.is_empty(),
        "registry (non-path) dependencies found — the zero-dependency \
         policy (see DESIGN.md) forbids these because the build \
         environment has no crates.io access:\n{violations}"
    );
}

#[test]
fn guard_detects_a_registry_dependency() {
    // Self-test: the scanner must actually flag the shapes a future PR
    // would introduce.
    let bad = "[dependencies]\nrand = \"0.8\"\n";
    let entries = dependency_entries(bad);
    assert_eq!(entries.len(), 1);
    assert!(!is_path_dependency(&entries[0].2));

    let bad_table = "[dependencies]\nserde = { version = \"1\", features = [\"derive\"] }\n";
    let entries = dependency_entries(bad_table);
    assert!(!is_path_dependency(&entries[0].2));

    let good = "[dependencies]\ntradefl-core = { path = \"crates/core\" }\n";
    let entries = dependency_entries(good);
    assert!(is_path_dependency(&entries[0].2));

    let good_ws = "[dependencies]\ntradefl-core.workspace = true\n";
    let entries = dependency_entries(good_ws);
    assert_eq!(entries[0].1, "tradefl-core.workspace");
}

#[test]
fn lint_no_registry_deps_agrees_with_this_guard() {
    // `tradefl-lint`'s `no-registry-deps` rule re-implements this
    // scan inside the static-analysis engine (crates/lint/src/
    // manifest.rs). The two must agree: every workspace manifest this
    // guard accepts must also be clean under the lint's scanner, and
    // the lint must flag the same seeded violations this guard's
    // self-test uses. A divergence means one of the two scanners has
    // drifted and the zero-dependency policy has a blind spot.
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest).unwrap();
        let violations = tradefl_lint::manifest::scan(&text);
        assert!(
            violations.is_empty(),
            "{}: tradefl-lint flags entries this guard accepts: {:?}",
            manifest.display(),
            violations
        );
    }
    // Seeded violations: both scanners must reject these shapes.
    for bad in [
        "[dependencies]\nrand = \"0.8\"\n",
        "[dependencies]\nserde = { version = \"1\", features = [\"derive\"] }\n",
        "[dev-dependencies.criterion]\nversion = \"0.5\"\n",
    ] {
        let entries = dependency_entries(bad);
        assert!(
            entries.iter().any(|(_, k, v)| !k.ends_with(".workspace")
                && v != "<subtable>"
                && !is_path_dependency(v))
                || entries.iter().any(|(s, _, v)| v == "<subtable>"
                    && !entries.iter().any(|(s2, k2, _)| s2 == s && k2 == "path")),
            "guard failed to flag: {bad}"
        );
        assert!(
            !tradefl_lint::manifest::scan(bad).is_empty(),
            "tradefl-lint failed to flag: {bad}"
        );
    }
}

#[test]
fn workspace_dependency_declarations_are_all_path_deps() {
    // Belt-and-braces on the root: every `[workspace.dependencies]`
    // value must carry an explicit `path`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = fs::read_to_string(root).unwrap();
    for (section, key, value) in dependency_entries(&text) {
        if section == "workspace.dependencies" {
            assert!(
                value.contains("path"),
                "[workspace.dependencies] {key} = {value} is not a path dependency"
            );
        }
    }
}
