//! Determinism regression tests: the entire pipeline is a pure
//! function of its seed. The same seed must produce *bit-identical*
//! equilibrium strategies from `DbrSolver` and bit-identical ledger
//! state roots across two independent runs — the foundation every
//! reproducibility claim (and the `tradefl_runtime::check` replay
//! mechanism) rests on.

use tradefl::ledger::types::Hash256;
use tradefl::prelude::*;
use tradefl::solver::dbr::{DbrOptions, UpdateOrder};

fn game(seed: u64) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().with_orgs(6).build(seed).unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

/// Every per-block state root of the settlement chain for `seed`.
fn settlement_state_roots(seed: u64) -> Vec<Hash256> {
    let g = game(seed);
    let eq = DbrSolver::new().solve(&g).unwrap();
    let session = SettlementSession::deploy(&g).unwrap();
    session.settle(&g, &eq.profile).unwrap();
    session.web3().with_node(|node| {
        node.chain().blocks().iter().map(|b| b.header.state_root).collect()
    })
}

#[test]
fn dbr_equilibrium_is_bit_identical_across_runs() {
    for seed in [0, 7, 31337] {
        let a = DbrSolver::new().solve(&game(seed)).unwrap();
        let b = DbrSolver::new().solve(&game(seed)).unwrap();
        for (i, (sa, sb)) in a.profile.iter().zip(b.profile.iter()).enumerate() {
            // Bit-level equality, not approximate: `to_bits` also
            // distinguishes -0.0 from 0.0 and would catch any NaN.
            assert_eq!(sa.d.to_bits(), sb.d.to_bits(), "d differs at org {i} (seed {seed})");
            assert_eq!(sa.level, sb.level, "level differs at org {i} (seed {seed})");
        }
        assert_eq!(a.welfare.to_bits(), b.welfare.to_bits(), "welfare differs (seed {seed})");
    }
}

#[test]
fn dbr_shuffled_order_is_bit_identical_across_runs() {
    // The shuffled update order exercises the runtime RNG inside the
    // solver itself, not just in market construction.
    let opts = DbrOptions {
        order: UpdateOrder::Shuffled { seed: 99 },
        ..DbrOptions::default()
    };
    let a = DbrSolver::with_options(opts.clone()).solve(&game(5)).unwrap();
    let b = DbrSolver::with_options(opts).solve(&game(5)).unwrap();
    assert_eq!(a.profile, b.profile);
    assert_eq!(a.potential.to_bits(), b.potential.to_bits());
}

#[test]
fn ledger_state_roots_are_bit_identical_across_runs() {
    let a = settlement_state_roots(17);
    let b = settlement_state_roots(17);
    assert!(!a.is_empty(), "settlement mined at least one block");
    assert_eq!(a, b, "state roots must match block-for-block");
}

#[test]
fn different_seeds_change_the_equilibrium() {
    // Guards against a degenerate "determinism" where the seed is
    // ignored entirely.
    let a = DbrSolver::new().solve(&game(1)).unwrap();
    let b = DbrSolver::new().solve(&game(2)).unwrap();
    assert_ne!(a.profile, b.profile);
}

#[test]
fn training_is_bit_identical_across_runs() {
    use tradefl::pipeline::{Pipeline, PipelineConfig};
    let a = Pipeline::new(PipelineConfig::quick()).run(21).unwrap();
    let b = Pipeline::new(PipelineConfig::quick()).run(21).unwrap();
    assert_eq!(
        a.training.final_accuracy().to_bits(),
        b.training.final_accuracy().to_bits(),
        "federated training must be seed-deterministic"
    );
    assert_eq!(a.settlement.onchain_redistribution, b.settlement.onchain_redistribution);
}
