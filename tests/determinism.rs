//! Determinism regression tests: the entire pipeline is a pure
//! function of its seed. The same seed must produce *bit-identical*
//! equilibrium strategies from `DbrSolver` and bit-identical ledger
//! state roots across two independent runs — the foundation every
//! reproducibility claim (and the `tradefl_runtime::check` replay
//! mechanism) rests on.

use tradefl::ledger::types::Hash256;
use tradefl::prelude::*;
use tradefl::solver::dbr::{DbrOptions, UpdateOrder};

fn game(seed: u64) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().with_orgs(6).build(seed).unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

/// Every per-block state root of the settlement chain for `seed`.
fn settlement_state_roots(seed: u64) -> Vec<Hash256> {
    let g = game(seed);
    let eq = DbrSolver::new().solve(&g).unwrap();
    let session = SettlementSession::deploy(&g).unwrap();
    session.settle(&g, &eq.profile).unwrap();
    session.web3().with_node(|node| {
        node.chain().blocks().iter().map(|b| b.header.state_root).collect()
    })
}

#[test]
fn dbr_equilibrium_is_bit_identical_across_runs() {
    for seed in [0, 7, 31337] {
        let a = DbrSolver::new().solve(&game(seed)).unwrap();
        let b = DbrSolver::new().solve(&game(seed)).unwrap();
        for (i, (sa, sb)) in a.profile.iter().zip(b.profile.iter()).enumerate() {
            // Bit-level equality, not approximate: `to_bits` also
            // distinguishes -0.0 from 0.0 and would catch any NaN.
            assert_eq!(sa.d.to_bits(), sb.d.to_bits(), "d differs at org {i} (seed {seed})");
            assert_eq!(sa.level, sb.level, "level differs at org {i} (seed {seed})");
        }
        assert_eq!(a.welfare.to_bits(), b.welfare.to_bits(), "welfare differs (seed {seed})");
    }
}

#[test]
fn dbr_shuffled_order_is_bit_identical_across_runs() {
    // The shuffled update order exercises the runtime RNG inside the
    // solver itself, not just in market construction.
    let opts = DbrOptions {
        order: UpdateOrder::Shuffled { seed: 99 },
        ..DbrOptions::default()
    };
    let a = DbrSolver::with_options(opts.clone()).solve(&game(5)).unwrap();
    let b = DbrSolver::with_options(opts).solve(&game(5)).unwrap();
    assert_eq!(a.profile, b.profile);
    assert_eq!(a.potential.to_bits(), b.potential.to_bits());
}

#[test]
fn ledger_state_roots_are_bit_identical_across_runs() {
    let a = settlement_state_roots(17);
    let b = settlement_state_roots(17);
    assert!(!a.is_empty(), "settlement mined at least one block");
    assert_eq!(a, b, "state roots must match block-for-block");
}

#[test]
fn cgbd_visited_set_and_payoff_cache_are_bit_identical_across_runs() {
    // Covers the paths rebuilt on ordered collections (the
    // `no-hash-iteration` fixes): CGBD's visited-assignment set
    // (solver/src/cgbd.rs) drives the master problem's
    // prefer-unvisited rule, and `PayoffCache` (solver/src/cache.rs)
    // memoizes payoff vectors behind DBR sweeps. Both must yield
    // bit-identical results run-to-run — with a HashSet/HashMap a
    // future order-dependent read would be nondeterministic per
    // process.
    use tradefl::solver::cache::PayoffCache;
    use tradefl::solver::cgbd::CgbdSolver;

    for seed in [3, 19] {
        let a = CgbdSolver::new().solve(&game(seed)).unwrap();
        let b = CgbdSolver::new().solve(&game(seed)).unwrap();
        assert_eq!(a.gap.to_bits(), b.gap.to_bits(), "CGBD gap differs (seed {seed})");
        assert_eq!(a.trace.len(), b.trace.len(), "CGBD iteration count differs (seed {seed})");
        assert_eq!(
            a.equilibrium.potential.to_bits(),
            b.equilibrium.potential.to_bits(),
            "CGBD potential differs (seed {seed})"
        );
        for (sa, sb) in a.equilibrium.profile.iter().zip(b.equilibrium.profile.iter()) {
            assert_eq!(sa.d.to_bits(), sb.d.to_bits(), "CGBD d differs (seed {seed})");
            assert_eq!(sa.level, sb.level, "CGBD level differs (seed {seed})");
        }
    }

    // Cached evaluation must be bit-transparent across two
    // independently populated caches.
    let g = game(23);
    let eq = DbrSolver::new().solve(&g).unwrap();
    let (ca, cb) = (PayoffCache::new(), PayoffCache::new());
    use tradefl::solver::bestresponse::Objective;
    let pa = ca.payoffs(&g, &eq.profile, Objective::Full);
    let pb = cb.payoffs(&g, &eq.profile, Objective::Full);
    assert_eq!(pa.len(), pb.len());
    for (x, y) in pa.iter().zip(pb.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "cached payoff vector differs across caches");
    }
}

#[test]
fn different_seeds_change_the_equilibrium() {
    // Guards against a degenerate "determinism" where the seed is
    // ignored entirely.
    let a = DbrSolver::new().solve(&game(1)).unwrap();
    let b = DbrSolver::new().solve(&game(2)).unwrap();
    assert_ne!(a.profile, b.profile);
}

// --- pooled-vs-serial bit-identity -----------------------------------
//
// The work-stealing pool changes chunking with the worker count, so
// these tests run each pooled hot path on explicit 1-, 4- and 8-worker
// pools and demand bit-identical outputs. (Explicit pools rather than
// the TRADEFL_THREADS override: the env var configures the process-wide
// global pool once, so a single test process cannot observe two
// settings of it — `thread_override` parsing is unit-tested in
// `tradefl_runtime::sync::pool` instead.)

use tradefl_runtime::sync::pool::Pool;

#[test]
fn pooled_master_traversal_is_bit_identical_for_any_worker_count() {
    use std::collections::BTreeSet;
    use tradefl::solver::gbd::{traverse_pooled, traverse_reference, Cut};

    let g = game(9); // 6 orgs → 4^6 = 4096 candidates
    let cuts = vec![
        Cut::optimality(&g, vec![0.2; 6], vec![0.0; 6]),
        Cut::optimality(&g, vec![0.5; 6], vec![0.05; 6]),
    ];
    let visited: BTreeSet<Vec<usize>> = BTreeSet::new();
    let reference = traverse_reference(&g, &cuts, &visited, 1 << 20).unwrap();
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            traverse_pooled(&g, &cuts, &visited, 1 << 20, &Pool::new(w)).unwrap()
        })
        .collect();
    for (k, sol) in runs.iter().enumerate() {
        assert_eq!(
            sol.levels, runs[0].levels,
            "traversal levels differ at worker count index {k}"
        );
        assert_eq!(
            sol.phi.to_bits(),
            runs[0].phi.to_bits(),
            "traversal phi differs at worker count index {k}"
        );
        // The table path may differ from the reference by reassociation
        // only — same argmin, matching value to solver precision.
        assert_eq!(sol.levels, reference.levels);
        assert!((sol.phi - reference.phi).abs() <= 1e-9 * reference.phi.abs().max(1.0));
    }
}

// --- sparse-vs-dense ρ bit-identity ----------------------------------
//
// A sparse ρ row iterates stored entries only; the dense reference
// visits every column including exact zeros. Adding ±0.0 to a non-−0.0
// accumulator is a bitwise no-op, so every mechanism sum — and
// therefore every equilibrium — must be bit-identical across the two
// representations when the stored values match.

/// Dense market at `n` orgs plus its zero-thresholded sparse twin.
fn dense_and_sparse(
    n: usize,
    seed: u64,
) -> (CoopetitionGame<SqrtAccuracy>, CoopetitionGame<SqrtAccuracy>) {
    use tradefl_core::market::{Market, RhoMatrix};
    let dense = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
    let RhoMatrix::Dense(rows) = dense.rho_matrix() else {
        panic!("table_ii builds a dense rho");
    };
    let sparse_rho = RhoMatrix::from_dense_thresholded(rows, 0.0);
    assert!(matches!(sparse_rho, RhoMatrix::Sparse { .. }));
    let sparse =
        Market::with_rho(dense.orgs().to_vec(), sparse_rho, dense.params().clone()).unwrap();
    (
        CoopetitionGame::new(dense, SqrtAccuracy::paper_default()),
        CoopetitionGame::new(sparse, SqrtAccuracy::paper_default()),
    )
}

#[test]
fn sparse_and_dense_dbr_equilibria_are_bit_identical() {
    for (n, seed) in [(50, 3), (300, 11)] {
        let (gd, gs) = dense_and_sparse(n, seed);
        let a = DbrSolver::new().solve(&gd).unwrap();
        let b = DbrSolver::new().solve(&gs).unwrap();
        assert_eq!(a.iterations, b.iterations, "n={n}");
        for (i, (sa, sb)) in a.profile.iter().zip(b.profile.iter()).enumerate() {
            assert_eq!(sa.d.to_bits(), sb.d.to_bits(), "d differs at org {i} (n={n})");
            assert_eq!(sa.level, sb.level, "level differs at org {i} (n={n})");
        }
        assert_eq!(a.welfare.to_bits(), b.welfare.to_bits(), "welfare (n={n})");
        assert_eq!(a.potential.to_bits(), b.potential.to_bits(), "potential (n={n})");
        assert_eq!(a.total_damage.to_bits(), b.total_damage.to_bits(), "damage (n={n})");
    }
}

#[test]
fn sparse_and_dense_incremental_aggregates_are_bit_identical() {
    use tradefl_core::incremental::IncrementalEval;
    use tradefl_core::strategy::StrategyProfile;

    let (gd, gs) = dense_and_sparse(200, 5);
    let profile = StrategyProfile::minimal(gd.market());
    let mut ed = IncrementalEval::new(&gd, profile.clone());
    let mut es = IncrementalEval::new(&gs, profile);
    for i in 0..gd.market().len() {
        assert_eq!(ed.rho_res(i).to_bits(), es.rho_res(i).to_bits(), "rho_res at {i}");
        let s = ed.profile()[i];
        assert_eq!(
            ed.payoff_at(i, s, ed.rho_res(i)).to_bits(),
            es.payoff_at(i, s, es.rho_res(i)).to_bits(),
            "payoff_at {i}"
        );
        assert_eq!(
            gd.market().weight(i).to_bits(),
            gs.market().weight(i).to_bits(),
            "weight {i}"
        );
        assert_eq!(
            gd.market().competition_pressure(i).to_bits(),
            gs.market().competition_pressure(i).to_bits(),
            "pressure {i}"
        );
    }
    assert_eq!(ed.potential().to_bits(), es.potential().to_bits());
    assert_eq!(ed.total_damage().to_bits(), es.total_damage().to_bits());
    assert_eq!(ed.omega().to_bits(), es.omega().to_bits());
    // Commits stay in lockstep too.
    use tradefl_core::strategy::Strategy;
    ed.commit(7, Strategy::new(0.5, 1));
    es.commit(7, Strategy::new(0.5, 1));
    assert_eq!(ed.potential().to_bits(), es.potential().to_bits());
    assert_eq!(ed.rho_res(3).to_bits(), es.rho_res(3).to_bits());
}

// --- incremental CGBD bit-identity -----------------------------------

#[test]
fn incremental_cut_tables_match_scratch_rebuild_bitwise() {
    use tradefl::solver::gbd::{Cut, CutTables};

    let g = game(9);
    let specs: Vec<Cut> = vec![
        Cut::optimality(&g, vec![0.2; 6], vec![0.0; 6]),
        Cut::Feasibility { d: vec![0.01; 6], lambda: vec![1.0 / 6.0; 6] },
        Cut::optimality(&g, vec![0.5; 6], vec![0.05; 6]),
        Cut::optimality(&g, vec![0.9; 6], vec![0.01; 6]),
    ];
    let mut cuts: Vec<Cut> = Vec::new();
    let mut incremental = CutTables::new(&g);
    // Sample candidates across the 4^6 space.
    let candidates: Vec<Vec<usize>> =
        (0..64).map(|k| (0..6).map(|i| (k >> i) & 1).collect()).collect();
    for cut in specs {
        incremental.push_cut(&g, &cut);
        cuts.push(cut);
        let scratch = CutTables::build(&g, &cuts);
        assert_eq!(scratch.cut_count(), incremental.cut_count());
        for levels in &candidates {
            let (a, b) = (scratch.value(levels), incremental.value(levels));
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits(), "at {levels:?}"),
                (None, None) => {}
                _ => panic!("feasibility verdict differs at {levels:?}"),
            }
        }
    }
}

#[test]
fn incremental_cgbd_master_is_bit_identical_to_scratch_for_any_worker_count() {
    use std::collections::BTreeSet;
    use tradefl::solver::gbd::{traverse_pooled, traverse_pooled_with, Cut, CutTables};

    let g = game(9); // 6 orgs → 4^6 = 4096 candidates
    let mut cuts: Vec<Cut> = Vec::new();
    let mut tables = CutTables::new(&g);
    let mut visited: BTreeSet<Vec<usize>> = BTreeSet::new();
    visited.insert(vec![3; 6]);
    for cut in [
        Cut::optimality(&g, vec![0.2; 6], vec![0.0; 6]),
        Cut::Feasibility { d: vec![0.01; 6], lambda: vec![1.0 / 6.0; 6] },
        Cut::optimality(&g, vec![0.5; 6], vec![0.05; 6]),
    ] {
        tables.push_cut(&g, &cut);
        cuts.push(cut);
        // The scratch rebuild is the pre-incremental (seed) behavior.
        let scratch = traverse_pooled(&g, &cuts, &visited, 1 << 20, &Pool::new(4)).unwrap();
        for w in [1usize, 4, 8] {
            let inc =
                traverse_pooled_with(&g, &tables, &visited, 1 << 20, &Pool::new(w)).unwrap();
            assert_eq!(inc.levels, scratch.levels, "levels differ at {w} workers");
            assert_eq!(inc.phi.to_bits(), scratch.phi.to_bits(), "phi differs at {w} workers");
            assert_eq!(inc.fresh, scratch.fresh, "freshness differs at {w} workers");
            assert_eq!(inc.evaluated, scratch.evaluated);
        }
        let next = traverse_pooled_with(&g, &tables, &visited, 1 << 20, &Pool::new(1))
            .unwrap()
            .levels;
        visited.insert(next);
    }
}

#[test]
fn pooled_exhaustive_oracle_is_bit_identical_for_any_worker_count() {
    use tradefl::solver::cgbd::exhaustive_optimum_with;

    let market = MarketConfig::table_ii().with_orgs(3).build(4).unwrap();
    let g = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&w| exhaustive_optimum_with(&g, 1e-9, &Pool::new(w)).unwrap())
        .collect();
    for (profile, value) in &runs {
        assert_eq!(value.to_bits(), runs[0].1.to_bits(), "oracle value differs");
        for (s, s0) in profile.iter().zip(runs[0].0.iter()) {
            assert_eq!(s.d.to_bits(), s0.d.to_bits(), "oracle d differs");
            assert_eq!(s.level, s0.level, "oracle level differs");
        }
    }
}

#[test]
fn pooled_dbr_is_bit_identical_for_any_worker_count() {
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&w| DbrSolver::new().solve_with(&game(7), &Pool::new(w)).unwrap())
        .collect();
    for eq in &runs {
        assert_eq!(eq.profile, runs[0].profile, "DBR profile differs");
        assert_eq!(eq.welfare.to_bits(), runs[0].welfare.to_bits());
        assert_eq!(eq.iterations, runs[0].iterations);
    }
}

#[test]
fn pooled_fedavg_is_bit_identical_for_any_worker_count() {
    use tradefl::fl::data::{generate, DatasetKind};
    use tradefl::fl::fed::train_federated_with;
    use tradefl::fl::model::{Mlp, ModelKind};

    let all = generate(DatasetKind::EurosatLike, 3 * 120 + 200, 11);
    let mut shards = all.shard(&[120, 120, 120, 200]);
    let test = shards.pop().unwrap();
    let config = FedConfig { rounds: 2, local_epochs: 1, batch_size: 32, lr: 0.1, seed: 5 };
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            let global =
                Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
            train_federated_with(global, &shards, &test, &[1.0, 0.5, 0.8], &config, &Pool::new(w))
                .unwrap()
        })
        .collect();
    for out in &runs {
        assert_eq!(out.history.len(), runs[0].history.len());
        for (m, m0) in out.history.iter().zip(&runs[0].history) {
            assert_eq!(m.loss.to_bits(), m0.loss.to_bits(), "round {} loss", m.round);
            assert_eq!(m.accuracy.to_bits(), m0.accuracy.to_bits(), "round {} acc", m.round);
        }
        assert_eq!(out.model, runs[0].model, "global model parameters differ");
    }
}

#[test]
fn blocked_kernel_training_is_bit_identical_above_the_pool_threshold() {
    // The small fedavg fixture above sits below POOLED_FED_MIN_STEPS
    // (2048 per-round steps), so it proves the *serial* fallback is
    // worker-count-invariant. This one pushes the per-round work to
    // 4 silos × 300 samples × 2 local epochs = 2400 steps, past the
    // threshold, so the pool genuinely fans local training out — and
    // every GEMM underneath runs the blocked kernel (fixed
    // jc→pc→ic→jr→ir traversal, ascending-pc accumulation). Training
    // must still be bit-identical for 1, 4 and 8 workers. (Explicit
    // pools rather than TRADEFL_THREADS for the same reason as the
    // header above: the env var is read once per process.)
    use tradefl::fl::data::{generate, DatasetKind};
    use tradefl::fl::fed::train_federated_with;
    use tradefl::fl::model::{Mlp, ModelKind};

    let all = generate(DatasetKind::EurosatLike, 4 * 300 + 200, 29);
    let mut shards = all.shard(&[300, 300, 300, 300, 200]);
    let test = shards.pop().unwrap();
    let config = FedConfig { rounds: 2, local_epochs: 2, batch_size: 32, lr: 0.1, seed: 13 };
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            let global =
                Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
            train_federated_with(
                global,
                &shards,
                &test,
                &[1.0, 1.0, 1.0, 1.0],
                &config,
                &Pool::new(w),
            )
            .unwrap()
        })
        .collect();
    for (i, out) in runs.iter().enumerate() {
        assert_eq!(out.history.len(), runs[0].history.len());
        for (m, m0) in out.history.iter().zip(&runs[0].history) {
            assert_eq!(
                m.loss.to_bits(),
                m0.loss.to_bits(),
                "round {} loss differs at worker count index {i}",
                m.round
            );
            assert_eq!(
                m.accuracy.to_bits(),
                m0.accuracy.to_bits(),
                "round {} accuracy differs at worker count index {i}",
                m.round
            );
        }
        assert_eq!(out.model, runs[0].model, "global model differs at worker count index {i}");
    }
}

#[test]
fn training_is_bit_identical_across_runs() {
    use tradefl::pipeline::{Pipeline, PipelineConfig};
    let a = Pipeline::new(PipelineConfig::quick()).run(21).unwrap();
    let b = Pipeline::new(PipelineConfig::quick()).run(21).unwrap();
    assert_eq!(
        a.training.final_accuracy().to_bits(),
        b.training.final_accuracy().to_bits(),
        "federated training must be seed-deterministic"
    );
    assert_eq!(a.settlement.onchain_redistribution, b.settlement.onchain_redistribution);
}

#[test]
fn event_streams_are_bit_identical_for_any_worker_count() {
    // The observability contract (DESIGN.md §9): events are emitted
    // only from sequential orchestration code, so the exported event
    // stream — logical-clock sequence numbers included — is the same
    // byte string no matter how many pool workers run underneath.
    // Metrics (pool steal counts etc.) are legitimately
    // scheduling-dependent and excluded via `events_jsonl()`.
    use tradefl::fl::data::{generate, DatasetKind};
    use tradefl::fl::fed::train_federated_with;
    use tradefl::fl::model::{Mlp, ModelKind};
    use tradefl_runtime::obs;

    let all = generate(DatasetKind::EurosatLike, 3 * 120 + 200, 11);
    let mut shards = all.shard(&[120, 120, 120, 200]);
    let test = shards.pop().unwrap();
    let config = FedConfig { rounds: 2, local_epochs: 1, batch_size: 32, lr: 0.1, seed: 5 };
    let streams: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            let (_, snap) = obs::with_local(|| {
                let g = game(7);
                DbrSolver::new().solve_with(&g, &Pool::new(w)).unwrap();
                let global =
                    Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
                train_federated_with(
                    global,
                    &shards,
                    &test,
                    &[1.0, 0.5, 0.8],
                    &config,
                    &Pool::new(w),
                )
                .unwrap();
            });
            snap.events_jsonl()
        })
        .collect();
    assert!(
        streams[0].lines().any(|l| l.contains("\"sub\":\"dbr\"")),
        "stream must actually contain solver events"
    );
    assert!(
        streams[0].lines().any(|l| l.contains("\"sub\":\"fed\"")),
        "stream must actually contain FL events"
    );
    for (i, s) in streams.iter().enumerate() {
        assert_eq!(s, &streams[0], "event stream differs for worker count run {i}");
    }
}
