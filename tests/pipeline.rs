//! Integration: the full market → equilibrium → settlement → training
//! pipeline across all four crates.

use tradefl::pipeline::{Pipeline, PipelineConfig};
use tradefl::prelude::*;

#[test]
fn quick_pipeline_runs_end_to_end() {
    let report = Pipeline::new(PipelineConfig::quick()).run(3).expect("pipeline runs");
    assert!(report.equilibrium.converged);
    assert!(report.settlement.consistent(1e-3));
    assert!(report.settlement.total_gas > 0);
    let history = &report.training.history;
    assert!(history.last().unwrap().loss < history[0].loss, "training reduces loss");
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let a = Pipeline::new(PipelineConfig::quick()).run(9).unwrap();
    let b = Pipeline::new(PipelineConfig::quick()).run(9).unwrap();
    assert_eq!(a.equilibrium.profile, b.equilibrium.profile);
    assert_eq!(a.training.final_accuracy(), b.training.final_accuracy());
    assert_eq!(
        a.settlement.onchain_redistribution,
        b.settlement.onchain_redistribution
    );
}

#[test]
fn different_seeds_give_different_markets() {
    let a = Pipeline::new(PipelineConfig::quick()).run(1).unwrap();
    let b = Pipeline::new(PipelineConfig::quick()).run(2).unwrap();
    assert_ne!(a.equilibrium.profile, b.equilibrium.profile);
}

#[test]
fn equilibrium_beats_wpr_on_contribution_in_the_pipeline_market() {
    let report = Pipeline::new(PipelineConfig::quick()).run(5).unwrap();
    let market = MarketConfig::table_ii().with_orgs(4).build(5).unwrap();
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let wpr = tradefl::solver::DbrSolver::with_options(tradefl::solver::DbrOptions {
        objective: tradefl::solver::Objective::WithoutRedistribution,
        ..Default::default()
    })
    .solve(&game)
    .unwrap();
    assert!(
        report.equilibrium.total_fraction >= wpr.total_fraction,
        "redistribution must not reduce contribution: {} vs {}",
        report.equilibrium.total_fraction,
        wpr.total_fraction
    );
}
