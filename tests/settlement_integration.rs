//! Integration: solver equilibria settled on the ledger, including the
//! CGBD profile, mechanism properties verified *on-chain*, and the
//! repudiation scenarios the contract must block.

use tradefl::ledger::settlement::SettlementSession;
use tradefl::ledger::tx::Value;
use tradefl::ledger::types::{Fixed, Wei};
use tradefl::prelude::*;
use tradefl::solver::CgbdSolver;

fn small_game(seed: u64) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().with_orgs(4).build(seed).unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

#[test]
fn cgbd_equilibrium_settles_consistently() {
    let game = small_game(11);
    let report = CgbdSolver::new().solve(&game).unwrap();
    let session = SettlementSession::deploy(&game).unwrap();
    let settlement = session.settle(&game, &report.equilibrium.profile).unwrap();
    assert!(settlement.consistent(1e-3), "error {}", settlement.max_abs_error);
}

#[test]
fn onchain_budget_balance_is_exact_in_integer_arithmetic() {
    let game = small_game(13);
    let eq = DbrSolver::new().solve(&game).unwrap();
    let session = SettlementSession::deploy(&game).unwrap();
    session.settle(&game, &eq.profile).unwrap();
    // Query each org's recorded redistribution and sum in fixed point.
    let sum: i128 = session
        .web3()
        .logs_by_event("PayoffCalculated")
        .iter()
        .map(|log| {
            log.field("redistribution")
                .and_then(Value::as_fixed)
                .expect("redistribution field present")
                .0
        })
        .sum();
    assert_eq!(sum, 0, "Def. 5 on-chain: sum R_i must be exactly zero");
}

#[test]
fn settlement_conserves_total_wei() {
    let game = small_game(17);
    let eq = DbrSolver::new().solve(&game).unwrap();
    let session = SettlementSession::deploy(&game).unwrap();
    let before = session.web3().with_node(|n| n.state().total_supply());
    session.settle(&game, &eq.profile).unwrap();
    let after = session.web3().with_node(|n| n.state().total_supply());
    assert_eq!(before, after, "settlement must only move wei, never mint");
}

#[test]
fn underfunded_deposit_is_rejected_on_chain() {
    let game = small_game(19);
    let session = SettlementSession::deploy(&game).unwrap();
    let w3 = session.web3();
    let org0 = tradefl::ledger::types::Address::from_name(game.market().org(0).name());
    // Register everyone first.
    for org in game.market().orgs() {
        let addr = tradefl::ledger::types::Address::from_name(org.name());
        let r = w3
            .call_and_mine(addr, session.contract(), "register", vec![], Wei::ZERO)
            .unwrap();
        assert!(r.status.is_success());
    }
    // A one-wei deposit must revert.
    let r = w3
        .call_and_mine(org0, session.contract(), "depositSubmit", vec![], Wei(1))
        .unwrap();
    assert!(!r.status.is_success(), "tiny deposit must be rejected");
}

#[test]
fn contribution_outside_the_reported_strategy_space_reverts() {
    let game = small_game(23);
    let session = SettlementSession::deploy(&game).unwrap();
    let w3 = session.web3();
    let addrs: Vec<_> = game
        .market()
        .orgs()
        .iter()
        .map(|o| tradefl::ledger::types::Address::from_name(o.name()))
        .collect();
    for &a in &addrs {
        w3.call_and_mine(a, session.contract(), "register", vec![], Wei::ZERO).unwrap();
    }
    // Bond amount: read from a successful deposit flow instead of
    // duplicating the formula.
    for &a in &addrs {
        let bond = w3.balance(a).0 / 4; // deploy funds 4x the bond
        let r = w3
            .call_and_mine(a, session.contract(), "depositSubmit", vec![], Wei(bond))
            .unwrap();
        assert!(r.status.is_success());
    }
    // d > 1 reverts.
    let r = w3
        .call_and_mine(
            addrs[0],
            session.contract(),
            "contributionSubmit",
            vec![Value::Fixed(Fixed::from_f64(1.5)), Value::Fixed(Fixed::from_f64(3.0))],
            Wei::ZERO,
        )
        .unwrap();
    assert!(!r.status.is_success(), "d > 1 must revert");
}

#[test]
fn audit_trail_matches_equilibrium_profile() {
    let game = small_game(29);
    let eq = DbrSolver::new().solve(&game).unwrap();
    let session = SettlementSession::deploy(&game).unwrap();
    session.settle(&game, &eq.profile).unwrap();
    let logs = session.web3().logs_by_event("ContributionSubmitted");
    assert_eq!(logs.len(), game.market().len());
    for log in logs {
        let d = log.field("d").and_then(Value::as_fixed).unwrap().to_f64();
        let matched = (0..game.market().len()).any(|i| (eq.profile[i].d - d).abs() < 1e-6);
        assert!(matched, "on-chain d={d} not found in the equilibrium profile");
    }
}
