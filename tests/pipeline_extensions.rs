//! Integration: the pipeline's extension options (attested settlement,
//! non-i.i.d. partitioning, personalization) compose end to end.

use tradefl::fl::personalize::PersonalizeConfig;
use tradefl::pipeline::{Pipeline, PipelineConfig};

#[test]
fn attested_pipeline_settles() {
    let config = PipelineConfig { attested: true, ..PipelineConfig::quick() };
    let report = Pipeline::new(config).run(11).expect("attested pipeline runs");
    assert!(report.settlement.consistent(1e-3));
    assert!(report.personalized.is_none());
}

#[test]
fn non_iid_pipeline_trains() {
    let config = PipelineConfig {
        dirichlet_beta: Some(0.3),
        ..PipelineConfig::quick()
    };
    let report = Pipeline::new(config).run(13).expect("non-iid pipeline runs");
    let h = &report.training.history;
    assert!(h.last().unwrap().loss < h[0].loss, "training still reduces loss");
}

#[test]
fn personalization_produces_per_org_models() {
    let config = PipelineConfig {
        dirichlet_beta: Some(0.3), // skewed silos make personalization matter
        personalize: Some(PersonalizeConfig::default()),
        ..PipelineConfig::quick()
    };
    let report = Pipeline::new(config).run(17).expect("personalized pipeline runs");
    let personalized = report.personalized.expect("personalization requested");
    assert_eq!(personalized.len(), 4);
    // On skewed silos, personalization should help at least half of them.
    let improved = personalized.iter().filter(|p| p.gain() > 0.0).count();
    assert!(improved >= 2, "only {improved}/4 organizations improved");
}

#[test]
fn all_extensions_compose() {
    let config = PipelineConfig {
        attested: true,
        dirichlet_beta: Some(0.5),
        personalize: Some(PersonalizeConfig::default()),
        ..PipelineConfig::quick()
    };
    let report = Pipeline::new(config).run(19).expect("full-extension pipeline runs");
    assert!(report.settlement.consistent(1e-3));
    assert!(report.personalized.is_some());
    assert!(report.equilibrium.converged);
}
