//! Integration: fast versions of the paper's headline claims, checked
//! across crates on small markets (the full-scale versions live in the
//! `tradefl-bench` figure binaries).

use tradefl::fl::probe::{quick_probe, SqrtFit};
use tradefl::prelude::*;
use tradefl::solver::baselines::{solve_fip, solve_gca, solve_tos, FipOptions, GcaOptions};

fn game_with_gamma(gamma: f64, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
    let mut cfg = MarketConfig::table_ii().with_orgs(6);
    cfg.params.gamma = gamma;
    CoopetitionGame::new(cfg.build(seed).unwrap(), SqrtAccuracy::paper_default())
}

#[test]
fn redistribution_increases_data_contribution() {
    // §I: "increases the amount of contributed data by up to 64%".
    let game = game_with_gamma(5.12e-9, 1);
    let dbr = DbrSolver::new().solve(&game).unwrap();
    let wpr = DbrSolver::with_options(tradefl::solver::DbrOptions {
        objective: tradefl::solver::Objective::WithoutRedistribution,
        ..Default::default()
    })
    .solve(&game)
    .unwrap();
    assert!(
        dbr.total_fraction > wpr.total_fraction * 1.2,
        "dbr {} vs wpr {}",
        dbr.total_fraction,
        wpr.total_fraction
    );
}

#[test]
fn welfare_is_non_monotone_in_gamma() {
    // Fig. 7 / Fig. 10: welfare rises to an interior peak then falls.
    let welfare_at = |gamma: f64| DbrSolver::new().solve(&game_with_gamma(gamma, 2)).unwrap().welfare;
    let low = welfare_at(0.0);
    let mid = welfare_at(5.12e-9);
    let high = welfare_at(1e-7);
    assert!(mid > low, "peak must beat gamma=0: {mid} vs {low}");
    assert!(mid > high, "peak must beat large gamma: {mid} vs {high}");
}

#[test]
fn damage_decreases_with_gamma() {
    // Fig. 9.
    let damage_at = |gamma: f64| {
        DbrSolver::new().solve(&game_with_gamma(gamma, 3)).unwrap().total_damage
    };
    assert!(damage_at(5.12e-9) < damage_at(0.0));
    assert!(damage_at(5e-8) <= damage_at(5.12e-9) * 1.02);
}

#[test]
fn scheme_ordering_matches_fig6() {
    let game = game_with_gamma(5.12e-9, 4);
    let dbr = DbrSolver::new().solve(&game).unwrap();
    let fip = solve_fip(&game, FipOptions::default()).unwrap();
    let gca = solve_gca(&game, GcaOptions::default()).unwrap();
    let tol = 1e-6 * dbr.potential.abs().max(1.0);
    assert!(dbr.potential >= fip.potential - tol);
    assert!(dbr.potential >= gca.potential - tol);
}

#[test]
fn tos_contributes_everything_and_ignores_constraints() {
    let game = game_with_gamma(5.12e-9, 5);
    let tos = solve_tos(&game);
    assert_eq!(tos.total_fraction, game.market().len() as f64);
    // TOS generally violates the deadline — that is why it is
    // "theoretical": validation must fail for at least one org at
    // levels where d=1 exceeds the cap.
    let violates = tos.profile.validate(game.market()).is_err();
    let all_caps_loose = (0..game.market().len()).all(|i| {
        let m = game.market().org(i).compute_level_count() - 1;
        game.market().deadline_cap(i, m) >= 1.0
    });
    assert!(violates || all_caps_loose);
}

#[test]
fn measured_accuracy_curve_feeds_the_mechanism() {
    // §III-C workflow: probe -> fit -> EmpiricalAccuracy -> solve.
    let pts = quick_probe(ModelKind::MobilenetLike, DatasetKind::EurosatLike, 11).unwrap();
    let fit = SqrtFit::fit(&pts);
    assert!(fit.c1 > 0.0);
    let market = MarketConfig::table_ii().with_orgs(4).build(11).unwrap();
    let bits_per_sample = market.org(0).data_bits() / market.org(0).samples() as f64;
    let empirical = fit.to_empirical(100.0, 30_000.0, bits_per_sample, 16).unwrap();
    let game = CoopetitionGame::new(market, empirical);
    let eq = DbrSolver::new().solve(&game).unwrap();
    assert!(eq.converged);
    let audit = MechanismAudit::evaluate(&game, &eq.profile);
    assert!(audit.budget_balanced_rel(1e-9));
}

#[test]
fn theorem1_potential_identity_across_crate_boundary() {
    // Re-verify the weighted-potential identity using public APIs only.
    let game = game_with_gamma(5.12e-9, 6);
    let eq = DbrSolver::new().solve(&game).unwrap();
    for i in 0..game.market().len() {
        let dev = Strategy::new(game.market().params().d_min, 0);
        if game.market().feasible_range(i, 0).is_some() {
            let gap = game.potential_identity_gap(&eq.profile, i, dev);
            assert!(gap < 1e-6, "identity gap {gap} at org {i}");
        }
    }
}

#[test]
fn exiting_competitors_raise_remaining_payoffs() {
    // A coalition what-if via Market::subset: when the most intense
    // competitor leaves, the remaining organizations' damage falls and
    // their equilibrium payoffs rise.
    let market = MarketConfig::table_ii().with_orgs(6).build(8).unwrap();
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let full = DbrSolver::new().solve(&game).unwrap();

    // Drop the org exerting the largest total pressure on the others.
    let n = game.market().len();
    let worst = (0..n)
        .max_by(|&a, &b| {
            let pa: f64 = (0..n).map(|j| game.market().rho(j, a)).sum();
            let pb: f64 = (0..n).map(|j| game.market().rho(j, b)).sum();
            pa.total_cmp(&pb)
        })
        .unwrap();
    let keep: Vec<usize> = (0..n).filter(|&i| i != worst).collect();
    let sub_market = game.market().subset(&keep).unwrap();
    let sub_game = CoopetitionGame::new(sub_market, SqrtAccuracy::paper_default());
    let sub = DbrSolver::new().solve(&sub_game).unwrap();

    // Per-org average payoff rises for the survivors.
    let avg_full: f64 = keep
        .iter()
        .map(|&i| game.payoff(&full.profile, i))
        .sum::<f64>()
        / keep.len() as f64;
    let avg_sub: f64 = (0..keep.len())
        .map(|i| sub_game.payoff(&sub.profile, i))
        .sum::<f64>()
        / keep.len() as f64;
    assert!(
        avg_sub > avg_full * 0.99,
        "survivors should not be worse off: {avg_sub} vs {avg_full}"
    );
    assert!(
        sub.total_damage < full.total_damage,
        "less competition, less damage: {} vs {}",
        sub.total_damage,
        full.total_damage
    );
}
