//! **TradeFL** — a trading mechanism for cross-silo federated learning.
//!
//! A production-quality Rust reproduction of *"TradeFL: A Trading
//! Mechanism for Cross-Silo Federated Learning"* (Yuan et al., ICDCS
//! 2023). Organizations that compete in the market but cooperate on
//! training ("coopetition") are incentivized to contribute data and
//! compute through *payoff redistribution* — and the redistribution is
//! made undeniable by settling it on a smart contract.
//!
//! The workspace splits into four crates, all re-exported here:
//!
//! * [`core`] ([`tradefl_core`]) — the coopetition model: payoffs
//!   (Eq. 11), redistribution (Eq. 9-10), damage (Eq. 6-7) and the
//!   weighted potential game (Theorem 1);
//! * [`solver`] ([`tradefl_solver`]) — the CGBD (Algorithm 1) and DBR
//!   (Algorithm 2) equilibrium solvers plus the §VI baselines;
//! * [`fl`] ([`tradefl_fl_sim`]) — a FedAvg training substrate with
//!   four model and dataset analogs;
//! * [`ledger`] ([`tradefl_ledger`]) — a from-scratch private chain and
//!   the Table I settlement contract.
//!
//! # The full pipeline in one call
//!
//! ```
//! use tradefl::pipeline::{Pipeline, PipelineConfig};
//!
//! let report = Pipeline::new(PipelineConfig::quick()).run(42)?;
//! println!("welfare at equilibrium: {:.1}", report.equilibrium.welfare);
//! assert!(report.settlement.consistent(1e-3));
//! assert!(report.training.final_accuracy() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub use tradefl_core as core;
pub use tradefl_fl_sim as fl;
pub use tradefl_ledger as ledger;
pub use tradefl_solver as solver;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use tradefl_core::accuracy::{AccuracyModel, SqrtAccuracy};
    pub use tradefl_core::config::MarketConfig;
    pub use tradefl_core::game::CoopetitionGame;
    pub use tradefl_core::market::{Market, MechanismParams};
    pub use tradefl_core::mechanism::MechanismAudit;
    pub use tradefl_core::strategy::{Strategy, StrategyProfile};
    pub use tradefl_fl_sim::data::DatasetKind;
    pub use tradefl_fl_sim::fed::{train_federated, FedConfig};
    pub use tradefl_fl_sim::model::ModelKind;
    pub use tradefl_ledger::settlement::SettlementSession;
    pub use tradefl_solver::dbr::DbrSolver;
    pub use tradefl_solver::outcome::{Equilibrium, Scheme};
}

pub mod pipeline {
    //! End-to-end orchestration: market → equilibrium → on-chain
    //! settlement → federated training, in one call.

    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;
    use tradefl_core::game::CoopetitionGame;
    use tradefl_fl_sim::data::{dirichlet_shard, generate, DatasetKind};
    use tradefl_fl_sim::fed::{train_federated, FedConfig, FedOutcome};
    use tradefl_fl_sim::model::{Mlp, ModelKind};
    use tradefl_fl_sim::personalize::{personalize_all, PersonalizeConfig, PersonalizedModel};
    use tradefl_ledger::attestation::Enclave;
    use tradefl_ledger::settlement::{SettlementReport, SettlementSession};
    use tradefl_solver::dbr::DbrSolver;
    use tradefl_solver::outcome::Equilibrium;

    /// What to run.
    #[derive(Debug, Clone)]
    pub struct PipelineConfig {
        /// Market generation (Table II by default).
        pub market: MarketConfig,
        /// Which model analog to train.
        pub model: ModelKind,
        /// Which dataset analog to train on.
        pub dataset: DatasetKind,
        /// Federated-training hyper-parameters.
        pub fed: FedConfig,
        /// Held-out test-set size.
        pub test_samples: usize,
        /// Require TEE-attested contribution reports on-chain
        /// (footnote 6); the pipeline provisions the enclave itself.
        pub attested: bool,
        /// Dirichlet label-skew β for the silo partition (`None` = the
        /// i.i.d. split of footnote 4).
        pub dirichlet_beta: Option<f64>,
        /// Run per-organization personalization after training (§VII
        /// future work); each org fine-tunes on 80% of its shard and is
        /// evaluated on the held-out 20%.
        pub personalize: Option<PersonalizeConfig>,
    }

    impl PipelineConfig {
        /// The paper's Table II setting with a moderate training budget.
        pub fn paper() -> Self {
            Self {
                market: MarketConfig::table_ii(),
                model: ModelKind::MobilenetLike,
                dataset: DatasetKind::SvhnLike,
                fed: FedConfig::default(),
                test_samples: 1000,
                attested: true,
                dirichlet_beta: None,
                personalize: None,
            }
        }

        /// A smaller, fast configuration for tests and demos.
        pub fn quick() -> Self {
            Self {
                market: MarketConfig::table_ii().with_orgs(4),
                model: ModelKind::MobilenetLike,
                dataset: DatasetKind::EurosatLike,
                fed: FedConfig { rounds: 6, ..FedConfig::default() },
                test_samples: 400,
                attested: false,
                dirichlet_beta: None,
                personalize: None,
            }
        }
    }

    /// Everything the pipeline produced.
    #[derive(Debug)]
    pub struct PipelineReport {
        /// The DBR equilibrium (strategies, welfare, traces).
        pub equilibrium: Equilibrium,
        /// On-chain settlement audit (Fig. 3 procedure).
        pub settlement: SettlementReport,
        /// Federated training at the equilibrium contributions.
        pub training: FedOutcome,
        /// Per-organization personalization outcomes (present when
        /// [`PipelineConfig::personalize`] is set).
        pub personalized: Option<Vec<PersonalizedModel>>,
    }

    /// The pipeline driver.
    #[derive(Debug, Clone)]
    pub struct Pipeline {
        config: PipelineConfig,
    }

    impl Pipeline {
        /// Creates a pipeline with the given configuration.
        pub fn new(config: PipelineConfig) -> Self {
            Self { config }
        }

        /// Runs market generation, DBR, settlement and training with
        /// one seed controlling all randomness.
        ///
        /// # Errors
        ///
        /// Boxes the first error from any stage (market validation,
        /// solver, contract, or training).
        pub fn run(&self, seed: u64) -> Result<PipelineReport, Box<dyn std::error::Error>> {
            let market = self.config.market.build(seed)?;
            let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());

            // 1. Equilibrium (Algorithm 2).
            let equilibrium = DbrSolver::new().solve(&game)?;

            // 2. Credible settlement (Fig. 3), optionally with
            //    TEE-attested reports.
            let session = if self.config.attested {
                SettlementSession::deploy_attested(
                    &game,
                    Enclave::from_label("tradefl-pipeline"),
                )?
            } else {
                SettlementSession::deploy(&game)?
            };
            let settlement = session.settle(&game, &equilibrium.profile)?;

            // 3. Federated training at the agreed contributions.
            let n = game.market().len();
            let shard_sizes: Vec<usize> =
                game.market().orgs().iter().map(|o| o.samples()).collect();
            let total: usize = shard_sizes.iter().sum();
            let pool =
                generate(self.config.dataset, total + self.config.test_samples, seed ^ 0xf1);
            let (shards, test) = match self.config.dirichlet_beta {
                Some(beta) => {
                    let shards =
                        dirichlet_shard(&pool.take(total), &shard_sizes, beta, seed ^ 0xf3);
                    let test = pool
                        .shard(&[total, self.config.test_samples])
                        .pop()
                        // lint:allow(no-panic-in-lib): shard() yields one shard per requested size
                        .expect("test shard present");
                    (shards, test)
                }
                None => {
                    let mut sizes = shard_sizes;
                    sizes.push(self.config.test_samples);
                    let mut shards = pool.shard(&sizes);
                    // lint:allow(no-panic-in-lib): shard() yields one shard per requested size
                    let test = shards.pop().expect("test shard present");
                    (shards, test)
                }
            };
            let fractions: Vec<f64> =
                (0..n).map(|i| equilibrium.profile[i].d).collect();
            let global =
                Mlp::for_kind(self.config.model, test.dim(), test.classes, seed ^ 0xf2);
            let training =
                train_federated(global, &shards, &test, &fractions, &self.config.fed)?;

            // 4. Optional per-organization personalization.
            let personalized = self.config.personalize.as_ref().map(|cfg| {
                let splits: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        let n = shard.len();
                        let cut = n * 4 / 5;
                        let mut parts = shard.shard(&[cut, n - cut]);
                        // lint:allow(no-panic-in-lib): shard(&[a, b]) yields exactly two shards
                        let local_test = parts.pop().expect("local test");
                        // lint:allow(no-panic-in-lib): shard(&[a, b]) yields exactly two shards
                        let local_train = parts.pop().expect("local train");
                        (local_train, local_test)
                    })
                    .collect();
                personalize_all(&training.model, &splits, cfg)
            });

            Ok(PipelineReport { equilibrium, settlement, training, personalized })
        }
    }
}
