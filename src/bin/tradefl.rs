//! `tradefl` — command-line driver for the TradeFL reproduction.
//!
//! ```text
//! tradefl market  [--orgs N] [--seed S]
//! tradefl solve   [--scheme dbr|cgbd|wpr|gca|fip|tos] [--gamma G] [--orgs N] [--seed S]
//! tradefl sweep   [--steps K] [--orgs N] [--seed S]
//! tradefl settle  [--orgs N] [--seed S] [--attested]
//! tradefl train   [--model M] [--dataset D] [--rounds R] [--seed S] [--async]
//! tradefl poa     [--orgs N] [--seed S]
//! tradefl tune    [--orgs N] [--seed S]
//! ```
//!
//! Argument parsing is hand-rolled (no CLI crates in the dependency
//! budget); every subcommand prints a table and exits non-zero on error.

use std::process::ExitCode;
use tradefl::fl::async_fed::{train_async, AsyncConfig, OrgTiming};
use tradefl::fl::data::generate;
use tradefl::fl::fed::FedConfig;
use tradefl::fl::model::Mlp;
use tradefl::ledger::attestation::Enclave;
use tradefl::ledger::settlement::SettlementSession;
use tradefl::prelude::*;
use tradefl::solver::baselines::solve_scheme;
use tradefl::solver::social::{solve_social_optimum, SocialOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  tradefl market  [--orgs N] [--seed S]
  tradefl solve   [--scheme dbr|cgbd|wpr|gca|fip|tos] [--gamma G] [--orgs N] [--seed S]
  tradefl sweep   [--steps K] [--orgs N] [--seed S]
  tradefl settle  [--orgs N] [--seed S] [--attested]
  tradefl train   [--model resnet18|alexnet|densenet|mobilenet]
                  [--dataset cifar10|fmnist|svhn|eurosat] [--rounds R] [--seed S] [--async]
  tradefl poa     [--orgs N] [--seed S]
  tradefl tune    [--orgs N] [--seed S]";

#[derive(Debug, Clone)]
struct Options {
    orgs: usize,
    seed: u64,
    gamma: Option<f64>,
    scheme: Scheme,
    steps: usize,
    attested: bool,
    model: ModelKind,
    dataset: DatasetKind,
    rounds: usize,
    use_async: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            orgs: 10,
            seed: 42,
            gamma: None,
            scheme: Scheme::Dbr,
            steps: 8,
            attested: false,
            model: ModelKind::MobilenetLike,
            dataset: DatasetKind::SvhnLike,
            rounds: 12,
            use_async: false,
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        return Err("missing subcommand".into());
    };
    let opts = parse(&args[1..])?;
    match command.as_str() {
        "market" => cmd_market(&opts),
        "solve" => cmd_solve(&opts),
        "sweep" => cmd_sweep(&opts),
        "settle" => cmd_settle(&opts),
        "train" => cmd_train(&opts),
        "poa" => cmd_poa(&opts),
        "tune" => cmd_tune(&opts),
        other => Err(format!("unknown subcommand `{other}`").into()),
    }
}

fn parse(args: &[String]) -> Result<Options, Box<dyn std::error::Error>> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next().ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--orgs" => opts.orgs = value("--orgs")?.parse()?,
            "--seed" => opts.seed = value("--seed")?.parse()?,
            "--gamma" => opts.gamma = Some(value("--gamma")?.parse()?),
            "--steps" => opts.steps = value("--steps")?.parse()?,
            "--rounds" => opts.rounds = value("--rounds")?.parse()?,
            "--attested" => opts.attested = true,
            "--async" => opts.use_async = true,
            "--scheme" => {
                opts.scheme = match value("--scheme")?.as_str() {
                    "dbr" => Scheme::Dbr,
                    "cgbd" => Scheme::Cgbd,
                    "wpr" => Scheme::Wpr,
                    "gca" => Scheme::Gca,
                    "fip" => Scheme::Fip,
                    "tos" => Scheme::Tos,
                    other => return Err(format!("unknown scheme `{other}`").into()),
                }
            }
            "--model" => {
                opts.model = match value("--model")?.as_str() {
                    "resnet18" => ModelKind::Resnet18Like,
                    "alexnet" => ModelKind::AlexnetLike,
                    "densenet" => ModelKind::DensenetLike,
                    "mobilenet" => ModelKind::MobilenetLike,
                    other => return Err(format!("unknown model `{other}`").into()),
                }
            }
            "--dataset" => {
                opts.dataset = match value("--dataset")?.as_str() {
                    "cifar10" => DatasetKind::Cifar10Like,
                    "fmnist" => DatasetKind::FmnistLike,
                    "svhn" => DatasetKind::SvhnLike,
                    "eurosat" => DatasetKind::EurosatLike,
                    other => return Err(format!("unknown dataset `{other}`").into()),
                }
            }
            other => return Err(format!("unknown flag `{other}`").into()),
        }
    }
    Ok(opts)
}

fn build_game(opts: &Options) -> Result<CoopetitionGame<SqrtAccuracy>, Box<dyn std::error::Error>> {
    let mut config = MarketConfig::table_ii().with_orgs(opts.orgs);
    if let Some(gamma) = opts.gamma {
        config.params.gamma = gamma;
    }
    Ok(CoopetitionGame::new(config.build(opts.seed)?, SqrtAccuracy::paper_default()))
}

fn cmd_market(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let game = build_game(opts)?;
    let market = game.market();
    println!("market: {} organizations (seed {})", market.len(), opts.seed);
    println!("{:<8} {:>8} {:>10} {:>7} {:>10} {:>7} {:>8}", "org", "p_i", "s_i(Gbit)", "|S_i|", "F^m(GHz)", "eta", "z_i");
    for (i, org) in market.orgs().iter().enumerate() {
        println!(
            "{:<8} {:>8.0} {:>10.1} {:>7} {:>10.2} {:>7.0} {:>8.0}",
            org.name(),
            org.profitability(),
            org.data_bits() / 1e9,
            org.samples(),
            org.max_frequency() / 1e9,
            org.eta(),
            market.weight(i)
        );
    }
    println!(
        "params: gamma={:.2e} lambda={} omega_e={} tau={}s D_min={}",
        market.params().gamma,
        market.params().lambda,
        market.params().omega_e,
        market.params().tau,
        market.params().d_min
    );
    Ok(())
}

fn cmd_solve(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let game = build_game(opts)?;
    let eq = solve_scheme(&game, opts.scheme)?;
    println!(
        "{} equilibrium after {} iterations (converged: {})",
        eq.scheme.label(),
        eq.iterations,
        eq.converged
    );
    println!("{:<8} {:>7} {:>10} {:>10} {:>9}", "org", "d_i", "f_i(GHz)", "payoff", "R_i");
    for (i, s) in eq.profile.iter().enumerate() {
        println!(
            "{:<8} {:>7.3} {:>10.2} {:>10.1} {:>9.2}",
            game.market().org(i).name(),
            s.d,
            game.market().org(i).frequency(s.level) / 1e9,
            game.payoff(&eq.profile, i),
            game.redistribution(&eq.profile, i)
        );
    }
    println!(
        "welfare {:.1} | potential {:.4} | damage {:.2} | sum d {:.3}",
        eq.welfare, eq.potential, eq.total_damage, eq.total_fraction
    );
    Ok(())
}

fn cmd_sweep(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("{:>12} {:>10} {:>8} {:>8}", "gamma", "welfare", "sum_d", "damage");
    let mut best = (0.0f64, f64::NEG_INFINITY);
    for k in 0..=opts.steps {
        // Log-spaced sweep from 1e-10 to 1e-7, plus gamma = 0 first.
        let gamma = if k == 0 {
            0.0
        } else {
            1e-10 * (1e3f64).powf((k - 1) as f64 / (opts.steps - 1).max(1) as f64)
        };
        let game = build_game(&Options { gamma: Some(gamma), ..opts.clone() })?;
        let eq = DbrSolver::new().solve(&game)?;
        println!(
            "{:>12.3e} {:>10.1} {:>8.3} {:>8.2}",
            gamma, eq.welfare, eq.total_fraction, eq.total_damage
        );
        if eq.welfare > best.1 {
            best = (gamma, eq.welfare);
        }
    }
    println!("best gamma: {:.3e} (welfare {:.1})", best.0, best.1);
    Ok(())
}

fn cmd_settle(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let game = build_game(opts)?;
    let eq = DbrSolver::new().solve(&game)?;
    let session = if opts.attested {
        SettlementSession::deploy_attested(&game, Enclave::from_label("tradefl-cli"))?
    } else {
        SettlementSession::deploy(&game)?
    };
    let report = session.settle(&game, &eq.profile)?;
    println!(
        "settled {} organizations in {} blocks, {} gas{}",
        opts.orgs,
        report.chain_height,
        report.total_gas,
        if opts.attested { " (TEE-attested reports)" } else { "" }
    );
    println!("{:<14} {:>12} {:>12}", "org", "on-chain R", "Eq.(10) R");
    for (i, addr) in report.addresses.iter().enumerate() {
        println!(
            "{:<14} {:>12.4} {:>12.4}",
            addr.to_string(),
            report.onchain_redistribution[i],
            report.offchain_redistribution[i]
        );
    }
    println!("max |on-chain − off-chain| = {:.2e}", report.max_abs_error);
    session.web3().verify_chain()?;
    println!("chain verified");
    Ok(())
}

fn cmd_train(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let game = build_game(opts)?;
    let eq = DbrSolver::new().solve(&game)?;
    let market = game.market();
    let mut sizes: Vec<usize> = market.orgs().iter().map(|o| o.samples()).collect();
    let total: usize = sizes.iter().sum();
    sizes.push(1000);
    let pool = generate(opts.dataset, total + 1000, opts.seed ^ 0xda7a);
    let mut shards = pool.shard(&sizes);
    let test = shards.pop().expect("test shard");
    let fractions: Vec<f64> = (0..market.len()).map(|i| eq.profile[i].d).collect();
    let global = Mlp::for_kind(opts.model, test.dim(), test.classes, opts.seed);

    if opts.use_async {
        let timings: Vec<OrgTiming> = (0..market.len())
            .map(|i| {
                let org = market.org(i);
                OrgTiming {
                    comm: org.comm_time(),
                    compute: org.training_time(eq.profile[i].d, org.frequency(eq.profile[i].level)),
                }
            })
            .collect();
        let config = AsyncConfig {
            updates: opts.rounds * market.len(),
            seed: opts.seed,
            ..AsyncConfig::default()
        };
        let out = train_async(global, &shards, &test, &fractions, &timings, &config)?;
        println!("asynchronous training: {} server updates, {:.0}s simulated", out.updates.len(), out.elapsed);
        for m in &out.history {
            println!("  version {:>4}: loss {:.4} accuracy {:.4}", m.round, m.loss, m.accuracy);
        }
        println!("max staleness observed: {}", out.max_staleness());
    } else {
        let config = FedConfig { rounds: opts.rounds, seed: opts.seed, ..FedConfig::default() };
        let out = train_federated(global, &shards, &test, &fractions, &config)?;
        println!("synchronous FedAvg: {} rounds", opts.rounds);
        for m in &out.history {
            println!("  round {:>3}: loss {:.4} accuracy {:.4}", m.round, m.loss, m.accuracy);
        }
    }
    Ok(())
}

fn cmd_tune(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use tradefl::solver::tuning::{tune_gamma, TuneOptions};
    let game = build_game(opts)?;
    let report = tune_gamma(&game, TuneOptions::default())?;
    println!("{:>12} {:>10} {:>8}", "gamma", "welfare", "sum_d");
    for s in &report.samples {
        println!("{:>12.3e} {:>10.1} {:>8.3}", s.gamma, s.welfare, s.total_fraction);
    }
    println!(
        "\ntuned incentive intensity: gamma = {:.3e} (welfare {:.1}, {} evaluations)",
        report.gamma_star,
        report.welfare,
        report.samples.len()
    );
    Ok(())
}

fn cmd_poa(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let game = build_game(opts)?;
    let social = solve_social_optimum(&game, SocialOptions::default())?;
    println!("{:>8} {:>10} {:>8}", "scheme", "welfare", "PoA");
    println!("{:>8} {:>10.1} {:>8}", "SOCIAL", social.welfare, "1.000");
    for scheme in [Scheme::Cgbd, Scheme::Dbr, Scheme::Wpr, Scheme::Gca, Scheme::Fip] {
        let eq = solve_scheme(&game, scheme)?;
        println!(
            "{:>8} {:>10.1} {:>8.4}",
            scheme.label(),
            eq.welfare,
            social.price_of_anarchy(eq.welfare)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.orgs, 10);
        assert_eq!(o.seed, 42);
        assert_eq!(o.scheme, Scheme::Dbr);
        assert!(!o.attested && !o.use_async);
    }

    #[test]
    fn parse_all_flags() {
        let o = parse(&strings(&[
            "--orgs", "5", "--seed", "7", "--gamma", "1e-8", "--scheme", "cgbd",
            "--model", "resnet18", "--dataset", "fmnist", "--rounds", "3",
            "--attested", "--async", "--steps", "4",
        ]))
        .unwrap();
        assert_eq!(o.orgs, 5);
        assert_eq!(o.seed, 7);
        assert_eq!(o.gamma, Some(1e-8));
        assert_eq!(o.scheme, Scheme::Cgbd);
        assert_eq!(o.model, ModelKind::Resnet18Like);
        assert_eq!(o.dataset, DatasetKind::FmnistLike);
        assert_eq!(o.rounds, 3);
        assert_eq!(o.steps, 4);
        assert!(o.attested && o.use_async);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&strings(&["--orgs"])).is_err());
        assert!(parse(&strings(&["--orgs", "abc"])).is_err());
        assert!(parse(&strings(&["--scheme", "nope"])).is_err());
        assert!(parse(&strings(&["--model", "vgg"])).is_err());
        assert!(parse(&strings(&["--dataset", "imagenet"])).is_err());
        assert!(parse(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn run_rejects_unknown_subcommand() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }
}
