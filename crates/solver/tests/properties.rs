//! Property-based tests for the solver stack: Nash-equilibrium quality
//! of DBR, CGBD's optimality guarantee (Lemma 3) against the exhaustive
//! oracle, primal-solver agreement, and the mechanism properties of
//! Theorem 2 at equilibrium.
//!
//! Runs on the in-tree `tradefl_runtime::check` harness with pinned
//! seeds; failures print a `TRADEFL_PROP_SEED` replay line.

use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::mechanism::MechanismAudit;
use tradefl_runtime::check::Gen;
use tradefl_runtime::{prop_assert, prop_assume, props};
use tradefl_solver::cgbd::{exhaustive_optimum, CgbdSolver};
use tradefl_solver::dbr::DbrSolver;
use tradefl_solver::primal::PrimalProblem;

fn any_game(g: &mut Gen, max_orgs: usize) -> CoopetitionGame<SqrtAccuracy> {
    let seed = g.u64(0..500);
    let n = g.usize(2..=max_orgs);
    let mu = g.f64(0.0..0.25);
    let market = MarketConfig::table_ii()
        .with_orgs(n)
        .with_rho_mean(mu)
        .build(seed)
        .expect("table-ii markets always build");
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

props! {
    #![cases = 16]

    /// DBR terminates at an ε-Nash equilibrium (Definition 6) for random
    /// markets: no sampled unilateral deviation improves any payoff.
    fn dbr_reaches_epsilon_nash(g) {
        let game = any_game(g, 7);
        let eq = DbrSolver::new().solve(&game).unwrap();
        prop_assert!(eq.converged);
        let gain = game.best_sampled_deviation_gain(&eq.profile, 16);
        prop_assert!(gain < 1e-3 * eq.welfare.abs().max(1.0), "deviation gain {gain}");
    }

    /// Lemma 3 on random small instances: CGBD's potential matches the
    /// brute-force optimum within (δ+ε).
    fn cgbd_is_delta_eps_optimal(g) {
        let game = any_game(g, 3);
        let report = CgbdSolver::new().solve(&game).unwrap();
        let (_, oracle) = exhaustive_optimum(&game, 1e-10).unwrap();
        let got = report.equilibrium.potential;
        prop_assert!(
            (oracle - got).abs() <= 2e-4 * oracle.abs().max(1.0),
            "oracle {oracle} vs cgbd {got}"
        );
    }

    /// The interior-point and projected-gradient primal solvers agree on
    /// random instances and level assignments.
    fn primal_solvers_agree(g) {
        let game = any_game(g, 6);
        let level_pick = g.any_u8();
        let n = game.market().len();
        let levels: Vec<usize> = (0..n)
            .map(|i| {
                let m = game.market().org(i).compute_level_count();
                (level_pick as usize + i) % m
            })
            .collect();
        let prob = PrimalProblem::new(&game, &levels);
        prop_assume!(prob.is_feasible());
        let ip = prob.solve(1e-10).unwrap();
        let pg = prob.solve_projected(1e-9, 20_000).unwrap();
        prop_assert!(
            (ip.value - pg.value).abs() <= 2e-4 * ip.value.abs().max(1.0),
            "ip {} vs pg {}", ip.value, pg.value
        );
    }

    /// Theorem 2 at equilibrium: individual rationality and budget
    /// balance hold at the DBR fixed point on random markets.
    fn theorem2_properties_hold_at_equilibrium(g) {
        let game = any_game(g, 8);
        let eq = DbrSolver::new().solve(&game).unwrap();
        let audit = MechanismAudit::evaluate(&game, &eq.profile);
        prop_assert!(audit.budget_balanced_rel(1e-9));
        prop_assert!(
            audit.individually_rational(1e-6 * audit.social_welfare.abs().max(1.0)),
            "min payoff {}", audit.min_payoff
        );
    }

    /// Potential monotonicity along DBR (the FIP of weighted potential
    /// games): each accepted round weakly increases U.
    fn dbr_potential_monotone(g) {
        let game = any_game(g, 6);
        let eq = DbrSolver::new().solve(&game).unwrap();
        for w in eq.potential_trace.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9 * w[0].abs().max(1.0));
        }
    }

    /// Exact certification: DBR fixed points certify as ε-Nash with a
    /// tiny ε under the true best responses (not just sampled grids).
    fn dbr_certifies_exactly(g) {
        let game = any_game(g, 7);
        let eq = DbrSolver::new().solve(&game).unwrap();
        let cert = tradefl_solver::certify::certify_nash(&game, &eq.profile).unwrap();
        prop_assert!(
            cert.epsilon <= 1e-4 * eq.welfare.abs().max(1.0),
            "epsilon {}", cert.epsilon
        );
    }

    /// Benders optimality cuts are valid lower bounds of the Lagrangian
    /// for random instances, anchors and candidate ladders.
    fn optimality_cuts_are_valid_lower_bounds(g) {
        use tradefl_solver::gbd::{deadline_residuals, potential_at, Cut};
        let game = any_game(g, 4);
        let level_pick = g.any_u8();
        let t_anchor = g.f64(0.1..=0.9);
        let t_eval = g.f64(0.0..=1.0);
        let n = game.market().len();
        let anchor_levels: Vec<usize> = (0..n)
            .map(|i| game.market().org(i).compute_level_count() - 1)
            .collect();
        let prob = PrimalProblem::new(&game, &anchor_levels);
        prop_assume!(prob.is_feasible());
        let sol = prob.solve(1e-10).unwrap();
        // Perturb the anchor inside the box to exercise non-KKT anchors.
        let d_min = game.market().params().d_min;
        let d_anchor: Vec<f64> =
            sol.d.iter().map(|&d| d_min + t_anchor * (d.max(d_min) - d_min)).collect();
        let cut = Cut::optimality(&game, d_anchor, sol.multipliers.clone());
        let eval_levels: Vec<usize> = (0..n)
            .map(|i| {
                let m = game.market().org(i).compute_level_count();
                (level_pick as usize + i) % m
            })
            .collect();
        let v = cut.evaluate(&game, &eval_levels);
        // Compare against the Lagrangian at a sampled d in [d_min, 1]^n.
        let d: Vec<f64> = (0..n).map(|_| d_min + t_eval * (1.0 - d_min)).collect();
        let lag = -potential_at(&game, &d, &eval_levels)
            + sol
                .multipliers
                .iter()
                .zip(deadline_residuals(&game, &d, &eval_levels))
                .map(|(u, g)| u * g)
                .sum::<f64>();
        prop_assert!(
            v <= lag + 1e-6 * lag.abs().max(1.0),
            "cut {v} above lagrangian {lag}"
        );
    }

    /// The social optimum dominates the DBR equilibrium welfare for
    /// random markets (PoA ≥ 1).
    fn social_optimum_dominates_dbr(g) {
        use tradefl_solver::social::{solve_social_optimum, SocialOptions};
        let game = any_game(g, 5);
        let eq = DbrSolver::new().solve(&game).unwrap();
        let opt = solve_social_optimum(&game, SocialOptions::default()).unwrap();
        prop_assert!(
            opt.welfare >= eq.welfare - 1e-5 * opt.welfare.abs().max(1.0),
            "social {} below equilibrium {}", opt.welfare, eq.welfare
        );
    }
}
