//! Benders machinery: Lagrangian cuts (Eqs. 20/22) and the master
//! problem (23) over the discrete compute ladder.
//!
//! The master is solved either by the paper's exhaustive *traversal* of
//! `f ∈ 𝓕 = F_1 × … × F_|N|` ("the traversal method is applied only,
//! i.e., the solution of (23) is obtained by exhaustively enumerating
//! the feasible values of f^(k)") or — for instances where `m^|N|` is
//! intractable — by a coordinate-descent local search with restarts,
//! clearly flagged as a heuristic.

use crate::error::{Result, SolveError};
use tradefl_runtime::obs;
use tradefl_runtime::rng::{Rng, SeedableRng, StdRng};
use tradefl_runtime::sync::pool::Pool;
// Ordered set, not HashSet: the visited set participates in the
// bit-identity contract and must never expose a nondeterministic
// iteration order (`no-hash-iteration` lint).
use std::collections::BTreeSet;
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::{Strategy, StrategyProfile};

/// Deadline residuals `G_i(d, f) = T_i^(1) + η_i d_i s_i / f_i + T_i^(3) − τ`.
pub fn deadline_residuals<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    d: &[f64],
    levels: &[usize],
) -> Vec<f64> {
    let market = game.market();
    (0..market.len())
        .map(|i| {
            let org = market.org(i);
            org.comm_time() + org.training_time(d[i], org.frequency(levels[i]))
                - market.params().tau
        })
        .collect()
}

/// Potential `U(d; f)` for an explicit `(d, levels)` pair.
pub fn potential_at<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    d: &[f64],
    levels: &[usize],
) -> f64 {
    let profile: StrategyProfile = d
        .iter()
        .zip(levels)
        .map(|(&d, &l)| Strategy::new(d, l))
        .collect();
    game.potential(&profile)
}

/// A Benders cut produced by one CGBD iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum Cut {
    /// Optimality cut from a feasible primal (Eq. 20). Construct via
    /// [`Cut::optimality`], which caches the accuracy-curve data at the
    /// anchor `Ω_v` so that evaluation underestimates the true value
    /// function: `−P(Ω)` is convex, hence
    /// `−P(Ω) ≥ −P(Ω_v) − P'(Ω_v)(Ω − Ω_v)`, and minimizing the
    /// linearized Lagrangian `𝓛(d, f, u_v)` over the box `[D_min, 1]^N`
    /// is analytic per coordinate. The cut is tight at its own anchor
    /// assignment (KKT), so visited assignments price exactly and GBD's
    /// lower bound stays valid (Lemma 3).
    Optimality {
        /// The primal solution `d_v` the cut is anchored at.
        d: Vec<f64>,
        /// The deadline multipliers `u_v ≥ 0`.
        u: Vec<f64>,
        /// Total data `Ω_v` at the anchor.
        omega: f64,
        /// Accuracy gain `P(Ω_v)`.
        p_value: f64,
        /// Accuracy slope `P'(Ω_v)`.
        p_deriv: f64,
    },
    /// Feasibility cut from an infeasible primal (Eq. 22): requires
    /// `𝓛_*(d_v, f, λ_v) = λ_vᵀ G(d_v, f) ≤ 0`. Valid for all `d`
    /// because the residuals are increasing in `d` and the anchor is
    /// the feasibility minimizer `d = D_min`.
    Feasibility {
        /// The feasibility-check minimizer (everyone at `D_min`).
        d: Vec<f64>,
        /// The dual weights `λ_v` (sum to one).
        lambda: Vec<f64>,
    },
}

impl Cut {
    /// Builds an optimality cut anchored at primal solution `(d, u)`.
    pub fn optimality<A: AccuracyModel>(
        game: &CoopetitionGame<A>,
        d: Vec<f64>,
        u: Vec<f64>,
    ) -> Self {
        let omega = game.market().total_data(&d);
        let p_value = game.accuracy().gain(omega);
        let p_deriv = game.accuracy().gain_deriv(omega);
        Cut::Optimality { d, u, omega, p_value, p_deriv }
    }

    /// Evaluates the cut at a candidate level assignment. For an
    /// optimality cut this is its epigraph value — a valid lower bound
    /// on `min_d −U(d, f) + u_vᵀ G(d, f)` (minimization convention);
    /// feasibility cuts return their violation (`≤ 0` means satisfied).
    pub fn evaluate<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        levels: &[usize],
    ) -> f64 {
        match self {
            Cut::Optimality { d: _, u, omega, p_value, p_deriv } => {
                let market = game.market();
                let params = market.params();
                let d_min = params.d_min;
                // −P(Ω(d)) ≥ −P_v + P'_v Ω_v − P'_v Ω(d); the last term
                // folds into the per-coordinate linear minimization.
                let mut total = -p_value + p_deriv * omega;
                for i in 0..market.len() {
                    let org = market.org(i);
                    let f = org.frequency(levels[i]);
                    let s = org.data_bits();
                    let z = market.weight(i);
                    let q = market.competition_pressure(i);
                    // U's own-term slope in d_i at this frequency.
                    let c = (params.gamma * q
                        - params.omega_e * params.kappa * f * f * org.eta())
                        * s
                        / z;
                    // Linear coefficient of d_i in the relaxed Lagrangian
                    // (accuracy term on effective volume, costs on raw).
                    let coeff =
                        -p_deriv * org.effective_bits() - c + u[i] * org.eta() * s / f;
                    total += if coeff > 0.0 { coeff * d_min } else { coeff };
                    // u_i (comm − τ) and −const(f) pieces.
                    total += u[i] * (org.comm_time() - params.tau);
                    total -= (params.gamma * q * params.lambda * f
                        - params.omega_e * org.comm_energy())
                        / z;
                }
                total
            }
            Cut::Feasibility { d, lambda } => {
                let g = deadline_residuals(game, d, levels);
                lambda.iter().zip(&g).map(|(li, gi)| li * gi).sum()
            }
        }
    }
}

/// How the master problem (23) searches the ladder product space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MasterSearch {
    /// Exhaustive traversal (paper-faithful); errors out if `m^|N|`
    /// exceeds `cap`.
    Traversal {
        /// Upper bound on the number of enumerated combinations.
        cap: u128,
    },
    /// Coordinate-descent local search with random restarts (heuristic
    /// for large instances).
    CoordinateDescent {
        /// Number of random restarts (the current incumbent is always
        /// one start).
        restarts: usize,
        /// Maximum full sweeps per start.
        max_sweeps: usize,
        /// RNG seed for restart points.
        seed: u64,
    },
}

impl Default for MasterSearch {
    fn default() -> Self {
        MasterSearch::Traversal { cap: 4_000_000 }
    }
}

/// Value of the master objective at `levels`: the max over optimality
/// cuts, or `None` when a feasibility cut is violated.
pub fn master_value<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    cuts: &[Cut],
    levels: &[usize],
) -> Option<f64> {
    let mut value = f64::NEG_INFINITY;
    let mut saw_optimality = false;
    for cut in cuts {
        match cut {
            Cut::Feasibility { .. } => {
                if cut.evaluate(game, levels) > 1e-9 {
                    return None;
                }
            }
            Cut::Optimality { .. } => {
                saw_optimality = true;
                value = value.max(cut.evaluate(game, levels));
            }
        }
    }
    if saw_optimality {
        Some(value)
    } else {
        // No epigraph yet: rank candidates by (lack of) deadline slack
        // so the first master pick favours fast ladders.
        Some(0.0)
    }
}

/// Solution of one master solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterSolution {
    /// The next level assignment `f^(k)` to hand to the primal: the best
    /// assignment *not yet visited*, or the global minimizer if every
    /// candidate was visited.
    pub levels: Vec<usize>,
    /// The global optimal epigraph value `φ*` — the lower bound
    /// `LB^(k)` in the minimization convention (over **all** feasible
    /// candidates, visited or not).
    pub phi: f64,
    /// Whether [`MasterSolution::levels`] is fresh (not yet visited). A
    /// stale result means the search space is exhausted and CGBD can
    /// terminate (Lemma 2).
    pub fresh: bool,
    /// Number of candidate assignments evaluated.
    pub evaluated: usize,
}

/// Candidate spaces at least this large route the traversal through
/// the pooled table scan ([`traverse_pooled`]); smaller ones stay on
/// the reference odometer loop, whose per-candidate cost is already
/// below the table-build overhead. The threshold deliberately depends
/// only on the instance — never on the worker count — so the selected
/// code path (and hence every last bit of the result) is identical
/// under `TRADEFL_THREADS=1` and any other setting.
const POOLED_TRAVERSAL_MIN_COMBOS: u128 = 512;

/// Solves the master problem (23), preferring assignments not in
/// `visited` (Lemma 2: no `f` repeats itself).
///
/// # Errors
///
/// * [`SolveError::MasterTooLarge`] in traversal mode when `m^|N|`
///   exceeds the cap;
/// * [`SolveError::InfeasibleProblem`] when every candidate violates a
///   feasibility cut (cannot happen if any ladder assignment admits
///   `D_min` within the deadline).
pub fn solve_master<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    cuts: &[Cut],
    search: MasterSearch,
    visited: &BTreeSet<Vec<usize>>,
) -> Result<MasterSolution> {
    match search {
        MasterSearch::Traversal { cap } => {
            let combos = combination_count(game);
            // The traversal visits every candidate; recorded here at
            // the sequential entry point, not inside pooled chunks.
            obs::counter_add(
                "gbd.master_candidates_scanned",
                u64::try_from(combos).unwrap_or(u64::MAX),
            );
            if combos >= POOLED_TRAVERSAL_MIN_COMBOS {
                traverse_pooled(game, cuts, visited, cap, Pool::global())
            } else {
                traverse_reference(game, cuts, visited, cap)
            }
        }
        MasterSearch::CoordinateDescent { restarts, max_sweeps, seed } => {
            coordinate_descent(game, cuts, visited, restarts, max_sweeps, seed)
        }
    }
}

/// [`solve_master`] with **incrementally maintained** cut tables:
/// `tables` must contain exactly the cuts in `cuts` (callers append
/// via [`CutTables::push_cut`] as they grow the stack). The pooled
/// traversal reuses the tables instead of rebuilding them; the small
/// reference path and coordinate descent evaluate `cuts` directly,
/// exactly as [`solve_master`] does — so results are bit-identical to
/// the scratch-build entry point for every worker count.
///
/// # Errors
///
/// See [`solve_master`].
///
/// # Panics
///
/// Panics if `tables` does not hold the same number of cuts as `cuts`.
pub fn solve_master_with<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    cuts: &[Cut],
    tables: &CutTables,
    search: MasterSearch,
    visited: &BTreeSet<Vec<usize>>,
) -> Result<MasterSolution> {
    assert_eq!(
        tables.cut_count(),
        cuts.len(),
        "incremental cut tables out of sync with the cut stack"
    );
    match search {
        MasterSearch::Traversal { cap } => {
            let combos = combination_count(game);
            obs::counter_add(
                "gbd.master_candidates_scanned",
                u64::try_from(combos).unwrap_or(u64::MAX),
            );
            if combos >= POOLED_TRAVERSAL_MIN_COMBOS {
                traverse_pooled_with(game, tables, visited, cap, Pool::global())
            } else {
                traverse_reference(game, cuts, visited, cap)
            }
        }
        MasterSearch::CoordinateDescent { restarts, max_sweeps, seed } => {
            coordinate_descent(game, cuts, visited, restarts, max_sweeps, seed)
        }
    }
}

/// Size of the ladder product space `|𝓕| = Π m_i`.
fn combination_count<A: AccuracyModel>(game: &CoopetitionGame<A>) -> u128 {
    game.market()
        .orgs()
        .iter()
        .map(|o| o.compute_level_count() as u128)
        .try_fold(1u128, u128::checked_mul)
        .unwrap_or(u128::MAX)
}

fn ladder_sizes<A: AccuracyModel>(game: &CoopetitionGame<A>) -> Vec<usize> {
    game.market()
        .orgs()
        .iter()
        .map(|o| o.compute_level_count())
        .collect()
}

/// The paper-faithful odometer traversal, evaluating
/// [`Cut::evaluate`] per candidate. Kept as the reference
/// implementation (and the fast path for small candidate spaces, where
/// building the lookup tables of [`traverse_pooled`] costs more than
/// it saves).
///
/// # Errors
///
/// See [`solve_master`].
pub fn traverse_reference<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    cuts: &[Cut],
    visited: &BTreeSet<Vec<usize>>,
    cap: u128,
) -> Result<MasterSolution> {
    let sizes = ladder_sizes(game);
    let combinations = sizes
        .iter()
        .try_fold(1u128, |acc, &m| acc.checked_mul(m as u128))
        .unwrap_or(u128::MAX);
    if combinations > cap {
        return Err(SolveError::MasterTooLarge { combinations, cap });
    }
    let mut levels = vec![0usize; sizes.len()];
    let mut best: Option<(Vec<usize>, f64)> = None; // global minimizer
    let mut best_fresh: Option<(Vec<usize>, f64)> = None; // best unvisited
    let mut evaluated = 0usize;
    loop {
        evaluated += 1;
        if let Some(phi) = master_value(game, cuts, &levels) {
            if best.as_ref().map_or(true, |(_, b)| phi < *b) {
                best = Some((levels.clone(), phi));
            }
            if !visited.contains(&levels)
                && best_fresh.as_ref().map_or(true, |(_, b)| phi < *b)
            {
                best_fresh = Some((levels.clone(), phi));
            }
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == sizes.len() {
                let (glevels, phi) =
                    best.ok_or(SolveError::InfeasibleProblem { org: 0 })?;
                return Ok(match best_fresh {
                    Some((flevels, _)) => {
                        MasterSolution { levels: flevels, phi, fresh: true, evaluated }
                    }
                    None => MasterSolution { levels: glevels, phi, fresh: false, evaluated },
                });
            }
            levels[pos] += 1;
            if levels[pos] < sizes[pos] {
                break;
            }
            levels[pos] = 0;
            pos += 1;
        }
    }
}

/// Per-cut lookup tables for the pooled traversal.
///
/// Every cut of (20)/(22) is **separable across organizations** at a
/// fixed candidate: the optimality cut's epigraph value is a constant
/// (anchor data) plus one term per organization that depends only on
/// that organization's own ladder level, and a feasibility cut's
/// violation is a pure sum of per-organization residual terms. So the
/// whole cut stack collapses into `per_org[i][level]` tables built
/// once per master solve — candidate evaluation then costs one add
/// per (cut, org) instead of re-deriving frequencies, energy prices
/// and Lagrangian coefficients every time. This is what makes the
/// traversal worth parallelizing at all: the tables shrink the
/// per-candidate constant, the pool splits the `Π m_i` candidates.
///
/// The tables reproduce [`Cut::evaluate`]'s arithmetic with each
/// organization's three sub-terms pre-summed; the grouping changes the
/// floating-point rounding by at most an ulp-level reassociation,
/// which is why the reference path is kept byte-stable and the
/// selection between paths depends only on the instance size.
///
/// Tables are **incremental**: [`CutTables::new`] caches the
/// strategy-independent per-organization constants (`z_i`, `q_i` —
/// one O(nnz) ρ pass total instead of one O(N) row sweep per cut per
/// organization), and [`CutTables::push_cut`] appends a single cut's
/// table in O(N · levels). CGBD keeps one table set alive across its
/// whole master-iteration loop, pushing only each iteration's new cut
/// — bit-identical to rebuilding from scratch, because every table
/// entry is a pure function of the cut and the cached constants
/// (pinned by `tests/determinism.rs`).
#[derive(Debug)]
pub struct CutTables {
    /// `(base, per_org)` for each optimality cut: value at a candidate
    /// is `base + Σ_i per_org[i][levels[i]]`.
    optimality: Vec<(f64, Vec<Vec<f64>>)>,
    /// `per_org` for each feasibility cut: violation is
    /// `Σ_i per_org[i][levels[i]]`, infeasible when `> 1e-9`.
    feasibility: Vec<Vec<Vec<f64>>>,
    /// Cached `z_i = p_i − Σ_j ρ_ij p_j` (exactly `market.weight(i)`).
    z: Vec<f64>,
    /// Cached `q_i = Σ_j ρ_ij` (exactly `market.competition_pressure(i)`).
    q: Vec<f64>,
    /// Cuts folded in so far.
    cuts: usize,
}

impl CutTables {
    /// Empty tables with the per-organization constants precomputed —
    /// the start of an incremental master-iteration sequence.
    pub fn new<A: AccuracyModel>(game: &CoopetitionGame<A>) -> Self {
        let market = game.market();
        let n = market.len();
        let z: Vec<f64> = (0..n).map(|i| market.weight(i)).collect();
        let q: Vec<f64> = (0..n).map(|i| market.competition_pressure(i)).collect();
        CutTables { optimality: Vec::new(), feasibility: Vec::new(), z, q, cuts: 0 }
    }

    /// Appends one cut's lookup table using the cached constants:
    /// O(N · levels), no ρ access at all.
    pub fn push_cut<A: AccuracyModel>(&mut self, game: &CoopetitionGame<A>, cut: &Cut) {
        let market = game.market();
        let params = market.params();
        let n = market.len();
        self.cuts += 1;
        match cut {
            Cut::Optimality { d: _, u, omega, p_value, p_deriv } => {
                let base = -p_value + p_deriv * omega;
                let per_org: Vec<Vec<f64>> = (0..n)
                    .map(|i| {
                        let org = market.org(i);
                        let s = org.data_bits();
                        let z = self.z[i];
                        let q = self.q[i];
                        org.compute_levels()
                            .iter()
                            .map(|&f| {
                                let c = (params.gamma * q
                                    - params.omega_e * params.kappa * f * f * org.eta())
                                    * s
                                    / z;
                                let coeff = -p_deriv * org.effective_bits() - c
                                    + u[i] * org.eta() * s / f;
                                let linear =
                                    if coeff > 0.0 { coeff * params.d_min } else { coeff };
                                linear + u[i] * (org.comm_time() - params.tau)
                                    - (params.gamma * q * params.lambda * f
                                        - params.omega_e * org.comm_energy())
                                        / z
                            })
                            .collect()
                    })
                    .collect();
                self.optimality.push((base, per_org));
            }
            Cut::Feasibility { d, lambda } => {
                let per_org: Vec<Vec<f64>> = (0..n)
                    .map(|i| {
                        let org = market.org(i);
                        org.compute_levels()
                            .iter()
                            .map(|&f| {
                                lambda[i]
                                    * (org.comm_time() + org.training_time(d[i], f)
                                        - params.tau)
                            })
                            .collect()
                    })
                    .collect();
                self.feasibility.push(per_org);
            }
        }
    }

    /// Number of cuts folded into the tables.
    pub fn cut_count(&self) -> usize {
        self.cuts
    }

    /// Builds tables for a whole cut stack from scratch — one
    /// [`CutTables::push_cut`] per cut, so scratch and incremental
    /// construction are bit-identical by definition.
    pub fn build<A: AccuracyModel>(game: &CoopetitionGame<A>, cuts: &[Cut]) -> Self {
        let mut tables = CutTables::new(game);
        for cut in cuts {
            tables.push_cut(game, cut);
        }
        tables
    }

    /// Master objective at `levels`, or `None` on a feasibility-cut
    /// violation — the table-based analogue of [`master_value`].
    pub fn value(&self, levels: &[usize]) -> Option<f64> {
        for per_org in &self.feasibility {
            let violation: f64 =
                per_org.iter().zip(levels).map(|(t, &l)| t[l]).sum();
            if violation > 1e-9 {
                return None;
            }
        }
        if self.optimality.is_empty() {
            // No epigraph yet — mirror `master_value`'s flat surface.
            return Some(0.0);
        }
        let mut best = f64::NEG_INFINITY;
        for (base, per_org) in &self.optimality {
            let v = base + per_org.iter().zip(levels).map(|(t, &l)| t[l]).sum::<f64>();
            best = best.max(v);
        }
        Some(best)
    }
}

/// Decodes candidate `index` into the mixed-radix odometer state the
/// reference traversal would reach after `index` increments (digit 0
/// runs fastest).
fn decode_levels(mut index: usize, sizes: &[usize], levels: &mut [usize]) {
    for (l, &m) in levels.iter_mut().zip(sizes) {
        *l = index % m;
        index /= m;
    }
}

/// Chunk-local scan results: `(index, φ)` of the best candidate and of
/// the best *unvisited* candidate, if any.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkBest {
    best: Option<(usize, f64)>,
    best_fresh: Option<(usize, f64)>,
}

/// The pooled traversal: per-cut tables built once, the `Π m_i`
/// candidate space split into index ranges scanned by the
/// work-stealing pool, chunk results merged **in chunk order with
/// strict-improvement comparisons** — exactly the first-minimum-wins
/// rule of the serial odometer loop, so the outcome is bit-identical
/// for every worker count (including 1).
///
/// # Errors
///
/// See [`solve_master`].
pub fn traverse_pooled<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    cuts: &[Cut],
    visited: &BTreeSet<Vec<usize>>,
    cap: u128,
    pool: &Pool,
) -> Result<MasterSolution> {
    let tables = CutTables::build(game, cuts);
    traverse_pooled_with(game, &tables, visited, cap, pool)
}

/// [`traverse_pooled`] over **prebuilt** cut tables: the incremental
/// master path. CGBD maintains one [`CutTables`] across its whole
/// iteration loop and appends only each new cut, so the per-solve
/// table-build cost drops from O(cuts · N · levels) (plus the O(N²)
/// per-org constant recomputation the scratch build used to pay) to
/// O(N · levels) for the newest cut — while the scan itself stays
/// bit-identical for every worker count.
///
/// # Errors
///
/// See [`solve_master`].
pub fn traverse_pooled_with<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    tables: &CutTables,
    visited: &BTreeSet<Vec<usize>>,
    cap: u128,
    pool: &Pool,
) -> Result<MasterSolution> {
    let sizes = ladder_sizes(game);
    let combinations = sizes
        .iter()
        .try_fold(1u128, |acc, &m| acc.checked_mul(m as u128))
        .unwrap_or(u128::MAX);
    if combinations > cap {
        return Err(SolveError::MasterTooLarge { combinations, cap });
    }
    let total = usize::try_from(combinations)
        .map_err(|_| SolveError::MasterTooLarge { combinations, cap })?;
    let chunk = total.div_ceil(pool.workers() * 4).max(1);
    let starts: Vec<usize> = (0..total).step_by(chunk).collect();
    let chunk_bests: Vec<ChunkBest> = pool.map(
        starts
            .iter()
            .map(|&lo| {
                let (tables, sizes, visited) = (&tables, &sizes, visited);
                move || {
                    let hi = (lo + chunk).min(total);
                    let mut levels = vec![0usize; sizes.len()];
                    decode_levels(lo, sizes, &mut levels);
                    let mut out = ChunkBest::default();
                    for idx in lo..hi {
                        if let Some(phi) = tables.value(&levels) {
                            if out.best.map_or(true, |(_, b)| phi < b) {
                                out.best = Some((idx, phi));
                            }
                            if out.best_fresh.map_or(true, |(_, b)| phi < b)
                                && !visited.contains(levels.as_slice())
                            {
                                out.best_fresh = Some((idx, phi));
                            }
                        }
                        // Odometer increment (digit 0 fastest).
                        for (l, &m) in levels.iter_mut().zip(sizes.iter()) {
                            *l += 1;
                            if *l < m {
                                break;
                            }
                            *l = 0;
                        }
                    }
                    out
                }
            })
            .collect(),
    );
    let mut best: Option<(usize, f64)> = None;
    let mut best_fresh: Option<(usize, f64)> = None;
    for cb in chunk_bests {
        if let Some((idx, phi)) = cb.best {
            if best.map_or(true, |(_, b)| phi < b) {
                best = Some((idx, phi));
            }
        }
        if let Some((idx, phi)) = cb.best_fresh {
            if best_fresh.map_or(true, |(_, b)| phi < b) {
                best_fresh = Some((idx, phi));
            }
        }
    }
    let (gidx, phi) = best.ok_or(SolveError::InfeasibleProblem { org: 0 })?;
    let mut levels = vec![0usize; sizes.len()];
    Ok(match best_fresh {
        Some((fidx, _)) => {
            decode_levels(fidx, &sizes, &mut levels);
            MasterSolution { levels, phi, fresh: true, evaluated: total }
        }
        None => {
            decode_levels(gidx, &sizes, &mut levels);
            MasterSolution { levels, phi, fresh: false, evaluated: total }
        }
    })
}

fn coordinate_descent<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    cuts: &[Cut],
    visited: &BTreeSet<Vec<usize>>,
    restarts: usize,
    max_sweeps: usize,
    seed: u64,
) -> Result<MasterSolution> {
    let sizes = ladder_sizes(game);
    let n = sizes.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluated = 0usize;
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut best_fresh: Option<(Vec<usize>, f64)> = None;
    let consider = |levels: &Vec<usize>,
                        v: Option<f64>,
                        best: &mut Option<(Vec<usize>, f64)>,
                        best_fresh: &mut Option<(Vec<usize>, f64)>| {
        if let Some(v) = v {
            if best.as_ref().map_or(true, |(_, b)| v < *b) {
                *best = Some((levels.clone(), v));
            }
            if !visited.contains(levels)
                && best_fresh.as_ref().map_or(true, |(_, b)| v < *b)
            {
                *best_fresh = Some((levels.clone(), v));
            }
        }
    };
    let starts = restarts.max(1) + 1;
    for start in 0..starts {
        let mut levels: Vec<usize> = if start == 0 {
            sizes.iter().map(|&m| m - 1).collect() // fastest ladder
        } else {
            sizes.iter().map(|&m| rng.gen_range(0..m)).collect()
        };
        let mut value = master_value(game, cuts, &levels);
        evaluated += 1;
        consider(&levels, value, &mut best, &mut best_fresh);
        for _ in 0..max_sweeps {
            let mut improved = false;
            for i in 0..n {
                let original = levels[i];
                let mut best_l = original;
                for l in 0..sizes[i] {
                    if l == original {
                        continue;
                    }
                    levels[i] = l;
                    evaluated += 1;
                    let v = master_value(game, cuts, &levels);
                    consider(&levels, v, &mut best, &mut best_fresh);
                    let better = match (v, value) {
                        (Some(v), Some(cur)) => v < cur - 1e-12 * cur.abs().max(1.0),
                        (Some(_), None) => true,
                        _ => false,
                    };
                    if better {
                        best_l = l;
                        value = v;
                    }
                }
                if best_l != original {
                    improved = true;
                }
                levels[i] = best_l;
            }
            if !improved {
                break;
            }
        }
    }
    let (glevels, phi) = best.ok_or(SolveError::InfeasibleProblem { org: 0 })?;
    Ok(match best_fresh {
        Some((flevels, _)) => MasterSolution { levels: flevels, phi, fresh: true, evaluated },
        None => MasterSolution { levels: glevels, phi, fresh: false, evaluated },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primal::PrimalProblem;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn residuals_match_strategy_validation() {
        let g = game(3, 1);
        let levels = vec![0, 1, 2];
        let d = vec![0.05, 0.1, 0.2];
        let res = deadline_residuals(&g, &d, &levels);
        for (i, r) in res.iter().enumerate() {
            let org = g.market().org(i);
            let direct = org.comm_time()
                + org.training_time(d[i], org.frequency(levels[i]))
                - g.market().params().tau;
            assert!((r - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn optimality_cut_is_tight_at_its_anchor() {
        let g = game(3, 2);
        let levels: Vec<usize> = vec![3, 3, 3];
        let prob = PrimalProblem::new(&g, &levels);
        let sol = prob.solve(1e-10).unwrap();
        let cut = Cut::optimality(&g, sol.d.clone(), sol.multipliers.clone());
        let v = cut.evaluate(&g, &levels);
        let lagrangian = -potential_at(&g, &sol.d, &levels)
            + sol
                .multipliers
                .iter()
                .zip(deadline_residuals(&g, &sol.d, &levels))
                .map(|(u, gr)| u * gr)
                .sum::<f64>();
        // At the anchor assignment the linearization is exact and d_v is
        // the Lagrangian minimizer (KKT), so the cut prices it (almost)
        // exactly from below.
        assert!(v <= lagrangian + 1e-6 * lagrangian.abs().max(1.0));
        assert!(
            (v - lagrangian).abs() <= 1e-3 * lagrangian.abs().max(1.0),
            "cut {v} vs lagrangian {lagrangian}"
        );
    }

    #[test]
    fn optimality_cut_underestimates_the_lagrangian_everywhere() {
        let g = game(3, 2);
        let anchor_levels: Vec<usize> = vec![3, 3, 3];
        let sol = PrimalProblem::new(&g, &anchor_levels).solve(1e-10).unwrap();
        let cut = Cut::optimality(&g, sol.d.clone(), sol.multipliers.clone());
        // For every assignment f and a sampled set of d in the box, the
        // cut must lie below L(d, f, u_v) — validity of the lower bound.
        let d_min = g.market().params().d_min;
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let levels = [a, b, c];
                    let v = cut.evaluate(&g, &levels);
                    for t in [0.0, 0.3, 0.7, 1.0] {
                        let d: Vec<f64> = (0..3).map(|_| d_min + t * (1.0 - d_min)).collect();
                        let lag = -potential_at(&g, &d, &levels)
                            + sol
                                .multipliers
                                .iter()
                                .zip(deadline_residuals(&g, &d, &levels))
                                .map(|(u, gr)| u * gr)
                                .sum::<f64>();
                        assert!(
                            v <= lag + 1e-6 * lag.abs().max(1.0),
                            "cut {v} above lagrangian {lag} at f={levels:?}, t={t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn traversal_finds_the_true_master_minimum() {
        let g = game(3, 5);
        // One synthetic optimality cut anchored at a mid-level d.
        let cut = Cut::optimality(&g, vec![0.2, 0.2, 0.2], vec![0.0; 3]);
        let cuts = vec![cut];
        let sol =
            solve_master(&g, &cuts, MasterSearch::Traversal { cap: 1_000_000 }, &BTreeSet::new())
                .unwrap();
        // Brute-force verification.
        let sizes: Vec<usize> =
            g.market().orgs().iter().map(|o| o.compute_level_count()).collect();
        let mut best = f64::INFINITY;
        for a in 0..sizes[0] {
            for b in 0..sizes[1] {
                for c in 0..sizes[2] {
                    if let Some(v) = master_value(&g, &cuts, &[a, b, c]) {
                        best = best.min(v);
                    }
                }
            }
        }
        assert!((sol.phi - best).abs() < 1e-9, "traversal {} vs brute {best}", sol.phi);
        assert_eq!(sol.evaluated, 64);
    }

    #[test]
    fn traversal_respects_cap() {
        let g = game(10, 1);
        let r = solve_master(
            &g,
            &[Cut::optimality(&g, vec![0.1; 10], vec![0.0; 10])],
            MasterSearch::Traversal { cap: 1000 },
            &BTreeSet::new(),
        );
        assert!(matches!(r, Err(SolveError::MasterTooLarge { .. })));
    }

    #[test]
    fn coordinate_descent_matches_traversal_on_small_instances() {
        let g = game(4, 9);
        let cuts = vec![
            Cut::optimality(&g, vec![0.15; 4], vec![0.0; 4]),
            Cut::optimality(&g, vec![0.4; 4], vec![0.1; 4]),
        ];
        let t = solve_master(&g, &cuts, MasterSearch::Traversal { cap: 1_000_000 }, &BTreeSet::new())
            .unwrap();
        let c = solve_master(
            &g,
            &cuts,
            MasterSearch::CoordinateDescent { restarts: 8, max_sweeps: 20, seed: 3 },
            &BTreeSet::new(),
        )
        .unwrap();
        assert!(
            (t.phi - c.phi).abs() <= 1e-9 + 1e-6 * t.phi.abs(),
            "traversal {} vs cd {}",
            t.phi,
            c.phi
        );
    }

    #[test]
    fn feasibility_cut_filters_slow_ladders() {
        // Tight deadline: low levels violate D_min; the feasibility cut
        // anchored at D_min must exclude them.
        let mut cfg = MarketConfig::table_ii().with_orgs(2);
        cfg.params.tau = 18.0;
        cfg.comm_time = (5.0, 5.0);
        cfg.eta = (100.0, 100.0);
        cfg.data_bits = (20e9, 20e9);
        let g = CoopetitionGame::new(cfg.build(3).unwrap(), SqrtAccuracy::paper_default());
        let d_min = g.market().params().d_min;
        let prob = PrimalProblem::new(&g, &[0, 0]);
        assert!(!prob.is_feasible());
        let fc = prob.feasibility_check();
        let cuts = vec![Cut::Feasibility { d: vec![d_min; 2], lambda: fc.lambda }];
        // The slow ladder must be rejected, a fast one accepted.
        assert!(master_value(&g, &cuts, &[0, 0]).is_none());
        assert!(master_value(&g, &cuts, &[3, 3]).is_some());
    }
}
