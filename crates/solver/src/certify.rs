//! Exact Nash-equilibrium certification.
//!
//! [`tradefl_core::game::CoopetitionGame::best_sampled_deviation_gain`]
//! probes a grid; this module certifies equilibria *exactly*: because
//! each organization's payoff is concave in `d_i` at every compute
//! level, its true best response is computable (bisection on the
//! derivative per level, max over levels), so the largest achievable
//! unilateral improvement is known, not sampled. A profile is an
//! ε-Nash equilibrium (Definition 6) iff that improvement is ≤ ε.

use crate::bestresponse::{best_response, Objective};
use crate::error::{Result, SolveError};
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::StrategyProfile;

/// The outcome of certifying a strategy profile.
#[derive(Debug, Clone, PartialEq)]
pub struct NashCertificate {
    /// The largest payoff improvement any organization can achieve by
    /// unilateral deviation (exact up to bisection tolerance).
    pub epsilon: f64,
    /// Which organization has the largest incentive to deviate.
    pub worst_org: usize,
    /// Per-organization best-response gains.
    pub gains: Vec<f64>,
}

impl NashCertificate {
    /// Whether the certified profile is an ε-Nash equilibrium for the
    /// given tolerance.
    pub fn is_epsilon_nash(&self, epsilon: f64) -> bool {
        self.epsilon <= epsilon
    }
}

/// Certifies `profile` under the full payoff (Eq. 11).
///
/// # Examples
///
/// ```
/// use tradefl_core::accuracy::SqrtAccuracy;
/// use tradefl_core::config::MarketConfig;
/// use tradefl_core::game::CoopetitionGame;
/// use tradefl_solver::certify::certify_nash;
/// use tradefl_solver::dbr::DbrSolver;
///
/// let market = MarketConfig::table_ii().with_orgs(4).build(3)?;
/// let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
/// let eq = DbrSolver::new().solve(&game)?;
/// let cert = certify_nash(&game, &eq.profile)?;
/// assert!(cert.is_epsilon_nash(1e-3 * eq.welfare.abs()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// * Propagates profile-validation failures;
/// * [`SolveError::InfeasibleProblem`] if some organization has no
///   feasible strategy at all.
pub fn certify_nash<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    profile: &StrategyProfile,
) -> Result<NashCertificate> {
    certify_nash_for(game, profile, Objective::Full)
}

/// Certifies `profile` under an explicit objective (use
/// [`Objective::WithoutRedistribution`] for WPR equilibria).
///
/// # Errors
///
/// See [`certify_nash`].
pub fn certify_nash_for<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    profile: &StrategyProfile,
    objective: Objective,
) -> Result<NashCertificate> {
    profile.validate(game.market())?;
    let n = game.market().len();
    let mut gains = Vec::with_capacity(n);
    let mut worst_org = 0;
    let mut epsilon = f64::NEG_INFINITY;
    for i in 0..n {
        let current = objective.payoff(game, profile, i);
        let br = best_response(game, profile, i, objective)
            .ok_or(SolveError::InfeasibleProblem { org: i })?;
        let gain = (br.payoff - current).max(0.0);
        if gain > epsilon {
            epsilon = gain;
            worst_org = i;
        }
        gains.push(gain);
    }
    Ok(NashCertificate { epsilon, worst_org, gains })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{solve_gca, solve_scheme, GcaOptions};
    use crate::dbr::DbrSolver;
    use crate::outcome::Scheme;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn dbr_equilibrium_certifies_with_tiny_epsilon() {
        let g = game(8, 5);
        let eq = DbrSolver::new().solve(&g).unwrap();
        let cert = certify_nash(&g, &eq.profile).unwrap();
        assert!(
            cert.is_epsilon_nash(1e-4 * eq.welfare.abs()),
            "epsilon {} too large",
            cert.epsilon
        );
        assert_eq!(cert.gains.len(), 8);
    }

    #[test]
    fn wpr_equilibrium_certifies_under_its_own_objective_only() {
        let g = game(6, 9);
        let wpr = solve_scheme(&g, Scheme::Wpr).unwrap();
        let under_wpr =
            certify_nash_for(&g, &wpr.profile, Objective::WithoutRedistribution).unwrap();
        assert!(under_wpr.is_epsilon_nash(1e-4 * wpr.welfare.abs()));
        // Under the FULL payoff, the WPR profile leaves money on the
        // table: redistribution makes deviating profitable.
        let under_full = certify_nash(&g, &wpr.profile).unwrap();
        assert!(
            under_full.epsilon > under_wpr.epsilon,
            "full-payoff epsilon {} should exceed {}",
            under_full.epsilon,
            under_wpr.epsilon
        );
    }

    #[test]
    fn restricted_baseline_fails_full_certification() {
        // GCA's tied compute levels are generally not best responses.
        let g = game(6, 21);
        let gca = solve_gca(&g, GcaOptions::default()).unwrap();
        let cert = certify_nash(&g, &gca.profile).unwrap();
        assert!(
            cert.epsilon > 1e-3,
            "GCA should not certify as an exact NE (epsilon {})",
            cert.epsilon
        );
    }

    #[test]
    fn minimal_profile_is_far_from_equilibrium() {
        let g = game(5, 2);
        let p = StrategyProfile::minimal(g.market());
        let cert = certify_nash(&g, &p).unwrap();
        assert!(cert.epsilon > 1.0, "minimal profile epsilon {}", cert.epsilon);
        assert!(cert.gains[cert.worst_org] == cert.epsilon);
    }

    #[test]
    fn invalid_profile_is_rejected() {
        let g = game(3, 1);
        let bad = StrategyProfile::from_parts(&[2.0, 0.5, 0.5], &[0, 0, 0]);
        assert!(certify_nash(&g, &bad).is_err());
    }
}
