//! Solver error types.

use std::fmt;
use tradefl_core::ModelError;

/// Errors raised by the equilibrium solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// A model-level validation failure (invalid market, profile, …).
    Model(ModelError),
    /// The optimization problem has an empty feasible set: some
    /// organization cannot satisfy the deadline at any compute level.
    InfeasibleProblem {
        /// Index of the organization with an empty feasible set.
        org: usize,
    },
    /// An iterative method hit its iteration cap before reaching the
    /// requested tolerance.
    DidNotConverge {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Residual or gap at termination.
        residual: f64,
    },
    /// A numeric invariant broke (NaN objective, singular Newton system).
    Numeric {
        /// Description of what went wrong.
        what: &'static str,
    },
    /// The master-problem search space is too large for the exhaustive
    /// traversal mode (`m^|N|` exceeds the configured cap).
    MasterTooLarge {
        /// Size of the ladder product space `m^|N|` (saturating).
        combinations: u128,
        /// Configured cap.
        cap: u128,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Model(e) => write!(f, "model error: {e}"),
            SolveError::InfeasibleProblem { org } => {
                write!(f, "organization {org} has no deadline-feasible strategy")
            }
            SolveError::DidNotConverge { algorithm, iterations, residual } => {
                write!(f, "{algorithm} did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            SolveError::Numeric { what } => write!(f, "numeric failure: {what}"),
            SolveError::MasterTooLarge { combinations, cap } => {
                write!(f, "master traversal space {combinations} exceeds cap {cap}; use the coordinate-descent master")
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SolveError {
    fn from(e: ModelError) -> Self {
        SolveError::Model(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SolveError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_data() {
        let e = SolveError::DidNotConverge { algorithm: "cgbd", iterations: 10, residual: 0.5 };
        assert!(e.to_string().contains("cgbd"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn model_errors_convert_and_chain() {
        let m = ModelError::NotFinite { name: "x" };
        let e: SolveError = m.clone().into();
        assert_eq!(e, SolveError::Model(m));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
