//! Equilibrium solvers for **TradeFL** (ICDCS 2023): the centralized
//! CGBD algorithm (Algorithm 1), the distributed best-response
//! algorithm DBR (Algorithm 2), and the comparison baselines of §VI
//! (WPR, GCA, FIP, TOS).
//!
//! # Quick start
//!
//! ```
//! use tradefl_core::accuracy::SqrtAccuracy;
//! use tradefl_core::config::MarketConfig;
//! use tradefl_core::game::CoopetitionGame;
//! use tradefl_solver::dbr::DbrSolver;
//!
//! let market = MarketConfig::table_ii().build(42)?;
//! let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
//! let equilibrium = DbrSolver::new().solve(&game)?;
//! assert!(equilibrium.converged);
//! println!("social welfare at NE: {:.1}", equilibrium.welfare);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Modules
//!
//! * [`primal`] — the convex primal problem (19), its interior-point
//!   solver and the feasibility check (21);
//! * [`gbd`] — Benders cuts (Eqs. 20/22) and the master problem (23);
//! * [`cgbd`] — Algorithm 1 plus the brute-force optimality oracle;
//! * [`bestresponse`] — single-organization best responses (Def. 9);
//! * [`cache`] — memoized payoff evaluation shared across sweeps;
//! * [`dbr`] — Algorithm 2;
//! * [`baselines`] — GCA, FIP, TOS and the scheme dispatcher;
//! * [`social`] — the centralized welfare optimum and price of anarchy;
//! * [`outcome`] — equilibrium metrics and iteration traces;
//! * [`error`] — solver errors.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod bestresponse;
pub mod cache;
pub mod certify;
pub mod cgbd;
pub mod dbr;
pub mod error;
pub mod gbd;
pub mod outcome;
pub mod primal;
pub mod social;
pub mod tuning;

pub use baselines::{
    solve_fip, solve_fip_with, solve_gca, solve_gca_with, solve_scheme, solve_tos,
    FipOptions, GcaOptions,
};
pub use bestresponse::{
    best_response, best_response_incremental, best_response_with, BestResponse, Objective,
};
pub use cache::PayoffCache;
pub use certify::{certify_nash, certify_nash_for, NashCertificate};
pub use cgbd::{exhaustive_optimum, CgbdOptions, CgbdReport, CgbdSolver};
pub use dbr::{DbrOptions, DbrSolver, UpdateOrder};
pub use error::SolveError;
pub use gbd::{Cut, MasterSearch};
pub use outcome::{Equilibrium, Scheme};
pub use primal::{FeasibilityOutcome, PrimalProblem, PrimalSolution};
pub use social::{solve_social_optimum, SocialOptimum, SocialOptions};
pub use tuning::{tune_gamma, TuneOptions, TuneReport, TuneSample};
