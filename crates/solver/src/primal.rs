//! The primal problem (19) of CGBD and its feasibility check (21).
//!
//! With the compute levels `f` fixed, maximizing the potential over the
//! data vector `d` is a concave problem (Lemma 1): the objective is
//!
//! ```text
//!   U(d; f) = P(Ω(d)) + Σ_i c_i d_i + const(f),
//!   c_i = (γ q_i − ϖ_e κ f_i² η_i) s_i / z_i,
//! ```
//!
//! over the box `[D_min, min(1, deadline_cap_i)]` — the deadline
//! constraint `C^(3)` is linear in `d_i` and folds into the box. The
//! solver is a log-barrier interior-point method with damped Newton
//! steps (the Hessian is diagonal-plus-rank-one, solved by
//! Sherman-Morrison), exactly the class of method the paper invokes
//! \[44\]; a projected-gradient solver cross-checks it in the tests.
//!
//! The returned Lagrange multipliers live in the space of the original
//! deadline constraints `G_i(d, f) = T_i^(1) + η_i d_i s_i / f_i +
//! T_i^(3) − τ ≤ 0`, ready for Benders cuts (Eq. 20).

use crate::error::{Result, SolveError};
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::{Strategy, StrategyProfile};
use tradefl_runtime::obs;

/// Solution of the primal problem (19) at fixed compute levels.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimalSolution {
    /// Optimal data fractions `d*`.
    pub d: Vec<f64>,
    /// Potential value `U(d*; f)` (the *maximization* objective; the
    /// paper's primal minimizes `−U`).
    pub value: f64,
    /// Lagrange multipliers `u_i ≥ 0` of the deadline constraints
    /// `G_i ≤ 0`, in constraint space (Eq. 20).
    pub multipliers: Vec<f64>,
    /// Newton iterations used across all barrier stages.
    pub iterations: usize,
}

/// Outcome of the feasibility-check problem (21).
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityOutcome {
    /// Minimal constraint violation `ζ*`; `ζ* > 0` means (19) is
    /// infeasible at these compute levels.
    pub zeta: f64,
    /// Multipliers `λ` of the relaxed constraints (they sum to 1 and
    /// concentrate on the most violated constraints).
    pub lambda: Vec<f64>,
    /// The minimizing data vector (everyone at `D_min`, where the
    /// violation is smallest).
    pub d: Vec<f64>,
}

/// The primal problem (19): fixed ladder levels, continuous `d`.
#[derive(Debug)]
pub struct PrimalProblem<'g, A> {
    game: &'g CoopetitionGame<A>,
    levels: Vec<usize>,
}

impl<'g, A: AccuracyModel> PrimalProblem<'g, A> {
    /// Binds the problem to a game and a compute-level assignment.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len()` differs from the number of organizations
    /// or any level index is out of range.
    pub fn new(game: &'g CoopetitionGame<A>, levels: &[usize]) -> Self {
        let market = game.market();
        assert_eq!(levels.len(), market.len(), "one level per organization");
        for (i, &l) in levels.iter().enumerate() {
            assert!(
                l < market.org(i).compute_level_count(),
                "level {l} out of range for organization {i}"
            );
        }
        Self { game, levels: levels.to_vec() }
    }

    /// The per-organization box `[lo_i, hi_i]`, or `None` when the
    /// deadline leaves no room even for `D_min` (problem infeasible,
    /// Eq. 21 takes over).
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        let market = self.game.market();
        let mut lo = Vec::with_capacity(market.len());
        let mut hi = Vec::with_capacity(market.len());
        for i in 0..market.len() {
            let (l, h) = market.feasible_range(i, self.levels[i])?;
            lo.push(l);
            hi.push(h);
        }
        Some((lo, hi))
    }

    /// Whether (19) has a non-empty feasible set at these levels.
    pub fn is_feasible(&self) -> bool {
        self.bounds().is_some()
    }

    fn profile(&self, d: &[f64]) -> StrategyProfile {
        d.iter()
            .zip(&self.levels)
            .map(|(&d, &l)| Strategy::new(d, l))
            .collect()
    }

    /// Potential value `U(d; f)` at the bound levels.
    pub fn objective(&self, d: &[f64]) -> f64 {
        self.game.potential(&self.profile(d))
    }

    /// Gradient `∇_d U(d; f)`.
    pub fn gradient(&self, d: &[f64]) -> Vec<f64> {
        self.game.potential_d_grad(&self.profile(d))
    }

    /// Rank-one curvature data of `∇²_d U = P''(Ω) · s sᵀ`:
    /// returns `(P''(Ω), s)` where `s` is the dataset-size vector.
    fn curvature(&self, d: &[f64]) -> (f64, Vec<f64>) {
        let market = self.game.market();
        let omega = market.total_data(d);
        let p2 = self.game.accuracy().gain_curvature(omega);
        let s: Vec<f64> = market.orgs().iter().map(|o| o.effective_bits()).collect();
        (p2, s)
    }

    /// Solves (19) by the interior-point method.
    ///
    /// `tol` controls both the barrier duality gap (`2n/t < tol`) and the
    /// Newton decrement threshold. Typical value: `1e-8` relative to the
    /// potential's scale.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InfeasibleProblem`] when the feasible set is
    ///   empty (run [`PrimalProblem::feasibility_check`] instead);
    /// * [`SolveError::Numeric`] if the objective ever evaluates to NaN.
    pub fn solve(&self, tol: f64) -> Result<PrimalSolution> {
        let (lo, hi) = self.bounds().ok_or_else(|| {
            let org = (0..self.game.market().len())
                .find(|&i| self.game.market().feasible_range(i, self.levels[i]).is_none())
                .unwrap_or(0);
            SolveError::InfeasibleProblem { org }
        })?;
        let n = lo.len();

        // Degenerate boxes (lo == hi) pin coordinates; keep a mask.
        let pinned: Vec<bool> =
            lo.iter().zip(&hi).map(|(&l, &h)| h - l < 1e-14).collect();

        // Strictly interior start: midpoint.
        let mut d: Vec<f64> = lo.iter().zip(&hi).map(|(&l, &h)| 0.5 * (l + h)).collect();

        // Scale-invariant barrier: objective magnitudes are O(1).
        let mut t = 1.0;
        let mut newton_iters = 0usize;
        let max_outer = 60;
        let mut outer = 0;
        while 2.0 * n as f64 / t >= tol && outer < max_outer {
            outer += 1;
            // Newton loop at this barrier weight.
            for _ in 0..50 {
                let g_u = self.gradient(&d);
                if g_u.iter().any(|v| !v.is_finite()) {
                    return Err(SolveError::Numeric { what: "non-finite gradient" });
                }
                let (p2, s) = self.curvature(&d);
                // minimize h(d) = -t U(d) - Σ ln(d-lo) - Σ ln(hi-d)
                let mut grad = vec![0.0; n];
                let mut diag = vec![0.0; n];
                for i in 0..n {
                    if pinned[i] {
                        grad[i] = 0.0;
                        diag[i] = 1.0;
                        continue;
                    }
                    let a = d[i] - lo[i];
                    let b = hi[i] - d[i];
                    grad[i] = -t * g_u[i] - 1.0 / a + 1.0 / b;
                    diag[i] = 1.0 / (a * a) + 1.0 / (b * b);
                }
                // Hessian = diag + beta s s^T with beta = -t P'' >= 0
                let beta = -t * p2;
                let step = sherman_morrison_solve(&diag, beta, &s, &grad, &pinned);
                let decrement: f64 =
                    grad.iter().zip(&step).map(|(g, x)| g * x).sum::<f64>();
                newton_iters += 1;
                if !decrement.is_finite() {
                    return Err(SolveError::Numeric { what: "non-finite newton decrement" });
                }
                if decrement < tol * tol {
                    break;
                }
                // Backtracking: stay strictly inside the box, decrease h.
                let h0 = self.barrier_value(&d, &lo, &hi, t, &pinned)?;
                let mut alpha = 1.0;
                loop {
                    let cand: Vec<f64> = d
                        .iter()
                        .zip(&step)
                        .map(|(&di, &xi)| di - alpha * xi)
                        .collect();
                    let inside = cand.iter().enumerate().all(|(i, &v)| {
                        pinned[i] || (v > lo[i] && v < hi[i])
                    });
                    if inside {
                        let h1 = self.barrier_value(&cand, &lo, &hi, t, &pinned)?;
                        if h1 <= h0 - 0.25 * alpha * decrement {
                            d = cand;
                            break;
                        }
                    }
                    alpha *= 0.5;
                    if alpha < 1e-12 {
                        break; // numerically stuck; accept current point
                    }
                }
                if alpha < 1e-12 {
                    break;
                }
            }
            // Multiplier estimates sharpen as t grows.
            t *= 8.0;
        }

        // Deadline multipliers: the barrier multiplier of the upper bound
        // 1/(t (hi - d)) maps into G-space through dG/dd = η s / f, and
        // only when the upper bound comes from the deadline (cap < 1).
        let market = self.game.market();
        let mut multipliers = vec![0.0; n];
        for i in 0..n {
            let cap = market.deadline_cap(i, self.levels[i]);
            if cap < 1.0 && !pinned[i] {
                let org = market.org(i);
                let f = org.frequency(self.levels[i]);
                let mu = 1.0 / (t / 8.0 * (hi[i] - d[i]).max(1e-300));
                multipliers[i] = mu * f / (org.eta() * org.data_bits());
            }
        }
        let value = self.objective(&d);
        if !value.is_finite() {
            return Err(SolveError::Numeric { what: "non-finite objective" });
        }
        // Order-independent aggregates only: primal solves run inside
        // pool workers, so logical-clock events are off limits here
        // (DESIGN.md §9).
        obs::counter_add("primal.solves", 1);
        obs::hist_record("primal.newton_iterations", newton_iters as f64);
        Ok(PrimalSolution { d, value, multipliers, iterations: newton_iters })
    }

    fn barrier_value(
        &self,
        d: &[f64],
        lo: &[f64],
        hi: &[f64],
        t: f64,
        pinned: &[bool],
    ) -> Result<f64> {
        let mut v = -t * self.objective(d);
        for i in 0..d.len() {
            if pinned[i] {
                continue;
            }
            v -= (d[i] - lo[i]).ln() + (hi[i] - d[i]).ln();
        }
        if v.is_finite() {
            Ok(v)
        } else {
            Err(SolveError::Numeric { what: "non-finite barrier value" })
        }
    }

    /// Solves (19) by projected gradient ascent — a slower, simpler
    /// method used to cross-check the interior-point solver.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PrimalProblem::solve`].
    pub fn solve_projected(&self, tol: f64, max_iters: usize) -> Result<PrimalSolution> {
        let (lo, hi) = self.bounds().ok_or(SolveError::InfeasibleProblem { org: 0 })?;
        let n = lo.len();
        let mut d: Vec<f64> = lo.iter().zip(&hi).map(|(&l, &h)| 0.5 * (l + h)).collect();
        let mut step = 0.25;
        let mut value = self.objective(&d);
        let mut iters = 0;
        for _ in 0..max_iters {
            iters += 1;
            let g = self.gradient(&d);
            // Normalize the gradient to box units so one step size fits
            // all coordinates.
            let scale = g.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
            let cand: Vec<f64> = (0..n)
                .map(|i| (d[i] + step * g[i] / scale).clamp(lo[i], hi[i]))
                .collect();
            let cand_value = self.objective(&cand);
            if cand_value > value {
                let moved: f64 = cand
                    .iter()
                    .zip(&d)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                d = cand;
                value = cand_value;
                step = (step * 1.5).min(0.5);
                if moved < tol {
                    break;
                }
            } else {
                step *= 0.5;
                if step < tol * 1e-3 {
                    break;
                }
            }
        }
        if !value.is_finite() {
            return Err(SolveError::Numeric { what: "non-finite objective" });
        }
        Ok(PrimalSolution { d, value, multipliers: vec![0.0; n], iterations: iters })
    }

    /// The feasibility-check problem (21). Because every constraint
    /// residual is increasing in `d_i`, the minimizer sets `d = D_min`,
    /// and `ζ*` is the largest residual clamped at zero. The multipliers
    /// are uniform over the maximizing constraints (they sum to one), as
    /// in the LP dual of the min-max form.
    pub fn feasibility_check(&self) -> FeasibilityOutcome {
        let market = self.game.market();
        let d_min = market.params().d_min;
        let n = market.len();
        let d = vec![d_min; n];
        let residuals: Vec<f64> = (0..n)
            .map(|i| {
                let org = market.org(i);
                org.comm_time() + org.training_time(d_min, org.frequency(self.levels[i]))
                    - market.params().tau
            })
            .collect();
        let zeta = residuals.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        let mut lambda = vec![0.0; n];
        if zeta > 0.0 {
            let winners: Vec<usize> = (0..n)
                .filter(|&i| residuals[i] >= zeta - 1e-12 * zeta.abs().max(1.0))
                .collect();
            for &i in &winners {
                lambda[i] = 1.0 / winners.len() as f64;
            }
        }
        obs::counter_add(
            if zeta > 0.0 { "primal.feasibility_violated" } else { "primal.feasibility_ok" },
            1,
        );
        FeasibilityOutcome { zeta, lambda, d }
    }
}

/// Solves `(diag(D) + beta s sᵀ) x = r` by Sherman-Morrison, skipping
/// pinned coordinates (their rows are identity).
fn sherman_morrison_solve(
    diag: &[f64],
    beta: f64,
    s: &[f64],
    r: &[f64],
    pinned: &[bool],
) -> Vec<f64> {
    let n = diag.len();
    let mut dinv_r = vec![0.0; n];
    let mut dinv_s = vec![0.0; n];
    for i in 0..n {
        if pinned[i] {
            continue;
        }
        dinv_r[i] = r[i] / diag[i];
        dinv_s[i] = s[i] / diag[i];
    }
    // lint:allow(no-float-eq): exact-zero beta short-circuits the rank-one correction
    if beta == 0.0 {
        return dinv_r;
    }
    let s_dinv_r: f64 = (0..n).filter(|&i| !pinned[i]).map(|i| s[i] * dinv_r[i]).sum();
    let s_dinv_s: f64 = (0..n).filter(|&i| !pinned[i]).map(|i| s[i] * dinv_s[i]).sum();
    let factor = beta * s_dinv_r / (1.0 + beta * s_dinv_s);
    (0..n)
        .map(|i| if pinned[i] { 0.0 } else { dinv_r[i] - factor * dinv_s[i] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;
    use tradefl_core::market::MechanismParams;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    fn top_levels<A>(game: &CoopetitionGame<A>) -> Vec<usize>
    where
        A: tradefl_core::accuracy::AccuracyModel,
    {
        (0..game.market().len())
            .map(|i| game.market().org(i).compute_level_count() - 1)
            .collect()
    }

    #[test]
    fn sherman_morrison_matches_direct_solve() {
        let diag = vec![2.0, 3.0, 4.0];
        let s = vec![1.0, 2.0, 0.5];
        let beta = 0.7;
        let r = vec![1.0, -2.0, 0.5];
        let x = sherman_morrison_solve(&diag, beta, &s, &r, &[false, false, false]);
        // Verify A x = r.
        for i in 0..3 {
            let sx: f64 = s.iter().zip(&x).map(|(si, xi)| si * xi).sum();
            let ax = diag[i] * x[i] + beta * s[i] * sx;
            assert!((ax - r[i]).abs() < 1e-10, "row {i}: {ax} vs {}", r[i]);
        }
    }

    #[test]
    fn interior_point_agrees_with_projected_gradient() {
        for seed in [1, 7, 23] {
            let g = game(5, seed);
            let levels = top_levels(&g);
            let prob = PrimalProblem::new(&g, &levels);
            let ip = prob.solve(1e-10).unwrap();
            let pg = prob.solve_projected(1e-9, 20_000).unwrap();
            assert!(
                (ip.value - pg.value).abs() <= 1e-4 * ip.value.abs().max(1.0),
                "seed {seed}: ip {} vs pg {}",
                ip.value,
                pg.value
            );
        }
    }

    #[test]
    fn solution_is_feasible_and_a_stationary_point() {
        let g = game(6, 3);
        let levels = top_levels(&g);
        let prob = PrimalProblem::new(&g, &levels);
        let sol = prob.solve(1e-10).unwrap();
        let (lo, hi) = prob.bounds().unwrap();
        let grad = prob.gradient(&sol.d);
        for i in 0..sol.d.len() {
            assert!(sol.d[i] >= lo[i] - 1e-9 && sol.d[i] <= hi[i] + 1e-9);
            // Interior coordinates must have (near-)zero gradient;
            // boundary coordinates must push outward.
            let interior =
                sol.d[i] > lo[i] + 1e-6 * (hi[i] - lo[i]) && sol.d[i] < hi[i] - 1e-6 * (hi[i] - lo[i]);
            if interior {
                assert!(
                    grad[i].abs() < 1e-3 * grad.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0),
                    "interior coordinate {i} has gradient {}",
                    grad[i]
                );
            } else if sol.d[i] >= hi[i] - 1e-6 * (hi[i] - lo[i]) {
                assert!(grad[i] > -1e-6, "at upper bound gradient must be >= 0, got {}", grad[i]);
            } else {
                assert!(grad[i] < 1e-6, "at lower bound gradient must be <= 0, got {}", grad[i]);
            }
        }
    }

    #[test]
    fn multipliers_are_nonnegative_and_zero_off_deadline() {
        let g = game(5, 9);
        let levels = top_levels(&g);
        let prob = PrimalProblem::new(&g, &levels);
        let sol = prob.solve(1e-10).unwrap();
        let (_, hi) = prob.bounds().unwrap();
        for i in 0..sol.d.len() {
            assert!(sol.multipliers[i] >= 0.0);
            let cap = g.market().deadline_cap(i, levels[i]);
            if cap >= 1.0 {
                assert_eq!(sol.multipliers[i], 0.0, "no deadline constraint at org {i}");
            }
            // Multipliers are only meaningfully positive at active caps.
            if sol.d[i] < hi[i] - 1e-3 {
                assert!(sol.multipliers[i] < 1.0, "inactive constraint has large multiplier");
            }
        }
    }

    #[test]
    fn feasibility_check_detects_tight_deadline() {
        // Build a market whose lowest ladder level cannot make D_min.
        let mut cfg = MarketConfig::table_ii().with_orgs(3);
        cfg.params = MechanismParams { tau: 18.0, ..MechanismParams::paper_default() };
        cfg.comm_time = (5.0, 5.0); // comm = 10 s, budget = 8 s
        cfg.eta = (100.0, 100.0);
        cfg.data_bits = (20e9, 20e9);
        // cap(level) = 8 f / 2e12; level 0 has f = 0.4 f_max ∈ [1.2e9, 2e9]
        // -> cap <= 0.008 < D_min = 0.01: infeasible at level 0.
        let market = cfg.build(4).unwrap();
        let g = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let prob = PrimalProblem::new(&g, &[0, 0, 0]);
        assert!(!prob.is_feasible());
        let out = prob.feasibility_check();
        assert!(out.zeta > 0.0);
        let lam_sum: f64 = out.lambda.iter().sum();
        assert!((lam_sum - 1.0).abs() < 1e-9);
        assert!(prob.solve(1e-8).is_err());

        // At the top level the same market is feasible.
        let top = top_levels(&g);
        let prob = PrimalProblem::new(&g, &top);
        assert!(prob.is_feasible());
        assert_eq!(prob.feasibility_check().zeta, 0.0);
    }

    #[test]
    fn objective_matches_game_potential() {
        let g = game(4, 5);
        let levels = top_levels(&g);
        let prob = PrimalProblem::new(&g, &levels);
        let d = vec![0.2; 4];
        let profile: StrategyProfile = d
            .iter()
            .zip(&levels)
            .map(|(&d, &l)| Strategy::new(d, l))
            .collect();
        assert!((prob.objective(&d) - g.potential(&profile)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one level per organization")]
    fn wrong_level_count_panics() {
        let g = game(3, 1);
        let _ = PrimalProblem::new(&g, &[0, 0]);
    }
}
