//! Single-organization best responses (Definition 9).
//!
//! The best response maximizes `C_i(π_i, π_-i)` over `d_i` (continuous,
//! concave — bisection on the derivative) and the compute level
//! (discrete — enumerated), mirroring how the paper solves (24) "by the
//! proposed GBD-based algorithm since (24) has a similar structure to
//! (18)": fix the integer part, solve the convex part exactly.

use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::incremental::IncrementalEval;
use tradefl_core::strategy::{Strategy, StrategyProfile};
use tradefl_runtime::sync::pool::Pool;

/// Which payoff an organization best-responds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// The full TradeFL payoff `C_i` (Eq. 11).
    Full,
    /// The payoff with redistribution removed (the WPR baseline).
    WithoutRedistribution,
}

impl Objective {
    /// Evaluates the chosen payoff for organization `i`.
    pub fn payoff<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        profile: &StrategyProfile,
        i: usize,
    ) -> f64 {
        match self {
            Objective::Full => game.payoff(profile, i),
            Objective::WithoutRedistribution => game.payoff_without_redistribution(profile, i),
        }
    }

    fn d_deriv<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        profile: &StrategyProfile,
        i: usize,
    ) -> f64 {
        match self {
            Objective::Full => game.payoff_d_deriv(profile, i),
            Objective::WithoutRedistribution => {
                game.payoff_without_redistribution_d_deriv(profile, i)
            }
        }
    }

    /// The chosen objective for organization `i` at a candidate,
    /// evaluated in `O(log N)` through an [`IncrementalEval`] — **up to
    /// a mover-invariant additive constant** for [`Objective::Full`]
    /// (see [`IncrementalEval::mover_payoff_at`]). Valid for comparing
    /// candidates of the *same* organization only.
    pub fn mover_payoff_incremental<A: AccuracyModel>(
        &self,
        eval: &IncrementalEval<'_, A>,
        i: usize,
        candidate: Strategy,
    ) -> f64 {
        match self {
            Objective::Full => eval.mover_payoff_at(i, candidate),
            Objective::WithoutRedistribution => {
                eval.payoff_without_redistribution_at(i, candidate)
            }
        }
    }

    fn d_deriv_incremental<A: AccuracyModel>(
        &self,
        eval: &IncrementalEval<'_, A>,
        i: usize,
        candidate: Strategy,
    ) -> f64 {
        match self {
            Objective::Full => eval.payoff_d_deriv_at(i, candidate),
            Objective::WithoutRedistribution => {
                eval.payoff_without_redistribution_d_deriv_at(i, candidate)
            }
        }
    }
}

/// A best response together with the payoff it attains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestResponse {
    /// The maximizing strategy.
    pub strategy: Strategy,
    /// The payoff `C_i` at the maximizing strategy (under the chosen
    /// objective).
    pub payoff: f64,
}

/// Computes organization `i`'s best response to `profile`'s `π_-i` on
/// the global work-stealing pool (see [`best_response_with`]).
///
/// Returns `None` only if no compute level admits a feasible data
/// fraction (the market constructor normally rules this out).
pub fn best_response<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    profile: &StrategyProfile,
    i: usize,
    objective: Objective,
) -> Option<BestResponse> {
    best_response_with(game, profile, i, objective, Pool::global())
}

/// Minimum estimated sweep work (`levels × |N|`, proportional to the
/// number of payoff-term evaluations the bisections will do) before
/// the per-level search fans out to the pool. `Pool::scope` stands up
/// scoped workers per call (~100µs); a single level's bisection on a
/// paper-scale market is ~25µs, so pooling only pays on markets with
/// big ladders *and* many organizations. Depends only on the instance,
/// never on the worker count — and both paths merge identically, so
/// the choice cannot affect results.
const POOLED_SEARCH_MIN_WORK: usize = 256;

/// [`best_response`] on an explicit pool: the per-level 1-D
/// maximizations run as independent pool jobs and the per-level optima
/// merge in ladder order with a strict-improvement comparison — the
/// serial loop's first-maximum-wins (lowest level wins ties) rule — so
/// the result is bit-identical for every worker count. Each level's
/// bisection depends only on `(game, profile, i, level)`, never on the
/// other levels, so parallelism cannot perturb any individual
/// candidate either.
pub fn best_response_with<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    profile: &StrategyProfile,
    i: usize,
    objective: Objective,
    pool: &Pool,
) -> Option<BestResponse> {
    let levels = game.market().org(i).compute_level_count();
    let work = levels * game.market().len();
    let candidates: Vec<Option<BestResponse>> =
        if pool.workers() > 1 && levels > 1 && work >= POOLED_SEARCH_MIN_WORK {
            pool.map_indexed(levels, |level| {
                level_candidate(game, profile, i, level, objective)
            })
        } else {
            (0..levels)
                .map(|level| level_candidate(game, profile, i, level, objective))
                .collect()
        };
    let mut best: Option<BestResponse> = None;
    for candidate in candidates.into_iter().flatten() {
        if best.map_or(true, |b| candidate.payoff > b.payoff) {
            best = Some(candidate);
        }
    }
    best
}

/// [`best_response`] through an [`IncrementalEval`]: every candidate
/// evaluation is `O(log N)` instead of `O(N)`, so the whole search
/// costs `O(levels · log N)` — the building block of the sub-quadratic
/// DBR sweep. Runs serially (the per-candidate work is far below any
/// pool's dispatch cost at every market size) and merges levels with
/// the same first-maximum-wins rule as [`best_response_with`].
///
/// The returned [`BestResponse::payoff`] is the **mover objective**
/// ([`Objective::mover_payoff_incremental`]): exact for
/// [`Objective::WithoutRedistribution`], shifted by the mover-invariant
/// redistribution cross-term for [`Objective::Full`]. The maximizing
/// *strategy* agrees with the exact path up to bisection rounding; the
/// payoff field must only be compared against other mover-objective
/// values for the same organization.
pub fn best_response_incremental<A: AccuracyModel>(
    eval: &IncrementalEval<'_, A>,
    i: usize,
    objective: Objective,
) -> Option<BestResponse> {
    let market = eval.game().market();
    let levels = market.org(i).compute_level_count();
    let mut best: Option<BestResponse> = None;
    for level in 0..levels {
        let Some((lo, hi)) = market.feasible_range(i, level) else {
            continue;
        };
        let d = bisect_concave_max(lo, hi, |d| {
            objective.d_deriv_incremental(eval, i, Strategy::new(d, level))
        });
        let candidate = Strategy::new(d, level);
        let payoff = objective.mover_payoff_incremental(eval, i, candidate);
        if best.map_or(true, |b| payoff > b.payoff) {
            best = Some(BestResponse { strategy: candidate, payoff });
        }
    }
    best
}

/// The best feasible `(d, payoff)` at one fixed ladder level, or
/// `None` when the level cannot meet the deadline at any `d`.
fn level_candidate<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    profile: &StrategyProfile,
    i: usize,
    level: usize,
    objective: Objective,
) -> Option<BestResponse> {
    let (lo, hi) = game.market().feasible_range(i, level)?;
    let d = maximize_concave_1d(game, profile, i, level, lo, hi, objective);
    let candidate = Strategy::new(d, level);
    let payoff = objective.payoff(game, &profile.with(i, candidate), i);
    Some(BestResponse { strategy: candidate, payoff })
}

/// Maximizes the concave payoff in `d` on `[lo, hi]` at a fixed level by
/// bisection on the (monotonically non-increasing) derivative.
fn maximize_concave_1d<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    profile: &StrategyProfile,
    i: usize,
    level: usize,
    lo: f64,
    hi: f64,
    objective: Objective,
) -> f64 {
    bisect_concave_max(lo, hi, |d| {
        objective.d_deriv(game, &profile.with(i, Strategy::new(d, level)), i)
    })
}

/// The shared bisection: maximizes a concave function on `[lo, hi]`
/// given its (monotonically non-increasing) derivative. Both the exact
/// and the incremental search funnel through this one routine, so their
/// candidate sequences are identical given identical derivative values.
fn bisect_concave_max(lo: f64, hi: f64, deriv_at: impl Fn(f64) -> f64) -> f64 {
    if deriv_at(lo) <= 0.0 {
        return lo;
    }
    if deriv_at(hi) >= 0.0 {
        return hi;
    }
    let (mut a, mut b) = (lo, hi);
    for _ in 0..64 {
        let mid = 0.5 * (a + b);
        if deriv_at(mid) > 0.0 {
            a = mid;
        } else {
            b = mid;
        }
        if b - a < 1e-12 {
            break;
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn best_response_beats_grid_search() {
        let g = game(4, 17);
        let profile = StrategyProfile::minimal(g.market());
        for i in 0..4 {
            let br = best_response(&g, &profile, i, Objective::Full).unwrap();
            // No grid alternative may beat the reported best response.
            for level in 0..g.market().org(i).compute_level_count() {
                if let Some((lo, hi)) = g.market().feasible_range(i, level) {
                    for k in 0..=40 {
                        let d = lo + (hi - lo) * k as f64 / 40.0;
                        let alt = g.payoff(&profile.with(i, Strategy::new(d, level)), i);
                        assert!(
                            alt <= br.payoff + 1e-6 * br.payoff.abs().max(1.0),
                            "i={i} level={level} d={d}: {alt} > {}",
                            br.payoff
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn best_response_is_feasible() {
        let g = game(5, 29);
        let profile = StrategyProfile::minimal(g.market());
        for i in 0..5 {
            let br = best_response(&g, &profile, i, Objective::Full).unwrap();
            let updated = profile.with(i, br.strategy);
            updated.validate(g.market()).unwrap();
        }
    }

    #[test]
    fn wpr_objective_contributes_no_more_than_full() {
        // Redistribution only adds incentive to contribute, so at γ > 0
        // the WPR best response never exceeds the full one in d.
        let g = game(4, 31);
        let profile = StrategyProfile::minimal(g.market());
        for i in 0..4 {
            let full = best_response(&g, &profile, i, Objective::Full).unwrap();
            let wpr =
                best_response(&g, &profile, i, Objective::WithoutRedistribution).unwrap();
            assert!(
                wpr.strategy.d <= full.strategy.d + 1e-9,
                "i={i}: wpr d {} > full d {}",
                wpr.strategy.d,
                full.strategy.d
            );
        }
    }

    #[test]
    fn incremental_best_response_matches_the_exact_path() {
        let g = game(8, 17);
        let profile = StrategyProfile::minimal(g.market());
        let eval = IncrementalEval::new(&g, profile.clone());
        for i in 0..8 {
            for objective in [Objective::Full, Objective::WithoutRedistribution] {
                let exact = best_response(&g, &profile, i, objective).unwrap();
                let inc = best_response_incremental(&eval, i, objective).unwrap();
                assert_eq!(
                    inc.strategy.level, exact.strategy.level,
                    "i={i} {objective:?}: level mismatch"
                );
                assert!(
                    (inc.strategy.d - exact.strategy.d).abs() < 1e-9,
                    "i={i} {objective:?}: d {} vs {}",
                    inc.strategy.d,
                    exact.strategy.d
                );
                // The mover objective must rank the exact winner no
                // better than its own (and vice versa, via the true
                // payoff) — i.e. both paths find the same optimum.
                let true_inc = g.payoff(&profile.with(i, inc.strategy), i);
                assert!(
                    (true_inc - exact.payoff).abs()
                        <= 1e-9 * exact.payoff.abs().max(1.0)
                        || objective == Objective::WithoutRedistribution,
                    "i={i}: true payoff {} vs exact {}",
                    true_inc,
                    exact.payoff
                );
            }
        }
    }

    #[test]
    fn zero_gamma_makes_objectives_agree() {
        let g0 = game(3, 5);
        let params = g0.market().params().with_gamma(0.0);
        let g = g0.with_params(params).unwrap();
        let profile = StrategyProfile::minimal(g.market());
        for i in 0..3 {
            let a = best_response(&g, &profile, i, Objective::Full).unwrap();
            let b =
                best_response(&g, &profile, i, Objective::WithoutRedistribution).unwrap();
            assert!((a.strategy.d - b.strategy.d).abs() < 1e-9);
            assert_eq!(a.strategy.level, b.strategy.level);
        }
    }
}
