//! Equilibrium outcomes and per-iteration traces shared by all solvers.

use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::StrategyProfile;

/// Which scheme produced an outcome (§VI's comparison set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Centralized GBD (Algorithm 1).
    Cgbd,
    /// Distributed best response (Algorithm 2).
    Dbr,
    /// DBR without payoff redistribution.
    Wpr,
    /// Greedy computation allocation (`f_i = k d_i`).
    Gca,
    /// Finite-improvement property on the discretized strategy grid.
    Fip,
    /// Theoretically optimal scheme (all data, all compute, constraints
    /// ignored).
    Tos,
}

impl Scheme {
    /// All comparison schemes in the order the paper's figures list them.
    pub const ALL: [Scheme; 6] =
        [Scheme::Cgbd, Scheme::Dbr, Scheme::Wpr, Scheme::Gca, Scheme::Fip, Scheme::Tos];

    /// Short label used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Cgbd => "CGBD",
            Scheme::Dbr => "DBR",
            Scheme::Wpr => "WPR",
            Scheme::Gca => "GCA",
            Scheme::Fip => "FIP",
            Scheme::Tos => "TOS",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of running a scheme to (approximate) equilibrium, with the
/// aggregate metrics every figure of §VI reports and the per-iteration
/// traces behind Figs. 4-5.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Scheme that produced this outcome.
    pub scheme: Scheme,
    /// The final strategy profile.
    pub profile: StrategyProfile,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Whether the scheme's own stopping criterion was met (as opposed
    /// to hitting the iteration cap).
    pub converged: bool,
    /// Potential value `U` after each iteration (Fig. 4), including the
    /// initial profile at index 0.
    pub potential_trace: Vec<f64>,
    /// Payoff of each organization after each iteration (Fig. 5):
    /// `payoff_traces[iter][org]`. Each row costs an `O(N²)` pass, so
    /// solvers may thin the history on very large markets (DBR records
    /// only the final row beyond a few hundred organizations); the
    /// last row is always the final profile's payoffs.
    pub payoff_traces: Vec<Vec<f64>>,
    /// Social welfare at the final profile (Figs. 6-8, 10-11).
    pub welfare: f64,
    /// Exact potential at the final profile.
    pub potential: f64,
    /// Total coopetition damage `Σ_i D_i` at the final profile (Fig. 9).
    pub total_damage: f64,
    /// Total data contribution `Σ_i d_i` (Fig. 12).
    pub total_fraction: f64,
}

impl Equilibrium {
    /// Computes the aggregate metrics for `profile` and assembles an
    /// outcome from the traces a solver accumulated.
    pub fn from_profile<A: AccuracyModel>(
        scheme: Scheme,
        game: &CoopetitionGame<A>,
        profile: StrategyProfile,
        iterations: usize,
        converged: bool,
        potential_trace: Vec<f64>,
        payoff_traces: Vec<Vec<f64>>,
    ) -> Self {
        let welfare = game.social_welfare(&profile);
        let potential = game.potential(&profile);
        let total_damage = game.total_damage(&profile);
        let total_fraction = profile.total_fraction();
        Self {
            scheme,
            profile,
            iterations,
            converged,
            potential_trace,
            payoff_traces,
            welfare,
            potential,
            total_damage,
            total_fraction,
        }
    }

    /// [`Self::from_profile`] with every aggregate taken from an
    /// [`IncrementalEval`] at the final profile, in `O(N)` instead of
    /// the game's `O(N²)` recomputation: welfare sums the last payoff
    /// trace row (the evaluator's own final payoff vector), potential
    /// and total damage use the evaluator's cached per-org constants.
    /// Values differ from [`Self::from_profile`]'s only by
    /// floating-point reassociation.
    pub fn from_eval<A: AccuracyModel>(
        scheme: Scheme,
        eval: &tradefl_core::incremental::IncrementalEval<'_, A>,
        iterations: usize,
        converged: bool,
        potential_trace: Vec<f64>,
        payoff_traces: Vec<Vec<f64>>,
    ) -> Self {
        let welfare = match payoff_traces.last() {
            Some(row) => row.iter().sum(),
            None => eval.payoff_vector().iter().sum(),
        };
        Self {
            scheme,
            profile: eval.profile().clone(),
            iterations,
            converged,
            welfare,
            potential: eval.potential(),
            total_damage: eval.total_damage(),
            total_fraction: eval.profile().total_fraction(),
            potential_trace,
            payoff_traces,
        }
    }

    /// Final payoff vector (last row of the payoff trace, or recomputed).
    pub fn final_payoffs<A: AccuracyModel>(&self, game: &CoopetitionGame<A>) -> Vec<f64> {
        (0..game.market().len()).map(|i| game.payoff(&self.profile, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;

    #[test]
    fn scheme_labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            Scheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Scheme::ALL.len());
        assert_eq!(Scheme::Cgbd.to_string(), "CGBD");
    }

    #[test]
    fn from_profile_fills_metrics() {
        let market = MarketConfig::table_ii().with_orgs(3).build(2).unwrap();
        let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let p = StrategyProfile::minimal(game.market());
        let eq = Equilibrium::from_profile(
            Scheme::Dbr,
            &game,
            p.clone(),
            0,
            true,
            vec![game.potential(&p)],
            vec![],
        );
        assert_eq!(eq.scheme, Scheme::Dbr);
        assert!((eq.welfare - game.social_welfare(&p)).abs() < 1e-9);
        assert!((eq.total_fraction - 0.03).abs() < 1e-12);
        assert_eq!(eq.final_payoffs(&game).len(), 3);
    }
}
