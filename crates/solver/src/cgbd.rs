//! **CGBD** — the centralized Generalized-Benders-Decomposition solver
//! (Algorithm 1) for the potential-maximization problem (18).
//!
//! Each iteration solves the convex primal (19) at the incumbent ladder
//! assignment (interior point, Lemma 1), derives an optimality cut (20)
//! — or a feasibility cut (22) when the assignment cannot meet the
//! deadline — and re-solves the master (23) over the discrete ladder.
//! Iteration stops when `UB − LB ≤ ε` (Lemma 2 guarantees finite
//! termination because no assignment repeats), and the returned solution
//! is `(δ+ε)`-optimal (Lemma 3) where `δ` is the primal tolerance.
//!
//! As discussed in DESIGN.md, the cuts are anchored at the primal
//! minimizer `d_v` (the paper's variant). [`exhaustive_optimum`] is the
//! brute-force oracle used by tests to certify the optimality claim on
//! small instances.

use crate::error::{Result, SolveError};
use crate::gbd::{master_value, solve_master_with, Cut, CutTables, MasterSearch};
use crate::outcome::{Equilibrium, Scheme};
use crate::primal::PrimalProblem;
// Ordered set, not HashSet — see the `no-hash-iteration` lint.
use std::collections::BTreeSet;
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::incremental::IncrementalEval;
use tradefl_runtime::obs;
use tradefl_runtime::sync::pool::Pool;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::{Strategy, StrategyProfile};

/// Markets at least this large switch the per-iteration payoff-trace
/// row from direct `game.payoff` calls (O(N²) per row, bit-identical
/// to the pre-incremental solver) to an [`IncrementalEval`] pass
/// (O(nnz) per row, ulp-level reassociation only). The threshold
/// depends purely on the instance size — never the worker count — so
/// the chosen path (and every bit of the result) is the same under any
/// pool configuration.
const TRACE_EVAL_MIN_ORGS: usize = 512;

/// Options for [`CgbdSolver`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgbdOptions {
    /// Convergence tolerance `ε` on `UB − LB`.
    pub epsilon: f64,
    /// Iteration cap `K`.
    pub max_iters: usize,
    /// Primal interior-point tolerance `δ`.
    pub primal_tol: f64,
    /// Master-problem search mode.
    pub master: MasterSearch,
    /// Optional warm-start ladder assignment `f^(0)` (e.g. from a cheap
    /// DBR pass); defaults to the fastest ladder. Because the primal
    /// solves `d` globally at the warm-start levels, CGBD's incumbent is
    /// then guaranteed to be at least as good as the heuristic that
    /// produced the warm start.
    pub initial_levels: Option<Vec<usize>>,
}

impl Default for CgbdOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-6,
            max_iters: 60,
            primal_tol: 1e-9,
            master: MasterSearch::default(),
            initial_levels: None,
        }
    }
}

/// One CGBD iteration's bookkeeping (for convergence plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgbdIteration {
    /// Iteration index `k` (1-based).
    pub k: usize,
    /// Upper bound `UB^(k)` (minimization convention, i.e. `−U` of the
    /// best feasible primal so far).
    pub upper_bound: f64,
    /// Lower bound `LB^(k)` from the master (`φ*`).
    pub lower_bound: f64,
    /// Whether the primal at this iteration was feasible.
    pub primal_feasible: bool,
}

/// Full CGBD result: the equilibrium plus the UB/LB convergence trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CgbdReport {
    /// The resulting (δ+ε)-optimal profile and its metrics.
    pub equilibrium: Equilibrium,
    /// Per-iteration bounds.
    pub trace: Vec<CgbdIteration>,
    /// Final optimality gap `UB − LB`.
    pub gap: f64,
}

/// Algorithm 1's driver.
///
/// # Examples
///
/// ```
/// use tradefl_core::accuracy::SqrtAccuracy;
/// use tradefl_core::config::MarketConfig;
/// use tradefl_core::game::CoopetitionGame;
/// use tradefl_solver::cgbd::CgbdSolver;
///
/// let market = MarketConfig::table_ii().with_orgs(3).build(1)?;
/// let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
/// let report = CgbdSolver::new().solve(&game)?;
/// assert!(report.equilibrium.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CgbdSolver {
    options: CgbdOptions,
}

impl CgbdSolver {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit options.
    pub fn with_options(options: CgbdOptions) -> Self {
        Self { options }
    }

    /// The options in effect.
    pub fn options(&self) -> &CgbdOptions {
        &self.options
    }

    /// Runs Algorithm 1.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InfeasibleProblem`] if no ladder assignment is
    ///   feasible at all;
    /// * [`SolveError::MasterTooLarge`] if the traversal master is asked
    ///   to enumerate more combinations than its cap;
    /// * [`SolveError::DidNotConverge`] if `K` iterations pass without
    ///   closing the gap *and* no feasible incumbent was found.
    pub fn solve<A: AccuracyModel>(&self, game: &CoopetitionGame<A>) -> Result<CgbdReport> {
        let market = game.market();
        let n = market.len();
        // f^(0): warm start if provided, else the fastest ladder (always
        // feasible by Market's invariant).
        let mut levels: Vec<usize> = match &self.options.initial_levels {
            Some(init) => {
                assert_eq!(init.len(), n, "warm-start length must match the market");
                init.clone()
            }
            None => (0..n).map(|i| market.org(i).compute_level_count() - 1).collect(),
        };
        let mut cuts: Vec<Cut> = Vec::new();
        // Incremental master state: per-org constants computed once,
        // each iteration appends only its new cut's table (PR-7's
        // IncrementalEval treatment applied to the Benders master).
        let mut tables = CutTables::new(game);
        let mut visited: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut ub = f64::INFINITY;
        let mut lb = f64::NEG_INFINITY;
        let mut best: Option<(Vec<f64>, Vec<usize>, f64)> = None; // (d, levels, U)
        let mut trace = Vec::new();
        let mut potential_trace = Vec::new();
        let mut payoff_traces = Vec::new();
        let mut converged = false;
        let mut k = 0;
        while k < self.options.max_iters {
            k += 1;
            visited.insert(levels.clone());
            let primal = PrimalProblem::new(game, &levels);
            let primal_feasible = primal.is_feasible();
            if primal_feasible {
                let sol = primal.solve(self.options.primal_tol)?;
                ub = ub.min(-sol.value);
                if best.as_ref().map_or(true, |(_, _, u)| sol.value > *u) {
                    best = Some((sol.d.clone(), levels.clone(), sol.value));
                }
                let profile: StrategyProfile = sol
                    .d
                    .iter()
                    .zip(&levels)
                    .map(|(&d, &l)| Strategy::new(d, l))
                    .collect();
                potential_trace.push(sol.value);
                payoff_traces.push(if n < TRACE_EVAL_MIN_ORGS {
                    (0..n).map(|i| game.payoff(&profile, i)).collect()
                } else {
                    // Large markets: one O(nnz) evaluator pass instead
                    // of N O(N) payoff recomputations.
                    let eval = IncrementalEval::new(game, profile.clone());
                    (0..n).map(|i| eval.payoff_at(i, profile[i], eval.rho_res(i))).collect()
                });
                let cut = Cut::optimality(game, sol.d, sol.multipliers);
                tables.push_cut(game, &cut);
                cuts.push(cut);
            } else {
                let fc = primal.feasibility_check();
                let cut = Cut::Feasibility { d: fc.d, lambda: fc.lambda };
                tables.push_cut(game, &cut);
                cuts.push(cut);
            }
            let master =
                solve_master_with(game, &cuts, &tables, self.options.master, &visited)?;
            lb = master.phi;
            trace.push(CgbdIteration {
                k,
                upper_bound: ub,
                lower_bound: lb,
                primal_feasible,
            });
            // This loop is sequential orchestration, so the iteration
            // event is safe to key on the CGBD logical clock.
            obs::event(
                obs::Subsystem::Cgbd,
                "iteration",
                &[
                    ("k", k.into()),
                    ("upper_bound", ub.into()),
                    ("lower_bound", lb.into()),
                    ("gap", (ub - lb).into()),
                    ("cuts", cuts.len().into()),
                    ("primal_feasible", primal_feasible.into()),
                ],
            );
            obs::counter_add("cgbd.cuts_added", 1);
            if ub - lb <= self.options.epsilon {
                converged = true;
                break;
            }
            if !master.fresh {
                // Lemma 2: every assignment has been visited — the
                // search space is exhausted and the incumbent is exact.
                converged = true;
                break;
            }
            levels = master.levels;
        }
        let (d, levels, _value) = best.ok_or(SolveError::DidNotConverge {
            algorithm: "cgbd",
            iterations: k,
            residual: ub - lb,
        })?;
        let profile: StrategyProfile = d
            .iter()
            .zip(&levels)
            .map(|(&d, &l)| Strategy::new(d, l))
            .collect();
        let equilibrium = Equilibrium::from_profile(
            Scheme::Cgbd,
            game,
            profile,
            k,
            converged,
            potential_trace,
            payoff_traces,
        );
        Ok(CgbdReport { equilibrium, trace, gap: ub - lb })
    }
}

/// Brute-force oracle: solves the primal for **every** ladder assignment
/// and returns the best profile and potential. Exponential in `|N|`;
/// intended for tests and small-instance validation of Lemma 3. Runs
/// on the global work-stealing pool (see [`exhaustive_optimum_with`]).
///
/// # Errors
///
/// Returns an error if every assignment is infeasible or a primal solve
/// fails numerically.
pub fn exhaustive_optimum<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    primal_tol: f64,
) -> Result<(StrategyProfile, f64)> {
    exhaustive_optimum_with(game, primal_tol, Pool::global())
}

/// [`exhaustive_optimum`] on an explicit pool: the ladder product
/// space is split into index ranges, each chunk solves its primals
/// independently, and chunk winners merge in index order with
/// strict-improvement comparisons — the same first-maximum-wins rule
/// as the serial loop, so results are bit-identical for every worker
/// count. Primal solves depend only on `(game, levels)`, so
/// parallelism cannot change any individual solution either.
///
/// # Errors
///
/// See [`exhaustive_optimum`]. When several assignments fail
/// numerically, the error reported is the one at the smallest
/// assignment index (the serial loop would have stopped at it first).
pub fn exhaustive_optimum_with<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    primal_tol: f64,
    pool: &Pool,
) -> Result<(StrategyProfile, f64)> {
    let market = game.market();
    let sizes: Vec<usize> =
        market.orgs().iter().map(|o| o.compute_level_count()).collect();
    let total: usize = sizes.iter().product();
    let results: Vec<Result<Option<(usize, StrategyProfile, f64)>>> =
        pool.map_indexed(total.div_ceil(EXHAUSTIVE_CHUNK), |c| {
            let lo = c * EXHAUSTIVE_CHUNK;
            let hi = (lo + EXHAUSTIVE_CHUNK).min(total);
            let mut levels = vec![0usize; sizes.len()];
            let mut best: Option<(usize, StrategyProfile, f64)> = None;
            for idx in lo..hi {
                let mut rem = idx;
                for (l, &m) in levels.iter_mut().zip(&sizes) {
                    *l = rem % m;
                    rem /= m;
                }
                let primal = PrimalProblem::new(game, &levels);
                if primal.is_feasible() {
                    let sol = primal.solve(primal_tol)?;
                    if best.as_ref().map_or(true, |(_, _, u)| sol.value > *u) {
                        let profile: StrategyProfile = sol
                            .d
                            .iter()
                            .zip(&levels)
                            .map(|(&d, &l)| Strategy::new(d, l))
                            .collect();
                        best = Some((idx, profile, sol.value));
                    }
                }
            }
            Ok(best)
        });
    let mut best: Option<(usize, StrategyProfile, f64)> = None;
    for chunk in results {
        if let Some((idx, profile, value)) = chunk? {
            if best.as_ref().map_or(true, |(_, _, u)| value > *u) {
                best = Some((idx, profile, value));
            }
        }
    }
    best.map(|(_, profile, value)| (profile, value))
        .ok_or(SolveError::InfeasibleProblem { org: 0 })
}

/// Ladder assignments per oracle chunk: primal solves are the unit of
/// work (hundreds of µs each), so modest chunks keep stealable slack
/// without per-task overhead mattering.
const EXHAUSTIVE_CHUNK: usize = 16;

/// Convenience: the master epigraph value at a specific assignment,
/// re-exported for diagnostics.
pub fn master_epigraph<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    cuts: &[Cut],
    levels: &[usize],
) -> Option<f64> {
    master_value(game, cuts, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn cgbd_terminates_and_returns_feasible_profile() {
        let g = game(4, 21);
        let report = CgbdSolver::new().solve(&g).unwrap();
        assert!(report.equilibrium.converged);
        report.equilibrium.profile.validate(g.market()).unwrap();
        assert!(report.trace.len() >= 1);
        assert_eq!(report.equilibrium.scheme, Scheme::Cgbd);
    }

    #[test]
    fn cgbd_matches_exhaustive_oracle_on_small_instances() {
        for seed in [2, 8, 33] {
            let g = game(3, seed);
            let report = CgbdSolver::new().solve(&g).unwrap();
            let (_, oracle_value) = exhaustive_optimum(&g, 1e-9).unwrap();
            let got = report.equilibrium.potential;
            assert!(
                (oracle_value - got).abs() <= 1e-4 * oracle_value.abs().max(1.0),
                "seed {seed}: oracle {oracle_value} vs cgbd {got}"
            );
        }
    }

    #[test]
    fn upper_bound_is_monotone_nonincreasing() {
        let g = game(5, 12);
        let report = CgbdSolver::new().solve(&g).unwrap();
        for w in report.trace.windows(2) {
            assert!(w[1].upper_bound <= w[0].upper_bound + 1e-12);
        }
    }

    #[test]
    fn cgbd_potential_at_least_dbr() {
        // CGBD targets the global potential maximum; DBR only a local NE.
        let g = game(5, 40);
        let cgbd = CgbdSolver::new().solve(&g).unwrap();
        let dbr = crate::dbr::DbrSolver::new().solve(&g).unwrap();
        assert!(
            cgbd.equilibrium.potential >= dbr.potential - 1e-4 * dbr.potential.abs().max(1.0),
            "cgbd {} < dbr {}",
            cgbd.equilibrium.potential,
            dbr.potential
        );
    }

    #[test]
    fn iteration_trace_has_finite_bounds_after_first_feasible() {
        let g = game(4, 3);
        let report = CgbdSolver::new().solve(&g).unwrap();
        let last = report.trace.last().unwrap();
        assert!(last.upper_bound.is_finite());
        assert!(last.lower_bound.is_finite());
    }
}
