//! The comparison baselines of §VI: GCA, FIP and TOS (WPR is
//! [`crate::dbr::DbrSolver`] with
//! [`crate::bestresponse::Objective::WithoutRedistribution`]).

use crate::bestresponse::Objective;
use crate::error::{Result, SolveError};
use crate::outcome::{Equilibrium, Scheme};
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::{Strategy, StrategyProfile};
use tradefl_runtime::sync::pool::Pool;

/// Grid sweeps below this many candidate evaluations run inline —
/// payoff evaluations are sub-microsecond, so tiny sweeps don't cover
/// the cost of standing up scoped workers. Depends only on the grid
/// size, never on the worker count, and both paths merge with the same
/// first-maximum-wins rule, so results are identical either way.
const POOLED_SWEEP_MIN: usize = 64;

/// Merges per-candidate `(strategy, payoff)` evaluations in input
/// order with a strict `>`: exactly the serial sweep's
/// first-maximum-wins tie-break (earliest grid point, then lowest
/// level, wins), for any chunking.
fn best_of(
    candidates: impl IntoIterator<Item = Option<(Strategy, f64)>>,
) -> Option<(Strategy, f64)> {
    let mut best: Option<(Strategy, f64)> = None;
    for (candidate, payoff) in candidates.into_iter().flatten() {
        if best.map_or(true, |(_, b)| payoff > b) {
            best = Some((candidate, payoff));
        }
    }
    best
}

/// Options for the **GCA** baseline ("DBR with Greedy Computation
/// Allocation"): organizations still best-respond in `d`, but the
/// compute level is *tied* to the data fraction through `f_i = k · d_i`
/// (snapped to the nearest ladder level), instead of being optimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcaOptions {
    /// The proportionality constant `k`, as a multiple of each
    /// organization's fastest frequency (so `coupling = 1.0` maps
    /// `d_i = 1` to `F_i^(m)`).
    pub coupling: f64,
    /// Number of grid points for the 1-D search over `d`.
    pub grid: usize,
    /// Maximum rounds.
    pub max_rounds: usize,
}

impl Default for GcaOptions {
    fn default() -> Self {
        // coupling = 2.0: the greedy rule over-provisions compute
        // relative to what the deadline needs, wasting energy — the
        // sub-optimality §VI attributes to GCA.
        Self { coupling: 2.5, grid: 200, max_rounds: 200 }
    }
}

/// Snaps `f = coupling * d * f_max` to the nearest ladder index
/// (clamped at the ladder top).
fn gca_level<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    i: usize,
    d: f64,
    coupling: f64,
) -> usize {
    let org = game.market().org(i);
    let target = coupling * d * org.max_frequency();
    let mut best = 0usize;
    let mut best_gap = f64::INFINITY;
    for (l, &f) in org.compute_levels().iter().enumerate() {
        let gap = (f - target).abs();
        if gap < best_gap {
            best_gap = gap;
            best = l;
        }
    }
    best
}

/// Runs the GCA baseline to a fixed point.
///
/// # Errors
///
/// * [`SolveError::InfeasibleProblem`] if some organization has no
///   feasible `(d, level(d))` pair on the grid;
/// * [`SolveError::DidNotConverge`] if `max_rounds` passes without a
///   fixed point.
pub fn solve_gca<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    options: GcaOptions,
) -> Result<Equilibrium> {
    solve_gca_with(game, options, Pool::global())
}

/// [`solve_gca`] on an explicit pool: each organization's 1-D grid
/// sweep fans out over pool workers in contiguous grid chunks and the
/// chunk optima merge with [`best_of`] — bit-identical to the serial
/// sweep for any worker count.
///
/// # Errors
///
/// See [`solve_gca`].
pub fn solve_gca_with<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    options: GcaOptions,
    pool: &Pool,
) -> Result<Equilibrium> {
    let market = game.market();
    let n = market.len();
    let d_min = market.params().d_min;

    // Initialize feasibly: smallest d whose tied level meets the deadline.
    let mut profile: StrategyProfile = (0..n)
        .map(|i| {
            let level = gca_level(game, i, d_min, options.coupling);
            Strategy::new(d_min, level)
        })
        .collect();
    for i in 0..n {
        if !tied_feasible(game, i, profile[i].d, options.coupling) {
            // Scan upward for any feasible tied pair.
            let found = (0..=options.grid).map(|k| {
                d_min + (1.0 - d_min) * k as f64 / options.grid as f64
            })
            .find(|&d| tied_feasible(game, i, d, options.coupling));
            match found {
                Some(d) => profile.set(
                    i,
                    Strategy::new(d, gca_level(game, i, d, options.coupling)),
                ),
                None => return Err(SolveError::InfeasibleProblem { org: i }),
            }
        }
    }

    let mut potential_trace = vec![game.potential(&profile)];
    let mut payoff_traces =
        vec![(0..n).map(|i| game.payoff(&profile, i)).collect::<Vec<_>>()];
    let mut converged = false;
    let mut rounds = 0;
    while rounds < options.max_rounds {
        rounds += 1;
        let mut any_change = false;
        for i in 0..n {
            let current = game.payoff(&profile, i);
            let evaluate = |k: usize| {
                let d = d_min + (1.0 - d_min) * k as f64 / options.grid as f64;
                if !tied_feasible(game, i, d, options.coupling) {
                    return None;
                }
                let level = gca_level(game, i, d, options.coupling);
                let candidate = Strategy::new(d, level);
                Some((candidate, game.payoff(&profile.with(i, candidate), i)))
            };
            let best = if pool.workers() > 1 && options.grid + 1 >= POOLED_SWEEP_MIN
            {
                best_of(pool.map_indexed(options.grid + 1, evaluate))
            } else {
                best_of((0..=options.grid).map(evaluate))
            };
            let (candidate, payoff) =
                best.ok_or(SolveError::InfeasibleProblem { org: i })?;
            if payoff > current + 1e-9
                && profile.with(i, candidate).distance(&profile) > 1e-9
            {
                profile.set(i, candidate);
                any_change = true;
            }
        }
        potential_trace.push(game.potential(&profile));
        payoff_traces.push((0..n).map(|i| game.payoff(&profile, i)).collect());
        if !any_change {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(SolveError::DidNotConverge {
            algorithm: "gca",
            iterations: rounds,
            residual: f64::NAN,
        });
    }
    Ok(Equilibrium::from_profile(
        Scheme::Gca,
        game,
        profile,
        rounds,
        converged,
        potential_trace,
        payoff_traces,
    ))
}

fn tied_feasible<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    i: usize,
    d: f64,
    coupling: f64,
) -> bool {
    let level = gca_level(game, i, d, coupling);
    let org = game.market().org(i);
    let t = org.comm_time() + org.training_time(d, org.frequency(level));
    t <= game.market().params().tau
}

/// Options for the **FIP** baseline: best-response dynamics restricted
/// to the discretized data grid `d̂_i ∈ {e, 2e, …, 1}` (finite
/// improvement property of potential games).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FipOptions {
    /// Grid step `e`.
    pub step: f64,
    /// Maximum improvement rounds.
    pub max_rounds: usize,
}

impl Default for FipOptions {
    fn default() -> Self {
        Self { step: 0.1, max_rounds: 500 }
    }
}

/// Runs the FIP baseline: finite best-improvement dynamics on the grid.
///
/// # Errors
///
/// * [`SolveError::InfeasibleProblem`] if some organization has no
///   feasible grid vertex;
/// * [`SolveError::DidNotConverge`] if the round cap is hit (cannot
///   happen on a potential game unless the cap is tiny).
pub fn solve_fip<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    options: FipOptions,
) -> Result<Equilibrium> {
    solve_fip_with(game, options, Pool::global())
}

/// [`solve_fip`] on an explicit pool: the `level × grid` sweep
/// flattens to one candidate index per vertex (grid-major within each
/// level, levels outer — the serial iteration order), fans out in
/// contiguous chunks, and merges with [`best_of`] — bit-identical to
/// the serial sweep for any worker count.
///
/// # Errors
///
/// See [`solve_fip`].
pub fn solve_fip_with<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    options: FipOptions,
    pool: &Pool,
) -> Result<Equilibrium> {
    let market = game.market();
    let n = market.len();
    let d_min = market.params().d_min;
    // Grid: multiples of `e` in [D_min, 1]; D_min itself is always a
    // vertex so a feasible start exists.
    let mut grid: Vec<f64> = Vec::new();
    grid.push(d_min);
    let mut v = options.step.max(d_min);
    while v < 1.0 - 1e-12 {
        if v > d_min + 1e-12 {
            grid.push(v);
        }
        v += options.step;
    }
    grid.push(1.0);

    let mut profile = StrategyProfile::minimal(market);
    let mut potential_trace = vec![game.potential(&profile)];
    let mut payoff_traces =
        vec![(0..n).map(|i| game.payoff(&profile, i)).collect::<Vec<_>>()];
    let mut converged = false;
    let mut rounds = 0;
    while rounds < options.max_rounds {
        rounds += 1;
        let mut any_change = false;
        for i in 0..n {
            let current = game.payoff(&profile, i);
            let org = market.org(i);
            let levels = org.compute_level_count();
            // Flattened vertex index: level-major, grid inner — the
            // serial double loop's order, so best_of's first-wins
            // tie-break is unchanged.
            let evaluate = |v: usize| {
                let (level, k) = (v / grid.len(), v % grid.len());
                let (lo, hi) = market.feasible_range(i, level)?;
                let d = grid[k];
                if d < lo - 1e-12 || d > hi + 1e-12 {
                    return None;
                }
                let candidate = Strategy::new(d, level);
                Some((candidate, game.payoff(&profile.with(i, candidate), i)))
            };
            let vertices = levels * grid.len();
            let best = if pool.workers() > 1 && vertices >= POOLED_SWEEP_MIN {
                best_of(pool.map_indexed(vertices, evaluate))
            } else {
                best_of((0..vertices).map(evaluate))
            };
            let (candidate, payoff) =
                best.ok_or(SolveError::InfeasibleProblem { org: i })?;
            if payoff > current + 1e-9
                && profile.with(i, candidate).distance(&profile) > 1e-12
            {
                profile.set(i, candidate);
                any_change = true;
            }
        }
        potential_trace.push(game.potential(&profile));
        payoff_traces.push((0..n).map(|i| game.payoff(&profile, i)).collect());
        if !any_change {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(SolveError::DidNotConverge {
            algorithm: "fip",
            iterations: rounds,
            residual: f64::NAN,
        });
    }
    Ok(Equilibrium::from_profile(
        Scheme::Fip,
        game,
        profile,
        rounds,
        converged,
        potential_trace,
        payoff_traces,
    ))
}

/// The **TOS** baseline ("Theoretically Optimal Scheme"): every
/// organization contributes all data at full compute, ignoring both the
/// deadline and the coopetition damage. Never fails; returns the fixed
/// profile's metrics in one step.
pub fn solve_tos<A: AccuracyModel>(game: &CoopetitionGame<A>) -> Equilibrium {
    let market = game.market();
    let profile: StrategyProfile = (0..market.len())
        .map(|i| Strategy::new(1.0, market.org(i).compute_level_count() - 1))
        .collect();
    let n = market.len();
    let payoffs: Vec<f64> = (0..n).map(|i| game.payoff(&profile, i)).collect();
    Equilibrium::from_profile(
        Scheme::Tos,
        game,
        profile.clone(),
        1,
        true,
        vec![game.potential(&profile)],
        vec![payoffs],
    )
}

/// Dispatches any scheme with default options (bench-harness entry
/// point). `Cgbd` uses Algorithm 1, `Dbr`/`Wpr` Algorithm 2, and the
/// rest the baselines above.
///
/// # Errors
///
/// Propagates the respective solver's errors.
pub fn solve_scheme<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    scheme: Scheme,
) -> Result<Equilibrium> {
    match scheme {
        Scheme::Cgbd => {
            // Paper-faithful traversal when the ladder product space is
            // small; coordinate-descent master beyond ~50k combinations
            // (flagged as heuristic in DESIGN.md).
            let combos: u128 = game
                .market()
                .orgs()
                .iter()
                .map(|o| o.compute_level_count() as u128)
                .try_fold(1u128, u128::checked_mul)
                .unwrap_or(u128::MAX);
            let master = if combos <= 50_000 {
                crate::gbd::MasterSearch::Traversal { cap: 50_000 }
            } else {
                crate::gbd::MasterSearch::CoordinateDescent {
                    restarts: 12,
                    max_sweeps: 30,
                    seed: 0x676264,
                }
            };
            // Warm-start from a cheap DBR pass: the primal re-solves d
            // globally at DBR's ladder, so CGBD's incumbent can only be
            // at least as good as the distributed equilibrium.
            let warm = crate::dbr::DbrSolver::new().solve(game).ok().map(|eq| eq.profile.levels());
            let options = crate::cgbd::CgbdOptions {
                master,
                initial_levels: warm,
                ..crate::cgbd::CgbdOptions::default()
            };
            Ok(crate::cgbd::CgbdSolver::with_options(options).solve(game)?.equilibrium)
        }
        Scheme::Dbr => crate::dbr::DbrSolver::new().solve(game),
        Scheme::Wpr => crate::dbr::DbrSolver::with_options(crate::dbr::DbrOptions {
            objective: Objective::WithoutRedistribution,
            ..crate::dbr::DbrOptions::default()
        })
        .solve(game),
        Scheme::Gca => solve_gca(game, GcaOptions::default()),
        Scheme::Fip => solve_fip(game, FipOptions::default()),
        Scheme::Tos => Ok(solve_tos(game)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbr::DbrSolver;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn gca_converges_to_feasible_tied_profile() {
        let g = game(5, 14);
        let options = GcaOptions::default();
        let eq = solve_gca(&g, options).unwrap();
        assert!(eq.converged);
        eq.profile.validate(g.market()).unwrap();
        for i in 0..5 {
            let tied = gca_level(&g, i, eq.profile[i].d, options.coupling);
            assert_eq!(eq.profile[i].level, tied, "level must stay tied to d");
        }
    }

    #[test]
    fn fip_converges_on_the_grid() {
        let g = game(5, 15);
        let eq = solve_fip(&g, FipOptions::default()).unwrap();
        assert!(eq.converged);
        eq.profile.validate(g.market()).unwrap();
        for s in eq.profile.iter() {
            let d = s.d;
            let on_grid = (d - g.market().params().d_min).abs() < 1e-9
                || (d - 1.0).abs() < 1e-9
                || ((d / 0.1).round() * 0.1 - d).abs() < 1e-9;
            assert!(on_grid, "d = {d} is off-grid");
        }
    }

    #[test]
    fn tos_contributes_everything() {
        let g = game(4, 16);
        let eq = solve_tos(&g);
        assert_eq!(eq.total_fraction, 4.0);
        for (i, s) in eq.profile.iter().enumerate() {
            assert_eq!(s.d, 1.0);
            assert_eq!(s.level, g.market().org(i).compute_level_count() - 1);
        }
    }

    #[test]
    fn dbr_welfare_dominates_restricted_baselines() {
        // The paper's Fig. 6 ordering: DBR ≥ FIP and DBR ≥ GCA (both are
        // restrictions of DBR's strategy space / dynamics).
        let g = game(10, 42);
        let dbr = DbrSolver::new().solve(&g).unwrap();
        let fip = solve_fip(&g, FipOptions::default()).unwrap();
        let gca = solve_gca(&g, GcaOptions::default()).unwrap();
        let tol = 1e-6 * dbr.welfare.abs().max(1.0);
        assert!(dbr.potential >= fip.potential - tol, "dbr {} fip {}", dbr.potential, fip.potential);
        assert!(dbr.potential >= gca.potential - tol, "dbr {} gca {}", dbr.potential, gca.potential);
    }

    #[test]
    fn dispatcher_covers_every_scheme() {
        let g = game(4, 18);
        for scheme in Scheme::ALL {
            let eq = solve_scheme(&g, scheme).unwrap();
            assert_eq!(eq.scheme, scheme);
            assert!(eq.welfare.is_finite());
        }
    }
}
