//! Memoized payoff evaluation shared across best-response sweeps.
//!
//! Best-response dynamics revisit the *same* strategy profile many
//! times per round: every organization reads its current payoff at the
//! round's incumbent profile, the round-end trace re-evaluates all `n`
//! payoffs at that profile again, and rejected moves leave the profile
//! unchanged for the next mover. [`PayoffCache`] memoizes the full
//! payoff **vector** per (objective, profile) pair so those repeat
//! evaluations become an ordered-map lookup instead of `n` fresh
//! `CoopetitionGame` traversals.
//!
//! # Determinism contract
//!
//! A cached vector is the verbatim result of the first evaluation, so
//! a hit is **bit-identical** to recomputation — the cache can never
//! change a solver's output, only its wall-clock. Keys order on the
//! raw IEEE-754 bits of each `d_i` (`f64::to_bits`), so distinct NaN
//! payloads or `±0.0` map to distinct entries rather than risking a
//! wrong hit. The table is a `BTreeMap` (not `HashMap`) so nothing
//! about it — including any future iteration over entries — can ever
//! depend on a nondeterministic order (`no-hash-iteration` lint).

use crate::bestresponse::Objective;
use std::collections::BTreeMap;
use std::sync::Arc;
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::StrategyProfile;
use tradefl_runtime::obs;
use tradefl_runtime::sync::Mutex;

/// Exact profile identity: objective tag plus `(d_i bits, level_i)`
/// per organization.
type Key = (u8, Vec<(u64, usize)>);

fn objective_tag(objective: Objective) -> u8 {
    match objective {
        Objective::Full => 0,
        Objective::WithoutRedistribution => 1,
    }
}

fn key(objective: Objective, profile: &StrategyProfile) -> Key {
    (
        objective_tag(objective),
        profile.iter().map(|s| (s.d.to_bits(), s.level)).collect(),
    )
}

#[derive(Debug, Default)]
struct Inner {
    map: BTreeMap<Key, Arc<[f64]>>,
    hits: u64,
    misses: u64,
}

/// A memoizing payoff evaluator keyed on exact strategy profiles.
///
/// Thread-safe (a [`Mutex`] around the table) so one cache can be
/// shared across a pooled sweep; evaluation itself happens outside the
/// lock, so a slow miss never blocks concurrent hits for long. The
/// table is bounded by an epoch rule: when it reaches the entry limit
/// it is cleared wholesale (best-response dynamics only ever re-read
/// *recent* profiles, so wholesale epochs lose almost nothing and keep
/// the bound O(1) to enforce).
#[derive(Debug)]
pub struct PayoffCache {
    inner: Mutex<Inner>,
    limit: usize,
}

impl Default for PayoffCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PayoffCache {
    /// Default entry limit before an epoch clear.
    pub const DEFAULT_LIMIT: usize = 8192;

    /// Creates an empty cache with [`Self::DEFAULT_LIMIT`].
    pub fn new() -> Self {
        Self::with_limit(Self::DEFAULT_LIMIT)
    }

    /// Creates an empty cache that clears itself upon reaching
    /// `limit` entries (minimum 1).
    pub fn with_limit(limit: usize) -> Self {
        Self { inner: Mutex::new(Inner::default()), limit: limit.max(1) }
    }

    /// Returns the payoff vector `(C_0, …, C_{n-1})` at `profile`
    /// under `objective`, evaluating and memoizing it on first sight.
    pub fn payoffs<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        profile: &StrategyProfile,
        objective: Objective,
    ) -> Arc<[f64]> {
        let n = game.market().len();
        self.payoffs_with(objective, profile, || {
            (0..n).map(|i| objective.payoff(game, profile, i)).collect()
        })
    }

    /// [`Self::payoffs`] with the evaluation strategy supplied by the
    /// caller: `compute` produces the full payoff vector at `profile`
    /// under `objective` and runs only on a miss, outside the lock.
    /// This lets the DBR sweep memoize vectors produced by the
    /// `O(log N)`-per-entry incremental evaluator while every other
    /// caller keeps the exact `CoopetitionGame` path — the cache itself
    /// stays bit-transparent either way (a hit returns the first
    /// computation verbatim). Hit/miss totals stream to `runtime::obs`
    /// as `solver.payoff_cache.hits` / `.misses`.
    pub fn payoffs_with(
        &self,
        objective: Objective,
        profile: &StrategyProfile,
        compute: impl FnOnce() -> Vec<f64>,
    ) -> Arc<[f64]> {
        let k = key(objective, profile);
        if let Some(hit) = {
            let mut inner = self.inner.lock();
            let hit = inner.map.get(&k).cloned();
            if hit.is_some() {
                inner.hits += 1;
            }
            hit
        } {
            obs::counter_add("solver.payoff_cache.hits", 1);
            return hit;
        }
        let values: Arc<[f64]> = compute().into();
        obs::counter_add("solver.payoff_cache.misses", 1);
        let mut inner = self.inner.lock();
        inner.misses += 1;
        if inner.map.len() >= self.limit {
            inner.map.clear();
        }
        // First write wins on a race: both racers computed the same
        // pure function, so either value is the canonical one.
        inner.map.entry(k).or_insert_with(|| values.clone());
        values
    }

    /// Organization `i`'s memoized payoff at `profile`.
    pub fn payoff<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        profile: &StrategyProfile,
        objective: Objective,
        i: usize,
    ) -> f64 {
        self.payoffs(game, profile, objective)[i]
    }

    /// Number of memoized profiles currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;
    use tradefl_runtime::{prop_assert, props};

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn repeat_lookups_hit() {
        let g = game(4, 9);
        let p = StrategyProfile::minimal(g.market());
        let cache = PayoffCache::new();
        let a = cache.payoffs(&g, &p, Objective::Full);
        let b = cache.payoffs(&g, &p, Objective::Full);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a hit");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn objectives_do_not_collide() {
        let g = game(3, 4);
        let p = StrategyProfile::minimal(g.market());
        let cache = PayoffCache::new();
        let full = cache.payoffs(&g, &p, Objective::Full);
        let wpr = cache.payoffs(&g, &p, Objective::WithoutRedistribution);
        assert_eq!(cache.len(), 2);
        assert_ne!(full, wpr, "γ > 0 makes the two objectives differ");
    }

    #[test]
    fn epoch_clear_bounds_the_table() {
        let g = game(3, 4);
        let cache = PayoffCache::with_limit(4);
        for k in 0..20 {
            let d = 0.2 + 0.03 * k as f64;
            let p = StrategyProfile::from_parts(&[d, 0.5, 0.5], &[0, 0, 0]);
            cache.payoffs(&g, &p, Objective::Full);
            assert!(cache.len() <= 4);
        }
    }

    props! {
        #![cases = 48]

        fn cached_payoffs_are_bit_identical_to_recomputed(g) {
            let n = g.usize(2..=6);
            let game = game(n, g.u64(0..500));
            let cache = PayoffCache::new();
            let objective = if g.u64(0..2) == 0 {
                Objective::Full
            } else {
                Objective::WithoutRedistribution
            };
            // A random profile: d in [d_min, 1], any ladder level.
            let d_min = game.market().params().d_min;
            let profile: StrategyProfile = (0..n)
                .map(|i| {
                    let levels = game.market().org(i).compute_level_count();
                    tradefl_core::strategy::Strategy::new(
                        g.f64(d_min..1.0),
                        g.usize(0..levels),
                    )
                })
                .collect();
            let warm = cache.payoffs(&game, &profile, objective);
            let cached = cache.payoffs(&game, &profile, objective);
            for i in 0..n {
                let fresh = objective.payoff(&game, &profile, i);
                prop_assert!(
                    cached[i].to_bits() == fresh.to_bits(),
                    "org {} cached {} != fresh {}", i, cached[i], fresh
                );
            }
            prop_assert!(Arc::ptr_eq(&warm, &cached));
        }
    }
}
