//! **DBR** — the distributed best-response algorithm (Algorithm 2).
//!
//! Organizations start from `d_i = D_min, f_i = F_i^(m)` and take turns
//! playing best responses until a full pass changes nothing. Because the
//! coopetition game is a weighted potential game (Theorem 1), every
//! improving move strictly increases the potential and the dynamics
//! reach a Nash equilibrium in finitely many effective updates \[33\].

use crate::bestresponse::{best_response_incremental, Objective};
use crate::cache::PayoffCache;
use crate::error::{Result, SolveError};
use crate::outcome::{Equilibrium, Scheme};
use tradefl_runtime::obs;
use tradefl_runtime::rng::{SeedableRng, SliceRandom, StdRng};
use tradefl_runtime::sync::pool::Pool;
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::incremental::IncrementalEval;
use tradefl_core::strategy::StrategyProfile;

/// Minimum organization count before the per-round payoff trace rows
/// (the `O(N²)` ρ·res matvec) are split across the pool. Each element
/// of the row is computed independently and written to its own slot,
/// so the pooled row is bit-identical to the serial
/// [`IncrementalEval::payoff_vector`] for any worker count; below this
/// threshold the dispatch overhead exceeds the matvec itself.
const POOLED_TRACE_MIN_ORGS: usize = 512;

/// Maximum organization count for which the solver records a payoff
/// trace row after *every* round. Each row costs one `O(N²)` pass over
/// the ρ matrix — at figure scale (≤ a few dozen organizations,
/// Fig. 5) that is negligible and the full per-iteration history is
/// kept; at N ≥ this bound only the final row is recorded, so the
/// trace cost stays out of the sweep's `O(N log N)` scaling. The
/// potential trace is `O(N)` per round and always full.
const TRACE_EVERY_ROUND_MAX_ORGS: usize = 512;

/// The current profile's payoff vector for a trace row: serial for
/// small markets, chunked across `pool` for large ones (see
/// [`POOLED_TRACE_MIN_ORGS`] for the determinism argument).
fn trace_payoffs<A: AccuracyModel>(eval: &IncrementalEval<'_, A>, pool: &Pool) -> Vec<f64> {
    let n = eval.profile().len();
    if pool.workers() <= 1 || n < POOLED_TRACE_MIN_ORGS {
        return eval.payoff_vector();
    }
    let mut out = vec![0.0f64; n];
    let per = n.div_ceil(pool.workers());
    pool.scope(|s| {
        for (t, chunk) in out.chunks_mut(per).enumerate() {
            s.spawn(move || {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    let i = t * per + k;
                    *slot = eval.payoff_at(i, eval.profile()[i], eval.rho_res(i));
                }
            });
        }
    });
    out
}

/// The order in which organizations update within a round (an ablation
/// axis; the paper uses a fixed order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOrder {
    /// Organizations update in index order every round.
    RoundRobin,
    /// Organizations update in a freshly shuffled order each round,
    /// seeded for reproducibility.
    Shuffled {
        /// RNG seed for the per-round shuffles.
        seed: u64,
    },
}

/// Options for [`DbrSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbrOptions {
    /// Maximum number of rounds `H`.
    pub max_rounds: usize,
    /// A strategy update smaller than this (in profile distance) counts
    /// as "no change".
    pub tol: f64,
    /// Payoff each organization best-responds to (`Full` for DBR, or
    /// `WithoutRedistribution` for the WPR baseline).
    pub objective: Objective,
    /// Update order within a round.
    pub order: UpdateOrder,
    /// Minimum payoff improvement required to accept a move; guards
    /// against floating-point cycling near the equilibrium.
    pub min_improvement: f64,
    /// Step damping `κ ∈ (0, 1]`: each organization moves its data
    /// fraction only `κ` of the way toward its best response
    /// (`d ← d + κ (d* − d)`), adopting the best-response compute level
    /// when doing so improves its payoff. `κ = 1` is the exact best
    /// response; smaller values reproduce the gradual multi-iteration
    /// convergence of the paper's Fig. 5. Because the payoff is concave
    /// in `d_i`, every damped move still improves the mover's payoff,
    /// so the potential stays monotone (Theorem 1).
    pub damping: f64,
}

impl Default for DbrOptions {
    fn default() -> Self {
        Self {
            max_rounds: 200,
            tol: 1e-7,
            objective: Objective::Full,
            order: UpdateOrder::RoundRobin,
            min_improvement: 1e-9,
            damping: 1.0,
        }
    }
}

/// Algorithm 2's driver.
#[derive(Debug, Clone, Default)]
pub struct DbrSolver {
    options: DbrOptions,
}

impl DbrSolver {
    /// Creates a solver with default options (full payoff, round-robin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit options.
    pub fn with_options(options: DbrOptions) -> Self {
        Self { options }
    }

    /// The options in effect.
    pub fn options(&self) -> &DbrOptions {
        &self.options
    }

    /// Runs best-response dynamics from the minimal profile.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InfeasibleProblem`] if some organization has no
    ///   feasible strategy at any level;
    /// * [`SolveError::DidNotConverge`] if `max_rounds` passes complete
    ///   without reaching a fixed point (the profile reached so far is
    ///   lost; raise `max_rounds`).
    pub fn solve<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
    ) -> Result<Equilibrium> {
        self.solve_from(game, StrategyProfile::minimal(game.market()))
    }

    /// [`DbrSolver::solve`] on an explicit pool (see
    /// [`DbrSolver::solve_from_with`] for the threading contract).
    ///
    /// # Errors
    ///
    /// See [`DbrSolver::solve`].
    pub fn solve_with<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        pool: &Pool,
    ) -> Result<Equilibrium> {
        self.solve_from_with(game, StrategyProfile::minimal(game.market()), pool)
    }

    /// Runs best-response dynamics from an explicit starting profile on
    /// the global work-stealing pool.
    ///
    /// # Errors
    ///
    /// See [`DbrSolver::solve`]; additionally propagates validation
    /// errors if `start` is not feasible.
    pub fn solve_from<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        start: StrategyProfile,
    ) -> Result<Equilibrium> {
        self.solve_from_with(game, start, Pool::global())
    }

    /// [`DbrSolver::solve_from`] on an explicit pool. The dynamics stay
    /// strictly sequential across organizations (Algorithm 2's
    /// Gauss-Seidel order is part of the convergence argument). Every
    /// candidate payoff runs through an
    /// [`IncrementalEval`] — `O(log N)` per evaluation instead of
    /// `O(N)` — so one sweep is `O(N log N)` and the solve is
    /// sub-quadratic in the organization count; a [`PayoffCache`]
    /// still memoizes the per-round trace vectors. The inner best
    /// responses no longer fan out to the pool (each one is
    /// microseconds at any market size, far below dispatch cost); the
    /// pool instead parallelizes the per-round `O(N²)` payoff trace
    /// matvec on large markets (see [`trace_payoffs`]). Every pooled
    /// element is computed independently and lands in its own slot,
    /// so results are bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// See [`DbrSolver::solve_from`].
    pub fn solve_from_with<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        start: StrategyProfile,
        pool: &Pool,
    ) -> Result<Equilibrium> {
        start.validate(game.market())?;
        let cache = PayoffCache::new();
        let n = game.market().len();
        let mut eval = IncrementalEval::new(game, start.clone());
        let mut profile = start;
        let mut potential_trace = vec![eval.potential()];
        // Payoff rows cost one O(N²) ρ pass each; figure-scale markets
        // keep the full per-iteration history, large ones record only
        // the final row (pushed after the loop).
        let trace_every_round = n < TRACE_EVERY_ROUND_MAX_ORGS;
        let mut payoff_traces = if trace_every_round {
            vec![cache
                .payoffs_with(Objective::Full, &profile, || trace_payoffs(&eval, pool))
                .to_vec()]
        } else {
            Vec::new()
        };
        let mut rng = match self.options.order {
            UpdateOrder::Shuffled { seed } => Some(StdRng::seed_from_u64(seed)),
            UpdateOrder::RoundRobin => None,
        };
        let mut order: Vec<usize> = (0..n).collect();
        let mut converged = false;
        let mut rounds = 0;
        while rounds < self.options.max_rounds {
            rounds += 1;
            if let Some(rng) = rng.as_mut() {
                order.shuffle(rng);
            }
            let mut any_change = false;
            let mut round_gain = 0.0f64;
            let mut payoff_scale = 1.0f64;
            for &i in &order {
                // All of this mover's payoffs are "mover objective"
                // values: exact up to an additive constant that does not
                // depend on π_i (the redistribution cross-term — see
                // `IncrementalEval::mover_payoff_at`), so improvement
                // tests and argmaxes are unaffected and every evaluation
                // stays O(log N).
                let current = self
                    .options
                    .objective
                    .mover_payoff_incremental(&eval, i, profile[i]);
                let br = best_response_incremental(&eval, i, self.options.objective)
                    .ok_or(SolveError::InfeasibleProblem { org: i })?;
                // Damped step toward the best response; the candidate is
                // only accepted if it improves the mover's payoff, which
                // keeps the potential monotone even across level jumps.
                let kappa = self.options.damping.clamp(1e-6, 1.0);
                let stepped = tradefl_core::strategy::Strategy::new(
                    profile[i].d + kappa * (br.strategy.d - profile[i].d),
                    br.strategy.level,
                );
                let candidate = if kappa >= 1.0 {
                    br.strategy
                } else {
                    let damped_profile = profile.with(i, stepped);
                    if damped_profile.validate(game.market()).is_ok()
                        && self
                            .options
                            .objective
                            .mover_payoff_incremental(&eval, i, stepped)
                            > current
                    {
                        stepped
                    } else {
                        br.strategy
                    }
                };
                let payoff_at = self
                    .options
                    .objective
                    .mover_payoff_incremental(&eval, i, candidate);
                // Single-entry profile distance, computed directly (the
                // other entries contribute 0 to the max).
                let moved = {
                    let dd = (candidate.d - profile[i].d).abs();
                    if candidate.level != profile[i].level { dd + 1.0 } else { dd }
                };
                payoff_scale = payoff_scale.max(current.abs());
                if payoff_at > current + self.options.min_improvement
                    && moved > self.options.tol
                {
                    round_gain = round_gain.max(payoff_at - current);
                    profile.set(i, candidate);
                    eval.commit(i, candidate);
                    any_change = true;
                    // Per-org best-response step size, plus the O(log N)
                    // incremental state update it triggered.
                    obs::hist_record("dbr.br_delta", moved);
                    obs::counter_add("dbr.incremental_updates", 1);
                }
            }
            // O(N) via the evaluator's cached constants; the game's own
            // potential() recomputes two O(N) ρ-row sums per org.
            potential_trace.push(eval.potential());
            {
                let potential = *potential_trace.last().unwrap_or(&f64::NAN);
                let residual = potential_trace
                    .iter()
                    .rev()
                    .nth(1)
                    .map(|prev| (potential - prev).abs())
                    .unwrap_or(f64::NAN);
                obs::event(
                    obs::Subsystem::Dbr,
                    "round",
                    &[
                        ("round", rounds.into()),
                        ("round_gain", round_gain.into()),
                        ("any_change", any_change.into()),
                        ("potential", potential.into()),
                        ("residual", residual.into()),
                    ],
                );
            }
            if trace_every_round {
                payoff_traces.push(
                    cache
                        .payoffs_with(Objective::Full, &profile, || trace_payoffs(&eval, pool))
                        .to_vec(),
                );
            }
            // Stop on a fixed point, or when the largest accepted payoff
            // improvement in a full round is below solver precision —
            // in a (weighted) potential game residual micro-moves of
            // that size cannot accumulate into anything (prevents
            // cycling near knife-edge level ties). The criterion uses
            // the *objective's* payoffs, so it is correct for the WPR
            // variant too.
            if !any_change || round_gain <= 1e-10 * payoff_scale {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SolveError::DidNotConverge {
                algorithm: "dbr",
                iterations: rounds,
                residual: potential_trace
                    .last()
                    .zip(potential_trace.iter().rev().nth(1))
                    .map(|(a, b)| (a - b).abs())
                    .unwrap_or(f64::NAN),
            });
        }
        let scheme = match self.options.objective {
            Objective::Full => Scheme::Dbr,
            Objective::WithoutRedistribution => Scheme::Wpr,
        };
        // Large markets skip the per-round rows; the trace still ends
        // with the final profile's payoffs (Fig. 5's right edge).
        if !trace_every_round {
            payoff_traces.push(
                cache
                    .payoffs_with(Objective::Full, &profile, || trace_payoffs(&eval, pool))
                    .to_vec(),
            );
        }
        // `profile` and the evaluator's profile are kept identical by
        // the accept path; the evaluator's cached constants make the
        // final aggregates O(N) (see `Equilibrium::from_eval`).
        debug_assert_eq!(profile.len(), eval.profile().len());
        drop(profile);
        Ok(Equilibrium::from_eval(
            scheme,
            &eval,
            rounds,
            converged,
            potential_trace,
            payoff_traces,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn dbr_converges_and_is_nash() {
        let g = game(6, 11);
        let eq = DbrSolver::new().solve(&g).unwrap();
        assert!(eq.converged);
        assert_eq!(eq.scheme, Scheme::Dbr);
        eq.profile.validate(g.market()).unwrap();
        // ε-Nash against a sampled deviation grid.
        let gain = g.best_sampled_deviation_gain(&eq.profile, 24);
        assert!(gain < 1e-3 * eq.welfare.abs().max(1.0), "deviation gain {gain}");
    }

    #[test]
    fn potential_is_monotone_along_the_dynamics() {
        let g = game(8, 13);
        let eq = DbrSolver::new().solve(&g).unwrap();
        for w in eq.potential_trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9 * w[0].abs().max(1.0),
                "potential decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn traces_have_one_row_per_round_plus_start() {
        let g = game(4, 3);
        let eq = DbrSolver::new().solve(&g).unwrap();
        assert_eq!(eq.potential_trace.len(), eq.iterations + 1);
        assert_eq!(eq.payoff_traces.len(), eq.iterations + 1);
        assert_eq!(eq.payoff_traces[0].len(), 4);
    }

    #[test]
    fn shuffled_order_reaches_the_same_potential_plateau() {
        let g = game(6, 19);
        let a = DbrSolver::new().solve(&g).unwrap();
        let b = DbrSolver::with_options(DbrOptions {
            order: UpdateOrder::Shuffled { seed: 5 },
            ..DbrOptions::default()
        })
        .solve(&g)
        .unwrap();
        // Different NE may be reached, but in this (smooth, concave-ish)
        // regime both orders find the same potential level.
        assert!(
            (a.potential - b.potential).abs() < 1e-3 * a.potential.abs().max(1.0),
            "round-robin {} vs shuffled {}",
            a.potential,
            b.potential
        );
    }

    #[test]
    fn wpr_contributes_less_data_than_dbr() {
        let g = game(10, 42);
        let dbr = DbrSolver::new().solve(&g).unwrap();
        let wpr = DbrSolver::with_options(DbrOptions {
            objective: Objective::WithoutRedistribution,
            ..DbrOptions::default()
        })
        .solve(&g)
        .unwrap();
        assert_eq!(wpr.scheme, Scheme::Wpr);
        assert!(
            dbr.total_fraction > wpr.total_fraction,
            "redistribution must raise contributions: dbr {} vs wpr {}",
            dbr.total_fraction,
            wpr.total_fraction
        );
    }

    #[test]
    fn damped_dynamics_converge_to_the_same_equilibrium_slower() {
        let g = game(8, 23);
        let exact = DbrSolver::new().solve(&g).unwrap();
        let damped = DbrSolver::with_options(DbrOptions {
            damping: 0.3,
            ..DbrOptions::default()
        })
        .solve(&g)
        .unwrap();
        assert!(damped.converged);
        assert!(
            damped.iterations > exact.iterations,
            "damping must lengthen the path: {} vs {}",
            damped.iterations,
            exact.iterations
        );
        assert!(
            (damped.potential - exact.potential).abs()
                <= 1e-3 * exact.potential.abs().max(1.0),
            "same plateau: {} vs {}",
            damped.potential,
            exact.potential
        );
        // Potential stays monotone under damping too.
        for w in damped.potential_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9 * w[0].abs().max(1.0));
        }
    }

    #[test]
    fn solve_from_rejects_invalid_start() {
        let g = game(3, 2);
        let bad = StrategyProfile::from_parts(&[2.0, 0.5, 0.5], &[0, 0, 0]);
        assert!(DbrSolver::new().solve_from(&g, bad).is_err());
    }

    #[test]
    fn equilibrium_is_individually_rational_at_gamma_star() {
        let g = game(10, 7);
        let eq = DbrSolver::new().solve(&g).unwrap();
        let audit = tradefl_core::mechanism::MechanismAudit::evaluate(&g, &eq.profile);
        assert!(
            audit.individually_rational(1e-9),
            "min payoff {}",
            audit.min_payoff
        );
        assert!(audit.budget_balanced_rel(1e-9));
    }
}
