//! Adaptive incentive-intensity tuning.
//!
//! The paper's operational takeaway is that welfare is non-monotone in
//! γ and "an appropriate γ, e.g. γ*, helps maximize social welfare
//! under different competition intensities" (§VI). This module gives
//! the platform that knob: a derivative-free search over γ that
//! evaluates each candidate by solving the induced game to equilibrium
//! (DBR) and measuring realized welfare — exactly what a real platform
//! can observe.
//!
//! The search is a coarse log-spaced grid pass followed by golden-
//! section refinement on the bracketing interval; welfare(γ) is
//! empirically unimodal on calibrated markets, and even where it is
//! not, the tuner returns the best *evaluated* point, so it never
//! regresses below the grid optimum.

use crate::dbr::{DbrOptions, DbrSolver};
use crate::error::Result;
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;

/// Options for [`tune_gamma`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneOptions {
    /// Lower end of the γ search range (0 is allowed).
    pub gamma_min: f64,
    /// Upper end of the γ search range.
    pub gamma_max: f64,
    /// Coarse grid points (log-spaced, plus `gamma_min` itself).
    pub grid: usize,
    /// Golden-section refinement iterations.
    pub refine_iters: usize,
    /// DBR options used for each evaluation.
    pub dbr: DbrOptions,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            gamma_min: 0.0,
            gamma_max: 1e-7,
            grid: 9,
            refine_iters: 16,
            dbr: DbrOptions::default(),
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneSample {
    /// The candidate incentive intensity.
    pub gamma: f64,
    /// Realized social welfare at the induced equilibrium.
    pub welfare: f64,
    /// Total data contribution at the equilibrium.
    pub total_fraction: f64,
}

/// Result of the search.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// The best incentive intensity found.
    pub gamma_star: f64,
    /// Welfare at `gamma_star`.
    pub welfare: f64,
    /// Every evaluation, in the order performed (grid then refinement).
    pub samples: Vec<TuneSample>,
}

/// Searches for the welfare-maximizing incentive intensity.
///
/// # Examples
///
/// ```
/// use tradefl_core::accuracy::SqrtAccuracy;
/// use tradefl_core::config::MarketConfig;
/// use tradefl_core::game::CoopetitionGame;
/// use tradefl_solver::tuning::{tune_gamma, TuneOptions};
///
/// let market = MarketConfig::table_ii().with_orgs(4).build(5)?;
/// let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
/// let options = TuneOptions { grid: 4, refine_iters: 2, ..TuneOptions::default() };
/// let report = tune_gamma(&game, options)?;
/// assert!(report.welfare.is_finite());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates market-validation or solver failures from any candidate
/// evaluation.
pub fn tune_gamma<A: AccuracyModel + Clone>(
    game: &CoopetitionGame<A>,
    options: TuneOptions,
) -> Result<TuneReport> {
    let mut samples = Vec::new();
    let evaluate = |gamma: f64, samples: &mut Vec<TuneSample>| -> Result<f64> {
        let params = game.market().params().with_gamma(gamma);
        let tuned = game.with_params(params)?;
        let eq = DbrSolver::with_options(options.dbr).solve(&tuned)?;
        samples.push(TuneSample {
            gamma,
            welfare: eq.welfare,
            total_fraction: eq.total_fraction,
        });
        Ok(eq.welfare)
    };

    // Coarse pass: gamma_min plus a log-spaced grid up to gamma_max.
    let mut grid_points = vec![options.gamma_min];
    let lo_positive = (options.gamma_min.max(options.gamma_max * 1e-3)).max(1e-12);
    for k in 0..options.grid {
        let t = k as f64 / (options.grid.max(2) - 1) as f64;
        grid_points.push(lo_positive * (options.gamma_max / lo_positive).powf(t));
    }
    grid_points.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
    let mut best_idx = 0;
    let mut best_welfare = f64::NEG_INFINITY;
    for (idx, &gamma) in grid_points.iter().enumerate() {
        let w = evaluate(gamma, &mut samples)?;
        if w > best_welfare {
            best_welfare = w;
            best_idx = idx;
        }
    }

    // Refinement: golden-section on the bracket around the grid winner.
    let lo = if best_idx == 0 { grid_points[0] } else { grid_points[best_idx - 1] };
    let hi = if best_idx + 1 < grid_points.len() {
        grid_points[best_idx + 1]
    } else {
        grid_points[best_idx]
    };
    if hi > lo {
        const PHI: f64 = 0.618_033_988_749_895;
        let (mut a, mut b) = (lo, hi);
        let mut x1 = b - PHI * (b - a);
        let mut x2 = a + PHI * (b - a);
        let mut f1 = evaluate(x1, &mut samples)?;
        let mut f2 = evaluate(x2, &mut samples)?;
        for _ in 0..options.refine_iters {
            if f1 >= f2 {
                b = x2;
                x2 = x1;
                f2 = f1;
                x1 = b - PHI * (b - a);
                f1 = evaluate(x1, &mut samples)?;
            } else {
                a = x1;
                x1 = x2;
                f1 = f2;
                x2 = a + PHI * (b - a);
                f2 = evaluate(x2, &mut samples)?;
            }
            if (b - a) <= 1e-3 * hi.max(1e-12) {
                break;
            }
        }
    }

    let best = samples
        .iter()
        .max_by(|a, b| a.welfare.total_cmp(&b.welfare))
        .copied()
        // lint:allow(no-panic-in-lib): the coarse grid always contains gamma_min, so samples is non-empty
        .expect("at least one candidate evaluated");
    Ok(TuneReport { gamma_star: best.gamma, welfare: best.welfare, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;
    use tradefl_core::market::MechanismParams;

    fn game(seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(8).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn tuner_finds_an_interior_peak_near_gamma_star() {
        let g = game(42);
        let report = tune_gamma(&g, TuneOptions::default()).unwrap();
        // The calibration places the peak at gamma* = 5.12e-9; the tuner
        // must land within a factor of ~3 of it.
        assert!(
            report.gamma_star > 1.5e-9 && report.gamma_star < 1.6e-8,
            "gamma_star {}",
            report.gamma_star
        );
        // And it must beat both endpoints.
        let endpoint = |g0: f64| {
            let params = g.market().params().with_gamma(g0);
            let tuned = g.with_params(params).unwrap();
            DbrSolver::new().solve(&tuned).unwrap().welfare
        };
        assert!(report.welfare >= endpoint(0.0));
        assert!(report.welfare >= endpoint(1e-7));
    }

    #[test]
    fn tuner_never_returns_worse_than_the_grid_best() {
        let g = game(7);
        let report = tune_gamma(
            &g,
            TuneOptions { refine_iters: 0, ..TuneOptions::default() },
        )
        .unwrap();
        let best_sample = report
            .samples
            .iter()
            .map(|s| s.welfare)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(report.welfare, best_sample);
    }

    #[test]
    fn samples_record_every_evaluation() {
        let g = game(9);
        let options = TuneOptions { grid: 5, refine_iters: 4, ..TuneOptions::default() };
        let report = tune_gamma(&g, options).unwrap();
        assert!(report.samples.len() >= 6); // grid + gamma_min + refinements
        assert!(report.samples.iter().all(|s| s.welfare.is_finite()));
    }

    #[test]
    fn works_under_different_mechanism_params() {
        // Heavier training overhead moves the peak; the tuner still
        // finds an interior point at least as good as the endpoints.
        let market = MarketConfig::table_ii()
            .with_orgs(6)
            .with_params(MechanismParams {
                omega_e: 2.5e-3,
                ..MechanismParams::paper_default()
            })
            .build(3)
            .unwrap();
        let g = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let report = tune_gamma(&g, TuneOptions::default()).unwrap();
        assert!(report.welfare.is_finite());
        assert!(report.gamma_star >= 0.0);
    }
}
