//! Social-welfare optimization and the price of anarchy.
//!
//! The Nash equilibrium maximizes the *potential*, not social welfare;
//! the gap between the two is exactly the inefficiency the paper's
//! trading mechanism narrows (Fig. 6's ordering). This module computes
//! the centralized welfare optimum
//!
//! ```text
//!   max_π  Σ_i C_i(π_i, π_-i)   s.t.  C^(1..3)
//! ```
//!
//! and the resulting **price of anarchy** `PoA = W(social) / W(NE) ≥ 1`.
//!
//! Social welfare is concave in `d` at fixed compute levels: with
//! `w_i = Σ_j ρ_ij p_j`,
//!
//! ```text
//!   W(d) = (Σp − Σw)·P(Ω) + Σ_i w_i·P(Ω − d_i s_i) − ϖ_e Σ_i E_i,
//! ```
//!
//! a non-negative combination of concave terms minus a linear one
//! (`Σp ≥ Σw` because every `z_i > 0`). The solver runs projected
//! gradient ascent over `d` per level assignment and coordinate descent
//! over the discrete levels.

use crate::error::{Result, SolveError};
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::{Strategy, StrategyProfile};

/// Options for [`solve_social_optimum`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialOptions {
    /// Projected-gradient iterations per level assignment.
    pub max_iters: usize,
    /// Convergence tolerance on the step size.
    pub tol: f64,
    /// Level-coordinate-descent sweeps.
    pub max_sweeps: usize,
}

impl Default for SocialOptions {
    fn default() -> Self {
        Self { max_iters: 4000, tol: 1e-9, max_sweeps: 8 }
    }
}

/// The welfare optimum and its comparison against an equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialOptimum {
    /// The welfare-maximizing profile.
    pub profile: StrategyProfile,
    /// Social welfare at the optimum.
    pub welfare: f64,
}

impl SocialOptimum {
    /// Price of anarchy against an equilibrium welfare value.
    ///
    /// Values below 1 (within solver tolerance) mean the "equilibrium"
    /// was not actually an equilibrium of the same game.
    pub fn price_of_anarchy(&self, equilibrium_welfare: f64) -> f64 {
        self.welfare / equilibrium_welfare
    }
}

/// Gradient of social welfare with respect to `d` at fixed levels.
///
/// `∂W/∂d_i = (Σp − Σw)·P'(Ω)·s_i + Σ_{k≠i} w_k·P'(Ω − d_k s_k)·s_i
///            − ϖ_e κ f_i² η_i s_i`.
pub fn welfare_d_grad<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    profile: &StrategyProfile,
) -> Vec<f64> {
    let market = game.market();
    let params = market.params();
    let n = market.len();
    let omega = profile.total_data(market);
    let p_total: f64 = market.orgs().iter().map(|o| o.profitability()).sum();
    let w: Vec<f64> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| market.rho(i, j) * market.org(j).profitability())
                .sum()
        })
        .collect();
    let w_total: f64 = w.iter().sum();
    let p_deriv = game.accuracy().gain_deriv(omega);
    // P'(Ω − d_k s_k) for every k.
    let p_deriv_minus: Vec<f64> = (0..n)
        .map(|k| {
            let omega_k = omega - profile[k].d * market.org(k).effective_bits();
            game.accuracy().gain_deriv(omega_k.max(0.0))
        })
        .collect();
    let cross_total: f64 = w.iter().zip(&p_deriv_minus).map(|(wk, pk)| wk * pk).sum();
    (0..n)
        .map(|i| {
            let org = market.org(i);
            let s = org.data_bits();
            let s_eff = org.effective_bits();
            let f = org.frequency(profile[i].level);
            let cross = cross_total - w[i] * p_deriv_minus[i];
            (p_total - w_total) * p_deriv * s_eff + cross * s_eff
                - params.omega_e * params.kappa * f * f * org.eta() * s
        })
        .collect()
}

/// Computes the centralized welfare maximum over the joint strategy
/// space (data fractions continuous, compute levels by coordinate
/// descent).
///
/// # Examples
///
/// ```
/// use tradefl_core::accuracy::SqrtAccuracy;
/// use tradefl_core::config::MarketConfig;
/// use tradefl_core::game::CoopetitionGame;
/// use tradefl_solver::dbr::DbrSolver;
/// use tradefl_solver::social::{solve_social_optimum, SocialOptions};
///
/// let market = MarketConfig::table_ii().with_orgs(3).build(2)?;
/// let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
/// let optimum = solve_social_optimum(&game, SocialOptions::default())?;
/// let ne = DbrSolver::new().solve(&game)?;
/// assert!(optimum.price_of_anarchy(ne.welfare) >= 1.0 - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// [`SolveError::InfeasibleProblem`] if some organization has no
/// feasible level.
pub fn solve_social_optimum<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    options: SocialOptions,
) -> Result<SocialOptimum> {
    let market = game.market();
    let n = market.len();
    // Start at each org's cheapest feasible level.
    let mut levels: Vec<usize> = (0..n)
        .map(|i| {
            (0..market.org(i).compute_level_count())
                .find(|&l| market.feasible_range(i, l).is_some())
                .ok_or(SolveError::InfeasibleProblem { org: i })
        })
        .collect::<Result<_>>()?;

    let mut best_profile = ascend_d(game, &levels, options)?;
    let mut best_welfare = game.social_welfare(&best_profile);
    for _ in 0..options.max_sweeps {
        let mut improved = false;
        for i in 0..n {
            let original = levels[i];
            for l in 0..market.org(i).compute_level_count() {
                if l == original || market.feasible_range(i, l).is_none() {
                    continue;
                }
                levels[i] = l;
                let candidate = ascend_d(game, &levels, options)?;
                let w = game.social_welfare(&candidate);
                if w > best_welfare + 1e-9 * best_welfare.abs().max(1.0) {
                    best_welfare = w;
                    best_profile = candidate;
                    improved = true;
                } else {
                    levels[i] = original;
                }
            }
            levels[i] = best_profile[i].level;
        }
        if !improved {
            break;
        }
    }
    Ok(SocialOptimum { profile: best_profile, welfare: best_welfare })
}

/// Projected gradient ascent on welfare over `d` at fixed levels.
fn ascend_d<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    levels: &[usize],
    options: SocialOptions,
) -> Result<StrategyProfile> {
    let market = game.market();
    let n = market.len();
    let mut bounds = Vec::with_capacity(n);
    for (i, &l) in levels.iter().enumerate() {
        bounds.push(
            market
                .feasible_range(i, l)
                .ok_or(SolveError::InfeasibleProblem { org: i })?,
        );
    }
    let mut profile: StrategyProfile = bounds
        .iter()
        .zip(levels)
        .map(|(&(lo, hi), &l)| Strategy::new(0.5 * (lo + hi), l))
        .collect();
    let mut welfare = game.social_welfare(&profile);
    let mut step = 0.25;
    for _ in 0..options.max_iters {
        let grad = welfare_d_grad(game, &profile);
        let scale = grad.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
        let candidate: StrategyProfile = (0..n)
            .map(|i| {
                let (lo, hi) = bounds[i];
                Strategy::new(
                    (profile[i].d + step * grad[i] / scale).clamp(lo, hi),
                    levels[i],
                )
            })
            .collect();
        let w = game.social_welfare(&candidate);
        if w > welfare {
            let moved = candidate.distance(&profile);
            profile = candidate;
            welfare = w;
            step = (step * 1.5).min(0.5);
            if moved < options.tol {
                break;
            }
        } else {
            step *= 0.5;
            if step < options.tol * 1e-3 {
                break;
            }
        }
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::solve_scheme;
    use crate::outcome::Scheme;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn welfare_gradient_matches_finite_difference() {
        let g = game(5, 3);
        let profile: StrategyProfile = (0..5)
            .map(|i| {
                let l = g.market().org(i).compute_level_count() - 1;
                let (lo, hi) = g.market().feasible_range(i, l).unwrap();
                Strategy::new(0.5 * (lo + hi), l)
            })
            .collect();
        let grad = welfare_d_grad(&g, &profile);
        for i in 0..5 {
            let h = 1e-7;
            let up = profile.with(i, Strategy::new(profile[i].d + h, profile[i].level));
            let dn = profile.with(i, Strategy::new(profile[i].d - h, profile[i].level));
            let fd = (g.social_welfare(&up) - g.social_welfare(&dn)) / (2.0 * h);
            let rel = (fd - grad[i]).abs() / grad[i].abs().max(1.0);
            assert!(rel < 1e-4, "i={i}: fd {fd} vs analytic {}", grad[i]);
        }
    }

    #[test]
    fn social_optimum_dominates_every_scheme() {
        let g = game(6, 9);
        let opt = solve_social_optimum(&g, SocialOptions::default()).unwrap();
        opt.profile.validate(g.market()).unwrap();
        for scheme in [Scheme::Dbr, Scheme::Wpr, Scheme::Gca, Scheme::Fip] {
            let eq = solve_scheme(&g, scheme).unwrap();
            assert!(
                opt.welfare >= eq.welfare - 1e-6 * opt.welfare.abs(),
                "{scheme:?}: social {} < equilibrium {}",
                opt.welfare,
                eq.welfare
            );
        }
    }

    #[test]
    fn price_of_anarchy_is_at_least_one() {
        let g = game(8, 12);
        let opt = solve_social_optimum(&g, SocialOptions::default()).unwrap();
        let ne = solve_scheme(&g, Scheme::Dbr).unwrap();
        let poa = opt.price_of_anarchy(ne.welfare);
        assert!(poa >= 1.0 - 1e-9, "PoA {poa}");
        assert!(poa < 2.0, "sanity: PoA {poa} should be modest at gamma*");
    }

    #[test]
    fn redistribution_narrows_the_poa_gap() {
        // TradeFL's whole point: at gamma*, the NE welfare is closer to
        // the social optimum than WPR's.
        let g = game(8, 21);
        let opt = solve_social_optimum(&g, SocialOptions::default()).unwrap();
        let dbr = solve_scheme(&g, Scheme::Dbr).unwrap();
        let wpr = solve_scheme(&g, Scheme::Wpr).unwrap();
        let poa_dbr = opt.price_of_anarchy(dbr.welfare);
        let poa_wpr = opt.price_of_anarchy(wpr.welfare);
        assert!(
            poa_dbr <= poa_wpr + 1e-9,
            "redistribution must not worsen PoA: dbr {poa_dbr} vs wpr {poa_wpr}"
        );
    }
}
