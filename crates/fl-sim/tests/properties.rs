//! Property-based tests for the training substrate: linear algebra
//! identities, fit recovery, partition invariants and determinism.
//!
//! Runs on the in-tree `tradefl_runtime::check` harness with pinned
//! seeds; failures print a `TRADEFL_PROP_SEED` replay line.

use tradefl_fl_sim::data::{dirichlet_shard, generate, label_skew, DatasetKind};
use tradefl_fl_sim::linalg::{kernel, Matrix};
use tradefl_fl_sim::model::Mlp;
use tradefl_fl_sim::probe::{ProbePoint, SqrtFit};
use tradefl_runtime::{prop_assert, prop_assert_eq, props};

fn matrix(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| vals[(r * cols + c) % vals.len()])
}

/// Error bound for blocked-vs-naive GEMM agreement with entries in
/// `[-2, 2]`: the blocked kernel reassociates the depth sum (KC
/// blocking) and contracts each multiply-add into a fused `mul_add`,
/// so per element it can drift from the naive left-to-right sum by at
/// most ~`k` rounding steps, each bounded by `ε · |partial sum|` with
/// `|partial sum| ≤ 4k`. The resulting `4k²ε` envelope is loose by
/// design — it documents the reassociation freedom the kernel layer
/// is allowed, nothing tighter.
fn gemm_tol(k: usize) -> f32 {
    4.0 * (k * k).max(1) as f32 * f32::EPSILON
}

props! {
    #![cases = 32]

    /// `(A Bᵀ)` computed by `matmul_transposed` equals the explicit
    /// product against the materialized transpose.
    fn matmul_transposed_matches_explicit(g) {
        let m = g.usize(1..5);
        let k = g.usize(1..5);
        let n = g.usize(1..5);
        let vals = g.vec(1..40usize, |g| g.f32(-2.0..2.0));
        let a = matrix(m, k, &vals);
        let b = matrix(n, k, &vals);
        let bt = Matrix::from_fn(k, n, |r, c| b.get(c, r));
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&bt);
        for r in 0..m {
            for c in 0..n {
                prop_assert!((fast.get(r, c) - slow.get(r, c)).abs() < 1e-4);
            }
        }
    }

    /// `(Aᵀ B)` computed by `transposed_matmul` equals the explicit
    /// product.
    fn transposed_matmul_matches_explicit(g) {
        let m = g.usize(1..5);
        let k = g.usize(1..5);
        let n = g.usize(1..5);
        let vals = g.vec(1..40usize, |g| g.f32(-2.0..2.0));
        let a = matrix(k, m, &vals);
        let b = matrix(k, n, &vals);
        let at = Matrix::from_fn(m, k, |r, c| a.get(c, r));
        let fast = a.transposed_matmul(&b);
        let slow = at.matmul(&b);
        for r in 0..m {
            for c in 0..n {
                prop_assert!((fast.get(r, c) - slow.get(r, c)).abs() < 1e-4);
            }
        }
    }

    /// The sqrt fit exactly recovers curves of its own family.
    fn sqrt_fit_recovers_exact_curves(g) {
        let c0 = g.f64(0.2..1.0);
        let c1 = g.f64(0.1..10.0);
        let base = g.usize(50..500);
        let pts: Vec<ProbePoint> = (1..=6)
            .map(|k| {
                let x = base * k * k;
                ProbePoint { samples: x, accuracy: c0 - c1 / (x as f64).sqrt() }
            })
            .collect();
        let fit = SqrtFit::fit(&pts);
        prop_assert!((fit.c0 - c0).abs() < 1e-6);
        prop_assert!((fit.c1 - c1).abs() < 1e-6);
        prop_assert!(fit.r_squared > 0.999);
    }

    /// MLP parameter vectors round-trip through set_params for random
    /// shapes.
    fn mlp_params_roundtrip(g) {
        let dim = g.usize(2..20);
        let hidden = g.usize(1..16);
        let classes = g.usize(2..8);
        let seed = g.any_u64();
        let a = Mlp::new(dim, hidden, classes, seed);
        let mut b = Mlp::new(dim, hidden, classes, seed.wrapping_add(1));
        b.set_params(&a.to_params());
        prop_assert_eq!(a, b);
    }

    /// Dirichlet shards always have the requested sizes, valid labels,
    /// and are deterministic per seed.
    fn dirichlet_shard_invariants(g) {
        let beta = g.f64(0.05..50.0);
        let seed = g.any_u64();
        let n_orgs = g.usize(2..5);
        let data = generate(DatasetKind::EurosatLike, 600, 3);
        let sizes = vec![600 / n_orgs - 10; n_orgs];
        let shards = dirichlet_shard(&data, &sizes, beta, seed);
        prop_assert_eq!(shards.len(), n_orgs);
        for (s, &want) in shards.iter().zip(&sizes) {
            prop_assert_eq!(s.len(), want);
            prop_assert!(s.labels.iter().all(|&l| l < s.classes));
        }
        let again = dirichlet_shard(&data, &sizes, beta, seed);
        prop_assert_eq!(shards, again);
    }

    /// Label skew is bounded in [0, 1] and zero for single-shard
    /// partitions.
    fn label_skew_bounds(g) {
        let beta = g.f64(0.05..50.0);
        let seed = g.any_u64();
        let data = generate(DatasetKind::FmnistLike, 400, 4);
        let shards = dirichlet_shard(&data, &[150, 150], beta, seed);
        let skew = label_skew(&shards);
        prop_assert!((0.0..=1.0).contains(&skew));
        let single = dirichlet_shard(&data, &[300], beta, seed);
        prop_assert!(label_skew(&single) < 0.05, "one shard ~ pooled distribution");
    }

    /// The blocked `matmul_into` agrees with the naive reference
    /// within [`gemm_tol`] on shapes straddling every tile edge
    /// (MR = 6 rows, NR = 32 columns, KC = 128 depth), and never
    /// reallocates a right-sized output: the tile loops write through
    /// the caller's buffer in place.
    fn blocked_matmul_agrees_and_never_reallocates(g) {
        let m = g.usize(1..20);
        let k = g.usize(1..48);
        let n = g.usize(1..70);
        let vals = g.vec(1..60usize, |g| g.f32(-2.0..2.0));
        let a = matrix(m, k, &vals);
        let b = matrix(k, n, &vals);
        let mut out = Matrix::zeros(m, n);
        let ptr = out.as_slice().as_ptr();
        let cap = out.capacity();
        let mut ws = kernel::Workspace::new();
        kernel::matmul_into(&a, &b, &mut out, &mut ws);
        prop_assert!(std::ptr::eq(out.as_slice().as_ptr(), ptr), "right-sized output moved");
        prop_assert_eq!(out.capacity(), cap);
        let want = kernel::matmul_reference(&a, &b);
        let tol = gemm_tol(k);
        for r in 0..m {
            for c in 0..n {
                prop_assert!(
                    (out.get(r, c) - want.get(r, c)).abs() <= tol,
                    "blocked matmul drifted past the documented bound"
                );
            }
        }
    }

    /// Both transposed blocked products agree with their naive
    /// references within [`gemm_tol`] — `matmul_transposed_into`
    /// (A Bᵀ, the forward path) and `transposed_matmul_into` (Aᵀ B,
    /// the gradient path).
    fn blocked_transposed_products_agree_with_references(g) {
        let m = g.usize(1..20);
        let k = g.usize(1..48);
        let n = g.usize(1..70);
        let vals = g.vec(1..60usize, |g| g.f32(-2.0..2.0));
        let mut ws = kernel::Workspace::new();
        let tol = gemm_tol(k);

        let a = matrix(m, k, &vals);
        let bt = matrix(n, k, &vals);
        let mut out = Matrix::zeros(0, 0);
        kernel::matmul_transposed_into(&a, &bt, &mut out, &mut ws);
        let want = kernel::matmul_transposed_reference(&a, &bt);
        for r in 0..m {
            for c in 0..n {
                prop_assert!((out.get(r, c) - want.get(r, c)).abs() <= tol);
            }
        }

        let at = matrix(k, m, &vals);
        let b = matrix(k, n, &vals);
        let mut out2 = Matrix::zeros(0, 0);
        kernel::transposed_matmul_into(&at, &b, &mut out2, &mut ws);
        let want2 = kernel::transposed_matmul_reference(&at, &b);
        for r in 0..m {
            for c in 0..n {
                prop_assert!((out2.get(r, c) - want2.get(r, c)).abs() <= tol);
            }
        }
    }

    /// ReLU-sparse left operands (exact zeros in ~half the entries —
    /// the case the old naive `a == 0.0` skip exploited) stay within
    /// the same bound: the reference skips zero terms entirely while
    /// the blocked kernel multiplies through them, so agreement here
    /// proves skipping a `0.0 · b` term is a pure reassociation.
    fn blocked_matmul_agrees_on_relu_sparse_inputs(g) {
        let m = g.usize(1..20);
        let k = g.usize(1..48);
        let n = g.usize(1..70);
        let vals = g.vec(2..60usize, |g| {
            if g.usize(0..2) == 0 { 0.0 } else { g.f32(-2.0..2.0) }
        });
        let a = matrix(m, k, &vals);
        let b = matrix(k, n, &vals);
        let mut out = Matrix::zeros(m, n);
        let mut ws = kernel::Workspace::new();
        kernel::matmul_into(&a, &b, &mut out, &mut ws);
        let want = kernel::matmul_reference(&a, &b);
        let tol = gemm_tol(k);
        for r in 0..m {
            for c in 0..n {
                prop_assert!((out.get(r, c) - want.get(r, c)).abs() <= tol);
            }
        }
    }

    /// Dataset generation is seed-deterministic and kind-shaped for any
    /// seed.
    fn generation_invariants(g) {
        let seed = g.any_u64();
        for kind in DatasetKind::ALL {
            let d = generate(kind, 64, seed);
            prop_assert_eq!(d.len(), 64);
            prop_assert_eq!(d.dim(), kind.dim());
            prop_assert_eq!(&d, &generate(kind, 64, seed));
        }
    }
}
