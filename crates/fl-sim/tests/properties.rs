//! Property-based tests for the training substrate: linear algebra
//! identities, fit recovery, partition invariants and determinism.
//!
//! Runs on the in-tree `tradefl_runtime::check` harness with pinned
//! seeds; failures print a `TRADEFL_PROP_SEED` replay line.

use tradefl_fl_sim::data::{dirichlet_shard, generate, label_skew, DatasetKind};
use tradefl_fl_sim::linalg::Matrix;
use tradefl_fl_sim::model::Mlp;
use tradefl_fl_sim::probe::{ProbePoint, SqrtFit};
use tradefl_runtime::{prop_assert, prop_assert_eq, props};

fn matrix(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| vals[(r * cols + c) % vals.len()])
}

props! {
    #![cases = 32]

    /// `(A Bᵀ)` computed by `matmul_transposed` equals the explicit
    /// product against the materialized transpose.
    fn matmul_transposed_matches_explicit(g) {
        let m = g.usize(1..5);
        let k = g.usize(1..5);
        let n = g.usize(1..5);
        let vals = g.vec(1..40usize, |g| g.f32(-2.0..2.0));
        let a = matrix(m, k, &vals);
        let b = matrix(n, k, &vals);
        let bt = Matrix::from_fn(k, n, |r, c| b.get(c, r));
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&bt);
        for r in 0..m {
            for c in 0..n {
                prop_assert!((fast.get(r, c) - slow.get(r, c)).abs() < 1e-4);
            }
        }
    }

    /// `(Aᵀ B)` computed by `transposed_matmul` equals the explicit
    /// product.
    fn transposed_matmul_matches_explicit(g) {
        let m = g.usize(1..5);
        let k = g.usize(1..5);
        let n = g.usize(1..5);
        let vals = g.vec(1..40usize, |g| g.f32(-2.0..2.0));
        let a = matrix(k, m, &vals);
        let b = matrix(k, n, &vals);
        let at = Matrix::from_fn(m, k, |r, c| a.get(c, r));
        let fast = a.transposed_matmul(&b);
        let slow = at.matmul(&b);
        for r in 0..m {
            for c in 0..n {
                prop_assert!((fast.get(r, c) - slow.get(r, c)).abs() < 1e-4);
            }
        }
    }

    /// The sqrt fit exactly recovers curves of its own family.
    fn sqrt_fit_recovers_exact_curves(g) {
        let c0 = g.f64(0.2..1.0);
        let c1 = g.f64(0.1..10.0);
        let base = g.usize(50..500);
        let pts: Vec<ProbePoint> = (1..=6)
            .map(|k| {
                let x = base * k * k;
                ProbePoint { samples: x, accuracy: c0 - c1 / (x as f64).sqrt() }
            })
            .collect();
        let fit = SqrtFit::fit(&pts);
        prop_assert!((fit.c0 - c0).abs() < 1e-6);
        prop_assert!((fit.c1 - c1).abs() < 1e-6);
        prop_assert!(fit.r_squared > 0.999);
    }

    /// MLP parameter vectors round-trip through set_params for random
    /// shapes.
    fn mlp_params_roundtrip(g) {
        let dim = g.usize(2..20);
        let hidden = g.usize(1..16);
        let classes = g.usize(2..8);
        let seed = g.any_u64();
        let a = Mlp::new(dim, hidden, classes, seed);
        let mut b = Mlp::new(dim, hidden, classes, seed.wrapping_add(1));
        b.set_params(&a.to_params());
        prop_assert_eq!(a, b);
    }

    /// Dirichlet shards always have the requested sizes, valid labels,
    /// and are deterministic per seed.
    fn dirichlet_shard_invariants(g) {
        let beta = g.f64(0.05..50.0);
        let seed = g.any_u64();
        let n_orgs = g.usize(2..5);
        let data = generate(DatasetKind::EurosatLike, 600, 3);
        let sizes = vec![600 / n_orgs - 10; n_orgs];
        let shards = dirichlet_shard(&data, &sizes, beta, seed);
        prop_assert_eq!(shards.len(), n_orgs);
        for (s, &want) in shards.iter().zip(&sizes) {
            prop_assert_eq!(s.len(), want);
            prop_assert!(s.labels.iter().all(|&l| l < s.classes));
        }
        let again = dirichlet_shard(&data, &sizes, beta, seed);
        prop_assert_eq!(shards, again);
    }

    /// Label skew is bounded in [0, 1] and zero for single-shard
    /// partitions.
    fn label_skew_bounds(g) {
        let beta = g.f64(0.05..50.0);
        let seed = g.any_u64();
        let data = generate(DatasetKind::FmnistLike, 400, 4);
        let shards = dirichlet_shard(&data, &[150, 150], beta, seed);
        let skew = label_skew(&shards);
        prop_assert!((0.0..=1.0).contains(&skew));
        let single = dirichlet_shard(&data, &[300], beta, seed);
        prop_assert!(label_skew(&single) < 0.05, "one shard ~ pooled distribution");
    }

    /// Dataset generation is seed-deterministic and kind-shaped for any
    /// seed.
    fn generation_invariants(g) {
        let seed = g.any_u64();
        for kind in DatasetKind::ALL {
            let d = generate(kind, 64, seed);
            prop_assert_eq!(d.len(), 64);
            prop_assert_eq!(d.dim(), kind.dim());
            prop_assert_eq!(&d, &generate(kind, 64, seed));
        }
    }
}
