//! Worker-count bit-identity for the streaming aggregation path.
//!
//! The thousand-silo scaling work (DESIGN.md §12) hinges on one
//! contract: the hierarchical two-level reduce of
//! `train_federated_grouped` is a pure function of the inputs, never
//! of the schedule. These tests pin that contract at the scale the
//! pool actually engages (`round_steps >= 2048`) — N=1000 silos — by
//! bit-comparing final parameters across 1/4/8-worker pools.

use tradefl_fl_sim::data::{generate, DatasetKind};
use tradefl_fl_sim::fed::{train_federated_grouped, FedConfig, EDGE_GROUP_SIZE};
use tradefl_fl_sim::model::{Mlp, ModelKind};
use tradefl_runtime::sync::pool::Pool;

/// Bits of the final global model after training `silos` shards of
/// `per_silo` samples each for `rounds` rounds on a `workers`-pool.
fn final_param_bits(
    silos: usize,
    per_silo: usize,
    rounds: usize,
    group_size: usize,
    workers: usize,
) -> Vec<u32> {
    let test_len = 64;
    let corpus = generate(DatasetKind::EurosatLike, silos * per_silo + test_len, 23);
    let mut sizes = vec![per_silo; silos];
    sizes.push(test_len);
    let mut shards = corpus.shard(&sizes);
    let test = shards.pop().unwrap();
    let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 5);
    let fractions = vec![1.0; silos];
    let config = FedConfig { rounds, local_epochs: 1, batch_size: 16, lr: 0.1, seed: 9 };
    let pool = Pool::new(workers);
    let out =
        train_federated_grouped(global, &shards, &test, &fractions, &config, group_size, &pool)
            .unwrap();
    out.model.to_params().iter().map(|p| p.to_bits()).collect()
}

#[test]
fn thousand_silo_round_is_bit_identical_across_worker_counts() {
    // 1000 silos x 3 samples: round_steps = 3000 clears the pool
    // engagement threshold, and 1000 / 32 leaves a ragged tail group,
    // so the pooled window dispatch, the streaming group partials and
    // the fixed-order server merge are all exercised for real.
    let serial = final_param_bits(1000, 3, 1, EDGE_GROUP_SIZE, 1);
    for workers in [4, 8] {
        let pooled = final_param_bits(1000, 3, 1, EDGE_GROUP_SIZE, workers);
        assert_eq!(
            serial, pooled,
            "streaming aggregation diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn every_group_size_is_bit_identical_across_worker_counts() {
    // Different group sizes associate the weighted sum differently, so
    // their bits legitimately differ from each other — but each
    // grouping must be internally deterministic: the same group_size
    // yields the same bits for every worker count, including the
    // degenerate one-silo-per-group and ragged 64/7 partitions.
    for group_size in [1, 7, EDGE_GROUP_SIZE] {
        let serial = final_param_bits(64, 40, 2, group_size, 1);
        let pooled = final_param_bits(64, 40, 2, group_size, 4);
        assert_eq!(
            serial, pooled,
            "group_size {group_size} diverged between 1 and 4 workers"
        );
    }
}
