//! Classification metrics beyond plain accuracy: confusion matrices,
//! per-class precision/recall/F1 — what a downstream user needs to
//! judge the trained global (or personalized) model on their own silo.

use crate::data::Dataset;
use crate::model::Mlp;

/// A `classes × classes` confusion matrix (`rows` = true class,
/// `cols` = predicted class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Evaluates `model` on `data` and tabulates predictions.
    pub fn evaluate(model: &Mlp, data: &Dataset) -> Self {
        let classes = data.classes;
        let mut counts = vec![0usize; classes * classes];
        if !data.is_empty() {
            let probs = model.forward(&data.features);
            for (r, &label) in data.labels.iter().enumerate() {
                let predicted = probs
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                counts[label * classes + predicted] += 1;
            }
        }
        Self { classes, counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.classes + p]
    }

    /// Total samples tabulated.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        let correct: usize = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class precision (NaN for classes never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: usize = (0..self.classes).map(|t| self.count(t, class)).sum();
        if predicted == 0 {
            return f64::NAN;
        }
        self.count(class, class) as f64 / predicted as f64
    }

    /// Per-class recall (NaN for classes absent from the data).
    pub fn recall(&self, class: usize) -> f64 {
        let actual: usize = (0..self.classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            return f64::NAN;
        }
        self.count(class, class) as f64 / actual as f64
    }

    /// Per-class F1 (harmonic mean of precision and recall; NaN when
    /// either is undefined, 0 when both are 0).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p.is_nan() || r.is_nan() {
            return f64::NAN;
        }
        // lint:allow(no-float-eq): exact-zero guard for the 0/0 F1 case
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Macro-averaged F1 over classes with defined F1.
    pub fn macro_f1(&self) -> f64 {
        let defined: Vec<f64> =
            (0..self.classes).map(|c| self.f1(c)).filter(|v| !v.is_nan()).collect();
        if defined.is_empty() {
            return f64::NAN;
        }
        defined.iter().sum::<f64>() / defined.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate, DatasetKind};
    use crate::model::{Mlp, ModelKind};

    fn trained_pair() -> (Mlp, Dataset) {
        let pool = generate(DatasetKind::EurosatLike, 900, 5);
        let train = pool.take(600);
        let test = pool.shard(&[600, 300]).pop().unwrap();
        let mut m = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 5);
        for _ in 0..40 {
            m.sgd_step(&train, 0.1);
        }
        (m, test)
    }

    #[test]
    fn accuracy_matches_model_evaluate() {
        let (m, test) = trained_pair();
        let cm = ConfusionMatrix::evaluate(&m, &test);
        let (_, acc) = m.evaluate(&test);
        assert!((cm.accuracy() - acc as f64).abs() < 1e-6);
        assert_eq!(cm.total(), test.len());
        assert_eq!(cm.classes(), 10);
    }

    #[test]
    fn row_sums_equal_class_counts() {
        let (m, test) = trained_pair();
        let cm = ConfusionMatrix::evaluate(&m, &test);
        for c in 0..cm.classes() {
            let row_sum: usize = (0..cm.classes()).map(|p| cm.count(c, p)).sum();
            let actual = test.labels.iter().filter(|&&l| l == c).count();
            assert_eq!(row_sum, actual, "class {c}");
        }
    }

    #[test]
    fn f1_bounds_and_macro() {
        let (m, test) = trained_pair();
        let cm = ConfusionMatrix::evaluate(&m, &test);
        for c in 0..cm.classes() {
            let f1 = cm.f1(c);
            assert!(f1.is_nan() || (0.0..=1.0).contains(&f1));
        }
        let macro_f1 = cm.macro_f1();
        assert!((0.0..=1.0).contains(&macro_f1));
        // A decently trained model must beat random-guessing F1.
        assert!(macro_f1 > 0.3, "macro F1 {macro_f1}");
    }

    #[test]
    fn perfect_predictor_has_unit_metrics() {
        // Degenerate 2-class dataset the model can fit exactly: one
        // point per class, trained to saturation.
        let pool = generate(DatasetKind::EurosatLike, 200, 9);
        let mut m = Mlp::new(pool.dim(), 32, pool.classes, 1);
        for _ in 0..300 {
            m.sgd_step(&pool, 0.2);
        }
        let cm = ConfusionMatrix::evaluate(&m, &pool);
        assert!(cm.accuracy() > 0.95, "train accuracy {}", cm.accuracy());
    }

    #[test]
    fn empty_dataset_yields_nan_metrics() {
        let pool = generate(DatasetKind::EurosatLike, 10, 1);
        let m = Mlp::new(pool.dim(), 8, pool.classes, 1);
        let cm = ConfusionMatrix::evaluate(&m, &pool.take(0));
        assert!(cm.accuracy().is_nan());
        assert_eq!(cm.total(), 0);
    }
}
