//! Cache-blocked, register-tiled GEMM kernels (DESIGN.md §10).
//!
//! All three products the MLP substrate needs — `A·B`, `A·Bᵀ` and
//! `Aᵀ·B` — funnel through one blocked driver ([`gemm`]) that packs
//! operand panels into contiguous scratch buffers ([`Workspace`]) and
//! runs a fixed-size MR×NR register-tile microkernel over them. The
//! microkernel is written as plain indexed loops over constant-length
//! slices so the autovectorizer emits SIMD on every target — pure safe
//! std, no intrinsics, no `unsafe`.
//!
//! # Determinism contract
//!
//! f32 addition is not associative, so *blocking changes the result
//! bits* relative to the naive i-k-j loop. What this module guarantees
//! instead is **one fixed accumulation order per output element**,
//! independent of thread count and of everything except the operand
//! shapes and the compile-time block constants:
//!
//! - the block traversal is always `jc → pc → ic → jr → ir` with the
//!   constants [`MC`]/[`KC`]/[`NC`] fixed at compile time;
//! - inside a microtile, each element accumulates its k-products in
//!   ascending k order into a register, and per-`KC`-block partial
//!   sums are added to the output in ascending `pc` order;
//! - the pooled entry point ([`matmul_into_pooled`]) splits rows on
//!   `MC`-aligned boundaries only, so every output element is computed
//!   by exactly one task in exactly the serial traversal order —
//!   bit-identical for any worker count (asserted by the unit tests
//!   here and by `tests/determinism.rs`).
//!
//! The k dimension is never padded; M/N edge tiles are zero-padded in
//! the packed panels and the padded lanes are discarded on write-back,
//! so padding can never contaminate a valid output element.

use super::Matrix;
use tradefl_runtime::sync::pool::{host_parallelism, Pool};

/// Microkernel tile height (rows of C held in registers).
pub const MR: usize = 6;
/// Microkernel tile width (columns of C held in registers).
pub const NR: usize = 32;
/// Row-block size: rows of A packed and reused per B panel.
pub const MC: usize = 120;
/// Depth-block size: the k-extent of one packed panel pair.
pub const KC: usize = 128;
/// Column-block size: columns of B packed per outer iteration.
pub const NC: usize = 256;

/// Reusable packing scratch for the blocked kernels.
///
/// Buffers grow on first use and are then reused via `Vec::resize`
/// within capacity, so a workspace that has seen a shape once performs
/// zero heap allocations on every later call with shapes no larger.
/// Ownership rule (DESIGN.md §10): a `Workspace` is single-threaded
/// scratch — it is owned by exactly one training loop (or one pooled
/// task) and never shared.
#[derive(Debug, Default)]
pub struct Workspace {
    pack_a: Vec<f32>,
    pack_b: Vec<f32>,
    zeros: Vec<f32>,
}

impl Workspace {
    /// An empty workspace; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        // lint:allow(no-alloc-in-hot-loop): the constructor is the cold path — these Vecs are the buffers every later hot call reuses
        Self { pack_a: Vec::new(), pack_b: Vec::new(), zeros: Vec::new() }
    }
}

/// `out = a · b` into a reused output matrix (no allocation once
/// `out` and `ws` have capacity).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, ws: &mut Workspace) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    out.resize(m, n);
    let ad = a.as_slice();
    let bd = b.as_slice();
    gemm_direct_a(m, n, k, ad, |p, c| bd[p * n + c], out.as_mut_slice(), ws);
}

/// `out = a · bᵀ` without materializing the transpose.
///
/// # Panics
///
/// Panics if `a.cols() != bt.cols()`.
pub fn matmul_transposed_into(a: &Matrix, bt: &Matrix, out: &mut Matrix, ws: &mut Workspace) {
    assert_eq!(a.cols(), bt.cols(), "inner dimensions must agree");
    let (m, n, k) = (a.rows(), bt.rows(), a.cols());
    out.resize(m, n);
    let ad = a.as_slice();
    let bd = bt.as_slice();
    gemm_direct_a(m, n, k, ad, |p, c| bd[c * k + p], out.as_mut_slice(), ws);
}

/// Flop bound (`m·n·k`) below which [`transposed_matmul_into`]
/// considers the naive sparsity-skipping loop instead of the blocked
/// driver. Sub-blocking shapes (the 32–96-class per-silo gradient
/// products) can't amortize the pack-B pass, and the blocked path
/// cannot skip work on ReLU-zeroed activation columns — the recorded
/// `grad_weights_relu_sparse_64x32x96` regression. The bound and the
/// zero census below depend only on the operand values, never on
/// worker count, so dispatch is deterministic.
const SMALL_SPARSE_FLOPS: usize = 1 << 19;

/// Minimum exact-zero fraction of `at` for the sparse loop to win:
/// below this the blocked kernel's SIMD tiles beat skipping.
const SMALL_SPARSE_MIN_ZEROS: f32 = 0.25;

/// Smallest batch worth a pooled dispatch: below this, the cross-thread
/// wakeup and join overhead (microseconds per worker) is on the order
/// of the products themselves, measured on the per-silo matrices the
/// batched path exists for. Smaller batches run the serial loop —
/// bit-identical either way, since each product is computed by the
/// serial kernel regardless of which thread runs it.
const BATCH_DISPATCH_MIN: usize = 8;

/// Worker count a pooled dispatch can actually profit from: capped by
/// the hardware threads the host exposes. On a single-core host a pool
/// of N workers time-slices one core and the dispatch overhead is pure
/// loss (measured 1.004x — noise — on the recorded baseline), so the
/// effective count drops to 1 and the serial path runs instead.
fn effective_workers(pool: &Pool) -> usize {
    pool.workers().min(host_parallelism())
}

/// `out = atᵀ · b` without materializing the transpose.
///
/// Small shapes (`m·n·k <` [`SMALL_SPARSE_FLOPS`]) whose `at` operand
/// is at least [`SMALL_SPARSE_MIN_ZEROS`] exact zeros — ReLU
/// activations in the backward weight-gradient product — dispatch to
/// the naive k-outer loop with the sparsity skip (bit-identical to
/// [`transposed_matmul_reference`]); everything else runs the blocked
/// driver. The census costs one `O(m·k)` pass, negligible next to the
/// `O(m·n·k)` product.
///
/// # Panics
///
/// Panics if `at.rows() != b.rows()`.
pub fn transposed_matmul_into(at: &Matrix, b: &Matrix, out: &mut Matrix, ws: &mut Workspace) {
    assert_eq!(at.rows(), b.rows(), "inner dimensions must agree");
    let (m, n, k) = (at.cols(), b.cols(), at.rows());
    out.resize(m, n);
    let ad = at.as_slice();
    let bd = b.as_slice();
    if m * n * k < SMALL_SPARSE_FLOPS && !ad.is_empty() {
        // lint:allow(no-float-eq): ReLU emits exact 0.0, so the zero census is exact
        let zeros = ad.iter().filter(|&&v| v == 0.0).count();
        if zeros as f32 >= SMALL_SPARSE_MIN_ZEROS * ad.len() as f32 {
            let od = out.as_mut_slice();
            od.fill(0.0);
            for p in 0..k {
                let arow = &ad[p * m..(p + 1) * m];
                let brow = &bd[p * n..(p + 1) * n];
                for (r, &av) in arow.iter().enumerate() {
                    // lint:allow(no-float-eq): ReLU emits exact 0.0, so the sparsity skip is exact
                    if av == 0.0 {
                        continue;
                    }
                    let out_row = &mut od[r * n..(r + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            return;
        }
    }
    gemm(m, n, k, |r, p| ad[p * m + r], |p, c| bd[p * n + c], out.as_mut_slice(), ws);
}

/// Pooled `out = a · b`: splits the row dimension across the pool on
/// `MC`-aligned boundaries, so the result is bit-identical to
/// [`matmul_into`] for any worker count (see the module docs).
///
/// Small products (fewer than two row blocks) and one-worker pools
/// take the serial path directly.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_into_pooled(a: &Matrix, b: &Matrix, out: &mut Matrix, pool: &Pool) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    out.resize(m, n);
    let workers = effective_workers(pool);
    if workers <= 1 || m < 2 * MC || n == 0 {
        let mut ws = Workspace::new();
        return matmul_into(a, b, out, &mut ws);
    }
    let blocks = m.div_ceil(MC);
    // Rows per task, rounded to whole MC blocks so each task's internal
    // ic loop lands on the same absolute block boundaries as the serial
    // traversal (the determinism contract above).
    let per = blocks.div_ceil(workers) * MC;
    let ad = a.as_slice();
    let bd = b.as_slice();
    let chunks: Vec<(usize, &mut [f32])> =
        out.as_mut_slice().chunks_mut(per * n).enumerate().collect();
    pool.scope(|s| {
        for (t, chunk) in chunks {
            s.spawn(move || {
                let r0 = t * per;
                let rows = chunk.len() / n;
                let mut ws = Workspace::new();
                let a_rows = &ad[r0 * k..(r0 + rows) * k];
                gemm_direct_a(rows, n, k, a_rows, |p, c| bd[p * n + c], chunk, &mut ws);
            });
        }
    });
}

/// Batched small-GEMM dispatch: `outs[i] = ops[i].0 · ops[i].1` for a
/// batch of independent products through one pooled dispatch.
///
/// The per-silo products of a thousand-silo round are individually
/// far below [`matmul_into_pooled`]'s `2·MC` row threshold, so routing
/// them one-by-one runs serial and pays a `Workspace` pack-buffer
/// growth per call site. This driver instead splits the *batch* into
/// contiguous chunks, one per worker, and reuses a single `Workspace`
/// across every product in a chunk — the packing buffers are sized on
/// the first product and stay warm for the rest.
///
/// Each product is computed by the serial [`matmul_into`], so results
/// are bit-identical to a serial loop over the batch for any worker
/// count (chunking only changes *which thread* runs a product, never
/// the arithmetic inside it).
///
/// Falls back to the serial loop outright when the batch is below
/// [`BATCH_DISPATCH_MIN`] or the host exposes a single hardware thread
/// ([`effective_workers`]) — situations where the pooled dispatch is
/// measured overhead with no parallelism to buy.
///
/// # Panics
///
/// Panics if `ops.len() != outs.len()` or any product's inner
/// dimensions disagree.
pub fn matmul_batch_into_pooled(ops: &[(&Matrix, &Matrix)], outs: &mut [Matrix], pool: &Pool) {
    assert_eq!(ops.len(), outs.len(), "one output per product");
    let workers = effective_workers(pool);
    if workers <= 1 || ops.len() < BATCH_DISPATCH_MIN {
        let mut ws = Workspace::new();
        for ((a, b), out) in ops.iter().zip(outs.iter_mut()) {
            matmul_into(a, b, out, &mut ws);
        }
        return;
    }
    let per = ops.len().div_ceil(workers);
    pool.scope(|s| {
        for (t, chunk) in outs.chunks_mut(per).enumerate() {
            let ops = &ops[t * per..t * per + chunk.len()];
            s.spawn(move || {
                let mut ws = Workspace::new();
                for ((a, b), out) in ops.iter().zip(chunk.iter_mut()) {
                    matmul_into(a, b, out, &mut ws);
                }
            });
        }
    });
}

/// The blocked driver: `out = A · B` for `A` of shape `m×k` and `B`
/// of shape `k×n`, both supplied as element accessors so all three
/// transpose variants share one traversal.
///
/// `out` must hold exactly `m * n` elements (row-major, leading
/// dimension `n`) and is overwritten.
fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a_at: impl Fn(usize, usize) -> f32,
    b_at: impl Fn(usize, usize) -> f32,
    out: &mut [f32],
    ws: &mut Workspace,
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        out.fill(0.0);
        return;
    }
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut ws.pack_b, jc, nc, pc, kc, &b_at);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(&mut ws.pack_a, ic, mc, pc, kc, &a_at);
                // The first depth block writes tiles directly (out may
                // hold stale data from a reused buffer); later blocks
                // accumulate, in ascending pc order per the contract.
                block_multiply(
                    &ws.pack_a, &ws.pack_b, mc, nc, kc, out, n, ic, jc, pc == 0,
                );
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// The blocked driver for row-major A: `out = A · B` where `A` is a
/// contiguous `m×k` row-major slice. Identical traversal and
/// per-element accumulation order to [`gemm`], but A is read in place
/// — each microtile loads its MR rows directly — which skips the
/// pack-A write+read pass entirely. That pass is pure memory traffic
/// over the largest operand in the eval/forward shapes, so skipping
/// it is worth ~20% there.
///
/// B still goes through [`pack_b`], which is what makes the B loads
/// contiguous NR-wide vectors regardless of the transpose variant.
fn gemm_direct_a(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b_at: impl Fn(usize, usize) -> f32,
    out: &mut [f32],
    ws: &mut Workspace,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    if m == 0 || n == 0 || k == 0 {
        out.fill(0.0);
        return;
    }
    ws.zeros.resize(KC.min(k), 0.0);
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut ws.pack_b, jc, nc, pc, kc, &b_at);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                block_multiply_direct(
                    a, k, &ws.zeros, &ws.pack_b, mc, nc, kc, out, n, ic, jc, pc,
                );
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Packs an `mc × kc` block of A into MR-row panels: panel `pi` holds
/// rows `[ic + pi·MR, ic + (pi+1)·MR)` with each row's `kc` depth
/// elements contiguous (`[i·kc + p]`), so the microkernel sees the
/// same row-slice shape as the direct path. Rows past `mc` are
/// zero-padded.
fn pack_a(
    buf: &mut Vec<f32>,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    a_at: &impl Fn(usize, usize) -> f32,
) {
    let panels = mc.div_ceil(MR);
    buf.resize(panels * kc * MR, 0.0);
    for pi in 0..panels {
        let panel = &mut buf[pi * kc * MR..(pi + 1) * kc * MR];
        let r0 = pi * MR;
        for (i, row) in panel.chunks_exact_mut(kc).enumerate() {
            let r = r0 + i;
            if r < mc {
                for (p, d) in row.iter_mut().enumerate() {
                    *d = a_at(ic + r, pc + p);
                }
            } else {
                row.fill(0.0);
            }
        }
    }
}

/// Packs a `kc × nc` block of B into NR-column panels: panel `pj`
/// holds columns `[jc + pj·NR, jc + (pj+1)·NR)` laid out `[p·NR + j]`,
/// with columns past `nc` zero-padded.
fn pack_b(
    buf: &mut Vec<f32>,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    b_at: &impl Fn(usize, usize) -> f32,
) {
    let panels = nc.div_ceil(NR);
    buf.resize(panels * kc * NR, 0.0);
    for pj in 0..panels {
        let panel = &mut buf[pj * kc * NR..(pj + 1) * kc * NR];
        let c0 = pj * NR;
        for p in 0..kc {
            let dst = &mut panel[p * NR..p * NR + NR];
            for (j, d) in dst.iter_mut().enumerate() {
                let c = c0 + j;
                *d = if c < nc { b_at(pc + p, jc + c) } else { 0.0 };
            }
        }
    }
}

/// Runs the microkernel over every (ir, jr) tile of one packed block
/// pair. The first depth block (`first`) stores tiles into `out`
/// directly; later blocks add their partial products.
#[allow(clippy::too_many_arguments)]
fn block_multiply(
    pack_a: &[f32],
    pack_b: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
    first: bool,
) {
    let mut jr = 0;
    while jr < nc {
        let b_panel = &pack_b[(jr / NR) * kc * NR..(jr / NR + 1) * kc * NR];
        let nr_eff = NR.min(nc - jr);
        let mut ir = 0;
        while ir < mc {
            let a_panel = &pack_a[(ir / MR) * kc * MR..(ir / MR + 1) * kc * MR];
            let mr_eff = MR.min(mc - ir);
            let mut a_rows = [&a_panel[..kc]; MR];
            for (i, slot) in a_rows.iter_mut().enumerate() {
                *slot = &a_panel[i * kc..(i + 1) * kc];
            }
            let acc = microtile(kc, &a_rows, b_panel);
            for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
                let row = &mut out[(ic + ir + i) * ldc + jc + jr..][..nr_eff];
                if first {
                    row.copy_from_slice(&acc_row[..nr_eff]);
                } else {
                    for (o, &v) in row.iter_mut().zip(acc_row) {
                        *o += v;
                    }
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

/// [`block_multiply`] for the direct-A driver: A rows are sliced in
/// place (`a[row·lda + pc ..][.. kc]`), with rows past the end of the
/// matrix standing in as the shared zero row so the microkernel shape
/// stays fixed. Accumulation order per output element is identical to
/// the packed path.
#[allow(clippy::too_many_arguments)]
fn block_multiply_direct(
    a: &[f32],
    lda: usize,
    zeros: &[f32],
    pack_b: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
    pc: usize,
) {
    let first = pc == 0;
    let m = a.len() / lda;
    let mut jr = 0;
    while jr < nc {
        let b_panel = &pack_b[(jr / NR) * kc * NR..(jr / NR + 1) * kc * NR];
        let nr_eff = NR.min(nc - jr);
        let mut ir = 0;
        while ir < mc {
            let mr_eff = MR.min(mc - ir);
            let mut a_rows = [&zeros[..kc]; MR];
            for (i, slot) in a_rows.iter_mut().enumerate().take(mr_eff) {
                let r = ic + ir + i;
                debug_assert!(r < m);
                *slot = &a[r * lda + pc..r * lda + pc + kc];
            }
            let acc = microtile(kc, &a_rows, b_panel);
            for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
                let row = &mut out[(ic + ir + i) * ldc + jc + jr..][..nr_eff];
                if first {
                    row.copy_from_slice(&acc_row[..nr_eff]);
                } else {
                    for (o, &v) in row.iter_mut().zip(acc_row) {
                        *o += v;
                    }
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

/// The MR×NR register-tile microkernel: `a_rows[i]` is the `kc`-long
/// depth slice of output row `i` — a packed panel row, an in-place
/// matrix row, or the shared zero row for padded rows. Each element
/// accumulates its products in ascending k order with one rounding per
/// step (`mul_add`); targets without hardware FMA would take a libm
/// call per step, which is why the committed `.cargo/config.toml`
/// raises x86 builds to `x86-64-v3`.
///
/// The depth loop zips one iterator per row so no load needs a bounds
/// check, and each accumulator row gets its own explicit inner loop so
/// the autovectorizer keeps the whole tile in SIMD registers. That
/// spells the rows out, so this function is written for `MR == 6`
/// exactly (compile-time guarded below).
#[inline(always)]
fn microtile(kc: usize, a_rows: &[&[f32]; MR], b_panel: &[f32]) -> [[f32; NR]; MR] {
    const { assert!(MR == 6, "microtile unrolls exactly MR = 6 row iterators") };
    let [r0, r1, r2, r3, r4, r5] = *a_rows;
    let mut acc = [[0.0f32; NR]; MR];
    let steps = b_panel
        .chunks_exact(NR)
        .zip(&r0[..kc])
        .zip(&r1[..kc])
        .zip(&r2[..kc])
        .zip(&r3[..kc])
        .zip(&r4[..kc])
        .zip(&r5[..kc]);
    let [acc0, acc1, acc2, acc3, acc4, acc5] = &mut acc;
    for ((((((b, &a0), &a1), &a2), &a3), &a4), &a5) in steps {
        // Same single-rounding FMA as the packed microkernel; one
        // explicit loop per row keeps each accumulator row's chain
        // free of the temp-array shuffle the rolled form emits.
        for (c, &bv) in acc0.iter_mut().zip(b) {
            *c = a0.mul_add(bv, *c);
        }
        for (c, &bv) in acc1.iter_mut().zip(b) {
            *c = a1.mul_add(bv, *c);
        }
        for (c, &bv) in acc2.iter_mut().zip(b) {
            *c = a2.mul_add(bv, *c);
        }
        for (c, &bv) in acc3.iter_mut().zip(b) {
            *c = a3.mul_add(bv, *c);
        }
        for (c, &bv) in acc4.iter_mut().zip(b) {
            *c = a4.mul_add(bv, *c);
        }
        for (c, &bv) in acc5.iter_mut().zip(b) {
            *c = a5.mul_add(bv, *c);
        }
    }
    acc
}

/// The pre-kernel naive `a · b` (i-k-j over row slices with the
/// ReLU-sparsity skip), kept as the reference implementation for the
/// property tests and the `BENCH_gemm.json` baseline.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let n = b.cols();
    for r in 0..a.rows() {
        let arow = a.row(r);
        let out_row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
        for (k, &av) in arow.iter().enumerate() {
            // lint:allow(no-float-eq): ReLU emits exact 0.0, so the sparsity skip is exact
            if av == 0.0 {
                continue;
            }
            let brow = b.row(k);
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// The pre-kernel naive `a · bᵀ` (dot products over row slices), the
/// reference for [`matmul_transposed_into`].
pub fn matmul_transposed_reference(a: &Matrix, bt: &Matrix) -> Matrix {
    assert_eq!(a.cols(), bt.cols(), "inner dimensions must agree");
    let mut out = Matrix::zeros(a.rows(), bt.rows());
    let n = bt.rows();
    for r in 0..a.rows() {
        let arow = a.row(r);
        for c in 0..n {
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(bt.row(c)) {
                acc += av * bv;
            }
            out.set(r, c, acc);
        }
    }
    out
}

/// The pre-kernel naive `atᵀ · b` (k-outer with the sparsity skip),
/// the reference for [`transposed_matmul_into`].
pub fn transposed_matmul_reference(at: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(at.rows(), b.rows(), "inner dimensions must agree");
    let mut out = Matrix::zeros(at.cols(), b.cols());
    for k in 0..at.rows() {
        let arow = at.row(k);
        let brow = b.row(k);
        for (r, &av) in arow.iter().enumerate() {
            // lint:allow(no-float-eq): ReLU emits exact 0.0, so the sparsity skip is exact
            if av == 0.0 {
                continue;
            }
            let out_row = out.row_mut(r);
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_runtime::rng::{Rng, SeedableRng, StdRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_reference_across_edge_shapes() {
        // Shapes straddling every block boundary: unit, sub-tile,
        // exact-tile, one-past-tile, and multi-KC depth.
        let shapes = [
            (1, 1, 1),
            (3, 5, 2),
            (MR, NR, 7),
            (MR + 1, NR + 1, KC),
            (2 * MR, 3 * NR, KC + 3),
            (MC, 17, 2 * KC + 1),
            (MC + 5, NR, 33),
            (300, 96, 64),
        ];
        let mut ws = Workspace::new();
        for (idx, &(m, n, k)) in shapes.iter().enumerate() {
            let a = random(m, k, idx as u64);
            let b = random(k, n, 100 + idx as u64);
            let reference = matmul_reference(&a, &b);
            let mut blocked = Matrix::zeros(0, 0);
            matmul_into(&a, &b, &mut blocked, &mut ws);
            assert_close(&blocked, &reference, 1e-4 * k as f32);

            let bt = random(n, k, 200 + idx as u64);
            let reference = matmul_transposed_reference(&a, &bt);
            matmul_transposed_into(&a, &bt, &mut blocked, &mut ws);
            assert_close(&blocked, &reference, 1e-4 * k as f32);

            let at = random(k, m, 300 + idx as u64);
            let bb = random(k, n, 400 + idx as u64);
            let reference = transposed_matmul_reference(&at, &bb);
            transposed_matmul_into(&at, &bb, &mut blocked, &mut ws);
            assert_close(&blocked, &reference, 1e-4 * k as f32);
        }
    }

    #[test]
    fn empty_dimensions_yield_zero_or_empty_outputs() {
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        // k = 0: a well-defined all-zero product.
        matmul_into(&Matrix::zeros(3, 0), &Matrix::zeros(0, 4), &mut out, &mut ws);
        assert_eq!((out.rows(), out.cols()), (3, 4));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        // m = 0 and n = 0: empty outputs.
        matmul_into(&Matrix::zeros(0, 5), &Matrix::zeros(5, 4), &mut out, &mut ws);
        assert_eq!((out.rows(), out.cols()), (0, 4));
        matmul_into(&Matrix::zeros(2, 5), &Matrix::zeros(5, 0), &mut out, &mut ws);
        assert_eq!((out.rows(), out.cols()), (2, 0));
    }

    #[test]
    fn resized_output_reuses_capacity() {
        let mut ws = Workspace::new();
        let a = random(64, 32, 1);
        let b = random(32, 48, 2);
        let mut out = Matrix::zeros(64, 48);
        let ptr = out.as_slice().as_ptr();
        let cap = out.capacity();
        matmul_into(&a, &b, &mut out, &mut ws);
        assert_eq!(out.as_slice().as_ptr(), ptr, "right-sized output must not reallocate");
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn pooled_matmul_is_bit_identical_to_serial_for_any_worker_count() {
        let a = random(3 * MC + 17, 64, 9);
        let b = random(64, 96, 10);
        let mut ws = Workspace::new();
        let mut serial = Matrix::zeros(0, 0);
        matmul_into(&a, &b, &mut serial, &mut ws);
        for workers in [1usize, 2, 4, 8] {
            let pool = Pool::new(workers);
            let mut pooled = Matrix::zeros(0, 0);
            matmul_into_pooled(&a, &b, &mut pooled, &pool);
            assert_eq!(serial.as_slice().len(), pooled.as_slice().len());
            for (s, p) in serial.as_slice().iter().zip(pooled.as_slice()) {
                assert_eq!(s.to_bits(), p.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn sparse_small_shape_dispatch_is_bit_identical_to_the_reference() {
        // ReLU-like operand: more than a quarter exact zeros, shape
        // under the flop bound — must take the naive skip loop, whose
        // loop order is exactly transposed_matmul_reference's.
        let (m, n, k) = (64, 96, 32);
        let at = Matrix::from_fn(k, m, |r, c| {
            let v = random(1, 1, (r * m + c) as u64).as_slice()[0];
            if v < 0.0 {
                0.0
            } else {
                v
            }
        });
        let zeros = at.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros as f32 >= 0.25 * at.as_slice().len() as f32, "fixture must be sparse");
        assert!(m * n * k < SMALL_SPARSE_FLOPS, "fixture must be small");
        let b = random(k, n, 77);
        let reference = transposed_matmul_reference(&at, &b);
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        transposed_matmul_into(&at, &b, &mut out, &mut ws);
        assert_eq!((out.rows(), out.cols()), (m, n));
        for (s, p) in reference.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn dense_small_shapes_still_match_the_reference_through_the_blocked_path() {
        // A dense operand at the same small shape stays on the blocked
        // driver (zero fraction ~0) and must agree to tolerance.
        let (m, n, k) = (64, 96, 32);
        let at = random(k, m, 5);
        let b = random(k, n, 6);
        let reference = transposed_matmul_reference(&at, &b);
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        transposed_matmul_into(&at, &b, &mut out, &mut ws);
        assert_close(&out, &reference, 1e-4 * k as f32);
    }

    #[test]
    fn batched_matmul_is_bit_identical_to_a_serial_loop_for_any_worker_count() {
        // Uneven batch size so the last chunk is ragged.
        let count = 37;
        let pairs: Vec<(Matrix, Matrix)> = (0..count)
            .map(|i| (random(32, 64, i as u64), random(64, 96, 1000 + i as u64)))
            .collect();
        let ops: Vec<(&Matrix, &Matrix)> = pairs.iter().map(|(a, b)| (a, b)).collect();
        let mut ws = Workspace::new();
        let mut serial: Vec<Matrix> = (0..count).map(|_| Matrix::zeros(0, 0)).collect();
        for ((a, b), out) in ops.iter().zip(serial.iter_mut()) {
            matmul_into(a, b, out, &mut ws);
        }
        for workers in [1usize, 2, 4, 8] {
            let pool = Pool::new(workers);
            let mut batched: Vec<Matrix> = (0..count).map(|_| Matrix::zeros(0, 0)).collect();
            matmul_batch_into_pooled(&ops, &mut batched, &pool);
            for (s, p) in serial.iter().zip(&batched) {
                assert_eq!((s.rows(), s.cols()), (p.rows(), p.cols()));
                for (x, y) in s.as_slice().iter().zip(p.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn zero_padding_never_contaminates_outputs_with_nonfinite_inputs() {
        // Edge tiles are zero-padded; 0 · inf would be NaN if a padded
        // lane ever reached a valid output element.
        let m = MR + 1;
        let n = NR + 1;
        let k = 3;
        let a = Matrix::from_fn(m, k, |_, _| f32::INFINITY);
        let b = Matrix::from_fn(k, n, |_, _| 1.0);
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        matmul_into(&a, &b, &mut out, &mut ws);
        assert!(out.as_slice().iter().all(|v| v.is_infinite()));
    }
}
