//! Asynchronous federated training (the paper's footnote 2: "TradeFL
//! … is applicable to both synchronous and asynchronous scenarios").
//!
//! Organizations take heterogeneous wall-clock times per local update —
//! exactly the Eq. (2) timing model (`T_i = T^(1) + η_i d_i s_i / f_i +
//! T^(3)`). The server applies each update the moment it arrives,
//! down-weighting stale contributions with the standard polynomial
//! staleness discount of FedAsync-style protocols. The simulation runs
//! on a deterministic event queue, so results are reproducible and the
//! time axis is *model time*, not host time.

use crate::data::{Dataset, MiniBatch};
use crate::fed::{FedConfig, RoundMetrics};
use crate::model::{Mlp, Workspace};
use tradefl_runtime::rng::{SeedableRng, SliceRandom, StdRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Reusable scratch for the (sequential) async event loop: the SGD
/// workspace and batch staging buffers every dispatched local update
/// shares. Created once per run, so the per-step path allocates
/// nothing once warm.
#[derive(Debug, Default)]
struct LoopScratch {
    ws: Workspace,
    batch: MiniBatch,
    order: Vec<usize>,
    /// The reusable local-model buffer: lazily cloned from the global
    /// model on the first dispatch, then refreshed in place with
    /// `copy_params_from` — no per-update model clone.
    local: Option<Mlp>,
}

/// Asynchronous-training options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncConfig {
    /// Total number of server updates to apply.
    pub updates: usize,
    /// Base mixing weight `α ∈ (0, 1]` for a fresh update.
    pub alpha: f32,
    /// Staleness exponent `a`: weight `α · (1 + staleness)^(-a)`.
    pub staleness_exponent: f32,
    /// Local epochs per dispatched update.
    pub local_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for local SGD.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
    /// Evaluate the global model every `eval_every` server updates.
    pub eval_every: usize,
    /// Scale each update's weight by the organization's contributed
    /// sample count (relative to the largest contributor). Without
    /// this, a fast organization holding almost no data dominates the
    /// server and stalls convergence.
    pub weight_by_samples: bool,
    /// Optional simulated-time budget (seconds). When set, the run
    /// stops at the first arrival past the budget — the natural way to
    /// compare against synchronous training, whose wall clock is
    /// `rounds × max_i latency_i` (the barrier waits for stragglers).
    pub time_budget: Option<f64>,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self {
            updates: 60,
            alpha: 0.6,
            staleness_exponent: 0.5,
            local_epochs: 1,
            batch_size: 32,
            lr: 0.08,
            seed: 0,
            eval_every: 10,
            weight_by_samples: true,
            time_budget: None,
        }
    }
}

impl AsyncConfig {
    /// Derives an async config from a synchronous one with a comparable
    /// total work budget (`updates ≈ rounds × orgs`).
    pub fn from_fed(fed: &FedConfig, orgs: usize) -> Self {
        Self {
            updates: fed.rounds * orgs.max(1),
            local_epochs: fed.local_epochs,
            batch_size: fed.batch_size,
            lr: fed.lr,
            seed: fed.seed,
            ..Self::default()
        }
    }
}

/// One applied server update (provenance for analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedUpdate {
    /// Which organization produced it.
    pub org: usize,
    /// Simulated arrival time (seconds of model time).
    pub arrival_time: f64,
    /// Server version the update was based on.
    pub based_on_version: usize,
    /// Server version after applying it.
    pub new_version: usize,
    /// Staleness (versions elapsed while the org trained).
    pub staleness: usize,
    /// Effective mixing weight after the staleness discount.
    pub weight: f32,
}

/// Result of an asynchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncOutcome {
    /// The final global model.
    pub model: Mlp,
    /// Evaluation checkpoints (`round` = server version).
    pub history: Vec<RoundMetrics>,
    /// Every applied update, in arrival order.
    pub updates: Vec<AppliedUpdate>,
    /// Total simulated wall-clock time (seconds).
    pub elapsed: f64,
}

impl AsyncOutcome {
    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.history.last().map_or(f32::NAN, |m| m.accuracy)
    }

    /// Final test loss.
    pub fn final_loss(&self) -> f32 {
        self.history.last().map_or(f32::NAN, |m| m.loss)
    }

    /// The largest staleness observed (heterogeneity indicator).
    pub fn max_staleness(&self) -> usize {
        self.updates.iter().map(|u| u.staleness).max().unwrap_or(0)
    }
}

/// Per-organization timing for the event simulation: seconds per
/// dispatched update, straight from Eq. (2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrgTiming {
    /// Fixed communication time `T^(1) + T^(3)` (seconds).
    pub comm: f64,
    /// Compute time for the org's contracted `d_i` at its chosen `f_i`:
    /// `η_i d_i s_i / f_i` (seconds).
    pub compute: f64,
}

impl OrgTiming {
    /// Total latency of one update.
    pub fn latency(&self) -> f64 {
        self.comm + self.compute
    }
}

#[derive(Debug, PartialEq)]
struct Arrival {
    time: f64,
    org: usize,
    based_on_version: usize,
    params: Vec<f32>,
}

impl Eq for Arrival {}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time (BinaryHeap is a max-heap), tie-break by org
        // for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.org.cmp(&self.org))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs asynchronous federated training.
///
/// `fractions[i]` is organization `i`'s contracted data fraction `d_i`;
/// `timings[i]` its Eq. (2) latency. Organizations with `d_i = 0` (or an
/// empty shard) never dispatch.
///
/// # Errors
///
/// Returns [`crate::fed::FedError`] on shape mismatches or when nobody
/// contributes.
pub fn train_async(
    mut global: Mlp,
    shards: &[Dataset],
    test: &Dataset,
    fractions: &[f64],
    timings: &[OrgTiming],
    config: &AsyncConfig,
) -> Result<AsyncOutcome, crate::fed::FedError> {
    use crate::fed::FedError;
    if fractions.len() != shards.len() || timings.len() != shards.len() {
        return Err(FedError::FractionCount {
            shards: shards.len(),
            fractions: fractions.len().min(timings.len()),
        });
    }
    for (i, &d) in fractions.iter().enumerate() {
        if !d.is_finite() || !(0.0..=1.0).contains(&d) {
            return Err(FedError::BadFraction { org: i, value: d });
        }
    }
    let contributed: Vec<Dataset> = shards
        .iter()
        .zip(fractions)
        .map(|(s, &d)| s.take(((d * s.len() as f64).floor() as usize).min(s.len())))
        .collect();
    let active: Vec<usize> =
        (0..shards.len()).filter(|&i| !contributed[i].is_empty()).collect();
    if active.is_empty() {
        return Err(FedError::NothingContributed);
    }

    let max_contribution = contributed.iter().map(Dataset::len).max().unwrap_or(1) as f32;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xa57c_f3d1);
    let mut heap: BinaryHeap<Arrival> = BinaryHeap::new();
    let mut version = 0usize;
    let mut scratch = LoopScratch::default();
    let mut eval_ws = Workspace::new();

    // Everyone starts training against version 0 at t = 0.
    for &org in &active {
        let params =
            local_update(&global, &contributed[org], config, &mut rng, &mut scratch);
        heap.push(Arrival {
            time: timings[org].latency(),
            org,
            based_on_version: 0,
            params,
        });
    }

    let (loss, accuracy) = global.evaluate_with(test, &mut eval_ws);
    let mut history = vec![RoundMetrics { round: 0, loss, accuracy }];
    let mut applied = Vec::with_capacity(config.updates.min(4096));
    let mut now = 0.0f64;
    while version < config.updates {
        if let (Some(budget), Some(next)) = (config.time_budget, heap.peek()) {
            if next.time > budget {
                break;
            }
        }
        // lint:allow(no-panic-in-lib): the loop guard above breaks before the queue can drain
        let arrival = heap.pop().expect("active orgs keep the queue non-empty");
        now = arrival.time;
        let staleness = version - arrival.based_on_version;
        let size_factor = if config.weight_by_samples {
            contributed[arrival.org].len() as f32 / max_contribution
        } else {
            1.0
        };
        let weight = config.alpha
            * size_factor
            * (1.0 + staleness as f32).powf(-config.staleness_exponent);
        // θ ← θ + w (θ_local − θ), in place — no to_params/set_params
        // round trip per applied update.
        global.mix_params(&arrival.params, weight);
        version += 1;
        applied.push(AppliedUpdate {
            org: arrival.org,
            arrival_time: now,
            based_on_version: arrival.based_on_version,
            new_version: version,
            staleness,
            weight,
        });
        if version % config.eval_every.max(1) == 0 || version == config.updates {
            let (loss, accuracy) = global.evaluate_with(test, &mut eval_ws);
            history.push(RoundMetrics { round: version, loss, accuracy });
        }
        // The org immediately starts its next update from the new model.
        let org = arrival.org;
        let params = local_update(&global, &contributed[org], config, &mut rng, &mut scratch);
        heap.push(Arrival {
            time: now + timings[org].latency(),
            org,
            based_on_version: version,
            params,
        });
    }
    if history.last().map(|m| m.round) != Some(version) {
        let (loss, accuracy) = global.evaluate_with(test, &mut eval_ws);
        history.push(RoundMetrics { round: version, loss, accuracy });
    }
    Ok(AsyncOutcome { model: global, history, updates: applied, elapsed: now })
}

fn local_update(
    global: &Mlp,
    data: &Dataset,
    config: &AsyncConfig,
    rng: &mut StdRng,
    scratch: &mut LoopScratch,
) -> Vec<f32> {
    // One params flatten per dispatched update is inherent (the
    // arrival queue owns the vector); the local model is a reusable
    // scratch buffer refreshed in place, and every per-step buffer
    // comes from `scratch`.
    let local = scratch.local.get_or_insert_with(|| global.clone());
    local.copy_params_from(global);
    let n = data.len();
    scratch.order.clear();
    scratch.order.extend(0..n);
    for _ in 0..config.local_epochs {
        scratch.order.shuffle(rng);
        for chunk in scratch.order.chunks(config.batch_size.max(1)) {
            scratch.batch.gather(data, chunk);
            local.sgd_step_with(
                &scratch.batch.features,
                &scratch.batch.labels,
                config.lr,
                &mut scratch.ws,
            );
        }
    }
    local.to_params()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate, DatasetKind};
    use crate::model::{Mlp, ModelKind};

    fn setup(n: usize) -> (Vec<Dataset>, Dataset) {
        let pool = generate(DatasetKind::EurosatLike, 300 * n + 400, 21);
        let mut sizes = vec![300; n];
        sizes.push(400);
        let mut shards = pool.shard(&sizes);
        let test = shards.pop().unwrap();
        (shards, test)
    }

    fn even_timings(n: usize) -> Vec<OrgTiming> {
        (0..n).map(|_| OrgTiming { comm: 5.0, compute: 20.0 }).collect()
    }

    #[test]
    fn async_training_improves_accuracy() {
        let (shards, test) = setup(3);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 5);
        let out = train_async(
            global,
            &shards,
            &test,
            &[1.0, 1.0, 1.0],
            &even_timings(3),
            &AsyncConfig::default(),
        )
        .unwrap();
        assert!(out.final_accuracy() > out.history[0].accuracy + 0.15);
        assert_eq!(out.updates.len(), AsyncConfig::default().updates);
        assert!(out.elapsed > 0.0);
    }

    #[test]
    fn fast_orgs_contribute_more_updates() {
        let (shards, test) = setup(2);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 5);
        let timings = vec![
            OrgTiming { comm: 5.0, compute: 10.0 },  // fast
            OrgTiming { comm: 5.0, compute: 100.0 }, // slow straggler
        ];
        let out = train_async(
            global,
            &shards,
            &test,
            &[1.0, 1.0],
            &timings,
            &AsyncConfig::default(),
        )
        .unwrap();
        let fast = out.updates.iter().filter(|u| u.org == 0).count();
        let slow = out.updates.iter().filter(|u| u.org == 1).count();
        assert!(fast > 3 * slow, "fast {fast} vs slow {slow}");
        // The straggler's updates are stale and down-weighted.
        let max_slow_weight = out
            .updates
            .iter()
            .filter(|u| u.org == 1 && u.staleness > 0)
            .map(|u| u.weight)
            .fold(0.0f32, f32::max);
        assert!(max_slow_weight < AsyncConfig::default().alpha);
        assert!(out.max_staleness() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (shards, test) = setup(2);
        let run = |seed| {
            let global =
                Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 5);
            train_async(
                global,
                &shards,
                &test,
                &[0.8, 0.6],
                &even_timings(2),
                &AsyncConfig { seed, ..Default::default() },
            )
            .unwrap()
            .final_accuracy()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn rejects_bad_inputs() {
        let (shards, test) = setup(2);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 5);
        assert!(train_async(
            global.clone(),
            &shards,
            &test,
            &[1.0],
            &even_timings(2),
            &AsyncConfig::default()
        )
        .is_err());
        assert!(train_async(
            global.clone(),
            &shards,
            &test,
            &[2.0, 0.5],
            &even_timings(2),
            &AsyncConfig::default()
        )
        .is_err());
        assert!(train_async(
            global,
            &shards,
            &test,
            &[0.0, 0.0],
            &even_timings(2),
            &AsyncConfig::default()
        )
        .is_err());
    }

    #[test]
    fn zero_fraction_org_never_dispatches() {
        let (shards, test) = setup(2);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 5);
        let out = train_async(
            global,
            &shards,
            &test,
            &[0.0, 1.0],
            &even_timings(2),
            &AsyncConfig { updates: 20, ..Default::default() },
        )
        .unwrap();
        assert!(out.updates.iter().all(|u| u.org == 1));
    }
}
