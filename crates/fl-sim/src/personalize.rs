//! Personalization — the paper's stated future work (§VII: "we will
//! further consider personalizing the global model assigned to
//! organizations to meet their individual needs").
//!
//! Implements the standard fine-tuning personalization baseline: after
//! federated training, each organization adapts the global model to its
//! own data distribution with a few local SGD epochs, optionally with a
//! proximal term that keeps the personalized model close to the global
//! one (FedProx-style regularization). The pay-off for TradeFL: an
//! organization's *personalized* accuracy is what its profitability
//! `p_i` ultimately monetizes.

use crate::data::{Dataset, MiniBatch};
use crate::fed::FedConfig;
use crate::model::{Mlp, Workspace};
use tradefl_runtime::rng::{SeedableRng, SliceRandom, StdRng};

/// Personalization hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonalizeConfig {
    /// Local fine-tuning epochs.
    pub epochs: usize,
    /// Fine-tuning learning rate (usually smaller than training).
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Proximal weight `mu_prox ≥ 0`: each step also pulls parameters
    /// back toward the global model (`0` = plain fine-tuning).
    pub mu_prox: f32,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl Default for PersonalizeConfig {
    fn default() -> Self {
        Self { epochs: 3, lr: 0.03, batch_size: 32, mu_prox: 0.1, seed: 0 }
    }
}

impl PersonalizeConfig {
    /// Derives a personalization config matching a training config's
    /// batch size and seed.
    pub fn from_fed(fed: &FedConfig) -> Self {
        Self { batch_size: fed.batch_size, seed: fed.seed ^ 0x9e45, ..Self::default() }
    }
}

/// Per-organization outcome of personalization.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizedModel {
    /// The adapted model.
    pub model: Mlp,
    /// Local-test accuracy of the *global* model before adaptation.
    pub global_accuracy: f32,
    /// Local-test accuracy after adaptation.
    pub personalized_accuracy: f32,
}

impl PersonalizedModel {
    /// Accuracy improvement from personalization (may be negative on
    /// distribution-matched shards).
    pub fn gain(&self) -> f32 {
        self.personalized_accuracy - self.global_accuracy
    }
}

/// Fine-tunes `global` on an organization's local data, evaluating on
/// the organization's local held-out set.
///
/// `local_train` and `local_test` are the organization's own splits;
/// with an empty `local_train` the global model is returned unchanged.
///
/// # Examples
///
/// ```
/// use tradefl_fl_sim::data::{generate, DatasetKind};
/// use tradefl_fl_sim::model::{Mlp, ModelKind};
/// use tradefl_fl_sim::personalize::{personalize, PersonalizeConfig};
///
/// let pool = generate(DatasetKind::EurosatLike, 300, 1);
/// let local_train = pool.take(200);
/// let local_test = pool.shard(&[200, 100]).pop().unwrap();
/// let global = Mlp::for_kind(ModelKind::MobilenetLike, pool.dim(), pool.classes, 1);
/// let out = personalize(&global, &local_train, &local_test, &PersonalizeConfig::default());
/// assert!(out.personalized_accuracy.is_finite());
/// ```
pub fn personalize(
    global: &Mlp,
    local_train: &Dataset,
    local_test: &Dataset,
    config: &PersonalizeConfig,
) -> PersonalizedModel {
    let mut ws = Workspace::new();
    let (_, global_accuracy) = global.evaluate_with(local_test, &mut ws);
    let mut model = global.clone();
    if !local_train.is_empty() {
        let anchor = global.to_params();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e72_50aa);
        let n = local_train.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut batch = MiniBatch::new();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                batch.gather(local_train, chunk);
                model.sgd_step_with(&batch.features, &batch.labels, config.lr, &mut ws);
                if config.mu_prox > 0.0 {
                    // Proximal pull θ ← θ − lr·μ_prox·(θ − θ_global),
                    // in place (bit-identical to the old flatten/mix/
                    // reload round trip, without the two allocations).
                    model.mix_params(&anchor, config.lr * config.mu_prox);
                }
            }
        }
    }
    let (_, personalized_accuracy) = model.evaluate_with(local_test, &mut ws);
    PersonalizedModel { model, global_accuracy, personalized_accuracy }
}

/// Personalizes for every organization at once; `local_splits[i]` is
/// `(train, test)` for organization `i`.
pub fn personalize_all(
    global: &Mlp,
    local_splits: &[(Dataset, Dataset)],
    config: &PersonalizeConfig,
) -> Vec<PersonalizedModel> {
    local_splits
        .iter()
        .enumerate()
        .map(|(i, (train, test))| {
            let cfg = PersonalizeConfig { seed: config.seed ^ i as u64, ..*config };
            personalize(global, train, test, &cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate, DatasetKind};
    use crate::fed::train_federated;
    use crate::linalg::Matrix;
    use crate::model::ModelKind;

    fn gather(data: &Dataset, idx: &[usize]) -> Dataset {
        let mut features = Matrix::zeros(idx.len(), data.dim());
        let mut labels = Vec::with_capacity(idx.len());
        for (r, &i) in idx.iter().enumerate() {
            features.row_mut(r).copy_from_slice(data.features.row(i));
            labels.push(data.labels[i]);
        }
        Dataset { features, labels, classes: data.classes }
    }

    fn skewed_shard(seed: u64, keep_classes: &[usize], n: usize) -> Dataset {
        // A shard biased toward a subset of classes (heterogeneous org).
        let pool = generate(DatasetKind::FmnistLike, n * 4, seed);
        let mut rows: Vec<usize> = (0..pool.len())
            .filter(|&r| keep_classes.contains(&pool.labels[r]))
            .take(n)
            .collect();
        // Top up with arbitrary rows if the filter was too strict.
        let mut r = 0;
        while rows.len() < n {
            rows.push(r % pool.len());
            r += 1;
        }
        gather(&pool, &rows)
    }

    #[test]
    fn personalization_helps_a_skewed_organization() {
        // Global model trained on the full distribution; one org only
        // cares about classes 0-2.
        let pool = generate(DatasetKind::FmnistLike, 2000, 1);
        let mut shards = pool.shard(&[800, 800, 400]);
        let test = shards.pop().unwrap();
        let global = Mlp::for_kind(ModelKind::AlexnetLike, test.dim(), test.classes, 1);
        let fed = FedConfig { rounds: 8, local_epochs: 1, batch_size: 32, lr: 0.1, seed: 1 };
        let trained = train_federated(global, &shards, &test, &[1.0, 1.0], &fed).unwrap();

        let local_train = skewed_shard(7, &[0, 1, 2], 400);
        let local_test = skewed_shard(8, &[0, 1, 2], 300);
        let out = personalize(
            &trained.model,
            &local_train,
            &local_test,
            &PersonalizeConfig::default(),
        );
        assert!(
            out.personalized_accuracy > out.global_accuracy,
            "fine-tuning on the org's skew must help: {} -> {}",
            out.global_accuracy,
            out.personalized_accuracy
        );
        assert!(out.gain() > 0.0);
    }

    #[test]
    fn empty_local_data_returns_global_unchanged() {
        let d = generate(DatasetKind::EurosatLike, 100, 2);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, d.dim(), d.classes, 2);
        let empty = d.take(0);
        let out = personalize(&global, &empty, &d, &PersonalizeConfig::default());
        assert_eq!(out.model, global);
        assert_eq!(out.gain(), 0.0);
    }

    #[test]
    fn proximal_term_limits_drift_from_global() {
        let d = generate(DatasetKind::EurosatLike, 400, 3);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, d.dim(), d.classes, 3);
        let free = personalize(
            &global,
            &d,
            &d,
            &PersonalizeConfig { mu_prox: 0.0, epochs: 5, ..Default::default() },
        );
        let prox = personalize(
            &global,
            &d,
            &d,
            &PersonalizeConfig { mu_prox: 2.0, epochs: 5, ..Default::default() },
        );
        let drift = |m: &Mlp| -> f32 {
            m.to_params()
                .iter()
                .zip(global.to_params())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        assert!(
            drift(&prox.model) < drift(&free.model),
            "proximal pull must keep the model closer to global"
        );
    }

    #[test]
    fn personalize_all_handles_many_orgs() {
        let d = generate(DatasetKind::EurosatLike, 600, 4);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, d.dim(), d.classes, 4);
        let splits: Vec<(Dataset, Dataset)> = (0..3)
            .map(|k| {
                let shard = generate(DatasetKind::EurosatLike, 300, 10 + k);
                (shard.take(200), shard.shard(&[200, 100]).pop().unwrap())
            })
            .collect();
        let out = personalize_all(&global, &splits, &PersonalizeConfig::default());
        assert_eq!(out.len(), 3);
        for o in &out {
            assert!(o.personalized_accuracy.is_finite());
        }
    }
}
