//! Synthetic image-analog datasets.
//!
//! The paper's pre-experiments and evaluation (Figs. 2, 12-15) train on
//! CIFAR-10, FMNIST, SVHN and EuroSat. Those corpora (and GPU training)
//! are out of scope for a pure-Rust laptop reproduction, so we
//! substitute seeded Gaussian-mixture classification datasets of
//! matching class counts and increasing difficulty (DESIGN.md §2):
//! TradeFL only relies on accuracy growing concavely in the amount of
//! training data, which these datasets reproduce measurably.

use crate::linalg::Matrix;
use tradefl_runtime::rng::{Rng, SeedableRng, StdRng};

/// The four benchmark dataset analogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// CIFAR-10 analog: 10 classes, 64 features, hard (low separation).
    Cifar10Like,
    /// Fashion-MNIST analog: 10 classes, 49 features, medium.
    FmnistLike,
    /// SVHN analog: 10 classes, 64 features, hard + label noise.
    SvhnLike,
    /// EuroSat analog: 10 classes, 36 features, easy.
    EurosatLike,
}

impl DatasetKind {
    /// All four analogs, in the paper's order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Cifar10Like,
        DatasetKind::FmnistLike,
        DatasetKind::SvhnLike,
        DatasetKind::EurosatLike,
    ];

    /// Display label used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Cifar10Like => "CIFAR-10",
            DatasetKind::FmnistLike => "FMNIST",
            DatasetKind::SvhnLike => "SVHN",
            DatasetKind::EurosatLike => "EuroSat",
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        match self {
            DatasetKind::Cifar10Like | DatasetKind::SvhnLike => 64,
            DatasetKind::FmnistLike => 49,
            DatasetKind::EurosatLike => 36,
        }
    }

    /// Number of classes (all analogs use 10, like their originals).
    pub fn classes(&self) -> usize {
        10
    }

    /// Class-mean separation (higher = easier).
    fn separation(&self) -> f32 {
        match self {
            DatasetKind::Cifar10Like => 1.1,
            DatasetKind::FmnistLike => 1.6,
            DatasetKind::SvhnLike => 1.0,
            DatasetKind::EurosatLike => 2.2,
        }
    }

    /// Per-sample noise standard deviation.
    fn noise(&self) -> f32 {
        match self {
            DatasetKind::Cifar10Like => 1.4,
            DatasetKind::FmnistLike => 1.1,
            DatasetKind::SvhnLike => 1.5,
            DatasetKind::EurosatLike => 0.9,
        }
    }

    /// Fraction of labels flipped uniformly at random.
    fn label_noise(&self) -> f64 {
        match self {
            DatasetKind::SvhnLike => 0.08,
            DatasetKind::Cifar10Like => 0.04,
            _ => 0.0,
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A labelled classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix, one sample per row.
    pub features: Matrix,
    /// Class labels, `labels[i] < classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// The first `n` samples as a new dataset (used to train on a
    /// `d_i` fraction of a shard).
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn take(&self, n: usize) -> Dataset {
        assert!(n <= self.len());
        let mut features = Matrix::zeros(n, self.dim());
        for r in 0..n {
            features.row_mut(r).copy_from_slice(self.features.row(r));
        }
        Dataset { features, labels: self.labels[..n].to_vec(), classes: self.classes }
    }

    /// Splits into shards of the given sizes (cross-silo partition,
    /// i.i.d. per the paper's footnote 4 — the generator already
    /// shuffles class order).
    ///
    /// # Panics
    ///
    /// Panics if the sizes exceed the dataset length.
    pub fn shard(&self, sizes: &[usize]) -> Vec<Dataset> {
        let total: usize = sizes.iter().sum();
        assert!(total <= self.len(), "shard sizes exceed dataset length");
        let mut out = Vec::with_capacity(sizes.len());
        let mut offset = 0;
        for &size in sizes {
            let mut features = Matrix::zeros(size, self.dim());
            for r in 0..size {
                features.row_mut(r).copy_from_slice(self.features.row(offset + r));
            }
            out.push(Dataset {
                features,
                labels: self.labels[offset..offset + size].to_vec(),
                classes: self.classes,
            });
            offset += size;
        }
        out
    }
}

/// A reusable mini-batch staging buffer for the training hot loops.
///
/// [`MiniBatch::gather`] copies the selected rows of a dataset into
/// buffers that are reused across batches (capacity never shrinks), so
/// the per-step batch assembly in `fed`/`async_fed`/`personalize`
/// allocates nothing once warm.
#[derive(Debug, Default, Clone)]
pub struct MiniBatch {
    /// Staged feature rows, one gathered sample per row.
    pub features: Matrix,
    /// Staged labels, parallel to `features` rows.
    pub labels: Vec<usize>,
}

impl MiniBatch {
    /// An empty staging buffer; grows on first [`MiniBatch::gather`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies rows `idx` of `data` into the staging buffers.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&mut self, data: &Dataset, idx: &[usize]) {
        self.features.resize(idx.len(), data.dim());
        for (r, &i) in idx.iter().enumerate() {
            self.features.row_mut(r).copy_from_slice(data.features.row(i));
        }
        self.labels.clear();
        self.labels.extend(idx.iter().map(|&i| data.labels[i]));
    }
}

/// Deterministically generates `n` samples of a dataset analog.
///
/// Class means sit on a seeded random simplex scaled by the analog's
/// separation; samples add isotropic Gaussian noise; SVHN/CIFAR analogs
/// flip a small fraction of labels (their originals are noisy corpora).
pub fn generate(kind: DatasetKind, n: usize, seed: u64) -> Dataset {
    let dim = kind.dim();
    let classes = kind.classes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7261_6465_666c_0001);
    // Class means. Scaling by 1/sqrt(dim) keeps the expected distance
    // between two class means equal to sep·√2 independent of the
    // feature dimension, so difficulty is set by sep/noise alone.
    let sep = kind.separation() / (dim as f32).sqrt();
    let means: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..dim).map(|_| sep * normal(&mut rng)).collect())
        .collect();
    let noise = kind.noise();
    let label_noise = kind.label_noise();
    let mut features = Matrix::zeros(n, dim);
    let mut labels = Vec::with_capacity(n);
    for r in 0..n {
        let class = rng.gen_range(0..classes);
        let mean = &means[class];
        for (c, m) in mean.iter().enumerate() {
            features.set(r, c, m + noise * normal(&mut rng));
        }
        let label = if label_noise > 0.0 && rng.gen_bool(label_noise) {
            rng.gen_range(0..classes)
        } else {
            class
        };
        labels.push(label);
    }
    Dataset { features, labels, classes }
}

/// Partitions a dataset across organizations with a Dirichlet(β) label
/// skew — the standard non-i.i.d. benchmark partition. Small `beta`
/// concentrates each class on few organizations; `beta → ∞` recovers the
/// i.i.d. split the paper's footnote 4 assumes.
///
/// Returns `sizes.len()` shards; samples beyond the requested totals are
/// dropped. Deterministic per seed.
///
/// # Panics
///
/// Panics if `beta <= 0`, `sizes` is empty, or the requested totals
/// exceed the dataset length.
pub fn dirichlet_shard(data: &Dataset, sizes: &[usize], beta: f64, seed: u64) -> Vec<Dataset> {
    assert!(beta > 0.0, "dirichlet beta must be positive");
    assert!(!sizes.is_empty(), "need at least one organization");
    let total: usize = sizes.iter().sum();
    assert!(total <= data.len(), "requested shards exceed dataset length");
    let n_orgs = sizes.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd112_1c43);

    // Per-class organization preferences ~ Dirichlet(beta) via gamma draws.
    let mut prefs: Vec<Vec<f64>> = Vec::with_capacity(data.classes);
    for _ in 0..data.classes {
        let draws: Vec<f64> = (0..n_orgs).map(|_| gamma_draw(&mut rng, beta)).collect();
        let sum: f64 = draws.iter().sum();
        prefs.push(draws.iter().map(|d| d / sum.max(f64::MIN_POSITIVE)).collect());
    }

    // Assign each sample to an org by its class's preference vector,
    // respecting per-org capacity.
    let mut remaining: Vec<usize> = sizes.to_vec();
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); n_orgs];
    for row in 0..data.len() {
        if remaining.iter().all(|&r| r == 0) {
            break;
        }
        let class = data.labels[row];
        let p = &prefs[class];
        // Sample an org with remaining capacity, weighted by preference.
        let mass: f64 = (0..n_orgs).filter(|&o| remaining[o] > 0).map(|o| p[o]).sum();
        let mut u = rng.gen_range(0.0..mass.max(f64::MIN_POSITIVE));
        let mut chosen = None;
        for o in 0..n_orgs {
            if remaining[o] == 0 {
                continue;
            }
            u -= p[o];
            if u <= 0.0 {
                chosen = Some(o);
                break;
            }
        }
        let o = chosen.unwrap_or_else(|| {
            // lint:allow(no-panic-in-lib): remaining capacities sum to the sample count, so a slot exists
            (0..n_orgs).find(|&o| remaining[o] > 0).expect("capacity remains")
        });
        assigned[o].push(row);
        remaining[o] -= 1;
    }

    assigned
        .into_iter()
        .map(|rows| {
            let mut features = Matrix::zeros(rows.len(), data.dim());
            let mut labels = Vec::with_capacity(rows.len());
            for (r, &idx) in rows.iter().enumerate() {
                features.row_mut(r).copy_from_slice(data.features.row(idx));
                labels.push(data.labels[idx]);
            }
            Dataset { features, labels, classes: data.classes }
        })
        .collect()
}

/// Label-skew measure of a partition: mean total-variation distance
/// between each shard's label distribution and the pooled distribution
/// (0 = perfectly i.i.d.).
pub fn label_skew(shards: &[Dataset]) -> f64 {
    let classes = shards.first().map_or(0, |s| s.classes);
    if classes == 0 {
        return 0.0;
    }
    let mut pooled = vec![0.0f64; classes];
    let mut total = 0.0;
    for s in shards {
        for &l in &s.labels {
            pooled[l] += 1.0;
            total += 1.0;
        }
    }
    // lint:allow(no-float-eq): exact-zero count guard before dividing by `total`
    if total == 0.0 {
        return 0.0;
    }
    for p in &mut pooled {
        *p /= total;
    }
    let mut skew = 0.0;
    for s in shards {
        if s.is_empty() {
            continue;
        }
        let mut local = vec![0.0f64; classes];
        for &l in &s.labels {
            local[l] += 1.0;
        }
        let n = s.len() as f64;
        let tv: f64 = local
            .iter()
            .zip(&pooled)
            .map(|(l, p)| (l / n - p).abs())
            .sum::<f64>()
            / 2.0;
        skew += tv;
    }
    skew / shards.len() as f64
}

/// Marsaglia-Tsang gamma sampler (shape `k > 0`, scale 1), sufficient
/// for Dirichlet draws.
fn gamma_draw(rng: &mut StdRng, k: f64) -> f64 {
    if k < 1.0 {
        // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_draw(rng, k + 1.0) * u.powf(1.0 / k);
    }
    let d = k - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng) as f64;
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetKind::Cifar10Like, 100, 5);
        let b = generate(DatasetKind::Cifar10Like, 100, 5);
        let c = generate(DatasetKind::Cifar10Like, 100, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_match_kind() {
        for kind in DatasetKind::ALL {
            let d = generate(kind, 50, 1);
            assert_eq!(d.len(), 50);
            assert_eq!(d.dim(), kind.dim());
            assert_eq!(d.classes, 10);
            assert!(d.labels.iter().all(|&l| l < 10));
            assert!(!d.is_empty());
        }
    }

    #[test]
    fn take_and_shard_partition_correctly() {
        let d = generate(DatasetKind::FmnistLike, 100, 2);
        let head = d.take(30);
        assert_eq!(head.len(), 30);
        assert_eq!(head.labels[..], d.labels[..30]);
        let shards = d.shard(&[40, 35, 25]);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].len(), 40);
        assert_eq!(shards[2].len(), 25);
        assert_eq!(shards[1].labels[0], d.labels[40]);
    }

    #[test]
    #[should_panic(expected = "shard sizes exceed")]
    fn oversized_shards_panic() {
        let d = generate(DatasetKind::EurosatLike, 10, 3);
        let _ = d.shard(&[6, 6]);
    }

    #[test]
    fn easier_datasets_have_larger_separation_to_noise() {
        let easy = DatasetKind::EurosatLike;
        let hard = DatasetKind::SvhnLike;
        assert!(easy.separation() / easy.noise() > hard.separation() / hard.noise());
    }

    #[test]
    fn dirichlet_small_beta_is_skewed_large_beta_is_iid() {
        let d = generate(DatasetKind::FmnistLike, 3000, 5);
        let sizes = [900, 900, 900];
        let skewed = dirichlet_shard(&d, &sizes, 0.1, 7);
        let iid = dirichlet_shard(&d, &sizes, 100.0, 7);
        assert_eq!(skewed.len(), 3);
        for (s, &want) in skewed.iter().zip(&sizes) {
            assert_eq!(s.len(), want);
        }
        let skew_lo = label_skew(&skewed);
        let skew_hi = label_skew(&iid);
        assert!(
            skew_lo > 2.0 * skew_hi + 0.05,
            "beta=0.1 skew {skew_lo:.3} must far exceed beta=100 skew {skew_hi:.3}"
        );
    }

    #[test]
    fn dirichlet_is_deterministic_per_seed() {
        let d = generate(DatasetKind::EurosatLike, 600, 2);
        let a = dirichlet_shard(&d, &[200, 200], 0.5, 3);
        let b = dirichlet_shard(&d, &[200, 200], 0.5, 3);
        let c = dirichlet_shard(&d, &[200, 200], 0.5, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn dirichlet_rejects_bad_beta() {
        let d = generate(DatasetKind::EurosatLike, 100, 1);
        let _ = dirichlet_shard(&d, &[50], 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "exceed dataset length")]
    fn dirichlet_rejects_oversized_request() {
        let d = generate(DatasetKind::EurosatLike, 100, 1);
        let _ = dirichlet_shard(&d, &[60, 60], 1.0, 1);
    }

    #[test]
    fn label_skew_of_identical_shards_is_zero() {
        let d = generate(DatasetKind::EurosatLike, 400, 9);
        let shards = vec![d.clone(), d];
        assert!(label_skew(&shards) < 1e-12);
        assert_eq!(label_skew(&[]), 0.0);
    }

    #[test]
    fn minibatch_gather_reuses_buffers() {
        let d = generate(DatasetKind::FmnistLike, 50, 4);
        let mut batch = MiniBatch::new();
        batch.gather(&d, &[5, 0, 49]);
        assert_eq!(batch.features.rows(), 3);
        assert_eq!(batch.features.row(0), d.features.row(5));
        assert_eq!(batch.labels, vec![d.labels[5], d.labels[0], d.labels[49]]);
        let ptr = batch.features.as_slice().as_ptr();
        batch.gather(&d, &[1, 2]);
        assert_eq!(batch.features.rows(), 2);
        assert_eq!(batch.labels, vec![d.labels[1], d.labels[2]]);
        assert_eq!(batch.features.as_slice().as_ptr(), ptr, "smaller gather must reuse");
    }

    #[test]
    fn labels_cover_multiple_classes() {
        let d = generate(DatasetKind::SvhnLike, 500, 9);
        let distinct: std::collections::BTreeSet<_> = d.labels.iter().collect();
        assert!(distinct.len() >= 8, "expected most classes present");
    }
}
