//! MLP classifiers standing in for the paper's four model families.
//!
//! The evaluation trains ResNet-18, AlexNet, DenseNet and MobileNet; we
//! substitute ReLU MLPs of four capacity tiers (DESIGN.md §2), with the
//! deeper analogs using two hidden layers. Capacity ordering mirrors
//! the originals' parameter counts.

use crate::data::Dataset;
use crate::linalg::{kernel, Matrix};
use tradefl_runtime::rng::{Rng, SeedableRng, StdRng};

/// Reusable scratch for the training/evaluation hot paths.
///
/// Holds every intermediate the forward and backward passes need —
/// per-layer activations, pre-activations, deltas, gradients and the
/// GEMM packing buffers — so [`Mlp::forward_with`],
/// [`Mlp::sgd_step_with`] and [`Mlp::evaluate_with`] perform **zero
/// heap allocations** once the workspace has seen the model shape
/// (buffers grow on first use and are then reused within capacity).
///
/// Ownership rule (DESIGN.md §10): a workspace belongs to exactly one
/// sequential training loop. Pooled federated rounds create one per
/// worker task, never share one across threads.
#[derive(Debug, Default)]
pub struct Workspace {
    gemm: kernel::Workspace,
    /// Per-layer post-activation outputs (`acts[k]` = layer `k`'s output).
    acts: Vec<Matrix>,
    /// Pre-activations of the hidden layers (ReLU masks for backprop).
    pre: Vec<Matrix>,
    delta: Matrix,
    delta_next: Matrix,
    dw: Matrix,
    db: Vec<f32>,
}

impl Workspace {
    /// An empty workspace; every buffer is allocated lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the per-layer matrix vectors to `depth` entries (a cold
    /// one-time path: entries are empty matrices that the passes then
    /// resize in place).
    fn ensure_depth(&mut self, depth: usize) {
        while self.acts.len() < depth {
            self.acts.push(Matrix::zeros(0, 0));
        }
        while self.pre.len() + 1 < depth.max(1) {
            self.pre.push(Matrix::zeros(0, 0));
        }
    }
}

/// The four model-family analogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// ResNet-18 analog (deepest/widest).
    Resnet18Like,
    /// AlexNet analog.
    AlexnetLike,
    /// DenseNet analog.
    DensenetLike,
    /// MobileNet analog (smallest).
    MobilenetLike,
}

impl ModelKind {
    /// All four analogs.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Resnet18Like,
        ModelKind::AlexnetLike,
        ModelKind::DensenetLike,
        ModelKind::MobilenetLike,
    ];

    /// Display label used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Resnet18Like => "ResNet-18",
            ModelKind::AlexnetLike => "AlexNet",
            ModelKind::DensenetLike => "DenseNet",
            ModelKind::MobilenetLike => "MobileNet",
        }
    }

    /// Hidden-layer widths of the analog (depth mirrors the original
    /// family's relative depth).
    pub fn hidden_layers(&self) -> &'static [usize] {
        match self {
            ModelKind::Resnet18Like => &[96, 48],
            ModelKind::AlexnetLike => &[64, 32],
            ModelKind::DensenetLike => &[48],
            ModelKind::MobilenetLike => &[32],
        }
    }

    /// Width of the first hidden layer (compatibility accessor).
    pub fn hidden(&self) -> usize {
        self.hidden_layers()[0]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One dense layer: `y = x W + b`.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    w: Matrix,
    b: Vec<f32>,
}

impl Dense {
    fn new(input: usize, output: usize, rng: &mut StdRng) -> Self {
        let lim = (6.0 / (input + output) as f32).sqrt();
        Self {
            w: Matrix::from_fn(input, output, |_, _| rng.gen_range(-lim..lim)),
            b: vec![0.0; output],
        }
    }

    fn params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

/// A ReLU MLP (any depth) with softmax cross-entropy loss.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// One-hidden-layer MLP with seeded Xavier-style weights (the
    /// original constructor; see [`Mlp::with_layers`] for deeper nets).
    pub fn new(input_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        Self::with_layers(input_dim, &[hidden], classes, seed)
    }

    /// MLP with the given hidden-layer widths (ReLU between layers,
    /// softmax on the output).
    ///
    /// # Panics
    ///
    /// Panics if `input_dim`, `classes` or any hidden width is zero.
    pub fn with_layers(
        input_dim: usize,
        hidden: &[usize],
        classes: usize,
        seed: u64,
    ) -> Self {
        assert!(input_dim > 0 && classes > 0, "degenerate model shape");
        assert!(hidden.iter().all(|&h| h > 0), "zero-width hidden layer");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6c_705f_696e_6974);
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(input_dim);
        dims.extend_from_slice(hidden);
        dims.push(classes);
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Self { layers }
    }

    /// Builds the analog of `kind` for a dataset shape.
    pub fn for_kind(kind: ModelKind, input_dim: usize, classes: usize, seed: u64) -> Self {
        Self::with_layers(input_dim, kind.hidden_layers(), classes, seed)
    }

    /// Number of layers (hidden + output).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::params).sum()
    }

    /// Class-probability forward pass (softmax output).
    ///
    /// Compatibility wrapper over [`Mlp::forward_with`] with a fresh
    /// workspace; hot loops hold a [`Workspace`] instead.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut ws = Workspace::new();
        self.forward_with(x, &mut ws).clone()
    }

    /// Forward pass into workspace-owned scratch; returns the softmax
    /// output matrix borrowed from `ws`. Allocation-free once `ws` is
    /// warm.
    pub fn forward_with<'w>(&self, x: &Matrix, ws: &'w mut Workspace) -> &'w Matrix {
        ws.ensure_depth(self.layers.len());
        let last = self.layers.len() - 1;
        for (k, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = ws.acts.split_at_mut(k);
            let z = &mut rest[0];
            let input = if k == 0 { x } else { &prev[k - 1] };
            kernel::matmul_into(input, &layer.w, z, &mut ws.gemm);
            z.add_bias(&layer.b);
            if k < last {
                relu_inplace(z);
            } else {
                softmax_inplace(z);
            }
        }
        &ws.acts[last]
    }

    /// Mean cross-entropy loss and accuracy on a dataset — the Figs.
    /// 13-15 metrics.
    ///
    /// Compatibility wrapper over [`Mlp::evaluate_with`] with a fresh
    /// workspace.
    pub fn evaluate(&self, data: &Dataset) -> (f32, f32) {
        let mut ws = Workspace::new();
        self.evaluate_with(data, &mut ws)
    }

    /// Loss/accuracy using workspace-owned scratch; allocation-free
    /// once `ws` is warm.
    pub fn evaluate_with(&self, data: &Dataset, ws: &mut Workspace) -> (f32, f32) {
        if data.is_empty() {
            return (f32::NAN, f32::NAN);
        }
        let probs = self.forward_with(&data.features, ws);
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for (r, &label) in data.labels.iter().enumerate() {
            let row = probs.row(r);
            loss -= (row[label].max(1e-12) as f64).ln();
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if argmax == label {
                correct += 1;
            }
        }
        let n = data.len() as f64;
        ((loss / n) as f32, (correct as f64 / n) as f32)
    }

    /// One SGD step on a mini-batch; returns the batch loss.
    ///
    /// Compatibility wrapper over [`Mlp::sgd_step_with`] with a fresh
    /// workspace.
    pub fn sgd_step(&mut self, batch: &Dataset, lr: f32) -> f32 {
        let mut ws = Workspace::new();
        self.sgd_step_with(&batch.features, &batch.labels, lr, &mut ws)
    }

    /// One SGD step on `(features, labels)` using workspace-owned
    /// scratch; returns the batch loss. Performs zero heap allocations
    /// once `ws` is warm (the `no-alloc-in-hot-loop` lint enforces
    /// this at the token level).
    ///
    /// # Panics
    ///
    /// Panics if `features.rows() != labels.len()`.
    pub fn sgd_step_with(
        &mut self,
        features: &Matrix,
        labels: &[usize],
        lr: f32,
        ws: &mut Workspace,
    ) -> f32 {
        assert_eq!(features.rows(), labels.len(), "batch features/labels disagree");
        let n = labels.len();
        if n == 0 {
            return 0.0;
        }
        ws.ensure_depth(self.layers.len());
        let last = self.layers.len() - 1;

        // Forward, keeping activations and the hidden layers'
        // pre-activations (the ReLU masks backprop needs).
        for (k, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = ws.acts.split_at_mut(k);
            let z = &mut rest[0];
            let input = if k == 0 { features } else { &prev[k - 1] };
            kernel::matmul_into(input, &layer.w, z, &mut ws.gemm);
            z.add_bias(&layer.b);
            if k < last {
                ws.pre[k].copy_from(z);
                relu_inplace(z);
            } else {
                softmax_inplace(z);
            }
        }

        // Loss and output-layer gradient (probs − onehot) / n.
        let mut loss = 0.0f64;
        ws.delta.copy_from(&ws.acts[last]);
        for (r, &label) in labels.iter().enumerate() {
            let row = ws.delta.row_mut(r);
            loss -= (row[label].max(1e-12) as f64).ln();
            row[label] -= 1.0;
        }
        ws.delta.scale(1.0 / n as f32);

        // Backward pass with immediate updates (delta refers to the
        // pre-update weights of later layers only, which backprop has
        // already consumed).
        for k in (0..self.layers.len()).rev() {
            let input = if k == 0 { features } else { &ws.acts[k - 1] };
            kernel::transposed_matmul_into(input, &ws.delta, &mut ws.dw, &mut ws.gemm);
            col_sums_into(&ws.delta, &mut ws.db);
            if k > 0 {
                kernel::matmul_transposed_into(
                    &ws.delta,
                    &self.layers[k].w,
                    &mut ws.delta_next,
                    &mut ws.gemm,
                );
                for (v, &pre) in
                    ws.delta_next.as_mut_slice().iter_mut().zip(ws.pre[k - 1].as_slice())
                {
                    if pre <= 0.0 {
                        *v = 0.0;
                    }
                }
            }
            // Update layer k after computing the upstream delta.
            self.layers[k].w.axpy(-lr, &ws.dw);
            for (b, g) in self.layers[k].b.iter_mut().zip(&ws.db) {
                *b -= lr * g;
            }
            if k > 0 {
                std::mem::swap(&mut ws.delta, &mut ws.delta_next);
            }
        }
        (loss / n as f64) as f32
    }

    /// Flattens all parameters (FedAvg aggregation).
    pub fn to_params(&self) -> Vec<f32> {
        let mut p = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            p.extend_from_slice(layer.w.as_slice());
            p.extend_from_slice(&layer.b);
        }
        p
    }

    /// Loads flattened parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from [`Mlp::param_count`].
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.param_count(), "parameter count mismatch");
        let mut rest = params;
        for layer in &mut self.layers {
            let (w, r) = rest.split_at(layer.w.rows() * layer.w.cols());
            let (b, r) = r.split_at(layer.b.len());
            layer.w.as_mut_slice().copy_from_slice(w);
            layer.b.copy_from_slice(b);
            rest = r;
        }
    }

    /// Copies all parameters from a same-shape model, without
    /// allocating — the streaming-aggregation replacement for cloning
    /// the global model once per silo.
    ///
    /// # Panics
    ///
    /// Panics if the two models disagree on any layer shape.
    pub fn copy_params_from(&mut self, src: &Mlp) {
        assert_eq!(self.layers.len(), src.layers.len(), "layer count mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&src.layers) {
            assert_eq!(dst.w.rows(), src.w.rows(), "weight shape mismatch");
            assert_eq!(dst.w.cols(), src.w.cols(), "weight shape mismatch");
            dst.w.as_mut_slice().copy_from_slice(src.w.as_slice());
            dst.b.copy_from_slice(&src.b);
        }
    }

    /// Accumulates `scale ·` this model's parameters into `acc`
    /// (f64, in [`Mlp::to_params`] order) — one silo's contribution to
    /// a streaming FedAvg reduce, without materializing the flattened
    /// parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len()` differs from [`Mlp::param_count`].
    pub fn accumulate_scaled_params(&self, scale: f64, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.param_count(), "parameter count mismatch");
        let mut rest = acc;
        for layer in &self.layers {
            let (w, r) = rest.split_at_mut(layer.w.rows() * layer.w.cols());
            let (b, r) = r.split_at_mut(layer.b.len());
            for (a, &p) in w.iter_mut().zip(layer.w.as_slice()) {
                *a += scale * p as f64;
            }
            for (a, &p) in b.iter_mut().zip(&layer.b) {
                *a += scale * p as f64;
            }
            rest = r;
        }
    }

    /// In-place convex pull toward a flattened parameter vector:
    /// `θ ← θ + weight · (toward − θ)` in [`Mlp::to_params`] order.
    /// Replaces the allocating `to_params`/mix/`set_params` round trip
    /// in the async-FL server and the personalization proximal term.
    ///
    /// # Panics
    ///
    /// Panics if `toward.len()` differs from [`Mlp::param_count`].
    pub fn mix_params(&mut self, toward: &[f32], weight: f32) {
        assert_eq!(toward.len(), self.param_count(), "parameter count mismatch");
        let mut rest = toward;
        for layer in &mut self.layers {
            let (w, r) = rest.split_at(layer.w.rows() * layer.w.cols());
            let (b, r) = r.split_at(layer.b.len());
            for (p, &t) in layer.w.as_mut_slice().iter_mut().zip(w) {
                *p += weight * (t - *p);
            }
            for (p, &t) in layer.b.iter_mut().zip(b) {
                *p += weight * (t - *p);
            }
            rest = r;
        }
    }
}

/// SGD-with-momentum optimizer state for one [`Mlp`].
///
/// Classical momentum: `v ← μ v + g`, `θ ← θ − lr v`. With `μ = 0`
/// this is exactly [`Mlp::sgd_step`].
#[derive(Debug, Clone, PartialEq)]
pub struct SgdMomentum {
    mu: f32,
    velocity: Vec<f32>,
}

impl SgdMomentum {
    /// Creates an optimizer for a model with momentum coefficient
    /// `mu ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is outside `[0, 1)`.
    pub fn new(model: &Mlp, mu: f32) -> Self {
        assert!((0.0..1.0).contains(&mu), "momentum must lie in [0, 1)");
        Self { mu, velocity: vec![0.0; model.param_count()] }
    }

    /// One momentum step on a mini-batch; returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics if `model`'s parameter count differs from the one the
    /// optimizer was created for.
    pub fn step(&mut self, model: &mut Mlp, batch: &Dataset, lr: f32) -> f32 {
        assert_eq!(self.velocity.len(), model.param_count(), "optimizer/model mismatch");
        // Gradient via a probe step: run plain SGD with lr=1 on a clone
        // would be wasteful; instead reuse sgd_step with the actual lr
        // on a clone and recover g = (θ_before − θ_after)/lr.
        let before = model.to_params();
        let mut probe = model.clone();
        let loss = probe.sgd_step(batch, lr);
        let after = probe.to_params();
        let mut params = before.clone();
        for i in 0..params.len() {
            let g = (before[i] - after[i]) / lr;
            self.velocity[i] = self.mu * self.velocity[i] + g;
            params[i] -= lr * self.velocity[i];
        }
        model.set_params(&params);
        loss
    }
}

fn relu_inplace(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

fn softmax_inplace(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

fn col_sums_into(m: &Matrix, out: &mut Vec<f32>) {
    out.clear();
    out.resize(m.cols(), 0.0);
    for r in 0..m.rows() {
        for (o, &v) in out.iter_mut().zip(m.row(r)) {
            *o += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate, DatasetKind};

    #[test]
    fn forward_produces_probabilities() {
        let d = generate(DatasetKind::EurosatLike, 20, 1);
        let m = Mlp::new(d.dim(), 16, d.classes, 7);
        let p = m.forward(&d.features);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn sgd_reduces_training_loss() {
        let d = generate(DatasetKind::EurosatLike, 300, 2);
        let mut m = Mlp::new(d.dim(), 24, d.classes, 3);
        let (loss0, _) = m.evaluate(&d);
        for _ in 0..60 {
            m.sgd_step(&d, 0.1);
        }
        let (loss1, acc1) = m.evaluate(&d);
        assert!(loss1 < loss0 * 0.7, "loss {loss0} -> {loss1}");
        assert!(acc1 > 0.5, "accuracy {acc1}");
    }

    #[test]
    fn deep_mlp_trains_too() {
        let d = generate(DatasetKind::EurosatLike, 300, 2);
        let mut m = Mlp::with_layers(d.dim(), &[32, 16], d.classes, 3);
        assert_eq!(m.depth(), 3);
        let (loss0, _) = m.evaluate(&d);
        for _ in 0..80 {
            m.sgd_step(&d, 0.1);
        }
        let (loss1, acc1) = m.evaluate(&d);
        assert!(loss1 < loss0 * 0.8, "loss {loss0} -> {loss1}");
        assert!(acc1 > 0.4, "accuracy {acc1}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Check dL/dw for single weights in both layers of a deep net.
        let d = generate(DatasetKind::EurosatLike, 8, 4).take(8);
        let m0 = Mlp::with_layers(d.dim(), &[6, 5], d.classes, 5);
        let eps = 1e-3;
        let loss_of = |m: &Mlp| m.evaluate(&d).0 as f64;
        let lr = 1e-4;
        let mut stepped = m0.clone();
        stepped.sgd_step(&d, lr);
        for layer in [0usize, 1, 2] {
            let g = (m0.layers[layer].w.get(0, 0) - stepped.layers[layer].w.get(0, 0)) / lr;
            let mut plus = m0.clone();
            plus.layers[layer].w.set(0, 0, m0.layers[layer].w.get(0, 0) + eps);
            let mut minus = m0.clone();
            minus.layers[layer].w.set(0, 0, m0.layers[layer].w.get(0, 0) - eps);
            let fd = ((loss_of(&plus) - loss_of(&minus)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - g).abs() < 0.05 * fd.abs().max(0.01),
                "layer {layer}: finite-diff {fd} vs analytic {g}"
            );
        }
    }

    #[test]
    fn momentum_zero_equals_plain_sgd() {
        let d = generate(DatasetKind::EurosatLike, 64, 7);
        let mut plain = Mlp::new(d.dim(), 8, d.classes, 3);
        let mut with_opt = plain.clone();
        let mut opt = SgdMomentum::new(&with_opt, 0.0);
        for _ in 0..5 {
            plain.sgd_step(&d, 0.05);
            opt.step(&mut with_opt, &d, 0.05);
        }
        let (a, b) = (plain.to_params(), with_opt.to_params());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn momentum_accelerates_early_training() {
        let d = generate(DatasetKind::EurosatLike, 400, 8);
        let mut plain = Mlp::new(d.dim(), 16, d.classes, 3);
        let mut fast = plain.clone();
        let mut opt = SgdMomentum::new(&fast, 0.9);
        for _ in 0..25 {
            plain.sgd_step(&d, 0.02);
            opt.step(&mut fast, &d, 0.02);
        }
        let (loss_plain, _) = plain.evaluate(&d);
        let (loss_fast, _) = fast.evaluate(&d);
        assert!(
            loss_fast < loss_plain,
            "momentum should accelerate: {loss_fast} vs {loss_plain}"
        );
    }

    #[test]
    #[should_panic(expected = "momentum must lie")]
    fn momentum_bounds() {
        let m = Mlp::new(4, 4, 2, 1);
        let _ = SgdMomentum::new(&m, 1.0);
    }

    #[test]
    fn workspace_paths_are_bit_identical_to_wrappers() {
        let d = generate(DatasetKind::EurosatLike, 120, 11);
        let mut fresh = Mlp::with_layers(d.dim(), &[16, 12], d.classes, 3);
        let mut warm = fresh.clone();
        let mut ws = Workspace::new();
        for _ in 0..4 {
            let a = fresh.sgd_step(&d, 0.05);
            let b = warm.sgd_step_with(&d.features, &d.labels, 0.05, &mut ws);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (x, y) in fresh.to_params().iter().zip(&warm.to_params()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let (l1, a1) = fresh.evaluate(&d);
        let (l2, a2) = warm.evaluate_with(&d, &mut ws);
        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(a1.to_bits(), a2.to_bits());
    }

    #[test]
    fn mix_params_matches_manual_blend() {
        let mut m = Mlp::with_layers(8, &[6], 4, 1);
        let base = m.to_params();
        let toward: Vec<f32> = base.iter().map(|p| p + 1.0).collect();
        m.mix_params(&toward, 0.25);
        for (p, b) in m.to_params().iter().zip(&base) {
            let want = b + 0.25 * ((b + 1.0) - b);
            assert!((p - want).abs() < 1e-6, "{p} vs {want}");
        }
    }

    #[test]
    fn params_roundtrip() {
        let m = Mlp::with_layers(10, &[8, 6], 4, 1);
        let p = m.to_params();
        assert_eq!(p.len(), m.param_count());
        let mut m2 = Mlp::with_layers(10, &[8, 6], 4, 2);
        m2.set_params(&p);
        assert_eq!(m, m2);
    }

    #[test]
    fn capacity_ordering_matches_originals() {
        let dims = (64, 10);
        let counts: Vec<usize> = ModelKind::ALL
            .iter()
            .map(|&k| Mlp::for_kind(k, dims.0, dims.1, 0).param_count())
            .collect();
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
    }

    #[test]
    fn depth_matches_kind() {
        assert_eq!(Mlp::for_kind(ModelKind::Resnet18Like, 64, 10, 0).depth(), 3);
        assert_eq!(Mlp::for_kind(ModelKind::MobilenetLike, 64, 10, 0).depth(), 2);
    }

    #[test]
    fn evaluate_on_empty_dataset_is_nan() {
        let d = generate(DatasetKind::FmnistLike, 10, 1).take(0);
        let m = Mlp::new(49, 8, 10, 1);
        let (loss, acc) = m.evaluate(&d);
        assert!(loss.is_nan() && acc.is_nan());
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_width_layer_panics() {
        let _ = Mlp::with_layers(10, &[0], 4, 1);
    }
}
