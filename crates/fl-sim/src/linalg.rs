//! Minimal dense linear algebra for the training substrate.
//!
//! Row-major `f32` matrices with exactly the operations an MLP needs —
//! no external math crates (DESIGN.md §6).


/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size must match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j over row slices: the output row is resolved once per
        // `r` and each `a` comes off the row slice, so the inner loop
        // is pure slice iteration with no per-element index
        // arithmetic or bounds checks.
        for r in 0..self.rows {
            let arow = self.row(r);
            let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
            for (k, &a) in arow.iter().enumerate() {
                // lint:allow(no-float-eq): ReLU emits exact 0.0, so the sparsity skip is exact
                if a == 0.0 {
                    // Skip, don't multiply: ReLU activations are ~half
                    // zeros, and `0.0 * b` would still have to honor
                    // inf/NaN in `b`.
                    continue;
                }
                let orow = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let arow = self.row(r);
            let out_row = &mut out.data[r * other.rows..(r + 1) * other.rows];
            for (c, o) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(other.row(c)) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// `selfᵀ * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (r, &a) in arow.iter().enumerate() {
                // lint:allow(no-float-eq): ReLU emits exact 0.0, so the sparsity skip is exact
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Adds a bias row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transposed_matches_explicit() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(2, 3, vec![1., 0., 1., 0., 1., 0.]);
        // a * b^T
        let c = a.matmul_transposed(&b);
        assert_eq!(c.as_slice(), &[4., 2., 10., 5.]);
    }

    #[test]
    fn transposed_matmul_matches_explicit() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        // a^T * b = [[1,3],[2,4]] * [[5,6],[7,8]] = [[26,30],[38,44]]
        let c = a.transposed_matmul(&b);
        assert_eq!(c.as_slice(), &[26., 30., 38., 44.]);
    }

    #[test]
    fn axpy_scale_bias_norm() {
        let mut a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![1., 1., 1.]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[3., 4., 5.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2., 2.5]);
        a.add_bias(&[0.5, 0.0, -0.5]);
        assert_eq!(a.as_slice(), &[2., 2., 2.]);
        assert!((a.norm() - 12f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_fn_and_accessors() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.row(1), &[10., 11.]);
        let mut m = m;
        m.set(0, 1, 9.0);
        assert_eq!(m.get(0, 1), 9.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }
}
