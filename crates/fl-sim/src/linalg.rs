//! Minimal dense linear algebra for the training substrate.
//!
//! Row-major `f32` matrices with exactly the operations an MLP needs —
//! no external math crates (DESIGN.md §6). The three matrix products
//! are cache-blocked, register-tiled kernels (see [`kernel`] and
//! DESIGN.md §10); the `*_into` variants write into a caller-owned
//! output so steady-state training allocates nothing.

pub mod kernel;

pub use kernel::Workspace;

/// A dense row-major matrix. The `Default` is the empty `0 × 0`
/// matrix, the usual seed for `*_into`/workspace buffers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.write_from_fn(f);
        m
    }

    /// Reshapes in place to `rows × cols` and refills from a closure
    /// over `(row, col)`, reusing the existing buffer capacity.
    pub fn fill_from_fn(&mut self, rows: usize, cols: usize, f: impl FnMut(usize, usize) -> f32) {
        self.resize(rows, cols);
        self.write_from_fn(f);
    }

    /// Overwrites every element from a closure (flat index-writes, so
    /// the loop optimizes to a straight fill — no per-element push).
    fn write_from_fn(&mut self, mut f: impl FnMut(usize, usize) -> f32) {
        let cols = self.cols;
        for r in 0..self.rows {
            let row = &mut self.data[r * cols..(r + 1) * cols];
            for (c, v) in row.iter_mut().enumerate() {
                *v = f(r, c);
            }
        }
    }

    /// Reshapes in place to `rows × cols`, reusing the buffer's
    /// capacity where possible. Element contents are unspecified
    /// afterwards — callers overwrite them.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `src`'s shape and contents into this matrix, reusing
    /// capacity.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Capacity of the backing buffer in elements (exposed so tests
    /// can assert the zero-reallocation contract).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size must match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self * other` (blocked kernel, fresh output).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        let mut ws = kernel::Workspace::new();
        kernel::matmul_into(self, other, &mut out, &mut ws);
        out
    }

    /// `self * other` into a reused output (see [`kernel::matmul_into`]).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix, ws: &mut kernel::Workspace) {
        kernel::matmul_into(self, other, out, ws);
    }

    /// `self * otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        let mut ws = kernel::Workspace::new();
        kernel::matmul_transposed_into(self, other, &mut out, &mut ws);
        out
    }

    /// `self * otherᵀ` into a reused output.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transposed_into(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        ws: &mut kernel::Workspace,
    ) {
        kernel::matmul_transposed_into(self, other, out, ws);
    }

    /// `selfᵀ * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        let mut ws = kernel::Workspace::new();
        kernel::transposed_matmul_into(self, other, &mut out, &mut ws);
        out
    }

    /// `selfᵀ * other` into a reused output.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transposed_matmul_into(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        ws: &mut kernel::Workspace,
    ) {
        kernel::transposed_matmul_into(self, other, out, ws);
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Adds a bias row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transposed_matches_explicit() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(2, 3, vec![1., 0., 1., 0., 1., 0.]);
        // a * b^T
        let c = a.matmul_transposed(&b);
        assert_eq!(c.as_slice(), &[4., 2., 10., 5.]);
    }

    #[test]
    fn transposed_matmul_matches_explicit() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        // a^T * b = [[1,3],[2,4]] * [[5,6],[7,8]] = [[26,30],[38,44]]
        let c = a.transposed_matmul(&b);
        assert_eq!(c.as_slice(), &[26., 30., 38., 44.]);
    }

    #[test]
    fn axpy_scale_bias_norm() {
        let mut a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![1., 1., 1.]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[3., 4., 5.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2., 2.5]);
        a.add_bias(&[0.5, 0.0, -0.5]);
        assert_eq!(a.as_slice(), &[2., 2., 2.]);
        assert!((a.norm() - 12f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn resize_and_fill_from_fn_reuse_capacity() {
        let mut m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let ptr = m.as_slice().as_ptr();
        let cap = m.capacity();
        m.fill_from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.as_slice(), &[0., 1., 2., 3., 4., 5.]);
        assert_eq!(m.as_slice().as_ptr(), ptr, "shrinking must reuse the buffer");
        assert_eq!(m.capacity(), cap);
        m.resize(4, 2);
        assert_eq!((m.rows(), m.cols()), (4, 2));
        assert_eq!(m.as_slice().len(), 8);
    }

    #[test]
    fn copy_from_matches_source() {
        let src = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let mut dst = Matrix::zeros(1, 1);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn from_fn_and_accessors() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.row(1), &[10., 11.]);
        let mut m = m;
        m.set(0, 1, 9.0);
        assert_eq!(m.get(0, 1), 9.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }
}
