//! Data-accuracy pre-experiments (§III-C, Fig. 2): measure how global
//! accuracy grows with contributed data, and fit the paper's
//! `P(x) = c₀ − c₁/√x` curve to the measurements.
//!
//! The fitted curve (or a monotone-concave interpolation of it) can be
//! plugged straight into the mechanism as an
//! [`tradefl_core::accuracy::EmpiricalAccuracy`] — the "no assumed
//! functional form" workflow the paper advertises.

use crate::data::{generate, DatasetKind};
use crate::fed::{train_federated, FedConfig, FedError};
use crate::model::{Mlp, ModelKind};
use tradefl_core::accuracy::EmpiricalAccuracy;
use tradefl_core::error::ModelError;

/// One measured point of the data-accuracy curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePoint {
    /// Total contributed samples across organizations.
    pub samples: usize,
    /// Measured test accuracy.
    pub accuracy: f64,
}

/// A fitted `accuracy(x) = c0 − c1/√x` curve with its fit quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqrtFit {
    /// Asymptotic accuracy `c0`.
    pub c0: f64,
    /// Decay coefficient `c1` (non-negative for concave-increasing
    /// data).
    pub c1: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

impl SqrtFit {
    /// Evaluates the fitted curve at a sample count.
    pub fn predict(&self, samples: f64) -> f64 {
        self.c0 - self.c1 / samples.max(1.0).sqrt()
    }

    /// Least-squares fit of `y = c0 − c1/√x` (linear in `(c0, c1)`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are supplied.
    pub fn fit(points: &[ProbePoint]) -> SqrtFit {
        assert!(points.len() >= 2, "need at least two probe points");
        // Basis: [1, -1/sqrt(x)]; normal equations for 2x2 system.
        let n = points.len() as f64;
        let mut s_b = 0.0; // Σ basis
        let mut s_bb = 0.0; // Σ basis²
        let mut s_y = 0.0;
        let mut s_by = 0.0;
        for p in points {
            let b = -1.0 / (p.samples.max(1) as f64).sqrt();
            s_b += b;
            s_bb += b * b;
            s_y += p.accuracy;
            s_by += b * p.accuracy;
        }
        let det = n * s_bb - s_b * s_b;
        let (c0, c1) = if det.abs() < 1e-18 {
            (s_y / n, 0.0)
        } else {
            let c0 = (s_bb * s_y - s_b * s_by) / det;
            let c1 = (n * s_by - s_b * s_y) / det;
            (c0, c1)
        };
        let mean = s_y / n;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for p in points {
            let pred = c0 - c1 / (p.samples.max(1) as f64).sqrt();
            ss_res += (p.accuracy - pred).powi(2);
            ss_tot += (p.accuracy - mean).powi(2);
        }
        let r_squared = if ss_tot < 1e-18 { 1.0 } else { 1.0 - ss_res / ss_tot };
        SqrtFit { c0, c1, r_squared }
    }

    /// Samples the fitted curve into a monotone-concave
    /// [`EmpiricalAccuracy`] over `[lo, hi]` **sample** counts, mapped
    /// to data volume via `bits_per_sample`.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] if the fitted curve is degenerate
    /// (`c1 < 0` makes it non-concave/decreasing).
    pub fn to_empirical(
        &self,
        lo_samples: f64,
        hi_samples: f64,
        bits_per_sample: f64,
        points: usize,
    ) -> Result<EmpiricalAccuracy, ModelError> {
        let n = points.max(2);
        let samples = (0..n).map(move |k| {
            // Log-spaced grid suits the 1/sqrt shape.
            let t = k as f64 / (n - 1) as f64;
            lo_samples * (hi_samples / lo_samples).powf(t)
        });
        EmpiricalAccuracy::from_samples(samples.map(|x| {
            let gain = (self.predict(x) - self.predict(lo_samples)).max(0.0);
            (x * bits_per_sample, gain)
        }))
    }
}

/// Measures the Fig. 2 curve: federated accuracy as a function of total
/// contributed samples, everything else fixed.
///
/// `sample_counts` are total training-set sizes; each run splits the
/// pool evenly across `orgs` organizations and trains `model` on
/// `dataset` from scratch.
///
/// # Errors
///
/// Propagates [`FedError`] from the underlying training runs.
pub fn measure_accuracy_curve(
    model: ModelKind,
    dataset: DatasetKind,
    sample_counts: &[usize],
    orgs: usize,
    test_samples: usize,
    config: &FedConfig,
    seed: u64,
) -> Result<Vec<ProbePoint>, FedError> {
    let max_samples = sample_counts.iter().copied().max().unwrap_or(0);
    let pool = generate(dataset, max_samples + test_samples, seed);
    let shards_src = pool.take(max_samples);
    let test = {
        // The tail of the pool is the held-out test set.
        let all = pool.shard(&[max_samples, test_samples]);
        // lint:allow(no-panic-in-lib): shard(&[a, b]) always yields exactly two shards
        all.into_iter().nth(1).expect("two shards requested")
    };
    let mut out = Vec::with_capacity(sample_counts.len());
    for &count in sample_counts {
        let per_org = count / orgs;
        let sizes = vec![per_org; orgs];
        let shards = shards_src.shard(&sizes);
        let global = Mlp::for_kind(model, test.dim(), test.classes, seed ^ 0xabcd);
        let outcome = train_federated(global, &shards, &test, &vec![1.0; orgs], config)?;
        out.push(ProbePoint { samples: per_org * orgs, accuracy: outcome.final_accuracy() as f64 });
    }
    Ok(out)
}

/// A ready-made probe dataset for tests and quick demos: accuracy
/// measured at a handful of sizes with a fast configuration.
pub fn quick_probe(
    model: ModelKind,
    dataset: DatasetKind,
    seed: u64,
) -> Result<Vec<ProbePoint>, FedError> {
    let config = FedConfig { rounds: 8, local_epochs: 1, batch_size: 32, lr: 0.1, seed };
    measure_accuracy_curve(
        model,
        dataset,
        &[200, 400, 800, 1600, 3200],
        4,
        600,
        &config,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::AccuracyModel;

    #[test]
    fn sqrt_fit_recovers_synthetic_coefficients() {
        let pts: Vec<ProbePoint> = [100usize, 400, 900, 1600, 4900]
            .iter()
            .map(|&x| ProbePoint {
                samples: x,
                accuracy: 0.9 - 2.0 / (x as f64).sqrt(),
            })
            .collect();
        let fit = SqrtFit::fit(&pts);
        assert!((fit.c0 - 0.9).abs() < 1e-9);
        assert!((fit.c1 - 2.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
        assert!((fit.predict(400.0) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn fit_handles_noise_gracefully() {
        let pts: Vec<ProbePoint> = [100usize, 200, 400, 800, 1600, 3200]
            .iter()
            .enumerate()
            .map(|(i, &x)| ProbePoint {
                samples: x,
                accuracy: 0.8 - 1.5 / (x as f64).sqrt() + if i % 2 == 0 { 0.01 } else { -0.01 },
            })
            .collect();
        let fit = SqrtFit::fit(&pts);
        assert!((fit.c0 - 0.8).abs() < 0.05);
        assert!(fit.r_squared > 0.8);
    }

    #[test]
    fn to_empirical_produces_valid_model() {
        let fit = SqrtFit { c0: 0.85, c1: 1.8, r_squared: 1.0 };
        let emp = fit.to_empirical(100.0, 10_000.0, 1e7, 12).unwrap();
        // Monotone non-decreasing over the sampled range.
        let g1 = emp.gain(100.0 * 1e7);
        let g2 = emp.gain(5_000.0 * 1e7);
        let g3 = emp.gain(10_000.0 * 1e7);
        assert!(g1 <= g2 && g2 <= g3);
        assert!(g3 > 0.0);
    }

    #[test]
    fn measured_curve_is_mostly_increasing_with_diminishing_returns() {
        // The Fig. 2 shape check, on the cheapest model/dataset pair.
        let pts = quick_probe(ModelKind::MobilenetLike, DatasetKind::EurosatLike, 3).unwrap();
        assert_eq!(pts.len(), 5);
        // Largest-vs-smallest must improve clearly.
        assert!(
            pts.last().unwrap().accuracy > pts[0].accuracy + 0.03,
            "accuracy {:?}",
            pts
        );
        // And the fitted sqrt curve must explain the trend.
        let fit = SqrtFit::fit(&pts);
        assert!(fit.c1 > 0.0, "increasing curve: {fit:?}");
        assert!(fit.r_squared > 0.5, "fit quality: {fit:?}");
    }
}
