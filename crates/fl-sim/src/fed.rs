//! FedAvg cross-silo training (§III-B, Eqs. 1-3).
//!
//! Organizations hold disjoint shards; each round they train locally on
//! the `d_i`-fraction of their shard they agreed to contribute, and the
//! server aggregates parameters weighted by contributed sample counts
//! (Eq. 3's `d_i |S_i|` weights, normalized).

//! Per-silo local training runs on the work-stealing pool: each
//! `(round, org)` pair derives its own RNG seed from `config.seed`
//! (SplitMix64-style mixing), so a silo's local run is a pure function
//! of `(global model, shard, round, org)` — independent of scheduling
//! — and client deltas are merged in fixed silo order. Results are
//! therefore bit-identical for every worker count.

use crate::data::{Dataset, MiniBatch};
use crate::model::{Mlp, Workspace};
use tradefl_runtime::obs;
use tradefl_runtime::rng::{SeedableRng, SliceRandom, StdRng};
use tradefl_runtime::sync::pool::Pool;

/// Minimum per-round work — contributed samples × local epochs — below
/// which local training stays serial even on a multi-worker pool.
/// Mirrors `gbd`'s 512-candidate traversal cutoff: scoped-thread spawn
/// and merge overhead beats the win on small rounds (the recorded
/// `fedavg_round` 0.958x regression in the PR-2 baseline). Selection
/// depends only on the instance, never on the worker count, so pooled
/// and serial paths remain bit-identical (module docs above).
const POOLED_FED_MIN_STEPS: usize = 2048;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedConfig {
    /// Number of federated rounds.
    pub rounds: usize,
    /// Local epochs per round (the paper's `G` is the total number of
    /// training epochs; `rounds × local_epochs` plays that role here).
    pub local_epochs: usize,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self { rounds: 30, local_epochs: 2, batch_size: 32, lr: 0.08, seed: 0 }
    }
}

/// Global-model metrics after one round (the Figs. 13-14 series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundMetrics {
    /// Round index (1-based; 0 is the untrained model).
    pub round: usize,
    /// Test cross-entropy loss.
    pub loss: f32,
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f32,
}

/// Outcome of a federated training run.
#[derive(Debug, Clone, PartialEq)]
pub struct FedOutcome {
    /// The trained global model.
    pub model: Mlp,
    /// Per-round test metrics, starting with round 0 (untrained).
    pub history: Vec<RoundMetrics>,
}

impl FedOutcome {
    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.history.last().map_or(f32::NAN, |m| m.accuracy)
    }

    /// Final test loss.
    pub fn final_loss(&self) -> f32 {
        self.history.last().map_or(f32::NAN, |m| m.loss)
    }
}

/// Errors from federated training setup.
#[derive(Debug, Clone, PartialEq)]
pub enum FedError {
    /// `fractions.len()` differs from the number of shards.
    FractionCount {
        /// Number of shards.
        shards: usize,
        /// Number of fractions provided.
        fractions: usize,
    },
    /// A fraction was outside `[0, 1]` or not finite.
    BadFraction {
        /// The shard index.
        org: usize,
        /// The offending value.
        value: f64,
    },
    /// No organization contributed any data.
    NothingContributed,
}

impl std::fmt::Display for FedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FedError::FractionCount { shards, fractions } => {
                write!(f, "{fractions} fractions for {shards} shards")
            }
            FedError::BadFraction { org, value } => {
                write!(f, "fraction {value} of org {org} outside [0, 1]")
            }
            FedError::NothingContributed => write!(f, "no organization contributed data"),
        }
    }
}

impl std::error::Error for FedError {}

/// Runs FedAvg with per-organization contribution fractions `d`.
///
/// `global` is consumed as the starting model (round 0 is evaluated
/// before any training).
///
/// # Errors
///
/// [`FedError`] on shape/fraction problems or when `Σ d_i |S_i| = 0`.
pub fn train_federated(
    global: Mlp,
    shards: &[Dataset],
    test: &Dataset,
    fractions: &[f64],
    config: &FedConfig,
) -> Result<FedOutcome, FedError> {
    train_federated_with(global, shards, test, fractions, config, Pool::global())
}

/// Default silos-per-edge-group for the hierarchical aggregation path
/// ([`train_federated_grouped`]). A compile-time constant — never a
/// function of the worker count — so the grouping, and therefore every
/// floating-point association in the reduce, is identical for every
/// pool size. 32 silos × one weighted partial keeps a group's work
/// well above the pool's dispatch cost while bounding live memory at
/// O(model × workers).
pub const EDGE_GROUP_SIZE: usize = 32;

/// [`train_federated`] on an explicit pool: silos train concurrently
/// within a round (each from its own derived seed, see the module
/// docs) and the server merges their parameters through the two-level
/// streaming reduce of [`train_federated_grouped`] with
/// [`EDGE_GROUP_SIZE`]-silo edge groups — bit-identical for every
/// worker count.
///
/// # Errors
///
/// See [`train_federated`].
pub fn train_federated_with(
    global: Mlp,
    shards: &[Dataset],
    test: &Dataset,
    fractions: &[f64],
    config: &FedConfig,
    pool: &Pool,
) -> Result<FedOutcome, FedError> {
    train_federated_grouped(global, shards, test, fractions, config, EDGE_GROUP_SIZE, pool)
}

/// FedAvg with hierarchical two-level streaming aggregation: silos are
/// partitioned into contiguous *edge groups* of `group_size`; each
/// group trains its silos sequentially on one reusable model buffer
/// (no per-silo `clone`) and streams their weighted parameters into a
/// preallocated f64 partial; the server merges group partials in fixed
/// group order. Live memory per round is O(model × active groups) —
/// bounded by the worker count, never by the silo count — instead of
/// the flat path's O(model × silos).
///
/// Determinism: groups are a pure function of `(silo index,
/// group_size)`, every silo trains from a seed derived from `(round,
/// org)`, within-group accumulation runs in silo order and the global
/// merge in group order — all independent of scheduling, so results
/// are bit-identical for every worker count.
///
/// # Errors
///
/// See [`train_federated`].
pub fn train_federated_grouped(
    mut global: Mlp,
    shards: &[Dataset],
    test: &Dataset,
    fractions: &[f64],
    config: &FedConfig,
    group_size: usize,
    pool: &Pool,
) -> Result<FedOutcome, FedError> {
    if fractions.len() != shards.len() {
        return Err(FedError::FractionCount {
            shards: shards.len(),
            fractions: fractions.len(),
        });
    }
    for (i, &d) in fractions.iter().enumerate() {
        if !d.is_finite() || !(0.0..=1.0).contains(&d) {
            return Err(FedError::BadFraction { org: i, value: d });
        }
    }
    // Materialize each org's contributed subset once.
    let contributed: Vec<Dataset> = shards
        .iter()
        .zip(fractions)
        .map(|(shard, &d)| shard.take(((d * shard.len() as f64).floor() as usize).min(shard.len())))
        .collect();
    let weights: Vec<f64> = contributed.iter().map(|c| c.len() as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    // lint:allow(no-float-eq): weights are whole sample counts; exactly zero means nobody contributed
    if total_weight == 0.0 {
        return Err(FedError::NothingContributed);
    }

    // Evaluation scratch, merge buffers and the per-worker group slots
    // live across rounds, so the steady-state round loop performs no
    // allocations at all (machine-checked: `run_round`, `train_group`
    // and `local_train` are in the `no-alloc-in-hot-loop` lint scope).
    let group_size = group_size.max(1);
    let n_silos = contributed.len();
    let n_groups = n_silos.div_ceil(group_size);
    // Pool engagement is thresholded on per-round work (an instance
    // property — see POOLED_FED_MIN_STEPS); small rounds run the same
    // group jobs inline, producing bit-identical results.
    let round_steps = total_weight as usize * config.local_epochs.max(1);
    let use_pool =
        pool.workers() > 1 && n_groups > 1 && round_steps >= POOLED_FED_MIN_STEPS;
    // Live aggregation memory: one model + one f64 partial per slot,
    // O(model × min(workers, groups)) — independent of the silo count.
    let n_slots = if use_pool { pool.workers().min(n_groups) } else { 1 };
    let mut slots: Vec<GroupSlot> = (0..n_slots).map(|_| GroupSlot::for_model(&global)).collect();
    let mut silo_stats: Vec<Option<(f32, f32)>> = vec![None; n_silos];
    let mut eval_ws = Workspace::new();
    let mut aggregate = vec![0.0f64; global.param_count()];
    let mut params = vec![0.0f32; global.param_count()];
    // Participation is a round-invariant property of the contributed
    // subsets (a silo with an empty subset never trains).
    let participating = contributed.iter().filter(|c| !c.is_empty()).count();

    let (loss, accuracy) = global.evaluate_with(test, &mut eval_ws);
    let mut history = vec![RoundMetrics { round: 0, loss, accuracy }];
    for round in 1..=config.rounds {
        // Per-silo test metrics are recorder-only: evaluating each
        // local model is pure (no training state is touched), so
        // enabling tracing cannot change the FL trajectory.
        let probe_test = if obs::is_enabled() { Some(test) } else { None };
        run_round(
            round,
            group_size,
            &global,
            &contributed,
            &weights,
            total_weight,
            config,
            pool,
            use_pool,
            &mut slots,
            &mut silo_stats,
            &mut aggregate,
            probe_test,
        );
        for (p, &acc) in params.iter_mut().zip(&aggregate) {
            *p = acc as f32;
        }
        global.set_params(&params);
        let (loss, accuracy) = global.evaluate_with(test, &mut eval_ws);
        history.push(RoundMetrics { round, loss, accuracy });
        // Group training fans out to the pool, but this record runs on
        // the sequential merge path after the barrier, so the event
        // stream is identical for any worker count.
        obs::event(
            obs::Subsystem::Fed,
            "round",
            &[
                ("round", round.into()),
                ("loss", f64::from(loss).into()),
                ("accuracy", f64::from(accuracy).into()),
                ("silos", n_silos.into()),
                ("participating", participating.into()),
            ],
        );
        obs::counter_add("fed.rounds", 1);
        obs::counter_add("fed.local_updates", participating as u64);
        obs::gauge_set("fed.loss", f64::from(loss));
        obs::gauge_set("fed.accuracy", f64::from(accuracy));
        if probe_test.is_some() {
            // Emitted sequentially in silo order from the per-group
            // stats the jobs recorded — identical stream for any
            // worker count.
            for (org, stat) in silo_stats.iter().enumerate() {
                let Some((silo_loss, silo_acc)) = *stat else { continue };
                obs::event(
                    obs::Subsystem::Fed,
                    "silo",
                    &[
                        ("round", round.into()),
                        ("org", org.into()),
                        ("weight", (weights[org] / total_weight).into()),
                        ("loss", f64::from(silo_loss).into()),
                        ("accuracy", f64::from(silo_acc).into()),
                    ],
                );
            }
        }
    }
    Ok(FedOutcome { model: global, history })
}

/// Reusable per-slot training state: one model buffer, one f64 partial
/// and one set of SGD scratch buffers, shared by every silo a slot's
/// group jobs ever train. Allocated once before the round loop.
#[derive(Debug)]
struct GroupSlot {
    model: Mlp,
    partial: Vec<f64>,
    scratch: SiloScratch,
}

/// Per-silo SGD scratch, reused across silos, epochs and rounds.
#[derive(Debug)]
struct SiloScratch {
    order: Vec<usize>,
    batch: MiniBatch,
    ws: Workspace,
}

impl GroupSlot {
    fn for_model(global: &Mlp) -> Self {
        Self {
            model: global.clone(),
            partial: vec![0.0f64; global.param_count()],
            scratch: SiloScratch {
                order: Vec::new(),
                batch: MiniBatch::new(),
                ws: Workspace::new(),
            },
        }
    }
}

/// One federated round over the two-level topology: edge groups are
/// dispatched in windows of `slots.len()` (pooled or inline — same
/// jobs either way), and after each window's barrier the group
/// partials merge into `aggregate` in strict group order. Zero
/// allocations (lint-enforced hot loop).
#[allow(clippy::too_many_arguments)]
fn run_round(
    round: usize,
    group_size: usize,
    global: &Mlp,
    contributed: &[Dataset],
    weights: &[f64],
    total_weight: f64,
    config: &FedConfig,
    pool: &Pool,
    use_pool: bool,
    slots: &mut [GroupSlot],
    silo_stats: &mut [Option<(f32, f32)>],
    aggregate: &mut [f64],
    probe_test: Option<&Dataset>,
) {
    let n_groups = contributed.len().div_ceil(group_size);
    let n_slots = slots.len().max(1);
    aggregate.fill(0.0);
    let mut window_base = 0;
    while window_base < n_groups {
        let window_len = n_slots.min(n_groups - window_base);
        let chunks = silo_stats
            .chunks_mut(group_size)
            .skip(window_base)
            .take(window_len);
        if use_pool && window_len > 1 {
            pool.scope(|s| {
                for (w, (slot, stats)) in
                    slots[..window_len].iter_mut().zip(chunks).enumerate()
                {
                    let group = window_base + w;
                    s.spawn(move || {
                        train_group(
                            round, group, group_size, global, contributed, weights,
                            total_weight, config, slot, stats, probe_test,
                        );
                    });
                }
            });
        } else {
            for (w, (slot, stats)) in
                slots[..window_len].iter_mut().zip(chunks).enumerate()
            {
                let group = window_base + w;
                train_group(
                    round, group, group_size, global, contributed, weights,
                    total_weight, config, slot, stats, probe_test,
                );
            }
        }
        // Global merge, strict group order (scheduling-independent).
        for slot in &slots[..window_len] {
            for (acc, &p) in aggregate.iter_mut().zip(&slot.partial) {
                *acc += p;
            }
        }
        window_base += window_len;
    }
}

/// Trains one edge group: its silos sequentially, in silo order, each
/// from its own `(round, org)`-derived seed, streaming weighted
/// parameters into the slot's f64 partial. Pure function of
/// `(global, shards, round, group)` — independent of which worker runs
/// it. Zero allocations (lint-enforced hot loop).
#[allow(clippy::too_many_arguments)]
fn train_group(
    round: usize,
    group: usize,
    group_size: usize,
    global: &Mlp,
    contributed: &[Dataset],
    weights: &[f64],
    total_weight: f64,
    config: &FedConfig,
    slot: &mut GroupSlot,
    stats: &mut [Option<(f32, f32)>],
    probe_test: Option<&Dataset>,
) {
    slot.partial.fill(0.0);
    let start = group * group_size;
    let end = (start + group_size).min(contributed.len());
    for org in start..end {
        let stat = &mut stats[org - start];
        *stat = None;
        let data = &contributed[org];
        if data.is_empty() {
            continue;
        }
        slot.model.copy_params_from(global);
        let mut rng = StdRng::seed_from_u64(silo_seed(config.seed, round, org));
        local_train(&mut slot.model, data, config, &mut rng, &mut slot.scratch);
        slot.model
            .accumulate_scaled_params(weights[org] / total_weight, &mut slot.partial);
        if let Some(test) = probe_test {
            *stat = Some(slot.model.evaluate_with(test, &mut slot.scratch.ws));
        }
    }
}

/// Derives the local-training RNG seed for one `(round, org)` cell:
/// SplitMix64-style finalization over the base seed and both indices,
/// so cells are statistically independent and each local run is
/// reproducible in isolation.
fn silo_seed(base: u64, round: usize, org: usize) -> u64 {
    let mut z = base ^ 0xfed0_5eed;
    for v in [round as u64, org as u64] {
        z = z.wrapping_add(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

/// One silo's local SGD on a reusable scratch set: the index buffer,
/// mini-batch and GEMM workspace all come from the slot, so steady
/// state performs zero allocations per step (DESIGN.md §10) *and* zero
/// per silo. Zero allocations (lint-enforced hot loop).
fn local_train(
    model: &mut Mlp,
    data: &Dataset,
    config: &FedConfig,
    rng: &mut StdRng,
    scratch: &mut SiloScratch,
) {
    let n = data.len();
    scratch.order.clear();
    scratch.order.extend(0..n);
    for _ in 0..config.local_epochs {
        scratch.order.shuffle(rng);
        for chunk in scratch.order.chunks(config.batch_size.max(1)) {
            scratch.batch.gather(data, chunk);
            model.sgd_step_with(
                &scratch.batch.features,
                &scratch.batch.labels,
                config.lr,
                &mut scratch.ws,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate, DatasetKind};
    use crate::model::{Mlp, ModelKind};

    fn setup(n_orgs: usize) -> (Vec<Dataset>, Dataset) {
        let all = generate(DatasetKind::EurosatLike, 260 * n_orgs + 400, 11);
        let mut sizes = vec![260; n_orgs];
        sizes.push(400);
        let mut shards = all.shard(&sizes);
        let test = shards.pop().unwrap();
        (shards, test)
    }

    fn quick_config() -> FedConfig {
        FedConfig { rounds: 10, local_epochs: 1, batch_size: 32, lr: 0.1, seed: 1 }
    }

    #[test]
    fn federated_training_improves_accuracy() {
        let (shards, test) = setup(3);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
        let out =
            train_federated(global, &shards, &test, &[1.0, 1.0, 1.0], &quick_config()).unwrap();
        assert_eq!(out.history.len(), 11);
        assert!(
            out.final_accuracy() > out.history[0].accuracy + 0.2,
            "accuracy {} -> {}",
            out.history[0].accuracy,
            out.final_accuracy()
        );
        assert!(out.final_loss() < out.history[0].loss);
    }

    #[test]
    fn more_contributed_data_yields_better_accuracy() {
        let (shards, test) = setup(4);
        let mk = |fracs: &[f64]| {
            let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
            train_federated(global, &shards, &test, fracs, &quick_config())
                .unwrap()
                .final_accuracy()
        };
        let low = mk(&[0.05, 0.05, 0.05, 0.05]);
        let high = mk(&[1.0, 1.0, 1.0, 1.0]);
        assert!(high > low, "full data {high} must beat 5% {low}");
    }

    #[test]
    fn zero_contributors_are_skipped_not_fatal() {
        let (shards, test) = setup(2);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
        let out = train_federated(global, &shards, &test, &[0.0, 1.0], &quick_config()).unwrap();
        assert!(out.final_accuracy() > 0.3);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let (shards, test) = setup(2);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
        assert!(matches!(
            train_federated(global.clone(), &shards, &test, &[1.0], &quick_config()),
            Err(FedError::FractionCount { .. })
        ));
        assert!(matches!(
            train_federated(global.clone(), &shards, &test, &[1.5, 0.5], &quick_config()),
            Err(FedError::BadFraction { org: 0, .. })
        ));
        assert!(matches!(
            train_federated(global, &shards, &test, &[0.0, 0.0], &quick_config()),
            Err(FedError::NothingContributed)
        ));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (shards, test) = setup(2);
        let mk = |seed| {
            let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
            let cfg = FedConfig { seed, ..quick_config() };
            train_federated(global, &shards, &test, &[0.5, 0.5], &cfg).unwrap().final_accuracy()
        };
        assert_eq!(mk(7), mk(7));
    }
}
