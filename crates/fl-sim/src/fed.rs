//! FedAvg cross-silo training (§III-B, Eqs. 1-3).
//!
//! Organizations hold disjoint shards; each round they train locally on
//! the `d_i`-fraction of their shard they agreed to contribute, and the
//! server aggregates parameters weighted by contributed sample counts
//! (Eq. 3's `d_i |S_i|` weights, normalized).

//! Per-silo local training runs on the work-stealing pool: each
//! `(round, org)` pair derives its own RNG seed from `config.seed`
//! (SplitMix64-style mixing), so a silo's local run is a pure function
//! of `(global model, shard, round, org)` — independent of scheduling
//! — and client deltas are merged in fixed silo order. Results are
//! therefore bit-identical for every worker count.

use crate::data::{Dataset, MiniBatch};
use crate::model::{Mlp, Workspace};
use tradefl_runtime::obs;
use tradefl_runtime::rng::{SeedableRng, SliceRandom, StdRng};
use tradefl_runtime::sync::pool::Pool;

/// Minimum per-round work — contributed samples × local epochs — below
/// which local training stays serial even on a multi-worker pool.
/// Mirrors `gbd`'s 512-candidate traversal cutoff: scoped-thread spawn
/// and merge overhead beats the win on small rounds (the recorded
/// `fedavg_round` 0.958x regression in the PR-2 baseline). Selection
/// depends only on the instance, never on the worker count, so pooled
/// and serial paths remain bit-identical (module docs above).
const POOLED_FED_MIN_STEPS: usize = 2048;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedConfig {
    /// Number of federated rounds.
    pub rounds: usize,
    /// Local epochs per round (the paper's `G` is the total number of
    /// training epochs; `rounds × local_epochs` plays that role here).
    pub local_epochs: usize,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self { rounds: 30, local_epochs: 2, batch_size: 32, lr: 0.08, seed: 0 }
    }
}

/// Global-model metrics after one round (the Figs. 13-14 series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundMetrics {
    /// Round index (1-based; 0 is the untrained model).
    pub round: usize,
    /// Test cross-entropy loss.
    pub loss: f32,
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f32,
}

/// Outcome of a federated training run.
#[derive(Debug, Clone, PartialEq)]
pub struct FedOutcome {
    /// The trained global model.
    pub model: Mlp,
    /// Per-round test metrics, starting with round 0 (untrained).
    pub history: Vec<RoundMetrics>,
}

impl FedOutcome {
    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.history.last().map_or(f32::NAN, |m| m.accuracy)
    }

    /// Final test loss.
    pub fn final_loss(&self) -> f32 {
        self.history.last().map_or(f32::NAN, |m| m.loss)
    }
}

/// Errors from federated training setup.
#[derive(Debug, Clone, PartialEq)]
pub enum FedError {
    /// `fractions.len()` differs from the number of shards.
    FractionCount {
        /// Number of shards.
        shards: usize,
        /// Number of fractions provided.
        fractions: usize,
    },
    /// A fraction was outside `[0, 1]` or not finite.
    BadFraction {
        /// The shard index.
        org: usize,
        /// The offending value.
        value: f64,
    },
    /// No organization contributed any data.
    NothingContributed,
}

impl std::fmt::Display for FedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FedError::FractionCount { shards, fractions } => {
                write!(f, "{fractions} fractions for {shards} shards")
            }
            FedError::BadFraction { org, value } => {
                write!(f, "fraction {value} of org {org} outside [0, 1]")
            }
            FedError::NothingContributed => write!(f, "no organization contributed data"),
        }
    }
}

impl std::error::Error for FedError {}

/// Runs FedAvg with per-organization contribution fractions `d`.
///
/// `global` is consumed as the starting model (round 0 is evaluated
/// before any training).
///
/// # Errors
///
/// [`FedError`] on shape/fraction problems or when `Σ d_i |S_i| = 0`.
pub fn train_federated(
    global: Mlp,
    shards: &[Dataset],
    test: &Dataset,
    fractions: &[f64],
    config: &FedConfig,
) -> Result<FedOutcome, FedError> {
    train_federated_with(global, shards, test, fractions, config, Pool::global())
}

/// [`train_federated`] on an explicit pool: silos train concurrently
/// within a round (each from its own derived seed, see the module
/// docs) and the server merges their parameters in fixed silo order —
/// bit-identical for every worker count.
///
/// # Errors
///
/// See [`train_federated`].
pub fn train_federated_with(
    mut global: Mlp,
    shards: &[Dataset],
    test: &Dataset,
    fractions: &[f64],
    config: &FedConfig,
    pool: &Pool,
) -> Result<FedOutcome, FedError> {
    if fractions.len() != shards.len() {
        return Err(FedError::FractionCount {
            shards: shards.len(),
            fractions: fractions.len(),
        });
    }
    for (i, &d) in fractions.iter().enumerate() {
        if !d.is_finite() || !(0.0..=1.0).contains(&d) {
            return Err(FedError::BadFraction { org: i, value: d });
        }
    }
    // Materialize each org's contributed subset once.
    let contributed: Vec<Dataset> = shards
        .iter()
        .zip(fractions)
        .map(|(shard, &d)| shard.take(((d * shard.len() as f64).floor() as usize).min(shard.len())))
        .collect();
    let weights: Vec<f64> = contributed.iter().map(|c| c.len() as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    // lint:allow(no-float-eq): weights are whole sample counts; exactly zero means nobody contributed
    if total_weight == 0.0 {
        return Err(FedError::NothingContributed);
    }

    // Evaluation scratch and merge buffers live across rounds, so the
    // steady-state round loop allocates only inside the per-silo jobs
    // (one workspace each, reused across every epoch/batch within).
    let mut eval_ws = Workspace::new();
    let mut aggregate = vec![0.0f64; global.param_count()];
    let mut params = vec![0.0f32; global.param_count()];
    // Pool engagement is thresholded on per-round work (an instance
    // property — see POOLED_FED_MIN_STEPS); small rounds run the same
    // jobs inline, producing bit-identical results.
    let round_steps = total_weight as usize * config.local_epochs.max(1);
    let use_pool = round_steps >= POOLED_FED_MIN_STEPS;

    let (loss, accuracy) = global.evaluate_with(test, &mut eval_ws);
    let mut history = vec![RoundMetrics { round: 0, loss, accuracy }];
    for round in 1..=config.rounds {
        // Fan out: one local-training job per contributing silo, each
        // deterministically seeded by (round, org).
        let job = |org: usize| {
            let data = &contributed[org];
            if data.is_empty() {
                return None;
            }
            let mut local = global.clone();
            let mut rng = StdRng::seed_from_u64(silo_seed(config.seed, round, org));
            local_train(&mut local, data, config, &mut rng);
            Some(local.to_params())
        };
        let locals: Vec<Option<Vec<f32>>> = if use_pool {
            pool.map_indexed(contributed.len(), job)
        } else {
            (0..contributed.len()).map(job).collect()
        };
        // Merge in fixed silo order (weighted FedAvg, Eq. 3).
        aggregate.fill(0.0);
        for (org, local) in locals.iter().enumerate() {
            let Some(local) = local else { continue };
            let w = weights[org] / total_weight;
            for (acc, &p) in aggregate.iter_mut().zip(local) {
                *acc += w * p as f64;
            }
        }
        for (p, &acc) in params.iter_mut().zip(&aggregate) {
            *p = acc as f32;
        }
        global.set_params(&params);
        let (loss, accuracy) = global.evaluate_with(test, &mut eval_ws);
        history.push(RoundMetrics { round, loss, accuracy });
        // Local training fans out to the pool, but this record runs on
        // the sequential merge path after the barrier, so the event
        // stream is identical for any worker count. Per-silo
        // participation is folded in as fields in fixed silo order.
        let participating =
            locals.iter().filter(|p| p.is_some()).count();
        obs::event(
            obs::Subsystem::Fed,
            "round",
            &[
                ("round", round.into()),
                ("loss", f64::from(loss).into()),
                ("accuracy", f64::from(accuracy).into()),
                ("silos", locals.len().into()),
                ("participating", participating.into()),
            ],
        );
        obs::counter_add("fed.rounds", 1);
        obs::counter_add("fed.local_updates", participating as u64);
        obs::gauge_set("fed.loss", f64::from(loss));
        obs::gauge_set("fed.accuracy", f64::from(accuracy));
        if obs::is_enabled() {
            // Per-silo test metrics are recorder-only: evaluating each
            // local model is pure (no training state is touched), so
            // enabling tracing cannot change the FL trajectory.
            let mut probe = global.clone();
            for (org, params) in locals.iter().enumerate() {
                let Some(params) = params else { continue };
                probe.set_params(params);
                let (silo_loss, silo_acc) = probe.evaluate(test);
                obs::event(
                    obs::Subsystem::Fed,
                    "silo",
                    &[
                        ("round", round.into()),
                        ("org", org.into()),
                        ("weight", (weights[org] / total_weight).into()),
                        ("loss", f64::from(silo_loss).into()),
                        ("accuracy", f64::from(silo_acc).into()),
                    ],
                );
            }
        }
    }
    Ok(FedOutcome { model: global, history })
}

/// Derives the local-training RNG seed for one `(round, org)` cell:
/// SplitMix64-style finalization over the base seed and both indices,
/// so cells are statistically independent and each local run is
/// reproducible in isolation.
fn silo_seed(base: u64, round: usize, org: usize) -> u64 {
    let mut z = base ^ 0xfed0_5eed;
    for v in [round as u64, org as u64] {
        z = z.wrapping_add(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

fn local_train(model: &mut Mlp, data: &Dataset, config: &FedConfig, rng: &mut StdRng) {
    let n = data.len();
    // One warm-up allocation set per silo job; every subsequent epoch,
    // batch gather and SGD step reuses these buffers (zero allocations
    // per step — DESIGN.md §10).
    let mut order: Vec<usize> = (0..n).collect();
    let mut batch = MiniBatch::new();
    let mut ws = Workspace::new();
    for _ in 0..config.local_epochs {
        order.shuffle(rng);
        for chunk in order.chunks(config.batch_size.max(1)) {
            batch.gather(data, chunk);
            model.sgd_step_with(&batch.features, &batch.labels, config.lr, &mut ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate, DatasetKind};
    use crate::model::{Mlp, ModelKind};

    fn setup(n_orgs: usize) -> (Vec<Dataset>, Dataset) {
        let all = generate(DatasetKind::EurosatLike, 260 * n_orgs + 400, 11);
        let mut sizes = vec![260; n_orgs];
        sizes.push(400);
        let mut shards = all.shard(&sizes);
        let test = shards.pop().unwrap();
        (shards, test)
    }

    fn quick_config() -> FedConfig {
        FedConfig { rounds: 10, local_epochs: 1, batch_size: 32, lr: 0.1, seed: 1 }
    }

    #[test]
    fn federated_training_improves_accuracy() {
        let (shards, test) = setup(3);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
        let out =
            train_federated(global, &shards, &test, &[1.0, 1.0, 1.0], &quick_config()).unwrap();
        assert_eq!(out.history.len(), 11);
        assert!(
            out.final_accuracy() > out.history[0].accuracy + 0.2,
            "accuracy {} -> {}",
            out.history[0].accuracy,
            out.final_accuracy()
        );
        assert!(out.final_loss() < out.history[0].loss);
    }

    #[test]
    fn more_contributed_data_yields_better_accuracy() {
        let (shards, test) = setup(4);
        let mk = |fracs: &[f64]| {
            let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
            train_federated(global, &shards, &test, fracs, &quick_config())
                .unwrap()
                .final_accuracy()
        };
        let low = mk(&[0.05, 0.05, 0.05, 0.05]);
        let high = mk(&[1.0, 1.0, 1.0, 1.0]);
        assert!(high > low, "full data {high} must beat 5% {low}");
    }

    #[test]
    fn zero_contributors_are_skipped_not_fatal() {
        let (shards, test) = setup(2);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
        let out = train_federated(global, &shards, &test, &[0.0, 1.0], &quick_config()).unwrap();
        assert!(out.final_accuracy() > 0.3);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let (shards, test) = setup(2);
        let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
        assert!(matches!(
            train_federated(global.clone(), &shards, &test, &[1.0], &quick_config()),
            Err(FedError::FractionCount { .. })
        ));
        assert!(matches!(
            train_federated(global.clone(), &shards, &test, &[1.5, 0.5], &quick_config()),
            Err(FedError::BadFraction { org: 0, .. })
        ));
        assert!(matches!(
            train_federated(global, &shards, &test, &[0.0, 0.0], &quick_config()),
            Err(FedError::NothingContributed)
        ));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (shards, test) = setup(2);
        let mk = |seed| {
            let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
            let cfg = FedConfig { seed, ..quick_config() };
            train_federated(global, &shards, &test, &[0.5, 0.5], &cfg).unwrap().final_accuracy()
        };
        assert_eq!(mk(7), mk(7));
    }
}
