//! Cross-silo federated-learning training substrate for **TradeFL**.
//!
//! Implements §III-B of the ICDCS 2023 paper — the FedAvg training
//! process organizations cooperate on — plus the pre-experiment
//! machinery of §III-C (Fig. 2): measuring how global-model accuracy
//! grows with contributed data and fitting the `c₀ − c₁/√x` curve.
//!
//! Everything is pure Rust and deterministic by seed. The paper's GPU
//! models and image corpora are substituted by MLP capacity tiers and
//! seeded Gaussian-mixture analogs (see DESIGN.md §2 for why this
//! preserves the mechanism-relevant behaviour).
//!
//! # Quick start
//!
//! ```
//! use tradefl_fl_sim::data::{generate, DatasetKind};
//! use tradefl_fl_sim::fed::{train_federated, FedConfig};
//! use tradefl_fl_sim::model::{Mlp, ModelKind};
//!
//! // Three organizations share a EuroSat-like corpus.
//! let pool = generate(DatasetKind::EurosatLike, 1000, 42);
//! let mut shards = pool.shard(&[250, 250, 250, 250]);
//! let test = shards.pop().unwrap();
//!
//! let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 1);
//! let config = FedConfig { rounds: 5, ..FedConfig::default() };
//! let outcome = train_federated(global, &shards, &test, &[1.0, 0.5, 0.25], &config)?;
//! assert!(outcome.final_accuracy() > 0.0);
//! # Ok::<(), tradefl_fl_sim::fed::FedError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod async_fed;
pub mod data;
pub mod fed;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod personalize;
pub mod probe;

pub use async_fed::{train_async, AsyncConfig, AsyncOutcome, OrgTiming};
pub use data::{dirichlet_shard, generate, label_skew, Dataset, DatasetKind};
pub use fed::{
    train_federated, train_federated_grouped, train_federated_with, FedConfig, FedError,
    FedOutcome, RoundMetrics, EDGE_GROUP_SIZE,
};
pub use data::MiniBatch;
pub use linalg::Matrix;
pub use metrics::ConfusionMatrix;
pub use model::{Mlp, ModelKind, SgdMomentum, Workspace};
pub use personalize::{personalize, personalize_all, PersonalizeConfig, PersonalizedModel};
pub use probe::{measure_accuracy_curve, ProbePoint, SqrtFit};
