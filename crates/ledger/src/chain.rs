//! Hash-chained blocks: the immutability and traceability substrate
//! (§III-F — "smart contracts ensure credible incentives by recording
//! the results of the redistribution on blockchain").

use crate::merkle::{MerkleProof, MerkleTree};
use crate::sha256::Sha256;
use crate::tx::{Log, Receipt, Transaction};
use crate::types::Hash256;
use tradefl_runtime::codec::BytesMut;
use std::fmt;

/// Block header.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockHeader {
    /// Height (genesis = 0).
    pub number: u64,
    /// Hash of the parent block ([`Hash256::ZERO`] for genesis).
    pub parent: Hash256,
    /// Logical timestamp (deterministic counter, not wall clock).
    pub timestamp: u64,
    /// Digest of the block's transactions.
    pub tx_root: Hash256,
    /// Digest of the block's receipts (commits execution results).
    pub receipts_root: Hash256,
    /// State root after executing this block.
    pub state_root: Hash256,
}

/// A block: header + ordered transactions + their receipts.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Transactions in execution order.
    pub txs: Vec<Transaction>,
    /// One receipt per transaction.
    pub receipts: Vec<Receipt>,
}

impl Block {
    /// Deterministic digest of the transaction list: the Merkle root
    /// over the transaction hashes, so that per-transaction inclusion
    /// proofs ([`Block::prove_tx`]) anchor directly in the header.
    pub fn compute_tx_root(txs: &[Transaction]) -> Hash256 {
        Self::merkle_tree(txs).root()
    }

    /// The Merkle tree over this transaction list.
    pub fn merkle_tree(txs: &[Transaction]) -> MerkleTree {
        let leaves: Vec<Hash256> = txs.iter().map(Transaction::hash).collect();
        MerkleTree::build(&leaves)
    }

    /// Inclusion proof for the `index`-th transaction, verifiable
    /// against `header.tx_root` with only the header in hand.
    pub fn prove_tx(&self, index: usize) -> Option<MerkleProof> {
        Self::merkle_tree(&self.txs).prove(index)
    }

    /// Deterministic digest of the receipt list (sequential SHA-256
    /// over per-receipt digests).
    pub fn compute_receipts_root(receipts: &[Receipt]) -> Hash256 {
        let mut h = Sha256::new();
        for r in receipts {
            h.update(&r.digest().0);
        }
        Hash256(h.finalize())
    }

    /// The block hash (over the header).
    pub fn hash(&self) -> Hash256 {
        let mut buf = BytesMut::with_capacity(144);
        buf.put_u64(self.header.number);
        buf.put_slice(&self.header.parent.0);
        buf.put_u64(self.header.timestamp);
        buf.put_slice(&self.header.tx_root.0);
        buf.put_slice(&self.header.receipts_root.0);
        buf.put_slice(&self.header.state_root.0);
        let mut h = Sha256::new();
        h.update(&buf);
        Hash256(h.finalize())
    }
}

/// Chain-validation failures (tamper evidence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A block's `parent` field does not match the previous block's
    /// hash.
    BrokenLink {
        /// Height of the offending block.
        number: u64,
    },
    /// A block's `tx_root` does not match its transactions.
    TxRootMismatch {
        /// Height of the offending block.
        number: u64,
    },
    /// A block's `receipts_root` does not match its receipts.
    ReceiptsRootMismatch {
        /// Height of the offending block.
        number: u64,
    },
    /// Heights are not consecutive from zero.
    BadNumbering {
        /// Height of the offending block.
        number: u64,
        /// Expected height at this position.
        expected: u64,
    },
    /// Receipt count differs from transaction count.
    ReceiptMismatch {
        /// Height of the offending block.
        number: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BrokenLink { number } => {
                write!(f, "block {number} does not link to its parent hash")
            }
            ChainError::TxRootMismatch { number } => {
                write!(f, "block {number} transaction root mismatch")
            }
            ChainError::ReceiptsRootMismatch { number } => {
                write!(f, "block {number} receipts root mismatch")
            }
            ChainError::BadNumbering { number, expected } => {
                write!(f, "block numbered {number} where {expected} was expected")
            }
            ChainError::ReceiptMismatch { number } => {
                write!(f, "block {number} receipt count mismatch")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// An append-only chain of blocks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Blockchain {
    blocks: Vec<Block>,
}

impl Blockchain {
    /// An empty chain (the node appends the genesis block itself).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blocks.
    pub fn height(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chain holds no blocks yet.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Hash of the latest block, or [`Hash256::ZERO`] when empty.
    pub fn tip_hash(&self) -> Hash256 {
        self.blocks.last().map_or(Hash256::ZERO, |b| b.hash())
    }

    /// The blocks in order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Block at `height`.
    pub fn block(&self, height: usize) -> Option<&Block> {
        self.blocks.get(height)
    }

    /// Appends a block after validating its linkage and roots.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] (and leaves the chain unchanged) if the
    /// block does not extend the tip correctly.
    pub fn push(&mut self, block: Block) -> Result<(), ChainError> {
        let expected_number = self.blocks.len() as u64;
        if block.header.number != expected_number {
            return Err(ChainError::BadNumbering {
                number: block.header.number,
                expected: expected_number,
            });
        }
        if block.header.parent != self.tip_hash() {
            return Err(ChainError::BrokenLink { number: block.header.number });
        }
        if block.header.tx_root != Block::compute_tx_root(&block.txs) {
            return Err(ChainError::TxRootMismatch { number: block.header.number });
        }
        if block.header.receipts_root != Block::compute_receipts_root(&block.receipts) {
            return Err(ChainError::ReceiptsRootMismatch { number: block.header.number });
        }
        if block.receipts.len() != block.txs.len() {
            return Err(ChainError::ReceiptMismatch { number: block.header.number });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Re-validates the entire chain; any in-place mutation of a block
    /// is detected here.
    ///
    /// # Errors
    ///
    /// The first [`ChainError`] encountered walking from genesis.
    pub fn verify(&self) -> Result<(), ChainError> {
        let mut parent = Hash256::ZERO;
        for (i, block) in self.blocks.iter().enumerate() {
            if block.header.number != i as u64 {
                return Err(ChainError::BadNumbering {
                    number: block.header.number,
                    expected: i as u64,
                });
            }
            if block.header.parent != parent {
                return Err(ChainError::BrokenLink { number: block.header.number });
            }
            if block.header.tx_root != Block::compute_tx_root(&block.txs) {
                return Err(ChainError::TxRootMismatch { number: block.header.number });
            }
            if block.header.receipts_root
                != Block::compute_receipts_root(&block.receipts)
            {
                return Err(ChainError::ReceiptsRootMismatch { number: block.header.number });
            }
            if block.receipts.len() != block.txs.len() {
                return Err(ChainError::ReceiptMismatch { number: block.header.number });
            }
            parent = block.hash();
        }
        Ok(())
    }

    /// Finds the receipt of a transaction anywhere in the chain.
    pub fn receipt(&self, tx_hash: Hash256) -> Option<&Receipt> {
        self.blocks
            .iter()
            .flat_map(|b| &b.receipts)
            .find(|r| r.tx_hash == tx_hash)
    }

    /// Produces a light-client inclusion proof for a transaction:
    /// `(block height, its header tx_root, the Merkle proof)`. An
    /// arbitrator holding only block headers can verify the disputed
    /// transaction was committed.
    pub fn prove_inclusion(&self, tx_hash: Hash256) -> Option<(u64, Hash256, MerkleProof)> {
        for block in &self.blocks {
            if let Some(idx) = block.txs.iter().position(|t| t.hash() == tx_hash) {
                let proof = block.prove_tx(idx)?;
                return Some((block.header.number, block.header.tx_root, proof));
            }
        }
        None
    }

    /// All logs whose event name matches, in chain order — the
    /// arbitration query of §III-F ("the recorded results can serve as
    /// a basis for arbitration").
    pub fn logs_by_event<'a>(&'a self, event: &'a str) -> impl Iterator<Item = &'a Log> + 'a {
        self.blocks
            .iter()
            .flat_map(|b| &b.receipts)
            .flat_map(|r| &r.logs)
            .filter(move |l| l.event == event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{ExecStatus, TxPayload};
    use crate::types::{Address, Wei};

    fn tx(nonce: u64) -> Transaction {
        Transaction {
            from: Address::from_name("a"),
            nonce,
            value: Wei(1),
            gas_limit: 21_000,
            payload: TxPayload::Transfer { to: Address::from_name("b") },
        }
    }

    fn receipt_for(t: &Transaction) -> Receipt {
        Receipt {
            tx_hash: t.hash(),
            status: ExecStatus::Success,
            gas_used: 21_000,
            logs: vec![],
            return_data: vec![],
        }
    }

    fn block(number: u64, parent: Hash256, txs: Vec<Transaction>) -> Block {
        let receipts: Vec<Receipt> = txs.iter().map(receipt_for).collect();
        let tx_root = Block::compute_tx_root(&txs);
        let receipts_root = Block::compute_receipts_root(&receipts);
        Block {
            header: BlockHeader {
                number,
                parent,
                timestamp: number,
                tx_root,
                receipts_root,
                state_root: Hash256::ZERO,
            },
            txs,
            receipts,
        }
    }

    #[test]
    fn push_and_verify_a_well_formed_chain() {
        let mut chain = Blockchain::new();
        chain.push(block(0, Hash256::ZERO, vec![])).unwrap();
        let tip = chain.tip_hash();
        chain.push(block(1, tip, vec![tx(0)])).unwrap();
        let tip = chain.tip_hash();
        chain.push(block(2, tip, vec![tx(1), tx(2)])).unwrap();
        assert_eq!(chain.height(), 3);
        chain.verify().unwrap();
    }

    #[test]
    fn rejects_bad_parent_and_numbering() {
        let mut chain = Blockchain::new();
        chain.push(block(0, Hash256::ZERO, vec![])).unwrap();
        let err = chain.push(block(1, Hash256::ZERO, vec![])).unwrap_err();
        assert!(matches!(err, ChainError::BrokenLink { number: 1 }));
        let err = chain.push(block(5, chain.tip_hash(), vec![])).unwrap_err();
        assert!(matches!(err, ChainError::BadNumbering { number: 5, expected: 1 }));
    }

    #[test]
    fn tampering_with_a_mined_tx_is_detected() {
        let mut chain = Blockchain::new();
        chain.push(block(0, Hash256::ZERO, vec![])).unwrap();
        let tip = chain.tip_hash();
        chain.push(block(1, tip, vec![tx(0)])).unwrap();
        chain.verify().unwrap();
        // A malicious organization rewrites history: change the recorded
        // transfer amount in place.
        let mut tampered = chain.clone();
        tampered.blocks[1].txs[0].value = Wei(1_000_000);
        assert!(matches!(
            tampered.verify(),
            Err(ChainError::TxRootMismatch { number: 1 })
        ));
        // Rewriting the tx root too breaks the parent link of... nothing
        // here (tip block), so also tamper with an interior block.
        let tip = chain.tip_hash();
        chain.push(block(2, tip, vec![])).unwrap();
        let mut tampered = chain.clone();
        tampered.blocks[1].txs[0].value = Wei(9);
        tampered.blocks[1].header.tx_root = Block::compute_tx_root(&tampered.blocks[1].txs);
        assert!(matches!(
            tampered.verify(),
            Err(ChainError::BrokenLink { number: 2 })
        ));
    }

    #[test]
    fn receipt_lookup_and_event_query() {
        let mut chain = Blockchain::new();
        let t = tx(0);
        let h = t.hash();
        let mut b = block(0, Hash256::ZERO, vec![t]);
        b.receipts[0].logs.push(Log {
            contract: Address::ZERO,
            event: "PayoffTransferred".into(),
            fields: vec![],
        });
        // Receipts changed after assembly: recommit them to the header.
        b.header.receipts_root = Block::compute_receipts_root(&b.receipts);
        chain.push(b).unwrap();
        assert!(chain.receipt(h).is_some());
        assert_eq!(chain.logs_by_event("PayoffTransferred").count(), 1);
        assert_eq!(chain.logs_by_event("Missing").count(), 0);
    }

    #[test]
    fn inclusion_proofs_verify_against_headers_only() {
        let mut chain = Blockchain::new();
        chain.push(block(0, Hash256::ZERO, vec![])).unwrap();
        let tip = chain.tip_hash();
        let txs = vec![tx(0), tx(1), tx(2)];
        let wanted = txs[1].hash();
        chain.push(block(1, tip, txs)).unwrap();
        let (height, root, proof) = chain.prove_inclusion(wanted).unwrap();
        assert_eq!(height, 1);
        assert!(proof.verify(wanted, root), "proof must verify against the header root");
        // A different tx hash must not verify with this proof.
        assert!(!proof.verify(tx(7).hash(), root));
        // Unknown hashes yield no proof.
        assert!(chain.prove_inclusion(tx(9).hash()).is_none());
    }

    #[test]
    fn receipt_count_must_match() {
        let mut chain = Blockchain::new();
        let mut b = block(0, Hash256::ZERO, vec![tx(0)]);
        b.receipts.clear();
        b.header.receipts_root = Block::compute_receipts_root(&b.receipts);
        assert!(matches!(chain.push(b), Err(ChainError::ReceiptMismatch { number: 0 })));
        // Without recommitting, the receipts-root check fires first.
        let mut b = block(0, Hash256::ZERO, vec![tx(0)]);
        b.receipts.clear();
        assert!(matches!(
            chain.push(b),
            Err(ChainError::ReceiptsRootMismatch { number: 0 })
        ));
    }
}
