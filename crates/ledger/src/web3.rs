//! A Web3-style client over the in-process node — the "data interaction
//! among organizations and the smart contract" layer of the prototype
//! (§VI: "Web3 API is utilized for data interaction … when calling
//! contract functions").
//!
//! Multiple organization handles share one node through
//! `Arc<Mutex<Node>>`; every handle can submit transactions, mine and
//! query receipts/logs.

use crate::contract::ContractError;
use crate::node::{Node, NodeError};
use crate::tx::{Log, Receipt, Transaction, TxPayload, Value};
use crate::types::{Address, Hash256, Wei};
use tradefl_runtime::sync::Mutex;
use std::sync::Arc;

/// Shared connection to the private chain.
#[derive(Debug, Clone)]
pub struct Web3 {
    node: Arc<Mutex<Node>>,
}

impl Web3 {
    /// Wraps a node for shared access.
    pub fn new(node: Node) -> Self {
        Self { node: Arc::new(Mutex::new(node)) }
    }

    /// Clones the shared handle (same chain).
    pub fn handle(&self) -> Web3 {
        self.clone()
    }

    /// Runs a closure with exclusive node access (escape hatch for
    /// tests and tooling).
    pub fn with_node<R>(&self, f: impl FnOnce(&mut Node) -> R) -> R {
        f(&mut self.node.lock())
    }

    /// Current account balance.
    pub fn balance(&self, addr: Address) -> Wei {
        self.node.lock().state().balance_of(addr)
    }

    /// Next valid nonce for `addr` (confirmed state only).
    pub fn nonce(&self, addr: Address) -> u64 {
        self.node.lock().state().nonce_of(addr)
    }

    /// Submits a contract call transaction.
    ///
    /// # Errors
    ///
    /// Propagates [`NodeError`] submission failures.
    pub fn send_call(
        &self,
        from: Address,
        contract: Address,
        function: &str,
        args: Vec<Value>,
        value: Wei,
    ) -> Result<Hash256, NodeError> {
        let mut node = self.node.lock();
        let queued = 0; // callers submit sequentially through this helper
        let _ = queued;
        let nonce = {
            // Account for transactions already queued from this sender.
            let confirmed = node.state().nonce_of(from);
            confirmed
        };
        node.submit(Transaction {
            from,
            nonce,
            value,
            gas_limit: 10_000_000,
            payload: TxPayload::Call { contract, function: function.into(), args },
        })
    }

    /// Submits a plain transfer.
    ///
    /// # Errors
    ///
    /// Propagates [`NodeError`] submission failures.
    pub fn send_transfer(
        &self,
        from: Address,
        to: Address,
        value: Wei,
    ) -> Result<Hash256, NodeError> {
        let mut node = self.node.lock();
        let nonce = node.state().nonce_of(from);
        node.submit(Transaction {
            from,
            nonce,
            value,
            gas_limit: 21_000,
            payload: TxPayload::Transfer { to },
        })
    }

    /// Mines a block with everything pending; returns its hash.
    pub fn mine(&self) -> Hash256 {
        self.node.lock().mine()
    }

    /// Submits a call and immediately mines it, returning the receipt.
    ///
    /// # Errors
    ///
    /// [`NodeError`] if submission fails; the receipt itself may still
    /// be a revert — check [`Receipt::status`].
    pub fn call_and_mine(
        &self,
        from: Address,
        contract: Address,
        function: &str,
        args: Vec<Value>,
        value: Wei,
    ) -> Result<Receipt, NodeError> {
        let hash = self.send_call(from, contract, function, args, value)?;
        self.mine();
        Ok(self
            .receipt(hash)
            // lint:allow(no-panic-in-lib): the tx was mined by the preceding line of this method
            .expect("just-mined transaction must have a receipt"))
    }

    /// Receipt lookup.
    pub fn receipt(&self, tx_hash: Hash256) -> Option<Receipt> {
        self.node.lock().receipt(tx_hash).cloned()
    }

    /// Read-only contract call (`eth_call`).
    ///
    /// # Errors
    ///
    /// Propagates the contract's [`ContractError`].
    pub fn call_view(
        &self,
        contract: Address,
        caller: Address,
        function: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ContractError> {
        self.node.lock().call_view(contract, caller, function, args)
    }

    /// All logs with the given event name, in chain order (arbitration
    /// queries).
    pub fn logs_by_event(&self, event: &str) -> Vec<Log> {
        self.node
            .lock()
            .chain()
            .logs_by_event(event)
            .cloned()
            .collect()
    }

    /// Chain height.
    pub fn height(&self) -> usize {
        self.node.lock().chain().height()
    }

    /// Verifies chain integrity end to end.
    ///
    /// # Errors
    ///
    /// The first [`crate::chain::ChainError`] found.
    pub fn verify_chain(&self) -> Result<(), crate::chain::ChainError> {
        self.node.lock().chain().verify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_handles_see_the_same_chain() {
        let alice = Address::from_name("alice");
        let bob = Address::from_name("bob");
        let node = Node::new(&[(alice, Wei(100))]);
        let w1 = Web3::new(node);
        let w2 = w1.handle();
        w1.send_transfer(alice, bob, Wei(40)).unwrap();
        w2.mine();
        assert_eq!(w1.balance(bob), Wei(40));
        assert_eq!(w2.balance(bob), Wei(40));
        assert_eq!(w1.height(), w2.height());
        w1.verify_chain().unwrap();
    }

    #[test]
    fn nonce_tracks_confirmed_transactions() {
        let alice = Address::from_name("alice");
        let bob = Address::from_name("bob");
        let w = Web3::new(Node::new(&[(alice, Wei(100))]));
        assert_eq!(w.nonce(alice), 0);
        w.send_transfer(alice, bob, Wei(1)).unwrap();
        w.mine();
        assert_eq!(w.nonce(alice), 1);
    }
}
