//! The smart-contract execution framework: the [`Contract`] trait, call
//! context, gas metering and errors.

use crate::state::WorldState;
use crate::tx::{Log, Value};
use crate::types::{Address, Wei};
use std::fmt;

/// Errors a contract call can raise; any error reverts the transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// Explicit revert with a reason string (like Solidity `require`).
    Revert(String),
    /// The gas limit was exhausted.
    OutOfGas,
    /// The function name is not part of the contract ABI.
    UnknownFunction(String),
    /// Arguments did not match the function signature.
    BadArgs(&'static str),
}

impl ContractError {
    /// Shorthand for a revert.
    pub fn revert(reason: impl Into<String>) -> Self {
        ContractError::Revert(reason.into())
    }
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::Revert(r) => write!(f, "reverted: {r}"),
            ContractError::OutOfGas => write!(f, "out of gas"),
            ContractError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            ContractError::BadArgs(what) => write!(f, "bad arguments: {what}"),
        }
    }
}

impl std::error::Error for ContractError {}

/// Gas meter for one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasMeter {
    limit: u64,
    used: u64,
}

impl GasMeter {
    /// Fresh meter with the transaction's gas limit.
    pub fn new(limit: u64) -> Self {
        Self { limit, used: 0 }
    }

    /// Charges `amount` gas.
    ///
    /// # Errors
    ///
    /// [`ContractError::OutOfGas`] once the limit is exceeded.
    pub fn charge(&mut self, amount: u64) -> Result<(), ContractError> {
        self.used = self.used.saturating_add(amount);
        if self.used > self.limit {
            Err(ContractError::OutOfGas)
        } else {
            Ok(())
        }
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The limit this meter enforces.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// Everything a contract sees during one call.
#[derive(Debug)]
pub struct CallContext<'a> {
    /// Transaction sender.
    pub caller: Address,
    /// Wei attached to this call (already credited to the contract
    /// account by the node).
    pub value: Wei,
    /// Height of the block being built.
    pub block_number: u64,
    /// The contract's own address.
    pub this: Address,
    state: &'a mut WorldState,
    logs: &'a mut Vec<Log>,
    gas: &'a mut GasMeter,
}

impl<'a> CallContext<'a> {
    /// Assembles a context (used by the node; tests may build one
    /// directly).
    pub fn new(
        caller: Address,
        value: Wei,
        block_number: u64,
        this: Address,
        state: &'a mut WorldState,
        logs: &'a mut Vec<Log>,
        gas: &'a mut GasMeter,
    ) -> Self {
        Self { caller, value, block_number, this, state, logs, gas }
    }

    /// Charges gas.
    ///
    /// # Errors
    ///
    /// [`ContractError::OutOfGas`] when the limit is exceeded.
    pub fn charge_gas(&mut self, amount: u64) -> Result<(), ContractError> {
        self.gas.charge(amount)
    }

    /// The contract account's current balance.
    pub fn contract_balance(&self) -> Wei {
        self.state.balance_of(self.this)
    }

    /// Sends `amount` from the contract's balance to `to`.
    ///
    /// # Errors
    ///
    /// Reverts if the contract balance cannot cover the transfer.
    pub fn pay_out(&mut self, to: Address, amount: Wei) -> Result<(), ContractError> {
        self.state
            .transfer(self.this, to, amount)
            .map_err(|e| ContractError::revert(e.to_string()))
    }

    /// Emits an event into the transaction's log (recorded on-chain).
    pub fn emit(&mut self, event: impl Into<String>, fields: Vec<(String, Value)>) {
        self.logs.push(Log { contract: self.this, event: event.into(), fields });
    }
}

/// A deployable contract. Implementations must also provide
/// [`Contract::snapshot`] so the node can roll back reverted calls.
pub trait Contract: fmt::Debug + Send {
    /// Dispatches an ABI call.
    ///
    /// # Errors
    ///
    /// Any [`ContractError`] reverts the transaction: the node restores
    /// the world state, the contract state and discards the logs.
    fn call(
        &mut self,
        ctx: &mut CallContext<'_>,
        function: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ContractError>;

    /// Contract display name (diagnostics).
    fn name(&self) -> &str;

    /// Deep copy for revert rollback.
    fn snapshot(&self) -> Box<dyn Contract>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gas_meter_enforces_limit() {
        let mut m = GasMeter::new(100);
        m.charge(60).unwrap();
        m.charge(40).unwrap();
        assert_eq!(m.used(), 100);
        assert_eq!(m.charge(1), Err(ContractError::OutOfGas));
        assert_eq!(m.limit(), 100);
    }

    #[test]
    fn context_pay_out_moves_contract_funds() {
        let this = Address::from_name("contract");
        let bob = Address::from_name("bob");
        let mut state = WorldState::with_allocations(&[(this, Wei(50))]);
        let mut logs = Vec::new();
        let mut gas = GasMeter::new(1000);
        let mut ctx = CallContext::new(bob, Wei::ZERO, 1, this, &mut state, &mut logs, &mut gas);
        ctx.pay_out(bob, Wei(20)).unwrap();
        assert!(ctx.pay_out(bob, Wei(40)).is_err());
        assert_eq!(state.balance_of(bob), Wei(20));
        assert_eq!(state.balance_of(this), Wei(30));
    }

    #[test]
    fn emit_accumulates_logs() {
        let this = Address::from_name("c");
        let mut state = WorldState::new();
        let mut logs = Vec::new();
        let mut gas = GasMeter::new(1000);
        let mut ctx =
            CallContext::new(Address::ZERO, Wei::ZERO, 0, this, &mut state, &mut logs, &mut gas);
        ctx.emit("E", vec![("x".into(), Value::U64(1))]);
        drop(ctx);
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].contract, this);
    }

    #[test]
    fn error_messages() {
        assert!(ContractError::revert("nope").to_string().contains("nope"));
        assert!(ContractError::UnknownFunction("f".into()).to_string().contains("`f`"));
    }
}
