//! Deterministic binary codec for chain data.
//!
//! Lets a node export its chain as bytes (backup, cold storage,
//! out-of-band sync to a late-joining validator) and re-import it with
//! full validation: the decoder is strict (no trailing bytes, length
//! caps) and the importer replays every block through
//! [`crate::node::Node::apply_block`], so a corrupted or forged export
//! cannot produce a diverging replica.
//!
//! Format (v2): LEB128 varints for counts, lengths, and ordinary
//! integer fields (nonces, gas, timestamps — values that are small in
//! practice shrink to one or two bytes on the wire); fixed-width
//! little-endian for 128-bit money/fixed-point values; raw 20/32-byte
//! arrays for addresses and hashes; one version byte up front. No
//! self-description — both ends run this code.

use crate::chain::{Block, BlockHeader, Blockchain};
use crate::tx::{ExecStatus, Log, Receipt, Transaction, TxPayload, Value};
use crate::types::{Address, Fixed, Hash256, Wei};
use tradefl_runtime::codec::{Buf, BytesMut, DecodeError};
use std::fmt;

/// Format version written at the head of every export. Version 2
/// switched counts, lengths, and ordinary integer fields from fixed
/// `u64_le` to LEB128 varints; version-1 exports are rejected rather
/// than silently misparsed.
pub const CODEC_VERSION: u8 = 2;

/// Hard cap on any length prefix (sanity bound against corrupt input).
const MAX_LEN: usize = 1 << 24;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The version byte is unknown.
    BadVersion(u8),
    /// Input ended before a field was complete.
    Truncated,
    /// A length prefix exceeded the sanity cap.
    LengthOverflow(usize),
    /// An enum tag byte was invalid.
    BadTag(u8),
    /// Bytes remained after the last expected field.
    TrailingBytes(usize),
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadVersion(v) => write!(f, "unknown codec version {v}"),
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds cap"),
            CodecError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<DecodeError> for CodecError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Truncated => CodecError::Truncated,
            DecodeError::BadTag(t) => CodecError::BadTag(t),
            DecodeError::LengthOverflow(n) => {
                CodecError::LengthOverflow(usize::try_from(n).unwrap_or(usize::MAX))
            }
            DecodeError::BadUtf8 => CodecError::BadUtf8,
        }
    }
}

type Result<T> = std::result::Result<T, CodecError>;

/// Serializes a whole chain.
pub fn encode_chain(chain: &Blockchain) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u8(CODEC_VERSION);
    buf.put_uvarint(chain.height() as u64);
    for block in chain.blocks() {
        encode_block(&mut buf, block);
    }
    buf.to_vec()
}

/// Deserializes a chain and verifies its internal linkage.
///
/// # Errors
///
/// [`CodecError`] on malformed input; chain-level validation failures
/// surface as [`CodecError::Truncated`]-class decode errors or through
/// the returned chain's own `verify()`.
pub fn decode_chain(mut input: &[u8]) -> Result<Blockchain> {
    let buf = &mut input;
    let version = get_u8(buf)?;
    if version != CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let count = bounded_count(get_varint(buf)? as usize, buf.remaining(), BLOCK_MIN_BYTES)?;
    let mut chain = Blockchain::new();
    for _ in 0..count {
        let block = decode_block(buf)?;
        // Structural push-validation; a forged export fails here.
        chain
            .push(block)
            .map_err(|_| CodecError::BadTag(0xfe))?;
    }
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes(buf.len()));
    }
    Ok(chain)
}

// ---- per-type wire entry points ---------------------------------------
//
// Strict (`decode_all`-style) encode/decode pairs for every wire type,
// so peer-message handling and fuzz tests can exercise each decoder in
// isolation. Decoders accept arbitrary untrusted bytes and must return
// `Err` — never panic — on malformed input.

macro_rules! wire_entry_points {
    ($($(#[$meta:meta])* $enc:ident / $dec:ident => $ty:ty : $enc_inner:ident, $dec_inner:ident;)*) => {$(
        $(#[$meta])*
        #[doc = concat!("Encodes one [`", stringify!($ty), "`] as a standalone wire frame.")]
        pub fn $enc(v: &$ty) -> Vec<u8> {
            let mut buf = BytesMut::new();
            $enc_inner(&mut buf, v);
            buf.into_vec()
        }

        #[doc = concat!("Decodes one [`", stringify!($ty), "`] from a standalone wire")]
        #[doc = "frame, rejecting trailing bytes."]
        #[doc = ""]
        #[doc = "# Errors"]
        #[doc = ""]
        #[doc = "[`CodecError`] on truncated, malformed, or oversized input —"]
        #[doc = "untrusted peer bytes surface as `Err`, never a panic."]
        pub fn $dec(mut input: &[u8]) -> Result<$ty> {
            let buf = &mut input;
            let v = $dec_inner(buf)?;
            if !buf.is_empty() {
                return Err(CodecError::TrailingBytes(buf.len()));
            }
            Ok(v)
        }
    )*};
}

wire_entry_points! {
    encode_tx_bytes / decode_tx_bytes => Transaction : encode_tx, decode_tx;
    encode_receipt_bytes / decode_receipt_bytes => Receipt : encode_receipt, decode_receipt;
    encode_header_bytes / decode_header_bytes => BlockHeader : encode_header, decode_header;
    encode_block_bytes / decode_block_bytes => Block : encode_block, decode_block;
    encode_value_bytes / decode_value_bytes => Value : encode_value, decode_value;
}

fn encode_block(buf: &mut BytesMut, block: &Block) {
    encode_header(buf, &block.header);
    buf.put_uvarint(block.txs.len() as u64);
    for tx in &block.txs {
        encode_tx(buf, tx);
    }
    buf.put_uvarint(block.receipts.len() as u64);
    for r in &block.receipts {
        encode_receipt(buf, r);
    }
}

fn decode_block(buf: &mut &[u8]) -> Result<Block> {
    let header = decode_header(buf)?;
    let n_txs = bounded_count(get_varint(buf)? as usize, buf.remaining(), TX_MIN_BYTES)?;
    let mut txs = Vec::with_capacity(n_txs.min(1024));
    for _ in 0..n_txs {
        txs.push(decode_tx(buf)?);
    }
    let n_receipts =
        bounded_count(get_varint(buf)? as usize, buf.remaining(), RECEIPT_MIN_BYTES)?;
    let mut receipts = Vec::with_capacity(n_receipts.min(1024));
    for _ in 0..n_receipts {
        receipts.push(decode_receipt(buf)?);
    }
    Ok(Block { header, txs, receipts })
}

fn encode_header(buf: &mut BytesMut, h: &BlockHeader) {
    buf.put_uvarint(h.number);
    buf.put_slice(&h.parent.0);
    buf.put_uvarint(h.timestamp);
    buf.put_slice(&h.tx_root.0);
    buf.put_slice(&h.receipts_root.0);
    buf.put_slice(&h.state_root.0);
}

fn decode_header(buf: &mut &[u8]) -> Result<BlockHeader> {
    Ok(BlockHeader {
        number: get_varint(buf)?,
        parent: get_hash(buf)?,
        timestamp: get_varint(buf)?,
        tx_root: get_hash(buf)?,
        receipts_root: get_hash(buf)?,
        state_root: get_hash(buf)?,
    })
}

fn encode_tx(buf: &mut BytesMut, tx: &Transaction) {
    buf.put_slice(&tx.from.0);
    buf.put_uvarint(tx.nonce);
    buf.put_u128_le(tx.value.0);
    buf.put_uvarint(tx.gas_limit);
    match &tx.payload {
        TxPayload::Transfer { to } => {
            buf.put_u8(0);
            buf.put_slice(&to.0);
        }
        TxPayload::Call { contract, function, args } => {
            buf.put_u8(1);
            buf.put_slice(&contract.0);
            put_str(buf, function);
            buf.put_uvarint(args.len() as u64);
            for a in args {
                encode_value(buf, a);
            }
        }
    }
}

fn decode_tx(buf: &mut &[u8]) -> Result<Transaction> {
    let from = get_addr(buf)?;
    let nonce = get_varint(buf)?;
    let value = Wei(get_u128(buf)?);
    let gas_limit = get_varint(buf)?;
    let payload = match get_u8(buf)? {
        0 => TxPayload::Transfer { to: get_addr(buf)? },
        1 => {
            let contract = get_addr(buf)?;
            let function = get_str(buf)?;
            let n = bounded_count(get_varint(buf)? as usize, buf.remaining(), VALUE_MIN_BYTES)?;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(decode_value(buf)?);
            }
            TxPayload::Call { contract, function, args }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(Transaction { from, nonce, value, gas_limit, payload })
}

fn encode_receipt(buf: &mut BytesMut, r: &Receipt) {
    buf.put_slice(&r.tx_hash.0);
    match &r.status {
        ExecStatus::Success => buf.put_u8(0),
        ExecStatus::Reverted(reason) => {
            buf.put_u8(1);
            put_str(buf, reason);
        }
    }
    buf.put_uvarint(r.gas_used);
    buf.put_uvarint(r.logs.len() as u64);
    for log in &r.logs {
        buf.put_slice(&log.contract.0);
        put_str(buf, &log.event);
        buf.put_uvarint(log.fields.len() as u64);
        for (k, v) in &log.fields {
            put_str(buf, k);
            encode_value(buf, v);
        }
    }
    buf.put_uvarint(r.return_data.len() as u64);
    for v in &r.return_data {
        encode_value(buf, v);
    }
}

fn decode_receipt(buf: &mut &[u8]) -> Result<Receipt> {
    let tx_hash = get_hash(buf)?;
    let status = match get_u8(buf)? {
        0 => ExecStatus::Success,
        1 => ExecStatus::Reverted(get_str(buf)?),
        t => return Err(CodecError::BadTag(t)),
    };
    let gas_used = get_varint(buf)?;
    let n_logs = bounded_count(get_varint(buf)? as usize, buf.remaining(), LOG_MIN_BYTES)?;
    let mut logs = Vec::with_capacity(n_logs.min(64));
    for _ in 0..n_logs {
        let contract = get_addr(buf)?;
        let event = get_str(buf)?;
        let n_fields =
            bounded_count(get_varint(buf)? as usize, buf.remaining(), FIELD_MIN_BYTES)?;
        let mut fields = Vec::with_capacity(n_fields.min(64));
        for _ in 0..n_fields {
            let k = get_str(buf)?;
            let v = decode_value(buf)?;
            fields.push((k, v));
        }
        logs.push(Log { contract, event, fields });
    }
    let n_ret = bounded_count(get_varint(buf)? as usize, buf.remaining(), VALUE_MIN_BYTES)?;
    let mut return_data = Vec::with_capacity(n_ret.min(64));
    for _ in 0..n_ret {
        return_data.push(decode_value(buf)?);
    }
    Ok(Receipt { tx_hash, status, gas_used, logs, return_data })
}

fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::U64(x) => {
            buf.put_u8(0);
            buf.put_uvarint(*x);
        }
        Value::I128(x) => {
            buf.put_u8(1);
            buf.put_i128_le(*x);
        }
        Value::Fixed(x) => {
            buf.put_u8(2);
            buf.put_i128_le(x.0);
        }
        Value::Addr(a) => {
            buf.put_u8(3);
            buf.put_slice(&a.0);
        }
        Value::Bytes(b) => {
            buf.put_u8(4);
            buf.put_varint_slice(b);
        }
        Value::Str(s) => {
            buf.put_u8(5);
            put_str(buf, s);
        }
    }
}

fn decode_value(buf: &mut &[u8]) -> Result<Value> {
    Ok(match get_u8(buf)? {
        0 => Value::U64(get_varint(buf)?),
        1 => Value::I128(get_i128(buf)?),
        2 => Value::Fixed(Fixed(get_i128(buf)?)),
        3 => Value::Addr(get_addr(buf)?),
        4 => {
            // Zero-copy: the length-checked slice is borrowed straight
            // from the input and copied once into the owned value.
            Value::Bytes(buf.try_get_varint_slice(MAX_LEN as u64)?.to_vec())
        }
        5 => Value::Str(get_str(buf)?),
        t => return Err(CodecError::BadTag(t)),
    })
}

// ---- primitive helpers -------------------------------------------------

fn bounded_len(n: usize) -> Result<usize> {
    if n > MAX_LEN {
        Err(CodecError::LengthOverflow(n))
    } else {
        Ok(n)
    }
}

/// Sanity-checks a declared element count against the bytes actually
/// remaining: every element of the collection occupies at least
/// `min_elem` encoded bytes, so a count claiming more elements than
/// `remaining / min_elem` is provably a lie — rejected *before* any
/// allocation or element decode, not discovered element-by-element.
/// Public because every wire-facing decoder (the engine checkpoint
/// codec included) must route declared counts through it —
/// `tradefl-lint`'s `unbounded-wire-alloc` rule recognizes it as the
/// sanitizer.
pub fn bounded_count(n: usize, remaining: usize, min_elem: usize) -> Result<usize> {
    let n = bounded_len(n)?;
    if min_elem > 0 && n > remaining / min_elem {
        return Err(CodecError::LengthOverflow(n));
    }
    Ok(n)
}

// Conservative lower bounds on encoded element sizes (safe against
// under-claiming: each is at most the smallest legal encoding — a
// varint field counts as one byte).
/// from(20) + nonce varint(1) + value(16) + gas varint(1) + tag(1).
const TX_MIN_BYTES: usize = 39;
/// tx_hash(32) + status tag(1) + gas_used(1) + 3 count varints(3).
const RECEIPT_MIN_BYTES: usize = 37;
/// header(4 hashes = 128, number + timestamp varints = 2) + two count
/// varints(2).
const BLOCK_MIN_BYTES: usize = 132;
/// contract(20) + event length varint(1) + fields count varint(1).
const LOG_MIN_BYTES: usize = 22;
/// key length varint(1) + value tag(1).
const FIELD_MIN_BYTES: usize = 2;
/// A `Value` is at least its tag byte.
const VALUE_MIN_BYTES: usize = 1;

// All primitive reads go through the runtime's fallible `try_*` Buf
// API: untrusted peer bytes must never reach the panicking getters.
fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    Ok(buf.try_get_u8()?)
}

/// Reads one LEB128 varint — the v2 wire form of every count, length,
/// and ordinary integer field. Truncation and overflow map to errors
/// via the runtime codec.
fn get_varint(buf: &mut &[u8]) -> Result<u64> {
    Ok(buf.try_get_uvarint()?)
}

fn get_u128(buf: &mut &[u8]) -> Result<u128> {
    Ok(buf.try_get_u128_le()?)
}

fn get_i128(buf: &mut &[u8]) -> Result<i128> {
    Ok(buf.try_get_i128_le()?)
}

fn get_bytes(buf: &mut &[u8], n: usize) -> Result<Vec<u8>> {
    Ok(buf.try_take_slice(n)?.to_vec())
}

fn get_addr(buf: &mut &[u8]) -> Result<Address> {
    let b = get_bytes(buf, 20)?;
    let mut a = [0u8; 20];
    a.copy_from_slice(&b);
    Ok(Address(a))
}

fn get_hash(buf: &mut &[u8]) -> Result<Hash256> {
    let b = get_bytes(buf, 32)?;
    let mut h = [0u8; 32];
    h.copy_from_slice(&b);
    Ok(Hash256(h))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_varint_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    // Zero-copy length-checked borrow; UTF-8 is validated on the slice
    // before the single copy into the owned `String`.
    let raw = buf.try_get_varint_slice(MAX_LEN as u64)?;
    std::str::from_utf8(raw).map(str::to_owned).map_err(|_| CodecError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use crate::tx::TxPayload;

    fn busy_chain() -> Blockchain {
        let alice = Address::from_name("alice");
        let bob = Address::from_name("bob");
        let mut node = Node::new(&[(alice, Wei(10_000))]);
        for k in 0..3u64 {
            node.submit(Transaction {
                from: alice,
                nonce: k,
                value: Wei(10 + k as u128),
                gas_limit: 21_000,
                payload: TxPayload::Transfer { to: bob },
            })
            .unwrap();
            node.mine();
        }
        node.chain().clone()
    }

    #[test]
    fn chain_roundtrips_exactly() {
        let chain = busy_chain();
        let bytes = encode_chain(&chain);
        let decoded = decode_chain(&bytes).unwrap();
        assert_eq!(decoded, chain);
        decoded.verify().unwrap();
    }

    #[test]
    fn every_truncation_is_detected() {
        let chain = busy_chain();
        let bytes = encode_chain(&chain);
        // Any strict prefix must fail to decode (no silent partial reads).
        for cut in [1usize, 8, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_chain(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let chain = busy_chain();
        let mut bytes = encode_chain(&chain);
        bytes.push(0);
        assert!(matches!(decode_chain(&bytes), Err(CodecError::TrailingBytes(1))));
    }

    #[test]
    fn bad_version_is_rejected() {
        let chain = busy_chain();
        let mut bytes = encode_chain(&chain);
        bytes[0] = 99;
        assert!(matches!(decode_chain(&bytes), Err(CodecError::BadVersion(99))));
    }

    #[test]
    fn bit_flips_in_payload_break_validation() {
        let chain = busy_chain();
        let bytes = encode_chain(&chain);
        // Flip one byte somewhere in the middle (a tx value byte): the
        // decode either fails structurally or the chain's linkage check
        // catches the altered content.
        let mut corrupted = bytes.clone();
        let mid = bytes.len() / 2;
        corrupted[mid] ^= 0x01;
        match decode_chain(&corrupted) {
            Err(_) => {}
            Ok(decoded) => {
                assert!(
                    decoded.verify().is_err() || decoded != chain,
                    "corruption must not produce the identical chain"
                );
            }
        }
    }

    #[test]
    fn values_of_every_variant_roundtrip() {
        let values = vec![
            Value::U64(7),
            Value::I128(-42),
            Value::Fixed(Fixed::from_f64(1.25)),
            Value::Addr(Address::from_name("x")),
            Value::Bytes(vec![1, 2, 3]),
            Value::Str("hello".into()),
        ];
        let mut buf = BytesMut::new();
        for v in &values {
            encode_value(&mut buf, v);
        }
        let bytes = buf.to_vec();
        let mut slice = bytes.as_slice();
        for v in &values {
            assert_eq!(&decode_value(&mut slice).unwrap(), v);
        }
        assert!(slice.is_empty());
    }

    #[test]
    fn empty_chain_roundtrips() {
        let chain = Blockchain::new();
        let decoded = decode_chain(&encode_chain(&chain)).unwrap();
        assert_eq!(decoded, chain);
    }
}
