//! Primitive ledger types: addresses, hashes, currency and fixed-point
//! numbers for deterministic on-chain arithmetic.

use crate::sha256;
use std::fmt;

/// A 20-byte account address (Ethereum-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address, used as the "system"/coinbase sender.
    pub const ZERO: Address = Address([0; 20]);

    /// Derives a deterministic address from a human-readable name —
    /// the first 20 bytes of `sha256(name)`. This stands in for key
    /// generation, which the paper's prototype also does not model.
    pub fn from_name(name: &str) -> Self {
        let d = sha256::digest(name.as_bytes());
        let mut a = [0u8; 20];
        a.copy_from_slice(&d[..20]);
        Address(a)
    }

    /// Hex rendering (no 0x prefix).
    pub fn to_hex(&self) -> String {
        sha256::to_hex(&self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", &self.to_hex()[..12])
    }
}

/// A 32-byte hash (block hash, tx hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash, parent of the genesis block.
    pub const ZERO: Hash256 = Hash256([0; 32]);

    /// Hex rendering.
    pub fn to_hex(&self) -> String {
        sha256::to_hex(&self.0)
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", &self.to_hex()[..16])
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(b: [u8; 32]) -> Self {
        Hash256(b)
    }
}

/// Currency amount in wei (the smallest unit of the private chain's
/// native token). Unsigned; signed flows are expressed by direction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct Wei(pub u128);

impl Wei {
    /// Zero wei.
    pub const ZERO: Wei = Wei(0);

    /// Saturating addition.
    pub fn saturating_add(self, other: Wei) -> Wei {
        Wei(self.0.saturating_add(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: Wei) -> Option<Wei> {
        self.0.checked_add(other.0).map(Wei)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: Wei) -> Option<Wei> {
        self.0.checked_sub(other.0).map(Wei)
    }
}

impl fmt::Display for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} wei", self.0)
    }
}

impl std::ops::Add for Wei {
    type Output = Wei;
    fn add(self, rhs: Wei) -> Wei {
        // lint:allow(no-panic-in-lib): balance overflow is a broken-ledger invariant; abort beats silent wrap
        Wei(self.0.checked_add(rhs.0).expect("wei overflow"))
    }
}

impl std::ops::Sub for Wei {
    type Output = Wei;
    fn sub(self, rhs: Wei) -> Wei {
        // lint:allow(no-panic-in-lib): callers check balances first; underflow is a broken-ledger invariant
        Wei(self.0.checked_sub(rhs.0).expect("wei underflow"))
    }
}

impl std::iter::Sum for Wei {
    fn sum<I: Iterator<Item = Wei>>(iter: I) -> Wei {
        iter.fold(Wei::ZERO, |a, b| a + b)
    }
}

/// Deterministic signed fixed-point number with 10⁹ fractional scaling,
/// used for all on-chain payoff arithmetic (floats are non-deterministic
/// across platforms and have no place in consensus-critical code).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct Fixed(pub i128);

impl Fixed {
    /// Fractional scale: 10⁹ units per 1.0.
    pub const SCALE: i128 = 1_000_000_000;

    /// Zero.
    pub const ZERO: Fixed = Fixed(0);

    /// One.
    pub const ONE: Fixed = Fixed(Self::SCALE);

    /// Converts from `f64`, rounding to the nearest representable value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite or overflows the i128 range (≈ 1.7e29
    /// after scaling) — settlement inputs are payoff-scale magnitudes,
    /// far below that.
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "fixed-point conversion of non-finite value");
        let scaled = v * Self::SCALE as f64;
        assert!(
            scaled.abs() < i128::MAX as f64 / 2.0,
            "fixed-point conversion overflow: {v}"
        );
        Fixed(scaled.round() as i128)
    }

    /// Converts back to `f64` (reporting only; never fed back on-chain).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE as f64
    }

    /// Full-precision multiply: `(a * b) / SCALE`.
    pub fn mul(self, other: Fixed) -> Fixed {
        // lint:allow(no-panic-in-lib): payoff magnitudes are ≪ √i128::MAX; overflow is a broken-solver invariant and abort beats silent wrap
        Fixed(self.0.checked_mul(other.0).expect("fixed-point multiply overflow") / Self::SCALE)
    }

    /// Absolute value.
    pub fn abs(self) -> Fixed {
        Fixed(self.0.abs())
    }
}

impl std::ops::Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        // lint:allow(no-panic-in-lib): payoff sums are ≪ i128::MAX; overflow is a broken-solver invariant and abort beats silent wrap
        Fixed(self.0.checked_add(rhs.0).expect("fixed-point add overflow"))
    }
}

impl std::ops::Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        // lint:allow(no-panic-in-lib): payoff differences are ≪ i128::MAX; overflow is a broken-solver invariant and abort beats silent wrap
        Fixed(self.0.checked_sub(rhs.0).expect("fixed-point sub overflow"))
    }
}

impl std::ops::Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        Fixed(-self.0)
    }
}

impl std::iter::Sum for Fixed {
    fn sum<I: Iterator<Item = Fixed>>(iter: I) -> Fixed {
        iter.fold(Fixed::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_from_name_is_deterministic_and_distinct() {
        let a = Address::from_name("org-0");
        let b = Address::from_name("org-0");
        let c = Address::from_name("org-1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_hex().len(), 40);
    }

    #[test]
    fn wei_arithmetic() {
        assert_eq!(Wei(5) + Wei(7), Wei(12));
        assert_eq!(Wei(7) - Wei(5), Wei(2));
        assert_eq!(Wei(5).checked_sub(Wei(7)), None);
        assert_eq!(vec![Wei(1), Wei(2), Wei(3)].into_iter().sum::<Wei>(), Wei(6));
    }

    #[test]
    #[should_panic(expected = "wei underflow")]
    fn wei_underflow_panics() {
        let _ = Wei(1) - Wei(2);
    }

    #[test]
    fn wei_checked_add_reports_overflow() {
        assert_eq!(Wei(3).checked_add(Wei(4)), Some(Wei(7)));
        assert_eq!(Wei(u128::MAX).checked_add(Wei(1)), None);
    }

    // Overflow regressions for the checked Fixed ops: every raw
    // operator flagged by `no-unchecked-money-arith` now aborts loudly
    // at the i128 boundary instead of silently wrapping settlement
    // amounts.
    #[test]
    #[should_panic(expected = "fixed-point add overflow")]
    fn fixed_add_overflow_panics() {
        let _ = Fixed(i128::MAX) + Fixed(1);
    }

    #[test]
    #[should_panic(expected = "fixed-point sub overflow")]
    fn fixed_sub_overflow_panics() {
        let _ = Fixed(i128::MIN) - Fixed(1);
    }

    #[test]
    #[should_panic(expected = "fixed-point multiply overflow")]
    fn fixed_mul_overflow_panics() {
        let _ = Fixed(i128::MAX).mul(Fixed(2 * Fixed::SCALE));
    }

    #[test]
    fn fixed_roundtrip_and_mul() {
        let a = Fixed::from_f64(1.5);
        let b = Fixed::from_f64(-2.25);
        assert_eq!(a.0, 1_500_000_000);
        assert!((a.mul(b).to_f64() + 3.375).abs() < 1e-9);
        assert_eq!(a + b, Fixed::from_f64(-0.75));
        assert_eq!(-(a - b), Fixed::from_f64(-3.75));
        assert_eq!(b.abs(), Fixed::from_f64(2.25));
    }

    #[test]
    fn fixed_sum_is_exact_for_antisymmetric_pairs() {
        // The settlement relies on exact cancellation of r_ij = -r_ji.
        let xs = [1.23456789, -7.0, 3.25, 0.0001];
        let total: Fixed = xs
            .iter()
            .flat_map(|&v| [Fixed::from_f64(v), -Fixed::from_f64(v)])
            .sum();
        assert_eq!(total, Fixed::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn fixed_rejects_nan() {
        let _ = Fixed::from_f64(f64::NAN);
    }

    #[test]
    fn display_impls_are_compact() {
        let a = Address::from_name("x");
        assert!(a.to_string().starts_with("0x"));
        assert!(Hash256::ZERO.to_string().starts_with("0x"));
        assert_eq!(Wei(3).to_string(), "3 wei");
    }
}
