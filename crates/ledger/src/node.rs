//! A single-node private chain: mempool, deterministic execution,
//! block production — the stand-in for the paper's Ethereum private
//! blockchain.

use crate::chain::{Block, BlockHeader, Blockchain};
use crate::contract::{CallContext, Contract, ContractError, GasMeter};
use crate::state::WorldState;
use crate::tx::{ExecStatus, Receipt, Transaction, TxPayload, Value};
use crate::types::{Address, Hash256, Wei};
use std::collections::BTreeMap;
use std::fmt;
use tradefl_runtime::obs;

/// Errors surfaced when submitting transactions to the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// The nonce does not match the sender's account nonce at
    /// execution time (stale or replayed transaction).
    BadNonce {
        /// Nonce carried by the transaction.
        got: u64,
        /// Nonce the account expects next.
        expected: u64,
    },
    /// Sender balance cannot cover the attached value.
    InsufficientFunds,
    /// Target of a contract call is not a deployed contract.
    NoSuchContract(Address),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::BadNonce { got, expected } => {
                write!(f, "bad nonce {got}, account expects {expected}")
            }
            NodeError::InsufficientFunds => write!(f, "insufficient funds for attached value"),
            NodeError::NoSuchContract(a) => write!(f, "no contract deployed at {a}"),
        }
    }
}

impl std::error::Error for NodeError {}

/// Why a replica refused a proposed block (consensus validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockApplyError {
    /// Height does not extend this replica's chain.
    WrongHeight {
        /// Height carried by the block.
        got: u64,
        /// Height this replica expects next.
        expected: u64,
    },
    /// Parent hash does not match this replica's tip.
    WrongParent,
    /// The transaction root does not match the block's transactions.
    BadTxRoot,
    /// Local re-execution produced different receipts than claimed.
    ReceiptMismatch,
    /// Local re-execution produced a different state root.
    StateRootMismatch,
    /// The receipts root claimed in the header does not match the
    /// block's own receipts (a malformed or lying proposer).
    BadReceiptsRoot,
}

impl fmt::Display for BlockApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockApplyError::WrongHeight { got, expected } => {
                write!(f, "block height {got}, replica expects {expected}")
            }
            BlockApplyError::WrongParent => write!(f, "parent hash does not match tip"),
            BlockApplyError::BadTxRoot => write!(f, "transaction root mismatch"),
            BlockApplyError::ReceiptMismatch => {
                write!(f, "re-execution produced different receipts")
            }
            BlockApplyError::StateRootMismatch => {
                write!(f, "re-execution produced a different state root")
            }
            BlockApplyError::BadReceiptsRoot => {
                write!(f, "header receipts root does not match the block's receipts")
            }
        }
    }
}

impl std::error::Error for BlockApplyError {}

/// The single-node chain.
pub struct Node {
    chain: Blockchain,
    state: WorldState,
    contracts: BTreeMap<Address, Box<dyn Contract>>,
    pending: Vec<Transaction>,
    clock: u64,
    deploy_counter: u64,
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("height", &self.chain.height())
            .field("accounts", &self.state.len())
            .field("contracts", &self.contracts.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl Node {
    /// Boots a node with genesis allocations and mines the (empty)
    /// genesis block.
    pub fn new(allocations: &[(Address, Wei)]) -> Self {
        let mut node = Self {
            chain: Blockchain::new(),
            state: WorldState::with_allocations(allocations),
            contracts: BTreeMap::new(),
            pending: Vec::new(),
            clock: 0,
            deploy_counter: 0,
        };
        node.mine(); // genesis
        node
    }

    /// The chain (read-only).
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// Current world state (read-only).
    pub fn state(&self) -> &WorldState {
        &self.state
    }

    /// Deploys a contract, returning its address. Deployment is a
    /// node-level operation (the paper deploys via migration tooling,
    /// not an on-chain tx).
    pub fn deploy(&mut self, contract: Box<dyn Contract>) -> Address {
        self.deploy_counter += 1;
        let addr = Address::from_name(&format!(
            "contract/{}/{}",
            contract.name(),
            self.deploy_counter
        ));
        self.contracts.insert(addr, contract);
        addr
    }

    /// Whether a contract is deployed at `addr`.
    pub fn is_contract(&self, addr: Address) -> bool {
        self.contracts.contains_key(&addr)
    }

    /// Queues a transaction; validation happens at mining time, but the
    /// obvious failures are rejected immediately.
    ///
    /// # Errors
    ///
    /// [`NodeError`] for stale nonces (relative to queued txs),
    /// unfunded value transfers, or calls to unknown contracts.
    pub fn submit(&mut self, tx: Transaction) -> Result<Hash256, NodeError> {
        if let TxPayload::Call { contract, .. } = &tx.payload {
            if !self.contracts.contains_key(contract) {
                return Err(NodeError::NoSuchContract(*contract));
            }
        }
        let queued_from_sender =
            self.pending.iter().filter(|p| p.from == tx.from).count() as u64;
        let expected = self.state.nonce_of(tx.from) + queued_from_sender;
        if tx.nonce != expected {
            return Err(NodeError::BadNonce { got: tx.nonce, expected });
        }
        let hash = tx.hash();
        self.pending.push(tx);
        Ok(hash)
    }

    /// Executes all pending transactions and appends a block. Returns
    /// the new block's hash.
    pub fn mine(&mut self) -> Hash256 {
        self.clock += 1;
        let txs: Vec<Transaction> = std::mem::take(&mut self.pending);
        let mut receipts = Vec::with_capacity(txs.len());
        for tx in &txs {
            receipts.push(self.execute(tx));
        }
        let header = BlockHeader {
            number: self.chain.height() as u64,
            parent: self.chain.tip_hash(),
            timestamp: self.clock,
            tx_root: Block::compute_tx_root(&txs),
            receipts_root: Block::compute_receipts_root(&receipts),
            state_root: self.state.root(),
        };
        let block = Block { header, txs, receipts };
        let hash = block.hash();
        let gas_used: u64 = block.receipts.iter().map(|r| r.gas_used).sum();
        let reverted =
            block.receipts.iter().filter(|r| r.status != ExecStatus::Success).count();
        obs::event(
            obs::Subsystem::Ledger,
            "block_mined",
            &[
                ("number", block.header.number.into()),
                ("txs", block.txs.len().into()),
                ("gas_used", gas_used.into()),
                ("receipts", block.receipts.len().into()),
                ("reverted", reverted.into()),
            ],
        );
        obs::counter_add("ledger.blocks_mined", 1);
        obs::counter_add("ledger.txs_executed", block.txs.len() as u64);
        obs::counter_add("ledger.gas_used", gas_used);
        // Not a peer-input path: the header was computed from this
        // node's own tip and freshly executed receipts two lines up,
        // so every push check holds by construction.
        // lint:allow(no-panic-in-lib): invariant: self-mined header derives from own tip
        self.chain.push(block).expect("node-produced blocks always extend the tip");
        hash
    }

    /// Receipt lookup across the whole chain.
    pub fn receipt(&self, tx_hash: Hash256) -> Option<&Receipt> {
        self.chain.receipt(tx_hash)
    }

    /// Applies a block produced by *another* node: re-executes its
    /// transactions locally and accepts the block only if the resulting
    /// receipts and state root match the proposer's claims. On any
    /// mismatch the local state is rolled back and the block rejected —
    /// this is the consensus-side validation of the multi-validator
    /// network ([`crate::network`]).
    ///
    /// # Errors
    ///
    /// [`BlockApplyError`] describing the first discrepancy; the node
    /// is left exactly as before the call.
    pub fn apply_block(&mut self, block: &crate::chain::Block) -> Result<(), BlockApplyError> {
        let expected_number = self.chain.height() as u64;
        if block.header.number != expected_number {
            return Err(BlockApplyError::WrongHeight {
                got: block.header.number,
                expected: expected_number,
            });
        }
        if block.header.parent != self.chain.tip_hash() {
            return Err(BlockApplyError::WrongParent);
        }
        if block.header.tx_root != crate::chain::Block::compute_tx_root(&block.txs) {
            return Err(BlockApplyError::BadTxRoot);
        }
        // Snapshot for rollback.
        let state_snapshot = self.state.clone();
        let contracts_snapshot: BTreeMap<Address, Box<dyn Contract>> =
            self.contracts.iter().map(|(a, c)| (*a, c.snapshot())).collect();
        let clock_snapshot = self.clock;

        self.clock = block.header.timestamp;
        let mut receipts = Vec::with_capacity(block.txs.len());
        for tx in &block.txs {
            receipts.push(self.execute(tx));
        }
        let rollback = |node: &mut Node| {
            node.state = state_snapshot.clone();
            node.contracts =
                contracts_snapshot.iter().map(|(a, c)| (*a, c.snapshot())).collect();
            node.clock = clock_snapshot;
        };
        if receipts != block.receipts {
            rollback(self);
            return Err(BlockApplyError::ReceiptMismatch);
        }
        if self.state.root() != block.header.state_root {
            rollback(self);
            return Err(BlockApplyError::StateRootMismatch);
        }
        // Peer input stays fallible to the end: height, parent and tx
        // root were pre-checked above and receipts re-executed, so the
        // only discrepancy `Blockchain::push` can still find is a
        // header receipts root that belies the block's own receipts —
        // a malformed proposer must be rejected, never panic a replica.
        if let Err(_chain_err) = self.chain.push(block.clone()) {
            rollback(self);
            return Err(BlockApplyError::BadReceiptsRoot);
        }
        Ok(())
    }

    /// Drops any queued transactions (used when a proposer's block
    /// already covers them).
    pub fn clear_pending(&mut self) {
        self.pending.clear();
    }

    /// Read-only contract call: executes against a scratch copy of the
    /// state so nothing persists — the `eth_call` analogue.
    pub fn call_view(
        &self,
        contract_addr: Address,
        caller: Address,
        function: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ContractError> {
        let contract = self
            .contracts
            .get(&contract_addr)
            .ok_or_else(|| ContractError::revert("no such contract"))?;
        let mut scratch_contract = contract.snapshot();
        let mut scratch_state = self.state.clone();
        let mut logs = Vec::new();
        let mut gas = GasMeter::new(u64::MAX);
        let mut ctx = CallContext::new(
            caller,
            Wei::ZERO,
            self.chain.height() as u64,
            contract_addr,
            &mut scratch_state,
            &mut logs,
            &mut gas,
        );
        scratch_contract.call(&mut ctx, function, args)
    }

    fn execute(&mut self, tx: &Transaction) -> Receipt {
        let tx_hash = tx.hash();
        let expected_nonce = self.state.nonce_of(tx.from);
        if tx.nonce != expected_nonce {
            return Receipt {
                tx_hash,
                status: ExecStatus::Reverted(format!(
                    "bad nonce {} (expected {expected_nonce})",
                    tx.nonce
                )),
                gas_used: 0,
                logs: vec![],
                return_data: vec![],
            };
        }
        // Nonce burns even on revert (Ethereum semantics).
        self.state.bump_nonce(tx.from);

        let state_snapshot = self.state.clone();
        let result = match &tx.payload {
            TxPayload::Transfer { to } => {
                const TRANSFER_GAS: u64 = 21_000;
                if tx.gas_limit < TRANSFER_GAS {
                    Err((ContractError::OutOfGas, 0))
                } else {
                    match self.state.transfer(tx.from, *to, tx.value) {
                        Ok(()) => Ok((vec![], vec![], TRANSFER_GAS)),
                        Err(e) => {
                            Err((ContractError::revert(e.to_string()), TRANSFER_GAS))
                        }
                    }
                }
            }
            TxPayload::Call { contract, function, args } => {
                match self.contracts.get_mut(contract) {
                    None => Err((ContractError::revert("no such contract"), 0)),
                    Some(c) => {
                        let contract_snapshot = c.snapshot();
                        // Attached value moves in before the call.
                        let funding = self.state.transfer(tx.from, *contract, tx.value);
                        match funding {
                            Err(e) => Err((ContractError::revert(e.to_string()), 0)),
                            Ok(()) => {
                                let mut logs = Vec::new();
                                let mut gas = GasMeter::new(tx.gas_limit);
                                let block_number = self.chain.height() as u64;
                                let mut ctx = CallContext::new(
                                    tx.from,
                                    tx.value,
                                    block_number,
                                    *contract,
                                    &mut self.state,
                                    &mut logs,
                                    &mut gas,
                                );
                                match c.call(&mut ctx, function, args) {
                                    Ok(ret) => Ok((ret, logs, gas.used())),
                                    Err(e) => {
                                        let used = gas.used();
                                        *c = contract_snapshot;
                                        Err((e, used))
                                    }
                                }
                            }
                        }
                    }
                }
            }
        };
        match result {
            Ok((return_data, logs, gas_used)) => Receipt {
                tx_hash,
                status: ExecStatus::Success,
                gas_used,
                logs,
                return_data,
            },
            Err((e, gas_used)) => {
                // Roll back everything except the nonce bump.
                let nonce_holder = self.state.nonce_of(tx.from);
                self.state = state_snapshot;
                while self.state.nonce_of(tx.from) < nonce_holder {
                    self.state.bump_nonce(tx.from);
                }
                Receipt {
                    tx_hash,
                    status: ExecStatus::Reverted(e.to_string()),
                    gas_used,
                    logs: vec![],
                    return_data: vec![],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy counter contract for framework tests.
    #[derive(Debug, Clone)]
    struct Counter {
        count: u64,
    }

    impl Contract for Counter {
        fn call(
            &mut self,
            ctx: &mut CallContext<'_>,
            function: &str,
            args: &[Value],
        ) -> Result<Vec<Value>, ContractError> {
            ctx.charge_gas(1_000)?;
            match function {
                "increment" => {
                    self.count += 1;
                    ctx.emit("Incremented", vec![("count".into(), Value::U64(self.count))]);
                    Ok(vec![Value::U64(self.count)])
                }
                "get" => Ok(vec![Value::U64(self.count)]),
                "fail" => Err(ContractError::revert("always fails")),
                "burn" => {
                    ctx.charge_gas(u64::MAX)?;
                    Ok(vec![])
                }
                "set" => {
                    let v = args
                        .first()
                        .and_then(Value::as_u64)
                        .ok_or(ContractError::BadArgs("expected u64"))?;
                    self.count = v;
                    Ok(vec![])
                }
                other => Err(ContractError::UnknownFunction(other.into())),
            }
        }

        fn name(&self) -> &str {
            "counter"
        }

        fn snapshot(&self) -> Box<dyn Contract> {
            Box::new(self.clone())
        }
    }

    fn setup() -> (Node, Address, Address) {
        let alice = Address::from_name("alice");
        let mut node = Node::new(&[(alice, Wei(1_000_000))]);
        let counter = node.deploy(Box::new(Counter { count: 0 }));
        (node, alice, counter)
    }

    fn call_tx(from: Address, nonce: u64, contract: Address, function: &str) -> Transaction {
        Transaction {
            from,
            nonce,
            value: Wei::ZERO,
            gas_limit: 100_000,
            payload: TxPayload::Call {
                contract,
                function: function.into(),
                args: vec![],
            },
        }
    }

    #[test]
    fn transfer_moves_funds_and_produces_block() {
        let alice = Address::from_name("alice");
        let bob = Address::from_name("bob");
        let mut node = Node::new(&[(alice, Wei(100))]);
        let h = node
            .submit(Transaction {
                from: alice,
                nonce: 0,
                value: Wei(30),
                gas_limit: 21_000,
                payload: TxPayload::Transfer { to: bob },
            })
            .unwrap();
        node.mine();
        assert_eq!(node.state().balance_of(bob), Wei(30));
        assert!(node.receipt(h).unwrap().status.is_success());
        assert_eq!(node.chain().height(), 2); // genesis + 1
        node.chain().verify().unwrap();
    }

    #[test]
    fn contract_call_executes_and_logs() {
        let (mut node, alice, counter) = setup();
        let h = node.submit(call_tx(alice, 0, counter, "increment")).unwrap();
        node.mine();
        let r = node.receipt(h).unwrap();
        assert!(r.status.is_success());
        assert_eq!(r.return_data, vec![Value::U64(1)]);
        assert_eq!(r.logs.len(), 1);
        assert!(r.gas_used >= 1_000);
    }

    #[test]
    fn revert_rolls_back_state_and_contract() {
        let (mut node, alice, counter) = setup();
        node.submit(call_tx(alice, 0, counter, "increment")).unwrap();
        // A failing call carrying value: the value must bounce back.
        let mut failing = call_tx(alice, 1, counter, "fail");
        failing.value = Wei(500);
        node.submit(failing).unwrap();
        node.mine();
        assert_eq!(node.state().balance_of(alice), Wei(1_000_000));
        let got = node.call_view(counter, alice, "get", &[]).unwrap();
        assert_eq!(got, vec![Value::U64(1)], "count survives only the successful call");
    }

    #[test]
    fn out_of_gas_reverts() {
        let (mut node, alice, counter) = setup();
        let h = node.submit(call_tx(alice, 0, counter, "burn")).unwrap();
        node.mine();
        let r = node.receipt(h).unwrap();
        assert!(matches!(&r.status, ExecStatus::Reverted(m) if m.contains("gas")));
    }

    #[test]
    fn nonce_rules_prevent_replay() {
        let (mut node, alice, counter) = setup();
        node.submit(call_tx(alice, 0, counter, "increment")).unwrap();
        // Same nonce again: rejected at submission.
        assert!(matches!(
            node.submit(call_tx(alice, 0, counter, "increment")),
            Err(NodeError::BadNonce { got: 0, expected: 1 })
        ));
        // Queued nonce accounting allows consecutive queuing.
        node.submit(call_tx(alice, 1, counter, "increment")).unwrap();
        node.mine();
        let got = node.call_view(counter, alice, "get", &[]).unwrap();
        assert_eq!(got, vec![Value::U64(2)]);
    }

    #[test]
    fn view_calls_do_not_mutate() {
        let (node, alice, counter) = setup();
        let before = node.state().root();
        let _ = node.call_view(counter, alice, "increment", &[]).unwrap();
        assert_eq!(node.state().root(), before);
        let got = node.call_view(counter, alice, "get", &[]).unwrap();
        assert_eq!(got, vec![Value::U64(0)]);
    }

    #[test]
    fn unknown_contract_rejected_at_submit() {
        let (mut node, alice, _) = setup();
        let bogus = Address::from_name("bogus");
        assert!(matches!(
            node.submit(call_tx(alice, 0, bogus, "x")),
            Err(NodeError::NoSuchContract(_))
        ));
    }

    #[test]
    fn bad_args_revert() {
        let (mut node, alice, counter) = setup();
        let mut tx = call_tx(alice, 0, counter, "set");
        if let TxPayload::Call { args, .. } = &mut tx.payload {
            args.push(Value::Str("not a number".into()));
        }
        let h = node.submit(tx).unwrap();
        node.mine();
        assert!(matches!(&node.receipt(h).unwrap().status, ExecStatus::Reverted(_)));
    }

    #[test]
    fn total_supply_is_conserved() {
        let (mut node, alice, counter) = setup();
        let supply = node.state().total_supply();
        let mut tx = call_tx(alice, 0, counter, "increment");
        tx.value = Wei(123);
        node.submit(tx).unwrap();
        node.mine();
        assert_eq!(node.state().total_supply(), supply);
    }
}
