//! World state: account balances and nonces with a deterministic root.

use crate::sha256::Sha256;
use crate::types::{Address, Hash256, Wei};
use tradefl_runtime::codec::BytesMut;
use std::collections::BTreeMap;
use std::fmt;

/// An externally owned or contract account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Account {
    /// Current balance.
    pub balance: Wei,
    /// Transactions sent so far (replay protection).
    pub nonce: u64,
}

/// Errors from balance manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// Debit exceeding the account balance.
    InsufficientBalance {
        /// Account being debited.
        account: Address,
        /// Balance available.
        available: Wei,
        /// Amount requested.
        requested: Wei,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InsufficientBalance { account, available, requested } => write!(
                f,
                "account {account} holds {available} but {requested} was requested"
            ),
        }
    }
}

impl std::error::Error for StateError {}

/// The full account state. A `BTreeMap` keeps iteration (and therefore
/// the state root) deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorldState {
    accounts: BTreeMap<Address, Account>,
}

impl WorldState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// State pre-funded with the given allocations (genesis).
    pub fn with_allocations(allocs: &[(Address, Wei)]) -> Self {
        let mut s = Self::new();
        for &(addr, amount) in allocs {
            s.accounts.entry(addr).or_default().balance = amount;
        }
        s
    }

    /// Balance of `addr` (zero for unknown accounts).
    pub fn balance_of(&self, addr: Address) -> Wei {
        self.accounts.get(&addr).map_or(Wei::ZERO, |a| a.balance)
    }

    /// Nonce of `addr` (zero for unknown accounts).
    pub fn nonce_of(&self, addr: Address) -> u64 {
        self.accounts.get(&addr).map_or(0, |a| a.nonce)
    }

    /// Credits `amount` to `addr`, creating the account if needed.
    pub fn credit(&mut self, addr: Address, amount: Wei) {
        let acct = self.accounts.entry(addr).or_default();
        // lint:allow(no-panic-in-lib): total supply is conserved by debit-before-credit, so overflow is a broken-ledger invariant; abort beats silent wrap
        acct.balance = acct.balance.checked_add(amount).expect("balance overflow on credit");
    }

    /// Debits `amount` from `addr`.
    ///
    /// # Errors
    ///
    /// [`StateError::InsufficientBalance`] if the account cannot cover
    /// the amount; the state is unchanged in that case.
    pub fn debit(&mut self, addr: Address, amount: Wei) -> Result<(), StateError> {
        let acct = self.accounts.entry(addr).or_default();
        match acct.balance.checked_sub(amount) {
            Some(rest) => {
                acct.balance = rest;
                Ok(())
            }
            None => Err(StateError::InsufficientBalance {
                account: addr,
                available: acct.balance,
                requested: amount,
            }),
        }
    }

    /// Moves `amount` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`StateError::InsufficientBalance`] if `from` cannot cover it.
    pub fn transfer(&mut self, from: Address, to: Address, amount: Wei) -> Result<(), StateError> {
        self.debit(from, amount)?;
        self.credit(to, amount);
        Ok(())
    }

    /// Increments `addr`'s nonce. Saturating: a u64 nonce cannot
    /// legitimately reach the cap (10¹⁹ transactions from one account),
    /// and saturation keeps the replay guard sound — the nonce check
    /// rejects reuse rather than wrapping back to accept old txs.
    pub fn bump_nonce(&mut self, addr: Address) {
        let acct = self.accounts.entry(addr).or_default();
        acct.nonce = acct.nonce.saturating_add(1);
    }

    /// Number of accounts ever touched.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether no account exists.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Total wei across all accounts (conservation checks).
    pub fn total_supply(&self) -> Wei {
        self.accounts.values().map(|a| a.balance).sum()
    }

    /// Deterministic digest of the entire state (the block header's
    /// `state_root`).
    pub fn root(&self) -> Hash256 {
        let mut buf = BytesMut::with_capacity(self.accounts.len() * 56);
        for (addr, acct) in &self.accounts {
            buf.put_slice(&addr.0);
            buf.put_u128(acct.balance.0);
            buf.put_u64(acct.nonce);
        }
        let mut h = Sha256::new();
        h.update(&buf);
        Hash256(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: &str) -> Address {
        Address::from_name(n)
    }

    #[test]
    fn credit_debit_and_transfer() {
        let mut s = WorldState::new();
        s.credit(addr("a"), Wei(100));
        s.transfer(addr("a"), addr("b"), Wei(40)).unwrap();
        assert_eq!(s.balance_of(addr("a")), Wei(60));
        assert_eq!(s.balance_of(addr("b")), Wei(40));
        assert_eq!(s.total_supply(), Wei(100));
    }

    #[test]
    fn debit_fails_without_funds_and_preserves_state() {
        let mut s = WorldState::new();
        s.credit(addr("a"), Wei(10));
        let before = s.clone();
        let err = s.debit(addr("a"), Wei(11)).unwrap_err();
        assert!(matches!(err, StateError::InsufficientBalance { .. }));
        assert_eq!(s, before);
    }

    #[test]
    #[should_panic(expected = "balance overflow on credit")]
    fn credit_overflow_aborts_instead_of_wrapping() {
        let mut s = WorldState::new();
        s.credit(addr("a"), Wei(u128::MAX));
        s.credit(addr("a"), Wei(1));
    }

    #[test]
    fn nonce_saturates_at_the_cap_keeping_replay_protection() {
        let mut s = WorldState::new();
        s.credit(addr("a"), Wei(1));
        // Force the account to the cap, then bump: the nonce must stay
        // pinned (rejecting stale txs) rather than wrap to zero (which
        // would re-accept the account's entire history).
        s.accounts.get_mut(&addr("a")).unwrap().nonce = u64::MAX;
        s.bump_nonce(addr("a"));
        assert_eq!(s.nonce_of(addr("a")), u64::MAX);
    }

    #[test]
    fn root_changes_with_any_mutation() {
        let mut s = WorldState::with_allocations(&[(addr("a"), Wei(5))]);
        let r0 = s.root();
        s.credit(addr("a"), Wei(1));
        let r1 = s.root();
        assert_ne!(r0, r1);
        s.bump_nonce(addr("a"));
        assert_ne!(r1, s.root());
    }

    #[test]
    fn root_is_order_independent() {
        let mut s1 = WorldState::new();
        s1.credit(addr("a"), Wei(1));
        s1.credit(addr("b"), Wei(2));
        let mut s2 = WorldState::new();
        s2.credit(addr("b"), Wei(2));
        s2.credit(addr("a"), Wei(1));
        assert_eq!(s1.root(), s2.root());
    }

    #[test]
    fn genesis_allocations() {
        let s = WorldState::with_allocations(&[(addr("x"), Wei(7)), (addr("y"), Wei(9))]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.balance_of(addr("x")), Wei(7));
        assert_eq!(s.nonce_of(addr("x")), 0);
    }
}
