//! Hash-chained ledger and smart-contract substrate for **TradeFL**
//! settlement (§III-F of the ICDCS 2023 paper).
//!
//! The paper makes payoff redistribution *credible* by executing it
//! through a smart contract on an Ethereum private chain: deposits are
//! escrowed, contributions recorded immutably, and the redistribution
//! `r_{i,j}` executes automatically — no organization can repudiate an
//! agreed compensation. This crate rebuilds that stack from scratch:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (no external crypto crates);
//! * [`types`] — addresses, hashes, wei, deterministic fixed point;
//! * [`tx`], [`state`], [`chain`] — transactions, accounts, blocks with
//!   tamper detection;
//! * [`contract`], [`node`] — the contract framework, gas metering and
//!   a single-node chain with revert semantics;
//! * [`tradefl_contract`] — the Table I settlement contract
//!   (`register`/`depositSubmit`/`contributionSubmit`/`payoffCalculate`/
//!   `payoffTransfer`/`profileRecord`);
//! * [`web3`] — a Web3-style shared client;
//! * [`settlement`] — the Fig. 3 end-to-end driver bridging solver
//!   equilibria onto the chain and auditing on-chain vs. Eq. (10).
//!
//! # Quick start
//!
//! ```
//! use tradefl_core::accuracy::SqrtAccuracy;
//! use tradefl_core::config::MarketConfig;
//! use tradefl_core::game::CoopetitionGame;
//! use tradefl_core::strategy::StrategyProfile;
//! use tradefl_ledger::settlement::SettlementSession;
//!
//! let market = MarketConfig::table_ii().with_orgs(3).build(7)?;
//! let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
//! let profile = StrategyProfile::minimal(game.market());
//!
//! let session = SettlementSession::deploy(&game)?;
//! let report = session.settle(&game, &profile)?;
//! assert!(report.consistent(1e-3)); // on-chain R_i == Eq. (10)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod attestation;
pub mod chain;
pub mod codec;
pub mod contract;
pub mod merkle;
pub mod network;
pub mod node;
pub mod settlement;
pub mod sha256;
pub mod state;
pub mod tradefl_contract;
pub mod tx;
pub mod types;
pub mod web3;

pub use attestation::{hmac_sha256, Attestation, Enclave};
pub use chain::{Block, Blockchain, ChainError};
pub use contract::{CallContext, Contract, ContractError, GasMeter};
pub use codec::{decode_chain, encode_chain, CodecError};
pub use merkle::{MerkleProof, MerkleTree};
pub use network::{Network, NetworkError, RoundOutcome, Validator};
pub use node::{BlockApplyError, Node, NodeError};
pub use settlement::{SettlementReport, SettlementSession};
pub use tradefl_contract::{Phase, SessionParams, TradeFlContract};
pub use tx::{ExecStatus, Log, Receipt, Transaction, TxPayload, Value};
pub use types::{Address, Fixed, Hash256, Wei};
pub use web3::Web3;
