//! A multi-validator proof-of-authority network.
//!
//! The paper's prototype runs on an Ethereum *private chain* — in
//! practice a small set of known validators (the organizations
//! themselves) taking turns to produce blocks. This module simulates
//! exactly that: a deterministic round-robin proposer schedule, full
//! re-execution validation on every replica ([`Node::apply_block`]),
//! and rejection of any proposer that lies about execution results.
//! All replicas converge to identical state roots, which is what makes
//! the settlement *decentralized* rather than trusted-third-party.

use crate::chain::Block;
use crate::codec::{decode_block_bytes, encode_block_bytes, CodecError};
use crate::contract::Contract;
use crate::node::{BlockApplyError, Node, NodeError};
use crate::tx::{Receipt, Transaction};
use crate::types::{Address, Hash256, Wei};
use std::fmt;
use tradefl_runtime::obs;

/// One validator: an organization running a full replica.
pub struct Validator {
    /// Display name (e.g. the organization).
    pub name: String,
    /// The validator's full node.
    pub node: Node,
}

impl fmt::Debug for Validator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Validator")
            .field("name", &self.name)
            .field("height", &self.node.chain().height())
            .finish()
    }
}

/// Outcome of one consensus round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Index of the proposing validator.
    pub proposer: usize,
    /// Hash of the produced block.
    pub block_hash: Hash256,
    /// Validators that accepted the block.
    pub accepted_by: Vec<usize>,
    /// Validators that rejected it, with their reasons.
    pub rejected_by: Vec<(usize, BlockApplyError)>,
}

impl RoundOutcome {
    /// Whether every replica accepted the block.
    pub fn unanimous(&self) -> bool {
        self.rejected_by.is_empty()
    }
}

/// Errors from network operation.
#[derive(Debug)]
pub enum NetworkError {
    /// A transaction was rejected at submission by the proposer's
    /// mempool rules.
    Submission(NodeError),
    /// The network has no validators.
    Empty,
    /// Replicas produced different addresses for the same deployment —
    /// the network is no longer replicated deterministically.
    DeployDiverged {
        /// Address the first replica produced.
        expected: Address,
        /// The diverging address.
        got: Address,
    },
    /// A block from the sync source failed validation during catch-up
    /// replay ([`Network::join`]).
    Sync {
        /// Height of the block that failed to replay.
        height: u64,
        /// Why the replica refused it.
        source: BlockApplyError,
    },
    /// An internal consistency failure (a bug, not bad peer input).
    Internal(&'static str),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Submission(e) => write!(f, "submission rejected: {e}"),
            NetworkError::Empty => write!(f, "network has no validators"),
            NetworkError::DeployDiverged { expected, got } => {
                write!(f, "deployment diverged across replicas: {expected} vs {got}")
            }
            NetworkError::Sync { height, source } => {
                write!(f, "sync failed replaying block {height}: {source}")
            }
            NetworkError::Internal(what) => write!(f, "internal network error: {what}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Why a wire frame from a peer was refused.
///
/// Frames arrive as raw bytes from an untrusted peer; all three stages
/// — the size gate, decoding, and re-execution — must reject bad input
/// with an error, never a panic.
#[derive(Debug, PartialEq)]
pub enum FrameError {
    /// The frame exceeds the receiver's configured
    /// [`WireLimits::max_frame_bytes`] — rejected before a single byte
    /// is decoded, so a byzantine peer cannot make the replica do work
    /// proportional to an absurd payload.
    Oversize {
        /// Bytes the peer sent.
        len: usize,
        /// The receiver's limit.
        max: usize,
    },
    /// The frame did not decode as a block (truncated, bad tag,
    /// oversized length prefix, trailing bytes, ...).
    Decode(CodecError),
    /// The block decoded but failed validation on re-execution.
    Apply(BlockApplyError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversize { len, max } => {
                write!(f, "frame rejected at size gate: {len} bytes > limit {max}")
            }
            FrameError::Decode(e) => write!(f, "frame rejected at decode: {e}"),
            FrameError::Apply(e) => write!(f, "frame rejected at validation: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wire-path resource limits applied before any decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLimits {
    /// Maximum accepted frame size in bytes. Frames longer than this
    /// are refused by [`Network::deliver_frame`] with
    /// [`FrameError::Oversize`] before decoding begins.
    pub max_frame_bytes: usize,
}

impl WireLimits {
    /// Default limit: 1 MiB — generous for the settlement workload
    /// (blocks are a few KiB) while bounding byzantine payloads.
    pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;
}

impl Default for WireLimits {
    fn default() -> Self {
        Self { max_frame_bytes: Self::DEFAULT_MAX_FRAME_BYTES }
    }
}

/// The round-robin PoA network.
///
/// # Examples
///
/// ```
/// use tradefl_ledger::network::Network;
/// use tradefl_ledger::tx::{Transaction, TxPayload};
/// use tradefl_ledger::types::{Address, Wei};
///
/// let alice = Address::from_name("alice");
/// let mut net = Network::new(&["v0", "v1", "v2"], &[(alice, Wei(1_000))]);
/// net.submit(Transaction {
///     from: alice,
///     nonce: 0,
///     value: Wei(10),
///     gas_limit: 21_000,
///     payload: TxPayload::Transfer { to: Address::from_name("bob") },
/// });
/// let outcome = net.round().expect("validators present");
/// assert!(outcome.unanimous());
/// assert!(net.converged());
/// ```
#[derive(Debug)]
pub struct Network {
    validators: Vec<Validator>,
    next_proposer: usize,
    /// Pending transactions awaiting the next block (network mempool).
    mempool: Vec<Transaction>,
    limits: WireLimits,
}

impl Network {
    /// Boots `names.len()` replicas with identical genesis allocations.
    pub fn new(names: &[&str], allocations: &[(Address, Wei)]) -> Self {
        Self::with_limits(names, allocations, WireLimits::default())
    }

    /// [`Network::new`] with explicit wire-path limits.
    pub fn with_limits(
        names: &[&str],
        allocations: &[(Address, Wei)],
        limits: WireLimits,
    ) -> Self {
        let validators = names
            .iter()
            .map(|&name| Validator { name: name.to_string(), node: Node::new(allocations) })
            .collect();
        Self { validators, next_proposer: 0, mempool: Vec::new(), limits }
    }

    /// The wire-path limits this network enforces.
    pub fn limits(&self) -> WireLimits {
        self.limits
    }

    /// Number of validators.
    pub fn len(&self) -> usize {
        self.validators.len()
    }

    /// Whether the network has no validators.
    pub fn is_empty(&self) -> bool {
        self.validators.is_empty()
    }

    /// Read access to a validator.
    pub fn validator(&self, i: usize) -> &Validator {
        &self.validators[i]
    }

    /// Deploys the same contract on every replica; returns the (shared)
    /// address. Replicas stay identical because deployment is
    /// deterministic.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Empty`] with no validators to deploy on;
    /// [`NetworkError::DeployDiverged`] if replicas disagree on the
    /// deployment address (replication is broken — deterministic
    /// deployment should make this impossible).
    pub fn deploy(&mut self, prototype: Box<dyn Contract>) -> Result<Address, NetworkError> {
        let mut addr = None;
        for v in &mut self.validators {
            let a = v.node.deploy(prototype.snapshot());
            match addr {
                None => addr = Some(a),
                Some(expected) if expected != a => {
                    return Err(NetworkError::DeployDiverged { expected, got: a });
                }
                Some(_) => {}
            }
        }
        addr.ok_or(NetworkError::Empty)
    }

    /// Queues a transaction in the network mempool.
    pub fn submit(&mut self, tx: Transaction) -> Hash256 {
        let hash = tx.hash();
        self.mempool.push(tx);
        hash
    }

    /// Runs one consensus round: the scheduled proposer executes the
    /// mempool into a block; every other replica re-executes and
    /// accepts or rejects. An optional `tamper` closure mutates the
    /// block in flight (Byzantine-proposer injection for tests).
    ///
    /// # Errors
    ///
    /// [`NetworkError::Empty`] if there are no validators.
    pub fn round_with(
        &mut self,
        tamper: Option<&dyn Fn(&mut Block)>,
    ) -> Result<RoundOutcome, NetworkError> {
        if self.validators.is_empty() {
            return Err(NetworkError::Empty);
        }
        let proposer = self.next_proposer;
        self.next_proposer = (self.next_proposer + 1) % self.validators.len();

        // The proposer executes the mempool.
        let txs: Vec<Transaction> = std::mem::take(&mut self.mempool);
        {
            let node = &mut self.validators[proposer].node;
            for tx in txs {
                // Invalid submissions are dropped (they would revert
                // deterministically anyway; dropping keeps tests crisp).
                let _ = node.submit(tx);
            }
            node.mine();
        }
        let Some(mined) = self.validators[proposer].node.chain().blocks().last() else {
            return Err(NetworkError::Internal("proposer mined no block"));
        };
        let mut block = mined.clone();
        if let Some(t) = tamper {
            t(&mut block);
        }
        let block_hash = block.hash();

        // Broadcast: every other replica re-executes.
        let mut accepted_by = vec![proposer];
        let mut rejected_by = Vec::new();
        for i in 0..self.validators.len() {
            if i == proposer {
                continue;
            }
            match self.validators[i].node.apply_block(&block) {
                Ok(()) => accepted_by.push(i),
                Err(e) => rejected_by.push((i, e)),
            }
        }
        Ok(RoundOutcome { proposer, block_hash, accepted_by, rejected_by })
    }

    /// Runs one honest consensus round.
    ///
    /// # Errors
    ///
    /// See [`Network::round_with`].
    pub fn round(&mut self) -> Result<RoundOutcome, NetworkError> {
        self.round_with(None)
    }

    /// Serializes a validator's tip block as a wire frame — what an
    /// honest peer would put on the network for [`deliver_frame`].
    ///
    /// Returns `None` if that replica has no blocks.
    ///
    /// [`deliver_frame`]: Network::deliver_frame
    pub fn tip_frame(&self, from: usize) -> Option<Vec<u8>> {
        self.validators
            .get(from)?
            .node
            .chain()
            .blocks()
            .last()
            .map(encode_block_bytes)
    }

    /// Serializes the block at `height` on validator `from`'s chain as
    /// a wire frame, or `None` if that replica has not reached it.
    /// This is the pull side of catch-up sync: a replica that fell
    /// behind (crash, dropped frames) requests each missing height from
    /// a live peer and feeds the frames through [`deliver_frame`].
    ///
    /// [`deliver_frame`]: Network::deliver_frame
    pub fn frame_at(&self, from: usize, height: u64) -> Option<Vec<u8>> {
        let block = self.validators.get(from)?.node.chain().blocks().get(height as usize)?;
        debug_assert_eq!(block.header.number, height);
        Some(encode_block_bytes(block))
    }

    /// Proposer-driven block production for an external scheduler (the
    /// engine's event loop): validator `proposer` executes exactly
    /// `txs` into a block on its *own* chain and returns the encoded
    /// frame. Nothing is broadcast — the caller owns delivery, so it
    /// can route the frame through fault injection, delays, or drops.
    /// The shared mempool and round-robin schedule are untouched.
    ///
    /// Invalid submissions are dropped exactly as in
    /// [`Network::round_with`]; an empty block is still produced.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Internal`] if `proposer` is out of range or
    /// mining produced no block.
    pub fn propose(
        &mut self,
        proposer: usize,
        txs: Vec<Transaction>,
    ) -> Result<Vec<u8>, NetworkError> {
        self.propose_with(proposer, txs, None)
    }

    /// [`Network::propose`] with an optional Byzantine mutation: after
    /// the proposer mines honestly on its own chain, `tamper` mutates a
    /// *copy* of the block and the returned frame encodes the lie. The
    /// proposer keeps the honest block — exactly the fork
    /// [`Network::round_with`] models: a lying proposer forks itself
    /// off, and honest replicas refuse the frame on re-execution. The
    /// caller is responsible for healing (or abandoning) the liar.
    ///
    /// # Errors
    ///
    /// See [`Network::propose`].
    pub fn propose_with(
        &mut self,
        proposer: usize,
        txs: Vec<Transaction>,
        tamper: Option<&dyn Fn(&mut Block)>,
    ) -> Result<Vec<u8>, NetworkError> {
        let node = &mut self
            .validators
            .get_mut(proposer)
            .ok_or(NetworkError::Internal("proposer out of range"))?
            .node;
        for tx in txs {
            let _ = node.submit(tx);
        }
        node.mine();
        let mined = node
            .chain()
            .blocks()
            .last()
            .ok_or(NetworkError::Internal("proposer mined no block"))?;
        match tamper {
            None => Ok(encode_block_bytes(mined)),
            Some(t) => {
                let mut lie = mined.clone();
                t(&mut lie);
                Ok(encode_block_bytes(&lie))
            }
        }
    }

    /// Crash-reboot for validator `i`: the replica loses all in-memory
    /// state and comes back as a freshly booted node — same genesis
    /// allocations, same deterministic contract deployments, chain at
    /// genesis. Recovery happens afterwards by replaying the ledger
    /// (pull each height via [`Network::frame_at`] through
    /// [`Network::deliver_frame`]); nothing is restored here.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Internal`] if `i` is out of range;
    /// [`NetworkError::DeployDiverged`] if redeployment does not land
    /// on the recorded addresses (determinism broken).
    pub fn restart_validator(
        &mut self,
        i: usize,
        allocations: &[(Address, Wei)],
        contracts: &[(Address, Box<dyn Contract>)],
    ) -> Result<(), NetworkError> {
        let v = self
            .validators
            .get_mut(i)
            .ok_or(NetworkError::Internal("validator out of range"))?;
        let mut node = Node::new(allocations);
        for (expected_addr, prototype) in contracts {
            let addr = node.deploy(prototype.snapshot());
            if addr != *expected_addr {
                return Err(NetworkError::DeployDiverged { expected: *expected_addr, got: addr });
            }
        }
        v.node = node;
        Ok(())
    }

    /// Delivers a raw wire frame — untrusted peer bytes — to validator
    /// `to`: the frame is decoded as a block and, if well-formed,
    /// validated by full re-execution exactly like [`Node::apply_block`].
    ///
    /// This is the network-facing message handler: a byzantine peer can
    /// send *anything* (truncated frames, oversized length prefixes,
    /// garbage tags), and every failure mode must surface as a
    /// [`FrameError`], never a panic or a state change.
    ///
    /// # Errors
    ///
    /// [`FrameError::Decode`] for malformed bytes, [`FrameError::Apply`]
    /// for a well-formed block that fails validation.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range (local misuse, not peer input).
    pub fn deliver_frame(&mut self, to: usize, frame: &[u8]) -> Result<(), FrameError> {
        let result = if frame.len() > self.limits.max_frame_bytes {
            Err(FrameError::Oversize { len: frame.len(), max: self.limits.max_frame_bytes })
        } else {
            match decode_block_bytes(frame) {
                Err(e) => Err(FrameError::Decode(e)),
                Ok(block) => self.validators[to]
                    .node
                    .apply_block(&block)
                    .map_err(FrameError::Apply),
            }
        };
        obs::counter_add(
            match result {
                Ok(()) => "ledger.frames_accepted",
                Err(FrameError::Oversize { .. }) => "ledger.frames_oversize",
                Err(FrameError::Decode(_)) => "ledger.frames_bad_encoding",
                Err(FrameError::Apply(_)) => "ledger.frames_bad_block",
            },
            1,
        );
        result
    }

    /// Whether every replica holds the same tip hash and state root.
    pub fn converged(&self) -> bool {
        let all: Vec<usize> = (0..self.validators.len()).collect();
        self.converged_among(&all)
    }

    /// [`Network::converged`] restricted to a subset of validators —
    /// the surviving nodes after fault injection killed some. Out-of-
    /// range indices are ignored.
    ///
    /// An empty subset (or one that is all out-of-range) returns
    /// `false`: convergence is a claim about at least one surviving
    /// replica holding the agreed state, and with zero survivors there
    /// is nobody left to hold it. Reporting a run where every validator
    /// died as "converged" was a real bug — vacuous truth is not
    /// consensus.
    pub fn converged_among(&self, subset: &[usize]) -> bool {
        let mut members = subset.iter().filter_map(|&i| self.validators.get(i));
        let Some(first) = members.next() else {
            return false;
        };
        let tip = first.node.chain().tip_hash();
        let root = first.node.state().root();
        members.all(|v| v.node.chain().tip_hash() == tip && v.node.state().root() == root)
    }

    /// Receipt lookup on the first replica (all replicas agree once
    /// converged).
    pub fn receipt(&self, tx_hash: Hash256) -> Option<&Receipt> {
        self.validators.first().and_then(|v| v.node.receipt(tx_hash))
    }

    /// A validator joining late: boots from the same genesis
    /// allocations and contract set, then catches up by replaying every
    /// block from an existing replica ([`Node::apply_block`] validates
    /// each one). Returns the new validator's index.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Empty`] when there is nobody to sync from;
    /// [`NetworkError::DeployDiverged`] when the joiner's contract
    /// deployments do not land on the expected addresses;
    /// [`NetworkError::Sync`] when a replayed block fails validation —
    /// a corrupt or lying sync source must not panic the joiner.
    pub fn join(
        &mut self,
        name: &str,
        allocations: &[(Address, Wei)],
        contracts: &[(Address, Box<dyn Contract>)],
    ) -> Result<usize, NetworkError> {
        let source = self.validators.first().ok_or(NetworkError::Empty)?;
        let blocks: Vec<Block> = source.node.chain().blocks().to_vec();
        let mut node = Node::new(allocations);
        for (expected_addr, prototype) in contracts {
            let addr = node.deploy(prototype.snapshot());
            if addr != *expected_addr {
                return Err(NetworkError::DeployDiverged { expected: *expected_addr, got: addr });
            }
        }
        // The fresh node mined its own genesis; replay everything after.
        for block in blocks.iter().skip(1) {
            node.apply_block(block).map_err(|source| NetworkError::Sync {
                height: block.header.number,
                source,
            })?;
        }
        self.validators.push(Validator { name: name.to_string(), node });
        Ok(self.validators.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxPayload;

    fn transfer(from: &str, to: &str, nonce: u64, value: u128) -> Transaction {
        Transaction {
            from: Address::from_name(from),
            nonce,
            value: Wei(value),
            gas_limit: 21_000,
            payload: TxPayload::Transfer { to: Address::from_name(to) },
        }
    }

    fn boot(n: usize) -> Network {
        let names: Vec<String> = (0..n).map(|i| format!("validator-{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        Network::new(
            &name_refs,
            &[
                (Address::from_name("alice"), Wei(1_000_000)),
                (Address::from_name("bob"), Wei(500_000)),
            ],
        )
    }

    #[test]
    fn replicas_converge_over_many_rounds() {
        let mut net = boot(4);
        assert_eq!(net.len(), 4);
        for k in 0..6 {
            net.submit(transfer("alice", "bob", k, 100 + k as u128));
            let outcome = net.round().unwrap();
            assert!(outcome.unanimous(), "round {k}: {:?}", outcome.rejected_by);
            assert_eq!(outcome.proposer, (k as usize) % 4);
        }
        assert!(net.converged());
        let bob = Address::from_name("bob");
        let balance = net.validator(0).node.state().balance_of(bob);
        for i in 1..4 {
            assert_eq!(net.validator(i).node.state().balance_of(bob), balance);
        }
    }

    #[test]
    fn byzantine_proposer_is_rejected_by_all_replicas() {
        let mut net = boot(3);
        net.submit(transfer("alice", "bob", 0, 100));
        // The proposer claims a different state root (e.g. silently
        // crediting itself).
        let outcome = net
            .round_with(Some(&|block: &mut Block| {
                block.header.state_root = Hash256([0xde; 32]);
            }))
            .unwrap();
        assert_eq!(outcome.rejected_by.len(), 2);
        for (_, err) in &outcome.rejected_by {
            assert!(matches!(
                err,
                BlockApplyError::StateRootMismatch | BlockApplyError::ReceiptMismatch
            ));
        }
        assert!(!net.converged(), "the lying proposer forked itself off");
    }

    #[test]
    fn tampered_receipts_are_rejected() {
        let mut net = boot(3);
        net.submit(transfer("alice", "bob", 0, 100));
        let outcome = net
            .round_with(Some(&|block: &mut Block| {
                if let Some(r) = block.receipts.first_mut() {
                    r.gas_used += 1;
                }
            }))
            .unwrap();
        assert_eq!(outcome.rejected_by.len(), 2);
        assert!(outcome
            .rejected_by
            .iter()
            .all(|(_, e)| *e == BlockApplyError::ReceiptMismatch));
    }

    #[test]
    fn tampered_receipts_root_is_rejected_without_panicking() {
        // A proposer lying in the *header* (rather than the receipts
        // themselves) used to trip an `expect` deep in `apply_block`;
        // it must now surface as a rejection on every honest replica.
        let mut net = boot(3);
        net.submit(transfer("alice", "bob", 0, 100));
        let outcome = net
            .round_with(Some(&|block: &mut Block| {
                block.header.receipts_root = Hash256([0xbe; 32]);
            }))
            .unwrap();
        assert_eq!(outcome.rejected_by.len(), 2);
        assert!(outcome
            .rejected_by
            .iter()
            .all(|(_, e)| *e == BlockApplyError::BadReceiptsRoot));
    }

    #[test]
    fn honest_frames_flow_through_the_wire_path() {
        // Sanity for the byzantine tests below: the byte path accepts
        // exactly what the struct path accepts.
        let mut net = boot(2);
        net.submit(transfer("alice", "bob", 0, 100));
        // Proposer 0 mines; replica 1 is rolled forward via round(). To
        // exercise deliver_frame against a replica that has *not* seen
        // the block, boot a third validator from scratch.
        net.round().unwrap();
        let frame = net.tip_frame(0).expect("proposer mined a block");
        let mut behind = boot(2);
        net.submit(transfer("alice", "bob", 1, 50));
        behind.deliver_frame(0, &frame).expect("honest frame must apply");
        behind.deliver_frame(1, &frame).expect("honest frame must apply");
        assert!(behind.converged());
    }

    #[test]
    fn byzantine_truncated_frames_error_instead_of_panicking() {
        // A byzantine peer sends every possible truncation of a valid
        // block frame. Each one must come back as a Decode error — the
        // pre-fix codec called the panicking `Buf` getters here.
        let mut net = boot(1);
        net.submit(transfer("alice", "bob", 0, 100));
        net.round().unwrap();
        let frame = net.tip_frame(0).unwrap();
        let mut victim = boot(1);
        for cut in 0..frame.len() {
            match victim.deliver_frame(0, &frame[..cut]) {
                Err(FrameError::Decode(_)) => {}
                other => panic!("cut at {cut}: expected Decode error, got {other:?}"),
            }
        }
        // The victim's chain is untouched by the garbage.
        assert_eq!(victim.validator(0).node.chain().height(), 1);
    }

    #[test]
    fn byzantine_oversized_length_prefixes_error_instead_of_panicking() {
        use crate::codec::decode_block_bytes;

        let mut net = boot(1);
        net.submit(transfer("alice", "bob", 0, 100));
        net.round().unwrap();
        let frame = net.tip_frame(0).unwrap();

        // Stamp an absurd little-endian length over every u64-aligned
        // position in the frame: whichever field it lands on (tx count,
        // vec length, string length), the decoder must refuse the claim
        // rather than try to allocate or read past the end. Positions
        // that only hit free-choice bytes (hashes, the proposer-picked
        // timestamp) may still decode — then the block goes through
        // normal validation. Either way: a Result, never a panic, and
        // a rejected frame never moves the victim's chain.
        let mut decode_errors = 0usize;
        for pos in (0..frame.len().saturating_sub(8)).step_by(8) {
            let mut bad = frame.clone();
            bad[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            let mut victim = boot(1);
            let before = victim.validator(0).node.chain().tip_hash();
            match victim.deliver_frame(0, &bad) {
                Err(e) => {
                    if matches!(e, FrameError::Decode(_)) {
                        decode_errors += 1;
                    }
                    assert_eq!(
                        victim.validator(0).node.chain().tip_hash(),
                        before,
                        "rejected frame must not change state (pos {pos})"
                    );
                }
                // Hit a free-choice field: still a valid block.
                Ok(()) => assert!(decode_block_bytes(&bad).is_ok()),
            }
        }
        // The length prefixes (tx count, receipt count, ...) are in
        // there somewhere: at least one position must have tripped the
        // decoder's length guard.
        assert!(decode_errors > 0, "no position exercised the length guard");
    }

    #[test]
    fn byzantine_unterminated_varints_error_instead_of_panicking() {
        // An unterminated varint — continuation bit set on ten-plus
        // consecutive bytes — spliced over the tx count must be
        // refused as malformed (LengthOverflow), never spun on,
        // misread, or allowed past the decoder.
        let mut net = boot(1);
        net.submit(transfer("alice", "bob", 0, 100));
        net.round().unwrap();
        let good = net.tip_frame(0).unwrap();
        let block = decode_block_bytes(&good).unwrap();
        let header_len = crate::codec::encode_header_bytes(&block.header).len();
        let mut bad = good.clone();
        bad.splice(header_len..header_len, [0xFFu8; 11]);
        let mut victim = boot(1);
        match victim.deliver_frame(0, &bad) {
            Err(FrameError::Decode(_)) => {}
            other => panic!("expected Decode error, got {other:?}"),
        }
        assert_eq!(victim.validator(0).node.chain().height(), 1);
    }

    #[test]
    fn byzantine_oversize_frames_are_refused_at_the_size_gate() {
        // A peer declares (and sends) a frame past the configured
        // limit: the receiver must refuse before decoding a single
        // byte, and its chain must not move.
        let names = ["v0"];
        let allocations = [(Address::from_name("alice"), Wei(1_000_000))];
        let mut victim =
            Network::with_limits(&names, &allocations, WireLimits { max_frame_bytes: 64 });
        let before = victim.validator(0).node.chain().tip_hash();
        let frame = vec![0u8; 65];
        match victim.deliver_frame(0, &frame) {
            Err(FrameError::Oversize { len: 65, max: 64 }) => {}
            other => panic!("expected Oversize, got {other:?}"),
        }
        assert_eq!(victim.validator(0).node.chain().tip_hash(), before);
    }

    #[test]
    fn size_gate_rejects_honest_blocks_past_the_limit_but_not_under_it() {
        // The gate is about *size*, not honesty: a perfectly valid
        // block bigger than the limit is refused, and the same block
        // passes once the limit accommodates it.
        let mut net = boot(1);
        net.submit(transfer("alice", "bob", 0, 100));
        net.round().unwrap();
        let frame = net.tip_frame(0).unwrap();

        let names = ["v0"];
        let allocations = [
            (Address::from_name("alice"), Wei(1_000_000)),
            (Address::from_name("bob"), Wei(500_000)),
        ];
        let mut strict = Network::with_limits(
            &names,
            &allocations,
            WireLimits { max_frame_bytes: frame.len() - 1 },
        );
        assert!(matches!(
            strict.deliver_frame(0, &frame),
            Err(FrameError::Oversize { .. })
        ));
        let mut lenient = Network::with_limits(
            &names,
            &allocations,
            WireLimits { max_frame_bytes: frame.len() },
        );
        lenient.deliver_frame(0, &frame).expect("within the limit, frame applies");
    }

    #[test]
    fn byzantine_declared_lengths_beyond_the_frame_are_refused_before_allocation() {
        use crate::codec::CodecError;
        use tradefl_runtime::codec::{Buf, BytesMut};

        // A frame whose tx-count field claims more elements than the
        // remaining bytes could possibly encode. The codec must reject
        // the *claim* (LengthOverflow), not run the element decoder
        // until it trips over the end.
        let mut net = boot(1);
        net.submit(transfer("alice", "bob", 0, 100));
        net.round().unwrap();
        let good = net.tip_frame(0).unwrap();
        // Re-splice the frame with a forged tx-count varint: header
        // bytes, the absurd count, then the original tx/receipt tail.
        let block = decode_block_bytes(&good).unwrap();
        let header_len = crate::codec::encode_header_bytes(&block.header).len();
        let mut tail: &[u8] = &good[header_len..];
        tail.try_get_uvarint().unwrap(); // skip the honest count
        // Claim a count that passes the absolute MAX_LEN cap but not
        // the bytes-remaining check: far more txs than the tail of the
        // frame could hold, yet small enough that only the new guard
        // can catch it.
        let absurd: u64 = 10_000;
        let mut forged = BytesMut::with_capacity(good.len() + 2);
        forged.put_slice(&good[..header_len]);
        forged.put_uvarint(absurd);
        forged.put_slice(tail);
        let frame = forged.into_vec();
        let mut victim = boot(1);
        match victim.deliver_frame(0, &frame) {
            Err(FrameError::Decode(CodecError::LengthOverflow(n))) => {
                assert_eq!(n, absurd as usize);
            }
            other => panic!("expected LengthOverflow({absurd}), got {other:?}"),
        }
        assert_eq!(victim.validator(0).node.chain().height(), 1);
    }

    #[test]
    fn propose_and_frame_at_feed_the_wire_path() {
        // propose() mines on the proposer only; peers converge by
        // explicit frame delivery — the engine's delivery model.
        let mut net = boot(3);
        let frame = net
            .propose(0, vec![transfer("alice", "bob", 0, 100)])
            .expect("proposer in range");
        assert!(!net.converged(), "nothing was broadcast yet");
        net.deliver_frame(1, &frame).unwrap();
        net.deliver_frame(2, &frame).unwrap();
        assert!(net.converged());
        // frame_at serves historical heights for pull sync.
        assert_eq!(net.frame_at(0, 1), Some(frame));
        assert!(net.frame_at(0, 2).is_none(), "height 2 not mined yet");
        assert!(net.propose(7, vec![]).is_err(), "out-of-range proposer");
    }

    #[test]
    fn propose_with_tamper_forks_the_liar_and_honest_replicas_refuse() {
        let mut net = boot(3);
        let frame = net
            .propose_with(
                0,
                vec![transfer("alice", "bob", 0, 100)],
                Some(&|block: &mut Block| {
                    block.header.state_root = Hash256([0xAA; 32]);
                }),
            )
            .unwrap();
        // The frame encodes the lie; honest replicas reject it on
        // re-execution and their chains do not move.
        for i in [1, 2] {
            assert!(matches!(
                net.deliver_frame(i, &frame),
                Err(FrameError::Apply(
                    BlockApplyError::StateRootMismatch | BlockApplyError::ReceiptMismatch
                ))
            ));
            assert_eq!(net.validator(i).node.chain().height(), 1);
        }
        // The proposer kept its honest block: it forked itself off.
        assert_eq!(net.validator(0).node.chain().height(), 2);
        assert!(!net.converged());
    }

    #[test]
    fn restarted_validator_recovers_by_ledger_replay() {
        let mut net = boot(3);
        for k in 0..4 {
            net.submit(transfer("alice", "bob", k, 100));
            assert!(net.round().unwrap().unanimous());
        }
        assert!(net.converged());
        let allocations = [
            (Address::from_name("alice"), Wei(1_000_000)),
            (Address::from_name("bob"), Wei(500_000)),
        ];
        // Validator 1 crashes and reboots from genesis...
        net.restart_validator(1, &allocations, &[]).unwrap();
        assert!(!net.converged(), "the rebooted replica lost everything");
        assert_eq!(net.validator(1).node.chain().height(), 1);
        // ...then replays the ledger from a live peer, height by height.
        let mut h = net.validator(1).node.chain().height() as u64;
        while let Some(frame) = net.frame_at(0, h) {
            net.deliver_frame(1, &frame).expect("replayed block must validate");
            h += 1;
        }
        assert!(net.converged(), "replay restores bit-identical state");
    }

    #[test]
    fn converged_among_ignores_dead_validators() {
        let mut net = boot(3);
        let frame = net.propose(0, vec![transfer("alice", "bob", 0, 50)]).unwrap();
        // Only validator 2 hears the block; validator 1 is "dead".
        net.deliver_frame(2, &frame).unwrap();
        assert!(!net.converged());
        assert!(net.converged_among(&[0, 2]));
        assert!(!net.converged_among(&[0, 1, 2]));
        assert!(net.converged_among(&[0, 99]), "out-of-range indices are ignored");
        assert!(net.converged_among(&[2, 99]), "a lone survivor agrees with itself");
    }

    /// Zero survivors must not read as consensus: `converged_among`
    /// with an empty subset (or only out-of-range indices) used to
    /// return `true`, so an engine run where every validator died
    /// reported `converged: true`.
    #[test]
    fn zero_survivors_are_not_converged() {
        let net = boot(3);
        assert!(!net.converged_among(&[]), "nobody left to hold the agreed state");
        assert!(!net.converged_among(&[99, 100]), "all-out-of-range is the same as empty");
    }

    #[test]
    fn byzantine_garbage_frames_error_instead_of_panicking() {
        let mut victim = boot(1);
        // Deterministic junk: an xorshift byte stream at several sizes.
        let mut s = 0x9e37_79b9_u32 | 1;
        for len in [0usize, 1, 7, 8, 33, 200, 4096] {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    (s >> 24) as u8
                })
                .collect();
            assert!(
                matches!(victim.deliver_frame(0, &bytes), Err(FrameError::Decode(_))),
                "len {len}"
            );
        }
    }

    #[test]
    fn empty_rounds_keep_replicas_in_sync() {
        let mut net = boot(2);
        for _ in 0..3 {
            let o = net.round().unwrap();
            assert!(o.unanimous());
        }
        assert!(net.converged());
        assert_eq!(net.validator(0).node.chain().height(), 4); // genesis + 3
    }

    #[test]
    fn late_joining_validator_syncs_by_replay() {
        let allocations = [
            (Address::from_name("alice"), Wei(1_000_000)),
            (Address::from_name("bob"), Wei(500_000)),
        ];
        let mut net = Network::new(&["v0", "v1"], &allocations);
        for k in 0..4 {
            net.submit(transfer("alice", "bob", k, 50));
            assert!(net.round().unwrap().unanimous());
        }
        let idx = net.join("latecomer", &allocations, &[]).unwrap();
        assert_eq!(idx, 2);
        assert!(net.converged(), "the late joiner must hold the same state");
        // And it participates in consensus from now on.
        net.submit(transfer("alice", "bob", 4, 50));
        let outcome = net.round().unwrap();
        assert!(outcome.unanimous());
        assert_eq!(outcome.accepted_by.len(), 3);
    }

    #[test]
    fn contract_execution_replicates() {
        use crate::tradefl_contract::{SessionParams, TradeFlContract};
        use crate::types::Fixed;

        let orgs: Vec<Address> =
            (0..3).map(|i| Address::from_name(&format!("org-{i}"))).collect();
        let allocations: Vec<(Address, Wei)> =
            orgs.iter().map(|&a| (a, Wei(10_000_000))).collect();
        let names = ["v0", "v1", "v2"];
        let mut net = Network::new(&names, &allocations);
        let params = SessionParams {
            participants: orgs.clone(),
            gamma_per_gbit: Fixed::from_f64(5.12),
            lambda: Fixed::from_f64(3.0),
            rho: vec![
                vec![Fixed::ZERO, Fixed::from_f64(0.1), Fixed::from_f64(0.1)],
                vec![Fixed::from_f64(0.1), Fixed::ZERO, Fixed::from_f64(0.1)],
                vec![Fixed::from_f64(0.1), Fixed::from_f64(0.1), Fixed::ZERO],
            ],
            s_gbits: vec![Fixed::from_f64(20.0); 3],
            required_deposit: Wei(1_000_000),
            wei_per_payoff_unit: 1_000,
            attestation_key: None,
        };
        let contract = net.deploy(Box::new(TradeFlContract::new(params).unwrap())).unwrap();

        // Full settlement, one tx per round, proposers rotating.
        let call = |from: Address, nonce: u64, function: &str, args, value| Transaction {
            from,
            nonce,
            value,
            gas_limit: 10_000_000,
            payload: TxPayload::Call { contract, function: function.into(), args },
        };
        for &o in &orgs {
            net.submit(call(o, 0, "register", vec![], Wei::ZERO));
        }
        assert!(net.round().unwrap().unanimous());
        for &o in &orgs {
            net.submit(call(o, 1, "depositSubmit", vec![], Wei(1_000_000)));
        }
        assert!(net.round().unwrap().unanimous());
        for (k, &o) in orgs.iter().enumerate() {
            net.submit(call(
                o,
                2,
                "contributionSubmit",
                vec![
                    crate::tx::Value::Fixed(Fixed::from_f64(0.2 + 0.3 * k as f64)),
                    crate::tx::Value::Fixed(Fixed::from_f64(3.0)),
                ],
                Wei::ZERO,
            ));
        }
        assert!(net.round().unwrap().unanimous());
        net.submit(call(orgs[0], 3, "payoffCalculate", vec![], Wei::ZERO));
        net.submit(call(orgs[0], 4, "payoffTransfer", vec![], Wei::ZERO));
        assert!(net.round().unwrap().unanimous());
        assert!(net.converged(), "all replicas hold the settled state");
    }
}
