//! End-to-end settlement: bridges the off-chain coopetition game (the
//! equilibrium `{d_i*, f_i*}` computed by `tradefl-solver`) onto the
//! on-chain TradeFL contract, runs the Fig. 3 procedure, and verifies
//! that the on-chain redistribution matches the off-chain Eq. (10).

use crate::attestation::Enclave;
use crate::contract::ContractError;
use crate::node::Node;
use crate::tradefl_contract::{SessionParams, TradeFlContract};
use crate::tx::Value;
use crate::types::{Address, Fixed, Wei};
use crate::web3::Web3;
use std::fmt;
use tradefl_core::accuracy::AccuracyModel;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::StrategyProfile;

/// Wei per fixed-point payoff unit used by [`SettlementSession`].
pub const DEFAULT_WEI_PER_UNIT: u128 = 1_000_000;

/// Errors from the settlement driver.
#[derive(Debug)]
pub enum SettlementError {
    /// A contract call reverted (carries the on-chain reason).
    Contract(ContractError),
    /// A transaction could not be submitted.
    Node(crate::node::NodeError),
    /// A mined transaction reverted.
    Reverted {
        /// The ABI function that reverted.
        function: &'static str,
        /// Revert reason.
        reason: String,
    },
}

impl fmt::Display for SettlementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SettlementError::Contract(e) => write!(f, "contract error: {e}"),
            SettlementError::Node(e) => write!(f, "node error: {e}"),
            SettlementError::Reverted { function, reason } => {
                write!(f, "{function} reverted: {reason}")
            }
        }
    }
}

impl std::error::Error for SettlementError {}

impl From<ContractError> for SettlementError {
    fn from(e: ContractError) -> Self {
        SettlementError::Contract(e)
    }
}

impl From<crate::node::NodeError> for SettlementError {
    fn from(e: crate::node::NodeError) -> Self {
        SettlementError::Node(e)
    }
}

/// Outcome of a full on-chain settlement.
#[derive(Debug, Clone, PartialEq)]
pub struct SettlementReport {
    /// Organization addresses in market order.
    pub addresses: Vec<Address>,
    /// On-chain redistribution per organization (payoff units).
    pub onchain_redistribution: Vec<f64>,
    /// Off-chain `R_i` from Eq. (10) for comparison.
    pub offchain_redistribution: Vec<f64>,
    /// Largest absolute discrepancy between the two.
    pub max_abs_error: f64,
    /// Total gas consumed across all settlement transactions.
    pub total_gas: u64,
    /// Chain height after settlement.
    pub chain_height: usize,
}

impl SettlementReport {
    /// Whether on-chain and off-chain redistributions agree within
    /// `tol` payoff units.
    pub fn consistent(&self, tol: f64) -> bool {
        self.max_abs_error <= tol
    }
}

/// Drives one trading session end to end.
#[derive(Debug)]
pub struct SettlementSession {
    web3: Web3,
    contract: Address,
    addresses: Vec<Address>,
    required_deposit: Wei,
    enclave: Option<Enclave>,
}

impl SettlementSession {
    /// Builds the on-chain session for a game: boots a private chain,
    /// funds every organization, deploys the TradeFL contract with the
    /// market's parameters (converted to Gbit/GHz fixed point).
    ///
    /// # Errors
    ///
    /// Propagates contract parameter validation failures.
    pub fn deploy<A: AccuracyModel>(
        game: &CoopetitionGame<A>,
    ) -> Result<Self, SettlementError> {
        Self::deploy_with(game, None)
    }

    /// Like [`SettlementSession::deploy`], but the session requires
    /// TEE-attested contribution reports (footnote 6): the contract is
    /// deployed with the enclave's verification key and every
    /// `contributionSubmit` must carry a valid MAC.
    pub fn deploy_attested<A: AccuracyModel>(
        game: &CoopetitionGame<A>,
        enclave: Enclave,
    ) -> Result<Self, SettlementError> {
        Self::deploy_with(game, Some(enclave))
    }

    fn deploy_with<A: AccuracyModel>(
        game: &CoopetitionGame<A>,
        enclave: Option<Enclave>,
    ) -> Result<Self, SettlementError> {
        let market = game.market();
        let n = market.len();
        let addresses: Vec<Address> =
            market.orgs().iter().map(|o| Address::from_name(o.name())).collect();

        // Worst-case |R_i| bound sizes the bond: γ' · q_i · x_max, where
        // x_max bounds any resource-index difference.
        let gamma_per_gbit = market.params().gamma * 1e9;
        let x_max = market
            .orgs()
            .iter()
            .map(|o| o.data_bits() / 1e9 + market.params().lambda * o.max_frequency() / 1e9)
            .fold(0.0f64, f64::max);
        let q_max = (0..n)
            .map(|i| market.competition_pressure(i))
            .fold(0.0f64, f64::max);
        let bound_units = gamma_per_gbit * q_max * x_max * 1.05 + 1.0;
        let required_deposit =
            Wei((bound_units * DEFAULT_WEI_PER_UNIT as f64).ceil() as u128);

        let params = SessionParams {
            participants: addresses.clone(),
            gamma_per_gbit: Fixed::from_f64(gamma_per_gbit),
            lambda: Fixed::from_f64(market.params().lambda),
            rho: (0..n)
                .map(|i| (0..n).map(|j| Fixed::from_f64(market.rho(i, j))).collect())
                .collect(),
            s_gbits: market
                .orgs()
                .iter()
                .map(|o| Fixed::from_f64(o.data_bits() / 1e9))
                .collect(),
            required_deposit,
            wei_per_payoff_unit: DEFAULT_WEI_PER_UNIT,
            attestation_key: enclave.as_ref().map(|e| e.verification_key()),
        };
        let contract_impl = TradeFlContract::new(params)?;

        // Fund each org with 4x its bond so deposits always clear.
        let allocations: Vec<(Address, Wei)> = addresses
            .iter()
            .map(|&a| (a, Wei(required_deposit.0 * 4)))
            .collect();
        let mut node = Node::new(&allocations);
        let contract = node.deploy(Box::new(contract_impl));
        Ok(Self { web3: Web3::new(node), contract, addresses, required_deposit, enclave })
    }

    /// The Web3 handle (for inspecting the chain afterwards).
    pub fn web3(&self) -> &Web3 {
        &self.web3
    }

    /// The deployed contract address.
    pub fn contract(&self) -> Address {
        self.contract
    }

    /// Runs the full Fig. 3 procedure for an equilibrium profile:
    /// register → deposit → contribute → calculate → transfer →
    /// record, then compares on-chain `R_i` against Eq. (10).
    ///
    /// # Errors
    ///
    /// [`SettlementError::Reverted`] if any on-chain step fails.
    pub fn settle<A: AccuracyModel>(
        &self,
        game: &CoopetitionGame<A>,
        profile: &StrategyProfile,
    ) -> Result<SettlementReport, SettlementError> {
        let market = game.market();
        let n = market.len();
        let mut total_gas = 0u64;
        let mut run = |from: Address,
                       function: &'static str,
                       args: Vec<Value>,
                       value: Wei|
         -> Result<Vec<Value>, SettlementError> {
            let receipt = self
                .web3
                .call_and_mine(from, self.contract, function, args, value)?;
            total_gas_add(&mut total_gas, receipt.gas_used);
            match receipt.status {
                crate::tx::ExecStatus::Success => Ok(receipt.return_data),
                crate::tx::ExecStatus::Reverted(reason) => {
                    Err(SettlementError::Reverted { function, reason })
                }
            }
        };

        for &addr in &self.addresses {
            run(addr, "register", vec![], Wei::ZERO)?;
        }
        for &addr in &self.addresses {
            run(addr, "depositSubmit", vec![], self.required_deposit)?;
        }
        for (i, &addr) in self.addresses.iter().enumerate() {
            let org = market.org(i);
            let d = Fixed::from_f64(profile[i].d);
            let f_ghz = Fixed::from_f64(org.frequency(profile[i].level) / 1e9);
            let mut args = vec![Value::Fixed(d), Value::Fixed(f_ghz)];
            if let Some(enclave) = &self.enclave {
                // The measurement enclave observed the training run and
                // signs the report (footnote 6).
                let att = enclave.attest(addr, d, f_ghz);
                args.push(Value::Bytes(att.mac.to_vec()));
            }
            run(addr, "contributionSubmit", args, Wei::ZERO)?;
        }
        let calculated = run(self.addresses[0], "payoffCalculate", vec![], Wei::ZERO)?;
        run(self.addresses[0], "payoffTransfer", vec![], Wei::ZERO)?;
        for &addr in &self.addresses {
            run(addr, "profileRecord", vec![Value::Addr(addr)], Wei::ZERO)?;
        }

        let onchain: Vec<f64> = calculated
            .iter()
            .map(|v| v.as_fixed().map(Fixed::to_f64).unwrap_or(f64::NAN))
            .collect();
        let offchain: Vec<f64> =
            (0..n).map(|i| game.redistribution(profile, i)).collect();
        let max_abs_error = onchain
            .iter()
            .zip(&offchain)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        Ok(SettlementReport {
            addresses: self.addresses.clone(),
            onchain_redistribution: onchain,
            offchain_redistribution: offchain,
            max_abs_error,
            total_gas,
            chain_height: self.web3.height(),
        })
    }
}

fn total_gas_add(total: &mut u64, used: u64) {
    *total = total.saturating_add(used);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_core::accuracy::SqrtAccuracy;
    use tradefl_core::config::MarketConfig;
    use tradefl_core::strategy::Strategy;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    fn spread_profile(g: &CoopetitionGame<SqrtAccuracy>) -> StrategyProfile {
        (0..g.market().len())
            .map(|i| {
                let level = g.market().org(i).compute_level_count() - 1;
                let (lo, hi) = g.market().feasible_range(i, level).unwrap();
                let t = i as f64 / g.market().len().max(1) as f64;
                Strategy::new(lo + t * (hi - lo), level)
            })
            .collect()
    }

    #[test]
    fn onchain_settlement_matches_offchain_eq10() {
        let g = game(5, 77);
        let profile = spread_profile(&g);
        let session = SettlementSession::deploy(&g).unwrap();
        let report = session.settle(&g, &profile).unwrap();
        // Fixed-point resolution is 1e-9 per term; allow generous slack.
        assert!(
            report.consistent(1e-3),
            "max error {} (on {:?} vs off {:?})",
            report.max_abs_error,
            report.onchain_redistribution,
            report.offchain_redistribution
        );
        assert!(report.total_gas > 0);
        session.web3().verify_chain().unwrap();
    }

    #[test]
    fn settlement_emits_full_audit_trail() {
        let g = game(3, 5);
        let profile = spread_profile(&g);
        let session = SettlementSession::deploy(&g).unwrap();
        session.settle(&g, &profile).unwrap();
        let w = session.web3();
        assert_eq!(w.logs_by_event("Registered").len(), 3);
        assert_eq!(w.logs_by_event("DepositSubmitted").len(), 3);
        assert_eq!(w.logs_by_event("ContributionSubmitted").len(), 3);
        assert_eq!(w.logs_by_event("PayoffCalculated").len(), 3);
        assert_eq!(w.logs_by_event("PayoffTransferred").len(), 3);
        assert_eq!(w.logs_by_event("ProfileRecorded").len(), 3);
    }

    #[test]
    fn attested_session_accepts_enclave_signed_reports() {
        let g = game(3, 31);
        let profile = spread_profile(&g);
        let enclave = crate::attestation::Enclave::from_label("vendor-x");
        let session = SettlementSession::deploy_attested(&g, enclave).unwrap();
        let report = session.settle(&g, &profile).unwrap();
        assert!(report.consistent(1e-3));
    }

    #[test]
    fn attested_session_rejects_unattested_contributions() {
        let g = game(3, 33);
        let enclave = crate::attestation::Enclave::from_label("vendor-x");
        let session = SettlementSession::deploy_attested(&g, enclave.clone()).unwrap();
        let w3 = session.web3();
        let addrs: Vec<Address> = g
            .market()
            .orgs()
            .iter()
            .map(|o| Address::from_name(o.name()))
            .collect();
        for &a in &addrs {
            assert!(w3
                .call_and_mine(a, session.contract(), "register", vec![], Wei::ZERO)
                .unwrap()
                .status
                .is_success());
        }
        for &a in &addrs {
            let bond = Wei(w3.balance(a).0 / 4);
            assert!(w3
                .call_and_mine(a, session.contract(), "depositSubmit", vec![], bond)
                .unwrap()
                .status
                .is_success());
        }
        let d = Fixed::from_f64(0.5);
        let f = Fixed::from_f64(3.0);
        // Missing attestation: rejected.
        let r = w3
            .call_and_mine(
                addrs[0],
                session.contract(),
                "contributionSubmit",
                vec![Value::Fixed(d), Value::Fixed(f)],
                Wei::ZERO,
            )
            .unwrap();
        assert!(!r.status.is_success(), "unattested report must revert");
        // Attestation for a DIFFERENT d (the org inflates its report).
        let att = enclave.attest(addrs[0], Fixed::from_f64(0.1), f);
        let r = w3
            .call_and_mine(
                addrs[0],
                session.contract(),
                "contributionSubmit",
                vec![Value::Fixed(d), Value::Fixed(f), Value::Bytes(att.mac.to_vec())],
                Wei::ZERO,
            )
            .unwrap();
        assert!(!r.status.is_success(), "inflated report must revert");
        // Honest, properly attested report: accepted.
        let att = enclave.attest(addrs[0], d, f);
        let r = w3
            .call_and_mine(
                addrs[0],
                session.contract(),
                "contributionSubmit",
                vec![Value::Fixed(d), Value::Fixed(f), Value::Bytes(att.mac.to_vec())],
                Wei::ZERO,
            )
            .unwrap();
        assert!(r.status.is_success());
    }

    #[test]
    fn settling_twice_is_rejected() {
        let g = game(3, 9);
        let profile = spread_profile(&g);
        let session = SettlementSession::deploy(&g).unwrap();
        session.settle(&g, &profile).unwrap();
        let err = session.settle(&g, &profile).unwrap_err();
        assert!(matches!(err, SettlementError::Reverted { function: "register", .. }));
    }
}
