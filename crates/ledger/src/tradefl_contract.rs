//! The TradeFL settlement smart contract (§III-F, Table I, Fig. 3).
//!
//! The paper deploys a 41-line Solidity contract on an Ethereum private
//! chain whose job is to make the payoff redistribution `r_{i,j}`
//! *undeniable*: organizations escrow a deposit, report their optimal
//! contribution profile `{d_i*, f_i*}`, and the contract computes and
//! executes the redistribution automatically — no party can refuse to
//! pay after the fact, and every step is recorded for arbitration.
//!
//! ABI (Table I):
//!
//! | function               | description                        |
//! |------------------------|------------------------------------|
//! | `register()`           | join the trading session           |
//! | `depositSubmit()`      | issue bonds (escrow), payable      |
//! | `contributionSubmit(d, f_ghz)` | submit contribution profile |
//! | `payoffCalculate()`    | compute `r_{i,j}` / `R_i` on-chain |
//! | `payoffTransfer()`     | execute redistribution + refunds   |
//! | `profileRecord(i)`     | record/emit a contribution profile |
//!
//! All arithmetic is deterministic fixed-point ([`Fixed`], 10⁻⁹
//! resolution). Data volumes enter in **Gbit** units and frequencies in
//! **GHz** so every intermediate product stays far from the `i128`
//! range; `gamma_per_gbit = γ · 10⁹` compensates (see
//! `tradefl-ledger::settlement` for the off-chain conversion).
//! Pairwise terms are accumulated antisymmetrically (`r_{ij}` is added
//! to `i` and subtracted from `j`), so `Σ_i R_i = 0` holds *exactly* in
//! integer arithmetic — budget balance (Def. 5) is a contract invariant,
//! not a floating-point approximation.

use crate::contract::{CallContext, Contract, ContractError};
use crate::tx::Value;
use crate::types::{Address, Fixed, Wei};
use std::collections::BTreeMap;

/// Gas schedule (flat per function, linear parts charged separately).
mod gas {
    pub const REGISTER: u64 = 23_000;
    pub const DEPOSIT: u64 = 28_000;
    pub const CONTRIBUTION: u64 = 35_000;
    pub const CALCULATE_BASE: u64 = 30_000;
    pub const CALCULATE_PER_PAIR: u64 = 4_000;
    pub const TRANSFER_BASE: u64 = 25_000;
    pub const TRANSFER_PER_ORG: u64 = 9_000;
    pub const RECORD: u64 = 15_000;
    pub const VIEW: u64 = 2_000;
}

/// Immutable deployment parameters of one trading session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionParams {
    /// Participating organizations, in index order (the order fixes the
    /// meaning of `rho`).
    pub participants: Vec<Address>,
    /// Incentive intensity rescaled to Gbit units: `γ · 10⁹`.
    pub gamma_per_gbit: Fixed,
    /// Unit-uniformizing factor `λ` (also in Gbit/GHz units).
    pub lambda: Fixed,
    /// Symmetric competition matrix `ρ` (fixed-point).
    pub rho: Vec<Vec<Fixed>>,
    /// Each organization's dataset size `s_i` in Gbit.
    pub s_gbits: Vec<Fixed>,
    /// Required escrow per organization.
    pub required_deposit: Wei,
    /// Wei paid per unit of (fixed-point) payoff when settling.
    pub wei_per_payoff_unit: u128,
    /// Optional TEE verification key (footnote 6): when set,
    /// `contributionSubmit` requires a valid attestation MAC over the
    /// report and rejects unattested or tampered contributions.
    pub attestation_key: Option<[u8; 32]>,
}

impl SessionParams {
    /// Validates shapes and symmetry.
    ///
    /// # Errors
    ///
    /// [`ContractError::Revert`] describing the violated invariant.
    pub fn validate(&self) -> Result<(), ContractError> {
        let n = self.participants.len();
        if n == 0 {
            return Err(ContractError::revert("no participants"));
        }
        if self.rho.len() != n || self.s_gbits.len() != n {
            return Err(ContractError::revert("parameter shape mismatch"));
        }
        for (i, row) in self.rho.iter().enumerate() {
            if row.len() != n {
                return Err(ContractError::revert("rho row shape mismatch"));
            }
            for (j, &v) in row.iter().enumerate() {
                if v.0 < 0 {
                    return Err(ContractError::revert("negative competition intensity"));
                }
                if i == j && v != Fixed::ZERO {
                    return Err(ContractError::revert("self competition"));
                }
                if v != self.rho[j][i] {
                    return Err(ContractError::revert("asymmetric competition matrix"));
                }
            }
        }
        if self.gamma_per_gbit.0 < 0 {
            return Err(ContractError::revert("negative gamma"));
        }
        Ok(())
    }
}

/// The session's lifecycle phase (Fig. 3's three steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Step 1a: organizations register.
    Registration,
    /// Step 1b: organizations escrow deposits.
    Deposit,
    /// Step 2: organizations submit `{d_i*, f_i*}`.
    Contribution,
    /// Step 3a: redistribution computed, awaiting transfer.
    Settlement,
    /// Step 3b: transfers executed, session closed.
    Closed,
}

/// One organization's submitted contribution profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contribution {
    /// Data fraction `d_i` (fixed-point in `[0, 1]`).
    pub d: Fixed,
    /// Compute frequency `f_i` in GHz (fixed-point).
    pub f_ghz: Fixed,
}

/// The TradeFL settlement contract.
#[derive(Debug, Clone)]
pub struct TradeFlContract {
    params: SessionParams,
    phase: Phase,
    registered: BTreeMap<Address, bool>,
    deposits: BTreeMap<Address, Wei>,
    contributions: BTreeMap<Address, Contribution>,
    redistribution: BTreeMap<Address, Fixed>,
}

impl TradeFlContract {
    /// Instantiates a session.
    ///
    /// # Errors
    ///
    /// Propagates [`SessionParams::validate`] failures.
    pub fn new(params: SessionParams) -> Result<Self, ContractError> {
        params.validate()?;
        Ok(Self {
            params,
            phase: Phase::Registration,
            registered: BTreeMap::new(),
            deposits: BTreeMap::new(),
            contributions: BTreeMap::new(),
            redistribution: BTreeMap::new(),
        })
    }

    /// Current phase (off-chain convenience; on-chain callers use the
    /// `phase` view function).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The deployment parameters.
    pub fn params(&self) -> &SessionParams {
        &self.params
    }

    fn index_of(&self, addr: Address) -> Result<usize, ContractError> {
        self.params
            .participants
            .iter()
            .position(|&p| p == addr)
            .ok_or_else(|| ContractError::revert("caller is not a participant"))
    }

    /// Resource index `x_i = d_i s_i + λ f_i` in Gbit units.
    fn resource_index(&self, i: usize) -> Fixed {
        let addr = self.params.participants[i];
        let c = self.contributions[&addr];
        c.d.mul(self.params.s_gbits[i]) + self.params.lambda.mul(c.f_ghz)
    }

    fn register(&mut self, ctx: &mut CallContext<'_>) -> Result<Vec<Value>, ContractError> {
        ctx.charge_gas(gas::REGISTER)?;
        if self.phase != Phase::Registration {
            return Err(ContractError::revert("registration phase is over"));
        }
        let caller = ctx.caller;
        self.index_of(caller)?;
        if self.registered.insert(caller, true).is_some() {
            return Err(ContractError::revert("already registered"));
        }
        ctx.emit("Registered", vec![("org".into(), Value::Addr(caller))]);
        if self.registered.len() == self.params.participants.len() {
            self.phase = Phase::Deposit;
        }
        Ok(vec![])
    }

    fn deposit_submit(&mut self, ctx: &mut CallContext<'_>) -> Result<Vec<Value>, ContractError> {
        ctx.charge_gas(gas::DEPOSIT)?;
        if self.phase != Phase::Deposit {
            return Err(ContractError::revert("not in deposit phase"));
        }
        let caller = ctx.caller;
        self.index_of(caller)?;
        if self.deposits.contains_key(&caller) {
            return Err(ContractError::revert("deposit already submitted"));
        }
        if ctx.value < self.params.required_deposit {
            return Err(ContractError::revert(format!(
                "deposit {} below required bond {}",
                ctx.value, self.params.required_deposit
            )));
        }
        self.deposits.insert(caller, ctx.value);
        ctx.emit(
            "DepositSubmitted",
            vec![
                ("org".into(), Value::Addr(caller)),
                ("amount".into(), Value::I128(ctx.value.0 as i128)),
            ],
        );
        if self.deposits.len() == self.params.participants.len() {
            self.phase = Phase::Contribution;
        }
        Ok(vec![])
    }

    fn contribution_submit(
        &mut self,
        ctx: &mut CallContext<'_>,
        args: &[Value],
    ) -> Result<Vec<Value>, ContractError> {
        ctx.charge_gas(gas::CONTRIBUTION)?;
        if self.phase != Phase::Contribution {
            return Err(ContractError::revert("not in contribution phase"));
        }
        let caller = ctx.caller;
        self.index_of(caller)?;
        let d = args
            .first()
            .and_then(Value::as_fixed)
            .ok_or(ContractError::BadArgs("expected fixed d"))?;
        let f_ghz = args
            .get(1)
            .and_then(Value::as_fixed)
            .ok_or(ContractError::BadArgs("expected fixed f_ghz"))?;
        if d.0 < 0 || d > Fixed::ONE {
            return Err(ContractError::revert("d out of [0, 1]"));
        }
        if f_ghz.0 <= 0 {
            return Err(ContractError::revert("non-positive frequency"));
        }
        if let Some(key) = &self.params.attestation_key {
            let mac_bytes = match args.get(2) {
                Some(Value::Bytes(b)) if b.len() == 32 => b,
                _ => {
                    return Err(ContractError::revert(
                        "attested session: contribution requires a 32-byte attestation",
                    ))
                }
            };
            let mut mac = [0u8; 32];
            mac.copy_from_slice(mac_bytes);
            let attestation = crate::attestation::Attestation { mac };
            if !crate::attestation::verify(key, caller, d, f_ghz, &attestation) {
                return Err(ContractError::revert("attestation verification failed"));
            }
        }
        if self.contributions.insert(caller, Contribution { d, f_ghz }).is_some() {
            return Err(ContractError::revert("contribution already submitted"));
        }
        ctx.emit(
            "ContributionSubmitted",
            vec![
                ("org".into(), Value::Addr(caller)),
                ("d".into(), Value::Fixed(d)),
                ("f_ghz".into(), Value::Fixed(f_ghz)),
            ],
        );
        if self.contributions.len() == self.params.participants.len() {
            self.phase = Phase::Settlement;
        }
        Ok(vec![])
    }

    fn payoff_calculate(&mut self, ctx: &mut CallContext<'_>) -> Result<Vec<Value>, ContractError> {
        let n = self.params.participants.len();
        ctx.charge_gas(gas::CALCULATE_BASE + gas::CALCULATE_PER_PAIR * (n * (n - 1) / 2) as u64)?;
        if self.phase != Phase::Settlement {
            return Err(ContractError::revert("contributions incomplete"));
        }
        if !self.redistribution.is_empty() {
            return Err(ContractError::revert("payoff already calculated"));
        }
        let mut totals = vec![Fixed::ZERO; n];
        for i in 0..n {
            for j in (i + 1)..n {
                // r_{i,j} = γ' ρ_ij (x_i − x_j); accumulated
                // antisymmetrically so Σ_i R_i = 0 exactly.
                let r = self
                    .params
                    .gamma_per_gbit
                    .mul(self.params.rho[i][j])
                    .mul(self.resource_index(i) - self.resource_index(j));
                totals[i] = totals[i] + r;
                totals[j] = totals[j] - r;
            }
        }
        let check: Fixed = totals.iter().copied().sum();
        debug_assert_eq!(check, Fixed::ZERO, "antisymmetric accumulation must cancel");
        for (i, &addr) in self.params.participants.iter().enumerate() {
            self.redistribution.insert(addr, totals[i]);
            ctx.emit(
                "PayoffCalculated",
                vec![
                    ("org".into(), Value::Addr(addr)),
                    ("redistribution".into(), Value::Fixed(totals[i])),
                ],
            );
        }
        Ok(totals.into_iter().map(Value::Fixed).collect())
    }

    fn payoff_transfer(&mut self, ctx: &mut CallContext<'_>) -> Result<Vec<Value>, ContractError> {
        let n = self.params.participants.len();
        ctx.charge_gas(gas::TRANSFER_BASE + gas::TRANSFER_PER_ORG * n as u64)?;
        if self.phase != Phase::Settlement {
            return Err(ContractError::revert("not in settlement phase"));
        }
        if self.redistribution.is_empty() {
            return Err(ContractError::revert("payoff not yet calculated"));
        }
        // Refund_i = deposit_i + R_i · wei_per_unit (floor division keeps
        // Σ delta ≤ 0, so escrow always covers the payouts; the ≤ n wei
        // of rounding dust stays in the contract).
        let unit = self.params.wei_per_payoff_unit as i128;
        let mut refunds: Vec<(Address, Wei)> = Vec::with_capacity(n);
        for &addr in &self.params.participants {
            let deposit = self.deposits[&addr].0 as i128;
            let delta = (self.redistribution[&addr].0 * unit).div_euclid(Fixed::SCALE);
            let refund = deposit.checked_add(delta).ok_or_else(|| {
                ContractError::revert(format!("refund overflow for {addr}"))
            })?;
            if refund < 0 {
                return Err(ContractError::revert(format!(
                    "deposit of {addr} cannot cover its redistribution debt"
                )));
            }
            refunds.push((addr, Wei(refund as u128)));
        }
        for &(addr, amount) in &refunds {
            ctx.pay_out(addr, amount)?;
            ctx.emit(
                "PayoffTransferred",
                vec![
                    ("org".into(), Value::Addr(addr)),
                    ("refund".into(), Value::I128(amount.0 as i128)),
                ],
            );
        }
        self.phase = Phase::Closed;
        Ok(refunds.into_iter().map(|(_, w)| Value::I128(w.0 as i128)).collect())
    }

    fn profile_record(
        &mut self,
        ctx: &mut CallContext<'_>,
        args: &[Value],
    ) -> Result<Vec<Value>, ContractError> {
        ctx.charge_gas(gas::RECORD)?;
        let org = args
            .first()
            .and_then(Value::as_addr)
            .ok_or(ContractError::BadArgs("expected org address"))?;
        self.index_of(org)?;
        let c = self
            .contributions
            .get(&org)
            .ok_or_else(|| ContractError::revert("no contribution on record"))?;
        let r = self.redistribution.get(&org).copied().unwrap_or(Fixed::ZERO);
        ctx.emit(
            "ProfileRecorded",
            vec![
                ("org".into(), Value::Addr(org)),
                ("d".into(), Value::Fixed(c.d)),
                ("f_ghz".into(), Value::Fixed(c.f_ghz)),
                ("redistribution".into(), Value::Fixed(r)),
            ],
        );
        Ok(vec![Value::Fixed(c.d), Value::Fixed(c.f_ghz), Value::Fixed(r)])
    }

    fn view_phase(&self, ctx: &mut CallContext<'_>) -> Result<Vec<Value>, ContractError> {
        ctx.charge_gas(gas::VIEW)?;
        let code = match self.phase {
            Phase::Registration => 0,
            Phase::Deposit => 1,
            Phase::Contribution => 2,
            Phase::Settlement => 3,
            Phase::Closed => 4,
        };
        Ok(vec![Value::U64(code)])
    }

    fn view_redistribution(
        &self,
        ctx: &mut CallContext<'_>,
        args: &[Value],
    ) -> Result<Vec<Value>, ContractError> {
        ctx.charge_gas(gas::VIEW)?;
        let org = args
            .first()
            .and_then(Value::as_addr)
            .ok_or(ContractError::BadArgs("expected org address"))?;
        let r = self
            .redistribution
            .get(&org)
            .copied()
            .ok_or_else(|| ContractError::revert("no redistribution on record"))?;
        Ok(vec![Value::Fixed(r)])
    }
}

impl Contract for TradeFlContract {
    fn call(
        &mut self,
        ctx: &mut CallContext<'_>,
        function: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ContractError> {
        match function {
            "register" => self.register(ctx),
            "depositSubmit" => self.deposit_submit(ctx),
            "contributionSubmit" => self.contribution_submit(ctx, args),
            "payoffCalculate" => self.payoff_calculate(ctx),
            "payoffTransfer" => self.payoff_transfer(ctx),
            "profileRecord" => self.profile_record(ctx, args),
            "phase" => self.view_phase(ctx),
            "redistributionOf" => self.view_redistribution(ctx, args),
            other => Err(ContractError::UnknownFunction(other.into())),
        }
    }

    fn name(&self) -> &str {
        "tradefl"
    }

    fn snapshot(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::GasMeter;
    use crate::state::WorldState;
    use crate::tx::Log;

    fn params(n: usize) -> SessionParams {
        let participants: Vec<Address> =
            (0..n).map(|i| Address::from_name(&format!("org-{i}"))).collect();
        let rho = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { Fixed::ZERO } else { Fixed::from_f64(0.1) })
                    .collect()
            })
            .collect();
        SessionParams {
            participants,
            gamma_per_gbit: Fixed::from_f64(5.12),
            lambda: Fixed::from_f64(3.0),
            rho,
            s_gbits: (0..n).map(|i| Fixed::from_f64(20.0 + i as f64)).collect(),
            required_deposit: Wei(1_000_000),
            wei_per_payoff_unit: 1_000,
            attestation_key: None,
        }
    }

    /// Drives a raw call against a standalone contract + state.
    fn call(
        c: &mut TradeFlContract,
        state: &mut WorldState,
        caller: Address,
        value: Wei,
        function: &str,
        args: &[Value],
    ) -> Result<(Vec<Value>, Vec<Log>), ContractError> {
        let this = Address::from_name("tradefl-contract");
        if value > Wei::ZERO {
            state.transfer(caller, this, value).map_err(|e| ContractError::revert(e.to_string()))?;
        }
        let mut logs = Vec::new();
        let mut gas = GasMeter::new(10_000_000);
        let mut ctx = CallContext::new(caller, value, 1, this, state, &mut logs, &mut gas);
        let ret = c.call(&mut ctx, function, args)?;
        Ok((ret, logs))
    }

    fn funded_state(n: usize) -> WorldState {
        let allocs: Vec<(Address, Wei)> = (0..n)
            .map(|i| (Address::from_name(&format!("org-{i}")), Wei(10_000_000)))
            .collect();
        WorldState::with_allocations(&allocs)
    }

    fn run_to_settlement(
        c: &mut TradeFlContract,
        state: &mut WorldState,
        n: usize,
        ds: &[f64],
    ) {
        for i in 0..n {
            let a = Address::from_name(&format!("org-{i}"));
            call(c, state, a, Wei::ZERO, "register", &[]).unwrap();
        }
        for i in 0..n {
            let a = Address::from_name(&format!("org-{i}"));
            call(c, state, a, Wei(1_000_000), "depositSubmit", &[]).unwrap();
        }
        for i in 0..n {
            let a = Address::from_name(&format!("org-{i}"));
            call(
                c,
                state,
                a,
                Wei::ZERO,
                "contributionSubmit",
                &[
                    Value::Fixed(Fixed::from_f64(ds[i])),
                    Value::Fixed(Fixed::from_f64(3.0)),
                ],
            )
            .unwrap();
        }
        assert_eq!(c.phase(), Phase::Settlement);
    }

    #[test]
    fn full_lifecycle_reaches_closed_and_conserves_wei() {
        let n = 3;
        let mut c = TradeFlContract::new(params(n)).unwrap();
        let mut state = funded_state(n);
        let supply = state.total_supply();
        run_to_settlement(&mut c, &mut state, n, &[0.9, 0.5, 0.1]);
        call(&mut c, &mut state, Address::from_name("org-0"), Wei::ZERO, "payoffCalculate", &[])
            .unwrap();
        call(&mut c, &mut state, Address::from_name("org-0"), Wei::ZERO, "payoffTransfer", &[])
            .unwrap();
        assert_eq!(c.phase(), Phase::Closed);
        assert_eq!(state.total_supply(), supply, "settlement only moves wei around");
        // The largest contributor must end up wealthier than the smallest.
        let b0 = state.balance_of(Address::from_name("org-0"));
        let b2 = state.balance_of(Address::from_name("org-2"));
        assert!(b0 > b2, "org-0 contributed most: {b0:?} vs {b2:?}");
    }

    #[test]
    fn redistribution_is_exactly_budget_balanced() {
        let n = 4;
        let mut c = TradeFlContract::new(params(n)).unwrap();
        let mut state = funded_state(n);
        run_to_settlement(&mut c, &mut state, n, &[0.8, 0.6, 0.3, 0.05]);
        let (ret, _) =
            call(&mut c, &mut state, Address::from_name("org-1"), Wei::ZERO, "payoffCalculate", &[])
                .unwrap();
        let total: i128 = ret
            .iter()
            .map(|v| v.as_fixed().unwrap().0)
            .sum();
        assert_eq!(total, 0, "Σ R_i must cancel exactly in integer arithmetic");
    }

    #[test]
    fn phase_machine_rejects_out_of_order_calls() {
        let n = 2;
        let mut c = TradeFlContract::new(params(n)).unwrap();
        let mut state = funded_state(n);
        let a0 = Address::from_name("org-0");
        // Deposit before registration closes.
        assert!(call(&mut c, &mut state, a0, Wei(1_000_000), "depositSubmit", &[]).is_err());
        // Contribution before deposits.
        call(&mut c, &mut state, a0, Wei::ZERO, "register", &[]).unwrap();
        assert!(call(
            &mut c,
            &mut state,
            a0,
            Wei::ZERO,
            "contributionSubmit",
            &[Value::Fixed(Fixed::from_f64(0.5)), Value::Fixed(Fixed::ONE)]
        )
        .is_err());
        // Calculate before contributions.
        assert!(call(&mut c, &mut state, a0, Wei::ZERO, "payoffCalculate", &[]).is_err());
        // Transfer before calculate.
        assert!(call(&mut c, &mut state, a0, Wei::ZERO, "payoffTransfer", &[]).is_err());
    }

    #[test]
    fn double_submission_and_outsiders_are_rejected() {
        let n = 2;
        let mut c = TradeFlContract::new(params(n)).unwrap();
        let mut state = funded_state(n);
        let a0 = Address::from_name("org-0");
        let a1 = Address::from_name("org-1");
        let outsider = Address::from_name("mallory");
        state.credit(outsider, Wei(10_000_000));
        assert!(call(&mut c, &mut state, outsider, Wei::ZERO, "register", &[]).is_err());
        call(&mut c, &mut state, a0, Wei::ZERO, "register", &[]).unwrap();
        assert!(call(&mut c, &mut state, a0, Wei::ZERO, "register", &[]).is_err());
        call(&mut c, &mut state, a1, Wei::ZERO, "register", &[]).unwrap();
        call(&mut c, &mut state, a0, Wei(1_000_000), "depositSubmit", &[]).unwrap();
        assert!(
            call(&mut c, &mut state, a0, Wei(1_000_000), "depositSubmit", &[]).is_err(),
            "double deposit"
        );
        // Underfunded deposit.
        assert!(call(&mut c, &mut state, a1, Wei(10), "depositSubmit", &[]).is_err());
    }

    #[test]
    fn invalid_contributions_are_rejected() {
        let n = 2;
        let mut c = TradeFlContract::new(params(n)).unwrap();
        let mut state = funded_state(n);
        for i in 0..n {
            let a = Address::from_name(&format!("org-{i}"));
            call(&mut c, &mut state, a, Wei::ZERO, "register", &[]).unwrap();
        }
        for i in 0..n {
            let a = Address::from_name(&format!("org-{i}"));
            call(&mut c, &mut state, a, Wei(1_000_000), "depositSubmit", &[]).unwrap();
        }
        let a0 = Address::from_name("org-0");
        // d > 1
        assert!(call(
            &mut c,
            &mut state,
            a0,
            Wei::ZERO,
            "contributionSubmit",
            &[Value::Fixed(Fixed::from_f64(1.5)), Value::Fixed(Fixed::ONE)]
        )
        .is_err());
        // f <= 0
        assert!(call(
            &mut c,
            &mut state,
            a0,
            Wei::ZERO,
            "contributionSubmit",
            &[Value::Fixed(Fixed::from_f64(0.5)), Value::Fixed(Fixed::ZERO)]
        )
        .is_err());
        // wrong arg types
        assert!(call(&mut c, &mut state, a0, Wei::ZERO, "contributionSubmit", &[Value::U64(1)])
            .is_err());
    }

    #[test]
    fn profile_record_emits_arbitration_evidence() {
        let n = 2;
        let mut c = TradeFlContract::new(params(n)).unwrap();
        let mut state = funded_state(n);
        run_to_settlement(&mut c, &mut state, n, &[0.7, 0.2]);
        let a0 = Address::from_name("org-0");
        call(&mut c, &mut state, a0, Wei::ZERO, "payoffCalculate", &[]).unwrap();
        let (ret, logs) =
            call(&mut c, &mut state, a0, Wei::ZERO, "profileRecord", &[Value::Addr(a0)]).unwrap();
        assert_eq!(ret.len(), 3);
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].event, "ProfileRecorded");
        assert_eq!(logs[0].field("d"), Some(&Value::Fixed(Fixed::from_f64(0.7))));
    }

    #[test]
    fn top_contributor_receives_positive_redistribution() {
        let n = 3;
        let mut c = TradeFlContract::new(params(n)).unwrap();
        let mut state = funded_state(n);
        run_to_settlement(&mut c, &mut state, n, &[1.0, 0.5, 0.01]);
        let a0 = Address::from_name("org-0");
        call(&mut c, &mut state, a0, Wei::ZERO, "payoffCalculate", &[]).unwrap();
        let (r0, _) =
            call(&mut c, &mut state, a0, Wei::ZERO, "redistributionOf", &[Value::Addr(a0)])
                .unwrap();
        let a2 = Address::from_name("org-2");
        let (r2, _) =
            call(&mut c, &mut state, a2, Wei::ZERO, "redistributionOf", &[Value::Addr(a2)])
                .unwrap();
        assert!(r0[0].as_fixed().unwrap().0 > 0);
        assert!(r2[0].as_fixed().unwrap().0 < 0);
    }

    #[test]
    fn params_validation_catches_bad_matrices() {
        let mut p = params(2);
        p.rho[0][1] = Fixed::from_f64(0.3); // breaks symmetry
        assert!(TradeFlContract::new(p).is_err());
        let mut p = params(2);
        p.rho[1][1] = Fixed::from_f64(0.2); // self competition
        assert!(TradeFlContract::new(p).is_err());
        let mut p = params(2);
        p.s_gbits.pop();
        assert!(TradeFlContract::new(p).is_err());
    }
}
