//! TEE-style report attestation (the paper's footnote 6: contribution
//! reports "can be verified through the Trusted Execution Environments
//! (TEE) proposed in \[43\]").
//!
//! We simulate the trust chain with a keyed MAC (HMAC-SHA-256,
//! implemented over this crate's own SHA-256): a measurement enclave
//! observes the organization's actual training run and signs the
//! `(org, d, f)` report; the settlement contract holds the enclave
//! vendor's verification key and rejects any contribution whose report
//! does not carry a valid attestation — a misreporting organization
//! cannot get a self-serving `d_i*` on chain.
//!
//! (Real TEEs use asymmetric remote attestation; a shared-key MAC gives
//! the same on-chain check structure without a bignum library, which is
//! all the mechanism needs — see DESIGN.md §2.)

use crate::sha256::{digest, Sha256, DIGEST_LEN};
use crate::types::{Address, Fixed};

/// An attestation over a contribution report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attestation {
    /// MAC over the canonical report encoding.
    pub mac: [u8; DIGEST_LEN],
}

/// The enclave-side signer (held by the trusted measurement component,
/// never by organizations).
#[derive(Debug, Clone)]
pub struct Enclave {
    key: [u8; 32],
}

impl Enclave {
    /// Provisions an enclave with a vendor key.
    pub fn new(key: [u8; 32]) -> Self {
        Self { key }
    }

    /// Derives a deterministic enclave from a provisioning label (demo
    /// and test convenience).
    pub fn from_label(label: &str) -> Self {
        Self { key: digest(label.as_bytes()) }
    }

    /// The verification key the contract is deployed with.
    pub fn verification_key(&self) -> [u8; 32] {
        // Shared-key MAC: the verifier holds the same key. A real TEE
        // would publish a public key here.
        self.key
    }

    /// Signs an observed contribution report.
    pub fn attest(&self, org: Address, d: Fixed, f_ghz: Fixed) -> Attestation {
        Attestation { mac: mac_over(&self.key, org, d, f_ghz) }
    }
}

/// Verifies an attestation against a verification key — the check the
/// settlement contract performs in `contributionSubmit`.
pub fn verify(
    key: &[u8; 32],
    org: Address,
    d: Fixed,
    f_ghz: Fixed,
    attestation: &Attestation,
) -> bool {
    // Constant-time-ish comparison (not security-critical in a
    // simulation, but cheap to do right).
    let expect = mac_over(key, org, d, f_ghz);
    let mut diff = 0u8;
    for (a, b) in expect.iter().zip(&attestation.mac) {
        diff |= a ^ b;
    }
    diff == 0
}

/// HMAC-SHA-256 (RFC 2104) over the canonical report encoding.
fn mac_over(key: &[u8; 32], org: Address, d: Fixed, f_ghz: Fixed) -> [u8; DIGEST_LEN] {
    let mut message = Vec::with_capacity(20 + 16 + 16);
    message.extend_from_slice(&org.0);
    message.extend_from_slice(&d.0.to_be_bytes());
    message.extend_from_slice(&f_ghz.0.to_be_bytes());
    hmac_sha256(key, &message)
}

/// HMAC-SHA-256 with a 32-byte key (fits in one block, no pre-hashing
/// needed).
pub fn hmac_sha256(key: &[u8; 32], message: &[u8]) -> [u8; DIGEST_LEN] {
    const BLOCK: usize = 64;
    let mut k_ipad = [0x36u8; BLOCK];
    let mut k_opad = [0x5cu8; BLOCK];
    for (i, &k) in key.iter().enumerate() {
        k_ipad[i] ^= k;
        k_opad[i] ^= k;
    }
    let mut inner = Sha256::new();
    inner.update(&k_ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&k_opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_test_case_2() {
        // HMAC-SHA-256("Jefe", "what do ya want for nothing?") — key
        // padded to 32 bytes with zeros changes the MAC, so use the
        // equivalent one-block property: we verify our construction
        // against the identity HMAC(k,m) computed by the definition.
        let mut key = [0u8; 32];
        key[..4].copy_from_slice(b"Jefe");
        let m = b"what do ya want for nothing?";
        let got = hmac_sha256(&key, m);
        // Independent recomputation by the HMAC definition.
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..32 {
            ipad[i] ^= key[i];
            opad[i] ^= key[i];
        }
        let mut h1 = Sha256::new();
        h1.update(&ipad);
        h1.update(m);
        let inner = h1.finalize();
        let mut h2 = Sha256::new();
        h2.update(&opad);
        h2.update(&inner);
        assert_eq!(to_hex(&got), to_hex(&h2.finalize()));
    }

    #[test]
    fn attestation_roundtrip() {
        let enclave = Enclave::from_label("vendor-1");
        let org = Address::from_name("org-0");
        let d = Fixed::from_f64(0.42);
        let f = Fixed::from_f64(3.2);
        let att = enclave.attest(org, d, f);
        assert!(verify(&enclave.verification_key(), org, d, f, &att));
    }

    #[test]
    fn tampered_reports_fail_verification() {
        let enclave = Enclave::from_label("vendor-1");
        let org = Address::from_name("org-0");
        let d = Fixed::from_f64(0.42);
        let f = Fixed::from_f64(3.2);
        let att = enclave.attest(org, d, f);
        // Inflate the reported contribution.
        assert!(!verify(&enclave.verification_key(), org, Fixed::from_f64(0.9), f, &att));
        // Claim someone else's attestation.
        let other = Address::from_name("org-1");
        assert!(!verify(&enclave.verification_key(), other, d, f, &att));
        // Wrong vendor key.
        let rogue = Enclave::from_label("vendor-2");
        assert!(!verify(&rogue.verification_key(), org, d, f, &att));
    }

    #[test]
    fn distinct_reports_have_distinct_macs() {
        let enclave = Enclave::from_label("vendor-1");
        let org = Address::from_name("org-0");
        let a = enclave.attest(org, Fixed::from_f64(0.1), Fixed::from_f64(3.0));
        let b = enclave.attest(org, Fixed::from_f64(0.2), Fixed::from_f64(3.0));
        assert_ne!(a, b);
    }
}
