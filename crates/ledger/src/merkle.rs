//! Merkle trees over transaction hashes: compact inclusion proofs for
//! light-client arbitration.
//!
//! §III-F's arbitration story assumes the disputing party can query the
//! full chain. With a Merkle root in the block header, an organization
//! only needs the 32-byte header plus an `O(log n)` proof to convince
//! an arbitrator that a specific transaction (say, a rival's signed
//! `contributionSubmit`) was included in a given block — no full replay
//! required.
//!
//! The tree uses domain-separated hashing (`0x00` leaf / `0x01` node
//! prefixes) to rule out second-preimage tricks between leaves and
//! internal nodes.
//!
//! **Odd levels promote, never duplicate.** Bitcoin-style trees hash
//! the last node of an odd level with *itself*, which makes two
//! different leaf sets share a root: `[a, b, c]` and `[a, b, c, c]`
//! both reduce to `h(h(ab), h(cc))` (the CVE-2012-2459 ambiguity — an
//! attacker can present a duplicated-tx block under a valid root).
//! This tree instead promotes the unpaired node unchanged to the next
//! level (RFC 6962 / Certificate Transparency style), which makes the
//! leaf set ↦ root mapping injective for distinct well-formed inputs;
//! [`MerkleTree::SCHEME_VERSION`] names the scheme so any future
//! format change is detectable.

use crate::sha256::Sha256;
use crate::types::Hash256;

/// Which side a sibling hash sits on along the proof path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Sibling is the left child; our running hash is the right.
    Left,
    /// Sibling is the right child.
    Right,
}

/// An inclusion proof: the sibling path from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling hashes from the leaf level upward.
    pub path: Vec<(Side, Hash256)>,
}

impl MerkleProof {
    /// Recomputes the root implied by `leaf` and this proof.
    pub fn implied_root(&self, leaf: Hash256) -> Hash256 {
        let mut acc = leaf_hash(leaf);
        for (side, sibling) in &self.path {
            acc = match side {
                Side::Left => node_hash(*sibling, acc),
                Side::Right => node_hash(acc, *sibling),
            };
        }
        acc
    }

    /// Verifies the proof against a known root.
    pub fn verify(&self, leaf: Hash256, root: Hash256) -> bool {
        self.implied_root(leaf) == root
    }
}

/// A Merkle tree built over a list of 32-byte leaves (transaction
/// hashes).
///
/// # Examples
///
/// ```
/// use tradefl_ledger::merkle::MerkleTree;
/// use tradefl_ledger::types::Hash256;
///
/// let leaves = vec![Hash256([1; 32]), Hash256([2; 32]), Hash256([3; 32])];
/// let tree = MerkleTree::build(&leaves);
/// let proof = tree.prove(1).expect("in range");
/// assert!(proof.verify(leaves[1], tree.root()));
/// assert!(!proof.verify(leaves[0], tree.root()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// levels[0] = hashed leaves; last level = [root].
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Hashing-scheme version: 2 = RFC 6962-style odd-node promotion
    /// with domain-separated leaf/node hashing (version 1 was the
    /// Bitcoin-style duplicate-last-node scheme, retired for its
    /// CVE-2012-2459 root ambiguity).
    pub const SCHEME_VERSION: u8 = 2;

    /// Builds the tree. An empty leaf set gets the conventional
    /// all-zero root.
    pub fn build(leaves: &[Hash256]) -> Self {
        if leaves.is_empty() {
            return Self { levels: vec![vec![Hash256::ZERO]] };
        }
        let mut levels = vec![leaves.iter().map(|&l| leaf_hash(l)).collect::<Vec<_>>()];
        // lint:allow(no-panic-in-lib): `levels` starts with the leaf level, never empty
        while levels.last().unwrap().len() > 1 {
            // lint:allow(no-panic-in-lib): `levels` starts with the leaf level, never empty
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                next.push(match pair {
                    // An unpaired node is *promoted*, not hashed with a
                    // copy of itself — duplication would let distinct
                    // leaf sets collide (see the module docs).
                    [one] => *one,
                    _ => node_hash(pair[0], pair[1]),
                });
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// The root hash.
    pub fn root(&self) -> Hash256 {
        // lint:allow(no-panic-in-lib): both constructor paths produce at least one level
        self.levels.last().expect("at least one level")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        if self.levels.len() == 1 && self.levels[0][0] == Hash256::ZERO {
            0
        } else {
            self.levels[0].len()
        }
    }

    /// Whether the tree was built from zero leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// Returns `None` if the index is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            // A promoted (unpaired) node has no sibling at this level
            // and contributes no path element: it carries upward
            // unchanged, so the verifier's fold skips the level too.
            if let Some(&sibling) = level.get(sibling_idx) {
                let side = if sibling_idx < idx { Side::Left } else { Side::Right };
                path.push((side, sibling));
            }
            idx /= 2;
        }
        Some(MerkleProof { leaf_index: index, path })
    }
}

fn leaf_hash(leaf: Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(&leaf.0);
    Hash256(h.finalize())
}

fn node_hash(left: Hash256, right: Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(&left.0);
    h.update(&right.0);
    Hash256(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 32];
                b[0] = i as u8;
                b[1] = (i >> 8) as u8;
                Hash256(b)
            })
            .collect()
    }

    #[test]
    fn proofs_verify_for_every_leaf_and_size() {
        for n in 1..=17 {
            let ls = leaves(n);
            let tree = MerkleTree::build(&ls);
            assert_eq!(tree.len(), n);
            for (i, &leaf) in ls.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(proof.verify(leaf, tree.root()), "n={n} leaf={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_or_tampered_path_fails() {
        let ls = leaves(8);
        let tree = MerkleTree::build(&ls);
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(ls[4], tree.root()), "wrong leaf");
        let mut bad = proof.clone();
        bad.path[1].1 = Hash256([0xff; 32]);
        assert!(!bad.verify(ls[3], tree.root()), "tampered sibling");
        let mut flipped = proof;
        flipped.path[0].0 = match flipped.path[0].0 {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        };
        assert!(!flipped.verify(ls[3], tree.root()), "flipped side");
    }

    #[test]
    fn roots_differ_when_any_leaf_changes() {
        let ls = leaves(9);
        let base = MerkleTree::build(&ls).root();
        for i in 0..9 {
            let mut altered = ls.clone();
            altered[i].0[31] ^= 1;
            assert_ne!(MerkleTree::build(&altered).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn domain_separation_prevents_leaf_node_confusion() {
        // A one-leaf tree's root must differ from the raw leaf, and a
        // two-leaf tree's root must differ from hashing the leaves as a
        // single leaf.
        let ls = leaves(2);
        let tree = MerkleTree::build(&ls);
        assert_ne!(tree.root(), ls[0]);
        assert_ne!(tree.root(), leaf_hash(ls[0]));
    }

    #[test]
    fn empty_and_single_trees() {
        let empty = MerkleTree::build(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.root(), Hash256::ZERO);
        assert!(empty.prove(0).is_none());

        let one = MerkleTree::build(&leaves(1));
        assert_eq!(one.len(), 1);
        let proof = one.prove(0).unwrap();
        assert!(proof.path.is_empty());
        assert!(proof.verify(leaves(1)[0], one.root()));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::build(&leaves(5));
        assert!(tree.prove(5).is_none());
    }

    /// The Bitcoin-style scheme this tree used before promotion: an odd
    /// level's last node is hashed with a copy of itself. Kept here to
    /// demonstrate the CVE-2012-2459 ambiguity the fix removes.
    fn duplicate_last_root(leaves: &[Hash256]) -> Hash256 {
        let mut level: Vec<Hash256> = leaves.iter().map(|&l| leaf_hash(l)).collect();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|p| node_hash(p[0], p.get(1).copied().unwrap_or(p[0])))
                .collect();
        }
        level[0]
    }

    #[test]
    fn duplicate_pair_leaf_sets_no_longer_collide() {
        // `[a, b, c]` vs `[a, b, c, c]`: under duplicate-last hashing
        // both reduce to h(h(ab), h(cc)) — the same root for two
        // different tx sets, which would let a block with a duplicated
        // final transaction pass the tx_root check.
        let three = leaves(3);
        let mut four = three.clone();
        four.push(three[2]);

        // The ambiguity is real in the old scheme…
        assert_eq!(
            duplicate_last_root(&three),
            duplicate_last_root(&four),
            "old scheme must collide — otherwise this regression test tests nothing"
        );
        // …and gone in the promoting scheme.
        let t3 = MerkleTree::build(&three);
        let t4 = MerkleTree::build(&four);
        assert_ne!(t3.root(), t4.root(), "distinct leaf sets must get distinct roots");

        // Same check at a larger odd size (the ambiguity exists at
        // every level, not just the leaves): 5 vs 6-with-dup.
        let five = leaves(5);
        let mut six = five.clone();
        six.push(five[4]);
        assert_eq!(duplicate_last_root(&five), duplicate_last_root(&six));
        assert_ne!(MerkleTree::build(&five).root(), MerkleTree::build(&six).root());
    }

    #[test]
    fn promoted_node_proofs_skip_sibling_less_levels() {
        // Leaf 2 of a 3-leaf tree is promoted once: its proof has one
        // fewer element than the paired leaves' proofs, and still
        // verifies.
        let ls = leaves(3);
        let tree = MerkleTree::build(&ls);
        let p0 = tree.prove(0).unwrap();
        let p2 = tree.prove(2).unwrap();
        assert_eq!(p0.path.len(), 2);
        assert_eq!(p2.path.len(), 1, "promoted leaf skips the level it had no sibling on");
        assert!(p2.verify(ls[2], tree.root()));
    }
}
