//! Transactions, call arguments, receipts and event logs.

use crate::sha256::Sha256;
use crate::types::{Address, Fixed, Hash256, Wei};
use tradefl_runtime::codec::BytesMut;

/// A dynamically typed ABI value (the private chain's stand-in for
/// Ethereum ABI encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Signed 128-bit integer.
    I128(i128),
    /// Fixed-point number (settlement amounts, fractions).
    Fixed(Fixed),
    /// Account address.
    Addr(Address),
    /// Raw bytes (profile records, free-form payloads).
    Bytes(Vec<u8>),
    /// UTF-8 string (labels).
    Str(String),
}

impl Value {
    /// Extracts a `u64`, if that is the variant.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a [`Fixed`], if that is the variant.
    pub fn as_fixed(&self) -> Option<Fixed> {
        match self {
            Value::Fixed(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an [`Address`], if that is the variant.
    pub fn as_addr(&self) -> Option<Address> {
        match self {
            Value::Addr(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::U64(v) => {
                buf.put_u8(0);
                buf.put_u64(*v);
            }
            Value::I128(v) => {
                buf.put_u8(1);
                buf.put_i128(*v);
            }
            Value::Fixed(v) => {
                buf.put_u8(2);
                buf.put_i128(v.0);
            }
            Value::Addr(a) => {
                buf.put_u8(3);
                buf.put_slice(&a.0);
            }
            Value::Bytes(b) => {
                buf.put_u8(4);
                buf.put_u64(b.len() as u64);
                buf.put_slice(b);
            }
            Value::Str(s) => {
                buf.put_u8(5);
                buf.put_u64(s.len() as u64);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

/// What a transaction does.
#[derive(Debug, Clone, PartialEq)]
pub enum TxPayload {
    /// Plain value transfer (the attached `value` moves from sender to
    /// `to`).
    Transfer {
        /// Recipient.
        to: Address,
    },
    /// Contract function call; the attached `value` is deposited into
    /// the contract account before execution.
    Call {
        /// Target contract address.
        contract: Address,
        /// ABI function name (e.g. `"depositSubmit"`).
        function: String,
        /// Encoded arguments.
        args: Vec<Value>,
    },
}

/// A signed-in-spirit transaction (the private chain trusts the `from`
/// field; signature verification is out of scope, as in the paper's
/// prototype).
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Sender address.
    pub from: Address,
    /// Sender's account nonce (replay protection).
    pub nonce: u64,
    /// Wei attached to the payload.
    pub value: Wei,
    /// Gas limit for execution.
    pub gas_limit: u64,
    /// The action.
    pub payload: TxPayload,
}

impl Transaction {
    /// Deterministic transaction hash over all fields.
    pub fn hash(&self) -> Hash256 {
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(&self.from.0);
        buf.put_u64(self.nonce);
        buf.put_u128(self.value.0);
        buf.put_u64(self.gas_limit);
        match &self.payload {
            TxPayload::Transfer { to } => {
                buf.put_u8(0);
                buf.put_slice(&to.0);
            }
            TxPayload::Call { contract, function, args } => {
                buf.put_u8(1);
                buf.put_slice(&contract.0);
                buf.put_u64(function.len() as u64);
                buf.put_slice(function.as_bytes());
                buf.put_u64(args.len() as u64);
                for a in args {
                    a.encode(&mut buf);
                }
            }
        }
        let mut h = Sha256::new();
        h.update(&buf);
        Hash256(h.finalize())
    }
}

/// An event emitted by a contract during execution, persisted in the
/// block for traceability — the arbitration evidence of §III-F.
#[derive(Debug, Clone, PartialEq)]
pub struct Log {
    /// Emitting contract.
    pub contract: Address,
    /// Event name (e.g. `"PayoffTransferred"`).
    pub event: String,
    /// Structured fields.
    pub fields: Vec<(String, Value)>,
}

impl Log {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Result of executing one transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecStatus {
    /// Execution succeeded and state changes were committed.
    Success,
    /// Execution reverted; state changes were rolled back. Carries the
    /// revert reason.
    Reverted(String),
}

impl ExecStatus {
    /// Whether the transaction succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, ExecStatus::Success)
    }
}

/// Transaction receipt.
#[derive(Debug, Clone, PartialEq)]
pub struct Receipt {
    /// Hash of the transaction this receipt belongs to.
    pub tx_hash: Hash256,
    /// Success or revert.
    pub status: ExecStatus,
    /// Gas consumed.
    pub gas_used: u64,
    /// Events emitted (empty if reverted).
    pub logs: Vec<Log>,
    /// Values returned by a contract call.
    pub return_data: Vec<Value>,
}

impl Receipt {
    /// Deterministic digest over all receipt content (commits execution
    /// results — status, gas, logs, return data — into the block
    /// header's `receipts_root`).
    pub fn digest(&self) -> Hash256 {
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(&self.tx_hash.0);
        match &self.status {
            ExecStatus::Success => buf.put_u8(0),
            ExecStatus::Reverted(reason) => {
                buf.put_u8(1);
                buf.put_u64(reason.len() as u64);
                buf.put_slice(reason.as_bytes());
            }
        }
        buf.put_u64(self.gas_used);
        buf.put_u64(self.logs.len() as u64);
        for log in &self.logs {
            buf.put_slice(&log.contract.0);
            buf.put_u64(log.event.len() as u64);
            buf.put_slice(log.event.as_bytes());
            buf.put_u64(log.fields.len() as u64);
            for (k, v) in &log.fields {
                buf.put_u64(k.len() as u64);
                buf.put_slice(k.as_bytes());
                v.encode(&mut buf);
            }
        }
        buf.put_u64(self.return_data.len() as u64);
        for v in &self.return_data {
            v.encode(&mut buf);
        }
        let mut h = Sha256::new();
        h.update(&buf);
        Hash256(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx() -> Transaction {
        Transaction {
            from: Address::from_name("alice"),
            nonce: 1,
            value: Wei(100),
            gas_limit: 50_000,
            payload: TxPayload::Call {
                contract: Address::from_name("contract"),
                function: "depositSubmit".into(),
                args: vec![Value::U64(7), Value::Fixed(Fixed::from_f64(0.5))],
            },
        }
    }

    #[test]
    fn hash_is_deterministic_and_field_sensitive() {
        let a = sample_tx();
        let b = sample_tx();
        assert_eq!(a.hash(), b.hash());
        let mut c = sample_tx();
        c.nonce = 2;
        assert_ne!(a.hash(), c.hash());
        let mut d = sample_tx();
        if let TxPayload::Call { args, .. } = &mut d.payload {
            args[0] = Value::U64(8);
        }
        assert_ne!(a.hash(), d.hash());
    }

    #[test]
    fn transfer_and_call_hash_differently() {
        let call = sample_tx();
        let transfer = Transaction {
            payload: TxPayload::Transfer { to: Address::from_name("bob") },
            ..sample_tx()
        };
        assert_ne!(call.hash(), transfer.hash());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U64(3).as_u64(), Some(3));
        assert_eq!(Value::Str("x".into()).as_u64(), None);
        let a = Address::from_name("a");
        assert_eq!(Value::Addr(a).as_addr(), Some(a));
        assert_eq!(Value::Fixed(Fixed::ONE).as_fixed(), Some(Fixed::ONE));
    }

    #[test]
    fn log_field_lookup() {
        let log = Log {
            contract: Address::ZERO,
            event: "E".into(),
            fields: vec![("k".into(), Value::U64(1))],
        };
        assert_eq!(log.field("k"), Some(&Value::U64(1)));
        assert_eq!(log.field("missing"), None);
    }

    #[test]
    fn exec_status_success_flag() {
        assert!(ExecStatus::Success.is_success());
        assert!(!ExecStatus::Reverted("x".into()).is_success());
    }
}
