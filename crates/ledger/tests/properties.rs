//! Property-based tests for the ledger substrate: on-chain/off-chain
//! settlement agreement, exact budget balance in fixed point, hashing
//! robustness, and tamper detection.
//!
//! Runs on the in-tree `tradefl_runtime::check` harness with pinned
//! seeds; failures print a `TRADEFL_PROP_SEED` replay line.

use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::{Strategy, StrategyProfile};
use tradefl_ledger::settlement::SettlementSession;
use tradefl_ledger::sha256;
use tradefl_ledger::types::Fixed;
use tradefl_runtime::check::Gen;
use tradefl_runtime::{prop_assert, prop_assert_eq, props};

fn any_game(g: &mut Gen) -> CoopetitionGame<SqrtAccuracy> {
    let seed = g.u64(0..200);
    let n = g.usize(2..6);
    let mu = g.f64(0.01..0.2);
    let market = MarketConfig::table_ii()
        .with_orgs(n)
        .with_rho_mean(mu)
        .build(seed)
        .unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

fn profile_for(game: &CoopetitionGame<SqrtAccuracy>, ts: &[f64]) -> StrategyProfile {
    (0..game.market().len())
        .map(|i| {
            let level = game.market().org(i).compute_level_count() - 1;
            let (lo, hi) = game.market().feasible_range(i, level).unwrap();
            let t = ts[i % ts.len()];
            Strategy::new(lo + t * (hi - lo), level)
        })
        .collect()
}

props! {
    #![cases = 12]

    /// The on-chain redistribution matches Eq. (10) for random markets
    /// and contribution profiles, and the chain verifies afterwards.
    fn settlement_matches_offchain(g) {
        let game = any_game(g);
        let ts = g.vec(6..=6usize, |g| g.f64(0.0..=1.0));
        let profile = profile_for(&game, &ts);
        let session = SettlementSession::deploy(&game).unwrap();
        let report = session.settle(&game, &profile).unwrap();
        prop_assert!(report.consistent(1e-3), "max error {}", report.max_abs_error);
        // Exact integer budget balance on-chain.
        let sum_fixed: i128 = report
            .onchain_redistribution
            .iter()
            .map(|&r| Fixed::from_f64(r).0)
            .sum();
        prop_assert!(sum_fixed.abs() <= report.addresses.len() as i128);
        session.web3().verify_chain().unwrap();
    }

    /// SHA-256 streaming invariance: any chunking of the input produces
    /// the identical digest.
    fn sha256_chunking_invariance(g) {
        let data = g.vec(0..300usize, |g| g.any_u8());
        let cut_a = g.usize(0..300);
        let cut_b = g.usize(0..300);
        let whole = sha256::digest(&data);
        let (a, b) = (cut_a.min(data.len()), cut_b.min(data.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let mut h = sha256::Sha256::new();
        h.update(&data[..lo]);
        h.update(&data[lo..hi]);
        h.update(&data[hi..]);
        prop_assert_eq!(h.finalize(), whole);
    }

    /// Fixed-point round trips stay within quantization error.
    fn fixed_point_roundtrip(g) {
        let v = g.f64(-1e15..1e15);
        let f = Fixed::from_f64(v);
        prop_assert!((f.to_f64() - v).abs() <= 0.5 / Fixed::SCALE as f64 * v.abs().max(1.0) + 1e-9);
    }

    /// Chain export/import round-trips for chains of random transfers,
    /// and decoding any strict prefix fails.
    fn codec_roundtrip_random_chains(g) {
        use tradefl_ledger::codec::{decode_chain, encode_chain};
        use tradefl_ledger::node::Node;
        use tradefl_ledger::tx::{Transaction, TxPayload};
        use tradefl_ledger::types::{Address, Wei};

        let amounts = g.vec(1..8usize, |g| g.u64(1..1000) as u128);
        let cut_fraction = g.f64(0.05..0.95);

        let alice = Address::from_name("alice");
        let bob = Address::from_name("bob");
        let mut node = Node::new(&[(alice, Wei(1_000_000))]);
        for (k, &v) in amounts.iter().enumerate() {
            node.submit(Transaction {
                from: alice,
                nonce: k as u64,
                value: Wei(v),
                gas_limit: 21_000,
                payload: TxPayload::Transfer { to: bob },
            })
            .unwrap();
            node.mine();
        }
        let chain = node.chain().clone();
        let bytes = encode_chain(&chain);
        let decoded = decode_chain(&bytes).unwrap();
        prop_assert_eq!(&decoded, &chain);
        decoded.verify().unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(decode_chain(&bytes[..cut.min(bytes.len() - 1)]).is_err());
    }
}

// ---- wire-decoder fuzzing ----------------------------------------------
//
// The decoders sit on the untrusted side of the network boundary: a
// byzantine peer controls every byte they see. Two contracts, fuzzed
// below on the pinned-seed harness:
//
//  1. *No panic*: arbitrary bytes fed to every wire decoder (and to the
//     `runtime::codec` primitives underneath) return `Err`, never
//     panic, never read out of bounds.
//  2. *Round-trip identity*: every well-formed value survives
//     encode → decode unchanged.

mod wire_gen {
    use tradefl_ledger::chain::{Block, BlockHeader};
    use tradefl_ledger::tx::{ExecStatus, Log, Receipt, Transaction, TxPayload, Value};
    use tradefl_ledger::types::{Address, Fixed, Hash256, Wei};
    use tradefl_runtime::check::Gen;

    pub fn any_addr(g: &mut Gen) -> Address {
        let mut a = [0u8; 20];
        for b in &mut a {
            *b = g.any_u8();
        }
        Address(a)
    }

    pub fn any_hash(g: &mut Gen) -> Hash256 {
        let mut h = [0u8; 32];
        for b in &mut h {
            *b = g.any_u8();
        }
        Hash256(h)
    }

    pub fn any_string(g: &mut Gen) -> String {
        // Printable ASCII keeps the generator simple; UTF-8 handling is
        // covered by the runtime codec's own tests.
        let bytes = g.vec(0..12usize, |g| b' ' + g.any_u8() % 95);
        String::from_utf8(bytes).unwrap()
    }

    pub fn any_i128(g: &mut Gen) -> i128 {
        ((g.any_u64() as u128) << 64 | g.any_u64() as u128) as i128
    }

    pub fn any_value(g: &mut Gen) -> Value {
        match g.usize(0..6) {
            0 => Value::U64(g.any_u64()),
            1 => Value::I128(any_i128(g)),
            2 => Value::Fixed(Fixed(any_i128(g))),
            3 => Value::Addr(any_addr(g)),
            4 => Value::Bytes(g.vec(0..20usize, |g| g.any_u8())),
            _ => Value::Str(any_string(g)),
        }
    }

    pub fn any_tx(g: &mut Gen) -> Transaction {
        let payload = if g.bool(0.5) {
            TxPayload::Transfer { to: any_addr(g) }
        } else {
            TxPayload::Call {
                contract: any_addr(g),
                function: any_string(g),
                args: g.vec(0..4usize, any_value),
            }
        };
        Transaction {
            from: any_addr(g),
            nonce: g.any_u64(),
            value: Wei(g.any_u64() as u128),
            gas_limit: g.any_u64(),
            payload,
        }
    }

    pub fn any_receipt(g: &mut Gen) -> Receipt {
        Receipt {
            tx_hash: any_hash(g),
            status: if g.bool(0.5) {
                ExecStatus::Success
            } else {
                ExecStatus::Reverted(any_string(g))
            },
            gas_used: g.any_u64(),
            logs: g.vec(0..3usize, |g| Log {
                contract: any_addr(g),
                event: any_string(g),
                fields: g.vec(0..3usize, |g| (any_string(g), any_value(g))),
            }),
            return_data: g.vec(0..3usize, any_value),
        }
    }

    pub fn any_header(g: &mut Gen) -> BlockHeader {
        BlockHeader {
            number: g.any_u64(),
            parent: any_hash(g),
            timestamp: g.any_u64(),
            tx_root: any_hash(g),
            receipts_root: any_hash(g),
            state_root: any_hash(g),
        }
    }

    pub fn any_block(g: &mut Gen) -> Block {
        Block {
            header: any_header(g),
            txs: g.vec(0..3usize, any_tx),
            receipts: g.vec(0..3usize, any_receipt),
        }
    }
}

props! {
    #![cases = 64]

    /// Contract 1: arbitrary bytes into every ledger wire decoder
    /// return `Err` or a value — never a panic. (Any panic aborts the
    /// whole test, so simply invoking the decoders is the assertion.)
    fn wire_decoders_never_panic_on_arbitrary_bytes(g) {
        use tradefl_ledger::codec::{
            decode_block_bytes, decode_chain, decode_header_bytes,
            decode_receipt_bytes, decode_tx_bytes, decode_value_bytes,
        };
        let bytes = g.vec(0..600usize, |g| g.any_u8());
        let _ = decode_value_bytes(&bytes);
        let _ = decode_tx_bytes(&bytes);
        let _ = decode_receipt_bytes(&bytes);
        let _ = decode_header_bytes(&bytes);
        let _ = decode_block_bytes(&bytes);
        let _ = decode_chain(&bytes);
    }

    /// The `runtime::codec` primitives underneath the wire decoders
    /// uphold the same contract on raw bytes.
    fn runtime_codec_never_panics_on_arbitrary_bytes(g) {
        use tradefl_runtime::codec::ByteDecode;
        let bytes = g.vec(0..200usize, |g| g.any_u8());
        let _ = u64::decode_all(&bytes);
        let _ = i128::decode_all(&bytes);
        let _ = f64::decode_all(&bytes);
        let _ = bool::decode_all(&bytes);
        let _ = String::decode_all(&bytes);
        let _ = <Vec<u64>>::decode_all(&bytes);
        let _ = <Option<String>>::decode_all(&bytes);
        let _ = <Vec<Vec<u8>>>::decode_all(&bytes);
    }

    /// Contract 2: encode → decode is the identity on every wire type.
    fn wire_roundtrip_is_identity(g) {
        use tradefl_ledger::codec::{
            decode_block_bytes, decode_header_bytes, decode_receipt_bytes,
            decode_tx_bytes, decode_value_bytes, encode_block_bytes,
            encode_header_bytes, encode_receipt_bytes, encode_tx_bytes,
            encode_value_bytes,
        };
        use wire_gen::*;

        let v = any_value(g);
        prop_assert_eq!(decode_value_bytes(&encode_value_bytes(&v)).unwrap(), v);
        let tx = any_tx(g);
        prop_assert_eq!(decode_tx_bytes(&encode_tx_bytes(&tx)).unwrap(), tx);
        let r = any_receipt(g);
        prop_assert_eq!(decode_receipt_bytes(&encode_receipt_bytes(&r)).unwrap(), r);
        let h = any_header(g);
        prop_assert_eq!(decode_header_bytes(&encode_header_bytes(&h)).unwrap(), h);
        let b = any_block(g);
        prop_assert_eq!(decode_block_bytes(&encode_block_bytes(&b)).unwrap(), b);
    }

    /// Appending trailing garbage to a valid frame must flip the strict
    /// decoders to `Err(TrailingBytes)` — a frame is exactly one value.
    fn wire_decoders_reject_trailing_garbage(g) {
        use tradefl_ledger::codec::{decode_tx_bytes, encode_tx_bytes, CodecError};
        use wire_gen::*;

        let mut bytes = encode_tx_bytes(&any_tx(g));
        let extra = g.usize(1..9);
        bytes.extend((0..extra).map(|_| g.any_u8()));
        prop_assert!(matches!(
            decode_tx_bytes(&bytes),
            Err(CodecError::TrailingBytes(n)) if n == extra
        ));
    }
}

// ---- contract-ABI fuzzing through actual calls -------------------------
//
// The wire fuzz above stops at the decoders; the ABI dispatch behind
// them is its own untrusted boundary — any account can send any
// function name with any argument vector to a deployed contract. Fuzz
// that boundary *through real transactions*: deploy the settlement
// contract on a node, submit adversarial calls, mine, and require that
// every outcome is a receipt (Success or Reverted) or a mempool
// rejection — never a panic, and never a chain that fails verification.

mod abi_gen {
    use tradefl_ledger::node::Node;
    use tradefl_ledger::tradefl_contract::{SessionParams, TradeFlContract};
    use tradefl_ledger::types::{Address, Fixed, Wei};

    /// Every function name the contract dispatches, plus `"__missing"`
    /// to exercise the unknown-selector path.
    pub const ABI_FUNCTIONS: &[&str] = &[
        "register",
        "depositSubmit",
        "contributionSubmit",
        "payoffCalculate",
        "payoffTransfer",
        "profileRecord",
        "phase",
        "redistributionOf",
        "__missing",
    ];

    pub const DEPOSIT: u128 = 1_000_000;

    /// A fresh single node with a 3-org settlement contract deployed.
    pub fn session_node() -> (Node, Address, Vec<Address>) {
        let orgs: Vec<Address> =
            (0..3).map(|i| Address::from_name(&format!("org-{i}"))).collect();
        let allocations: Vec<(Address, Wei)> =
            orgs.iter().map(|&a| (a, Wei(10_000_000))).collect();
        let mut node = Node::new(&allocations);
        let params = SessionParams {
            participants: orgs.clone(),
            gamma_per_gbit: Fixed::from_f64(5.12),
            lambda: Fixed::from_f64(3.0),
            rho: vec![
                vec![Fixed::ZERO, Fixed::from_f64(0.1), Fixed::from_f64(0.1)],
                vec![Fixed::from_f64(0.1), Fixed::ZERO, Fixed::from_f64(0.1)],
                vec![Fixed::from_f64(0.1), Fixed::from_f64(0.1), Fixed::ZERO],
            ],
            s_gbits: vec![Fixed::from_f64(20.0); 3],
            required_deposit: Wei(DEPOSIT),
            wei_per_payoff_unit: 1_000,
            attestation_key: None,
        };
        let contract = node.deploy(Box::new(TradeFlContract::new(params).unwrap()));
        (node, contract, orgs)
    }
}

props! {
    #![cases = 48]

    /// Arbitrary `(function, args, value)` call transactions against a
    /// deployed contract always terminate in a receipt or a mempool
    /// rejection — never a panic — and the chain still verifies.
    fn abi_dispatch_never_panics_on_arbitrary_calls(g) {
        use abi_gen::*;
        use tradefl_ledger::tx::{Transaction, TxPayload};
        use tradefl_ledger::types::Wei;
        use wire_gen::any_value;

        let (mut node, contract, orgs) = session_node();
        let mut nonces = vec![0u64; orgs.len()];
        let calls = g.usize(1..8);
        for _ in 0..calls {
            let who = g.usize(0..orgs.len());
            let function = ABI_FUNCTIONS[g.usize(0..ABI_FUNCTIONS.len())];
            let args = g.vec(0..5usize, any_value);
            // Sometimes attach the exact deposit, sometimes junk wei.
            let value = match g.usize(0..3) {
                0 => Wei::ZERO,
                1 => Wei(DEPOSIT),
                _ => Wei(g.u64(0..2_000_000) as u128),
            };
            let tx = Transaction {
                from: orgs[who],
                nonce: nonces[who],
                value,
                gas_limit: 10_000_000,
                payload: TxPayload::Call {
                    contract,
                    function: function.into(),
                    args,
                },
            };
            let hash = tx.hash();
            if node.submit(tx).is_ok() {
                nonces[who] += 1;
                node.mine();
                prop_assert!(node.receipt(hash).is_some(), "mined tx must have a receipt");
            }
        }
        node.chain().verify().unwrap();
    }

    /// The read-only view path upholds the same contract: any function
    /// name and argument vector returns a `Result`, never panics, and
    /// never mutates state.
    fn abi_views_never_panic_and_never_mutate(g) {
        use abi_gen::*;
        use wire_gen::{any_addr, any_value};

        let (node, contract, orgs) = session_node();
        let root_before = node.state().root();
        for _ in 0..g.usize(1..10) {
            let caller = if g.bool(0.7) { orgs[g.usize(0..orgs.len())] } else { any_addr(g) };
            let function = ABI_FUNCTIONS[g.usize(0..ABI_FUNCTIONS.len())];
            let args = g.vec(0..5usize, any_value);
            let _ = node.call_view(contract, caller, function, &args);
        }
        prop_assert_eq!(node.state().root(), root_before);
    }

    /// Every malformed `contributionSubmit` argument vector — wrong
    /// arity or wrong types — reverts instead of panicking or being
    /// silently accepted, even when the session is in exactly the phase
    /// that accepts contributions.
    fn malformed_contribution_vectors_always_revert(g) {
        use abi_gen::*;
        use tradefl_ledger::tx::{ExecStatus, Transaction, TxPayload, Value};
        use tradefl_ledger::types::Wei;
        use wire_gen::any_value;

        let (mut node, contract, orgs) = session_node();
        // Drive the session to the Contribution phase legitimately.
        let call = |from, nonce, function: &str, args, value| Transaction {
            from,
            nonce,
            value,
            gas_limit: 10_000_000,
            payload: TxPayload::Call { contract, function: function.into(), args },
        };
        for &o in &orgs {
            node.submit(call(o, 0, "register", vec![], Wei::ZERO)).unwrap();
        }
        node.mine();
        for &o in &orgs {
            node.submit(call(o, 1, "depositSubmit", vec![], Wei(DEPOSIT))).unwrap();
        }
        node.mine();
        let phase = node.call_view(contract, orgs[0], "phase", &[]).unwrap();
        prop_assert_eq!(&phase, &vec![Value::U64(2)]);

        // A malformed vector: either wrong arity, or a well-arity
        // vector whose first slot is forced to a non-Fixed type.
        let mut args = g.vec(0..5usize, any_value);
        let shape_ok = matches!(
            args.as_slice(),
            [Value::Fixed(_), Value::Fixed(_)] | [Value::Fixed(_), Value::Fixed(_), Value::Bytes(_)]
        );
        if shape_ok || matches!(args.first(), Some(Value::Fixed(_))) {
            // Guarantee malformation without disturbing the rest.
            match args.first_mut() {
                Some(first) => *first = Value::Str("not-a-fixed".into()),
                None => {}
            }
        }
        let tx = call(orgs[0], 2, "contributionSubmit", args, Wei::ZERO);
        let hash = tx.hash();
        node.submit(tx).unwrap();
        node.mine();
        let receipt = node.receipt(hash).expect("mined tx has a receipt");
        prop_assert!(
            matches!(receipt.status, ExecStatus::Reverted(_)),
            "malformed vector must revert, got {:?}",
            receipt.status
        );
        // And a well-formed contribution still goes through afterwards.
        let good = call(
            orgs[0],
            3,
            "contributionSubmit",
            vec![
                Value::Fixed(tradefl_ledger::types::Fixed::from_f64(0.4)),
                Value::Fixed(tradefl_ledger::types::Fixed::from_f64(3.0)),
            ],
            Wei::ZERO,
        );
        let good_hash = good.hash();
        node.submit(good).unwrap();
        node.mine();
        prop_assert!(matches!(
            node.receipt(good_hash).unwrap().status,
            ExecStatus::Success
        ));
    }
}
