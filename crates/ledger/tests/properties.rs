//! Property-based tests for the ledger substrate: on-chain/off-chain
//! settlement agreement, exact budget balance in fixed point, hashing
//! robustness, and tamper detection.
//!
//! Runs on the in-tree `tradefl_runtime::check` harness with pinned
//! seeds; failures print a `TRADEFL_PROP_SEED` replay line.

use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::{Strategy, StrategyProfile};
use tradefl_ledger::settlement::SettlementSession;
use tradefl_ledger::sha256;
use tradefl_ledger::types::Fixed;
use tradefl_runtime::check::Gen;
use tradefl_runtime::{prop_assert, prop_assert_eq, props};

fn any_game(g: &mut Gen) -> CoopetitionGame<SqrtAccuracy> {
    let seed = g.u64(0..200);
    let n = g.usize(2..6);
    let mu = g.f64(0.01..0.2);
    let market = MarketConfig::table_ii()
        .with_orgs(n)
        .with_rho_mean(mu)
        .build(seed)
        .unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

fn profile_for(game: &CoopetitionGame<SqrtAccuracy>, ts: &[f64]) -> StrategyProfile {
    (0..game.market().len())
        .map(|i| {
            let level = game.market().org(i).compute_level_count() - 1;
            let (lo, hi) = game.market().feasible_range(i, level).unwrap();
            let t = ts[i % ts.len()];
            Strategy::new(lo + t * (hi - lo), level)
        })
        .collect()
}

props! {
    #![cases = 12]

    /// The on-chain redistribution matches Eq. (10) for random markets
    /// and contribution profiles, and the chain verifies afterwards.
    fn settlement_matches_offchain(g) {
        let game = any_game(g);
        let ts = g.vec(6..=6usize, |g| g.f64(0.0..=1.0));
        let profile = profile_for(&game, &ts);
        let session = SettlementSession::deploy(&game).unwrap();
        let report = session.settle(&game, &profile).unwrap();
        prop_assert!(report.consistent(1e-3), "max error {}", report.max_abs_error);
        // Exact integer budget balance on-chain.
        let sum_fixed: i128 = report
            .onchain_redistribution
            .iter()
            .map(|&r| Fixed::from_f64(r).0)
            .sum();
        prop_assert!(sum_fixed.abs() <= report.addresses.len() as i128);
        session.web3().verify_chain().unwrap();
    }

    /// SHA-256 streaming invariance: any chunking of the input produces
    /// the identical digest.
    fn sha256_chunking_invariance(g) {
        let data = g.vec(0..300usize, |g| g.any_u8());
        let cut_a = g.usize(0..300);
        let cut_b = g.usize(0..300);
        let whole = sha256::digest(&data);
        let (a, b) = (cut_a.min(data.len()), cut_b.min(data.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let mut h = sha256::Sha256::new();
        h.update(&data[..lo]);
        h.update(&data[lo..hi]);
        h.update(&data[hi..]);
        prop_assert_eq!(h.finalize(), whole);
    }

    /// Fixed-point round trips stay within quantization error.
    fn fixed_point_roundtrip(g) {
        let v = g.f64(-1e15..1e15);
        let f = Fixed::from_f64(v);
        prop_assert!((f.to_f64() - v).abs() <= 0.5 / Fixed::SCALE as f64 * v.abs().max(1.0) + 1e-9);
    }

    /// Chain export/import round-trips for chains of random transfers,
    /// and decoding any strict prefix fails.
    fn codec_roundtrip_random_chains(g) {
        use tradefl_ledger::codec::{decode_chain, encode_chain};
        use tradefl_ledger::node::Node;
        use tradefl_ledger::tx::{Transaction, TxPayload};
        use tradefl_ledger::types::{Address, Wei};

        let amounts = g.vec(1..8usize, |g| g.u64(1..1000) as u128);
        let cut_fraction = g.f64(0.05..0.95);

        let alice = Address::from_name("alice");
        let bob = Address::from_name("bob");
        let mut node = Node::new(&[(alice, Wei(1_000_000))]);
        for (k, &v) in amounts.iter().enumerate() {
            node.submit(Transaction {
                from: alice,
                nonce: k as u64,
                value: Wei(v),
                gas_limit: 21_000,
                payload: TxPayload::Transfer { to: bob },
            })
            .unwrap();
            node.mine();
        }
        let chain = node.chain().clone();
        let bytes = encode_chain(&chain);
        let decoded = decode_chain(&bytes).unwrap();
        prop_assert_eq!(&decoded, &chain);
        decoded.verify().unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(decode_chain(&bytes[..cut.min(bytes.len() - 1)]).is_err());
    }
}
