//! Ledger benchmarks: hashing throughput, transfer execution, full
//! settlement cost (the prototype-scale measurements of §VI).

use tradefl_runtime::bench::{BenchmarkId, Criterion, Throughput};
use tradefl_runtime::{bench_group, bench_main};
use std::hint::black_box;
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::StrategyProfile;
use tradefl_ledger::node::Node;
use tradefl_ledger::settlement::SettlementSession;
use tradefl_ledger::sha256;
use tradefl_ledger::tx::{Transaction, TxPayload};
use tradefl_ledger::types::{Address, Wei};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(sha256::digest(&data)));
        });
    }
    group.finish();
}

fn bench_transfer_block(c: &mut Criterion) {
    let alice = Address::from_name("alice");
    let bob = Address::from_name("bob");
    let mut group = c.benchmark_group("mine_block_with_transfers");
    group.sample_size(20);
    for count in [10usize, 100] {
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, &count| {
            b.iter(|| {
                let mut node = Node::new(&[(alice, Wei(1_000_000_000))]);
                for k in 0..count {
                    node.submit(Transaction {
                        from: alice,
                        nonce: k as u64,
                        value: Wei(1),
                        gas_limit: 21_000,
                        payload: TxPayload::Transfer { to: bob },
                    })
                    .unwrap();
                }
                black_box(node.mine())
            });
        });
    }
    group.finish();
}

fn bench_full_settlement(c: &mut Criterion) {
    let mut group = c.benchmark_group("settlement_end_to_end");
    group.sample_size(10);
    for n in [3usize, 5, 10] {
        let market = MarketConfig::table_ii().with_orgs(n).build(3).unwrap();
        let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let profile = StrategyProfile::minimal(game.market());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let session = SettlementSession::deploy(&game).unwrap();
                black_box(session.settle(&game, &profile).unwrap().total_gas)
            });
        });
    }
    group.finish();
}

bench_group!(benches, bench_sha256, bench_transfer_block, bench_full_settlement);
bench_main!(benches);
