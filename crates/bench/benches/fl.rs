//! Federated-training substrate benchmarks: per-round cost and the
//! Fig. 2 probe machinery.

use tradefl_runtime::bench::{BenchmarkId, Criterion};
use tradefl_runtime::{bench_group, bench_main};
use std::hint::black_box;
use tradefl_fl_sim::data::{generate, DatasetKind};
use tradefl_fl_sim::fed::{train_federated, FedConfig};
use tradefl_fl_sim::model::{Mlp, ModelKind};
use tradefl_fl_sim::probe::{ProbePoint, SqrtFit};

fn bench_fed_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedavg_one_round");
    group.sample_size(10);
    for &model in &[ModelKind::MobilenetLike, ModelKind::Resnet18Like] {
        let pool = generate(DatasetKind::Cifar10Like, 4400, 1);
        let mut shards = pool.shard(&[1000, 1000, 1000, 1000, 400]);
        let test = shards.pop().unwrap();
        let config = FedConfig { rounds: 1, local_epochs: 1, batch_size: 32, lr: 0.1, seed: 1 };
        group.bench_with_input(
            BenchmarkId::from_parameter(model.label()),
            &model,
            |b, &model| {
                b.iter(|| {
                    let global = Mlp::for_kind(model, test.dim(), test.classes, 1);
                    black_box(
                        train_federated(global, &shards, &test, &[1.0; 4], &config)
                            .unwrap()
                            .final_loss(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_sqrt_fit(c: &mut Criterion) {
    let pts: Vec<ProbePoint> = (1..50)
        .map(|k| {
            let x = 100 * k * k;
            ProbePoint { samples: x, accuracy: 0.9 - 2.0 / (x as f64).sqrt() }
        })
        .collect();
    c.bench_function("sqrt_fit_50_points", |b| {
        b.iter(|| black_box(SqrtFit::fit(&pts)));
    });
}

fn bench_inference(c: &mut Criterion) {
    let data = generate(DatasetKind::Cifar10Like, 2000, 2);
    let model = Mlp::for_kind(ModelKind::Resnet18Like, data.dim(), data.classes, 3);
    c.bench_function("evaluate_2000_samples", |b| {
        b.iter(|| black_box(model.evaluate(&data)));
    });
}

bench_group!(benches, bench_fed_round, bench_sqrt_fit, bench_inference);
bench_main!(benches);
