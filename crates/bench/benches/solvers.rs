//! Solver benchmarks backing the paper's complexity claims.
//!
//! * Lemma 4: CGBD is `O(I·m^|N|)` — exponential in `|N|` with the
//!   traversal master (measured on tiny markets).
//! * §V-D / Theorem 2 (computational efficiency): DBR is
//!   `O(T·L·|N|·m)` — polynomial; wall time must grow mildly with `|N|`.

use tradefl_runtime::bench::{BenchmarkId, Criterion};
use tradefl_runtime::{bench_group, bench_main};
use std::hint::black_box;
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::StrategyProfile;
use tradefl_solver::bestresponse::{best_response, Objective};
use tradefl_solver::cgbd::{CgbdOptions, CgbdSolver};
use tradefl_solver::dbr::DbrSolver;
use tradefl_solver::gbd::MasterSearch;

fn game(n: usize) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().with_orgs(n).build(7).unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

fn bench_dbr_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbr_scaling");
    group.sample_size(10);
    for n in [4usize, 8, 12, 16] {
        let g = game(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(DbrSolver::new().solve(&g).unwrap().welfare));
        });
    }
    group.finish();
}

fn bench_cgbd_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cgbd_traversal_scaling");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let g = game(n);
        let options = CgbdOptions {
            master: MasterSearch::Traversal { cap: 4_000_000 },
            max_iters: 20,
            ..CgbdOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    CgbdSolver::with_options(options.clone())
                        .solve(&g)
                        .unwrap()
                        .equilibrium
                        .potential,
                )
            });
        });
    }
    group.finish();
}

fn bench_best_response(c: &mut Criterion) {
    let g = game(10);
    let profile = StrategyProfile::minimal(g.market());
    c.bench_function("best_response_single_org", |b| {
        b.iter(|| black_box(best_response(&g, &profile, 0, Objective::Full)));
    });
}

fn bench_payoff_evaluation(c: &mut Criterion) {
    let g = game(10);
    let profile = StrategyProfile::minimal(g.market());
    c.bench_function("payoff_eq11_single_org", |b| {
        b.iter(|| black_box(g.payoff(&profile, 0)));
    });
    c.bench_function("potential_eq15_full_profile", |b| {
        b.iter(|| black_box(g.potential(&profile)));
    });
}

bench_group!(
    benches,
    bench_dbr_scaling,
    bench_cgbd_scaling,
    bench_best_response,
    bench_payoff_evaluation
);
bench_main!(benches);
