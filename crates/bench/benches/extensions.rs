//! Benchmarks for the beyond-the-paper extensions: consensus rounds,
//! the social-optimum solver, asynchronous training and attestation.

use tradefl_runtime::bench::{BenchmarkId, Criterion};
use tradefl_runtime::{bench_group, bench_main};
use std::hint::black_box;
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_fl_sim::async_fed::{train_async, AsyncConfig, OrgTiming};
use tradefl_fl_sim::data::{dirichlet_shard, generate, DatasetKind};
use tradefl_fl_sim::model::{Mlp, ModelKind};
use tradefl_ledger::attestation::Enclave;
use tradefl_ledger::network::Network;
use tradefl_ledger::tx::{Transaction, TxPayload};
use tradefl_ledger::types::{Address, Fixed, Wei};
use tradefl_solver::social::{solve_social_optimum, SocialOptions};

fn bench_network_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_consensus_round");
    group.sample_size(20);
    for validators in [3usize, 7] {
        group.bench_with_input(
            BenchmarkId::from_parameter(validators),
            &validators,
            |b, &validators| {
                b.iter(|| {
                    let names: Vec<String> =
                        (0..validators).map(|i| format!("v{i}")).collect();
                    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    let mut net = Network::new(
                        &refs,
                        &[(Address::from_name("a"), Wei(1_000_000))],
                    );
                    for k in 0..10 {
                        net.submit(Transaction {
                            from: Address::from_name("a"),
                            nonce: k,
                            value: Wei(1),
                            gas_limit: 21_000,
                            payload: TxPayload::Transfer { to: Address::from_name("b") },
                        });
                        net.round().unwrap();
                    }
                    black_box(net.converged())
                });
            },
        );
    }
    group.finish();
}

fn bench_social_optimum(c: &mut Criterion) {
    let mut group = c.benchmark_group("social_optimum");
    group.sample_size(10);
    for n in [4usize, 8] {
        let market = MarketConfig::table_ii().with_orgs(n).build(5).unwrap();
        let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    solve_social_optimum(&game, SocialOptions::default())
                        .unwrap()
                        .welfare,
                )
            });
        });
    }
    group.finish();
}

fn bench_async_round(c: &mut Criterion) {
    let pool = generate(DatasetKind::EurosatLike, 1200, 1);
    let shards = dirichlet_shard(&pool.take(800), &[400, 400], 1.0, 1);
    let test = pool.shard(&[800, 400]).pop().unwrap();
    let timings =
        vec![OrgTiming { comm: 5.0, compute: 20.0 }, OrgTiming { comm: 5.0, compute: 60.0 }];
    c.bench_function("async_20_updates", |b| {
        b.iter(|| {
            let global = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 1);
            black_box(
                train_async(
                    global,
                    &shards,
                    &test,
                    &[1.0, 1.0],
                    &timings,
                    &AsyncConfig { updates: 20, ..AsyncConfig::default() },
                )
                .unwrap()
                .final_accuracy(),
            )
        });
    });
}

fn bench_attestation(c: &mut Criterion) {
    let enclave = Enclave::from_label("bench");
    let org = Address::from_name("org");
    c.bench_function("attest_and_verify", |b| {
        b.iter(|| {
            let att = enclave.attest(org, Fixed::from_f64(0.5), Fixed::from_f64(3.0));
            black_box(tradefl_ledger::attestation::verify(
                &enclave.verification_key(),
                org,
                Fixed::from_f64(0.5),
                Fixed::from_f64(3.0),
                &att,
            ))
        });
    });
}

bench_group!(
    benches,
    bench_network_round,
    bench_social_optimum,
    bench_async_round,
    bench_attestation
);
bench_main!(benches);
