//! Ablation benchmarks for the design choices DESIGN.md §8 calls out:
//!
//! * master problem: exhaustive traversal vs coordinate descent;
//! * primal solver: interior point vs projected gradient;
//! * DBR update order: round-robin vs shuffled.
//!
//! Quality deltas (not just timing) are asserted in the test suites;
//! here we measure the cost side of each trade-off.

use tradefl_runtime::bench::Criterion;
use tradefl_runtime::{bench_group, bench_main};
use std::collections::BTreeSet;
use std::hint::black_box;
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_solver::dbr::{DbrOptions, DbrSolver, UpdateOrder};
use tradefl_solver::gbd::{solve_master, Cut, MasterSearch};
use tradefl_solver::primal::PrimalProblem;

fn game(n: usize) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().with_orgs(n).build(11).unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

fn bench_master_modes(c: &mut Criterion) {
    let g = game(6); // 4^6 = 4096 combinations: traversal still feasible
    let levels: Vec<usize> = vec![3; 6];
    let sol = PrimalProblem::new(&g, &levels).solve(1e-9).unwrap();
    let cuts = vec![
        Cut::optimality(&g, sol.d.clone(), sol.multipliers.clone()),
        Cut::optimality(&g, vec![0.2; 6], vec![0.0; 6]),
    ];
    let visited = BTreeSet::new();
    let mut group = c.benchmark_group("master_problem");
    group.sample_size(20);
    group.bench_function("traversal_4096", |b| {
        b.iter(|| {
            black_box(
                solve_master(&g, &cuts, MasterSearch::Traversal { cap: 10_000 }, &visited)
                    .unwrap()
                    .phi,
            )
        });
    });
    group.bench_function("coordinate_descent", |b| {
        b.iter(|| {
            black_box(
                solve_master(
                    &g,
                    &cuts,
                    MasterSearch::CoordinateDescent { restarts: 8, max_sweeps: 20, seed: 1 },
                    &visited,
                )
                .unwrap()
                .phi,
            )
        });
    });
    group.finish();
}

fn bench_primal_modes(c: &mut Criterion) {
    let g = game(10);
    let levels: Vec<usize> = vec![3; 10];
    let prob = PrimalProblem::new(&g, &levels);
    let mut group = c.benchmark_group("primal_problem");
    group.sample_size(20);
    group.bench_function("interior_point", |b| {
        b.iter(|| black_box(prob.solve(1e-9).unwrap().value));
    });
    group.bench_function("projected_gradient", |b| {
        b.iter(|| black_box(prob.solve_projected(1e-8, 20_000).unwrap().value));
    });
    group.finish();
}

fn bench_dbr_orders(c: &mut Criterion) {
    let g = game(10);
    let mut group = c.benchmark_group("dbr_update_order");
    group.sample_size(20);
    group.bench_function("round_robin", |b| {
        b.iter(|| black_box(DbrSolver::new().solve(&g).unwrap().iterations));
    });
    group.bench_function("shuffled", |b| {
        b.iter(|| {
            black_box(
                DbrSolver::with_options(DbrOptions {
                    order: UpdateOrder::Shuffled { seed: 3 },
                    ..DbrOptions::default()
                })
                .solve(&g)
                .unwrap()
                .iterations,
            )
        });
    });
    group.finish();
}

bench_group!(benches, bench_master_modes, bench_primal_modes, bench_dbr_orders);
bench_main!(benches);
