//! Batched wall-clock measurement shared by the baseline recorders
//! (`perf_baseline`, `gemm_baseline`).
//!
//! Sub-millisecond workloads timed one call per sample are dominated
//! by scheduler and timer noise — the recorded dbr_solve "0.917x
//! pooled regression" was exactly that: two bit-identical code paths
//! ~77µs apart on a one-call clock. [`time_ms`] therefore batches
//! calls until every sample spans at least [`MIN_SAMPLE_MS`] and
//! reports the per-call median.

use std::time::Instant;

/// Every timing sample spans at least this long (milliseconds).
pub const MIN_SAMPLE_MS: f64 = 2.0;

/// Median of a non-empty sample set, in place.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `work` and returns the per-call median in milliseconds: one
/// warmup call doubles as a calibration probe sizing an inner batch so
/// each of the `repeats` samples spans at least [`MIN_SAMPLE_MS`].
pub fn time_ms(repeats: usize, mut work: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    work();
    let probe_ms = t0.elapsed().as_secs_f64() * 1e3;
    let batch = ((MIN_SAMPLE_MS / probe_ms.max(1e-6)).ceil() as usize).clamp(1, 10_000);
    let samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                work();
            }
            t0.elapsed().as_secs_f64() * 1e3 / batch as f64
        })
        .collect();
    median_ms(samples)
}

/// Times several workloads with their samples interleaved round-robin
/// (`w0, w1, …, wN, w0, w1, …`) and returns each workload's per-call
/// median in milliseconds.
///
/// Use this instead of back-to-back [`time_ms`] calls when the
/// measurements will be *compared against each other* (speedup
/// ratios): on a shared host, slow periods spanning many milliseconds
/// hit whichever workload happens to be running, and disjoint
/// measurement windows let such a period land entirely on one side of
/// the ratio. Interleaving spreads every slow period across all
/// workloads, so the medians drift together and the ratio stays
/// honest. Batch sizes are calibrated per workload exactly as in
/// [`time_ms`].
pub fn time_interleaved_ms(repeats: usize, workloads: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let batches: Vec<usize> = workloads
        .iter_mut()
        .map(|work| {
            let t0 = Instant::now();
            work();
            let probe_ms = t0.elapsed().as_secs_f64() * 1e3;
            ((MIN_SAMPLE_MS / probe_ms.max(1e-6)).ceil() as usize).clamp(1, 10_000)
        })
        .collect();
    let mut samples = vec![Vec::with_capacity(repeats.max(1)); workloads.len()];
    for _ in 0..repeats.max(1) {
        for ((work, &batch), out) in workloads.iter_mut().zip(&batches).zip(&mut samples) {
            let t0 = Instant::now();
            for _ in 0..batch {
                work();
            }
            out.push(t0.elapsed().as_secs_f64() * 1e3 / batch as f64);
        }
    }
    samples.into_iter().map(median_ms).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_picks_the_middle_sample() {
        assert_eq!(median_ms(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_ms(vec![5.0]), 5.0);
    }

    #[test]
    fn time_ms_batches_fast_work_into_trustworthy_samples() {
        let mut calls = 0usize;
        let ms = time_ms(3, || calls += 1);
        assert!(ms >= 0.0);
        // A ~ns workload must have been batched well past one call per
        // sample (capped at 10_000 per batch, 3 samples + 1 warmup).
        assert!(calls > 3, "batching never engaged: {calls} calls");
    }

    #[test]
    fn interleaved_timing_measures_every_workload() {
        let mut a_calls = 0usize;
        let mut b_calls = 0usize;
        let mut a = || a_calls += 1;
        let mut b = || b_calls += 1;
        let medians = time_interleaved_ms(3, &mut [&mut a, &mut b]);
        assert_eq!(medians.len(), 2);
        assert!(medians.iter().all(|&ms| ms >= 0.0));
        assert!(a_calls > 3 && b_calls > 3, "batching never engaged: {a_calls}/{b_calls}");
    }
}
