//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! ICDCS 2023 TradeFL paper (see DESIGN.md §4 for the index) and prints
//! the same rows/series the paper reports, plus a `shape-check` section
//! asserting the qualitative claims (who wins, where the crossovers
//! fall). `EXPERIMENTS.md` records paper-vs-measured for each.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;

pub mod json;
pub mod timing;

/// The seed every figure binary uses (reproducibility).
pub const SEED: u64 = 42;

/// The γ sweep grid used by Figs. 7-12 (log-spaced around
/// `γ* = 5.12e-9`).
pub const GAMMA_GRID: [f64; 9] =
    [0.0, 1e-9, 2e-9, 3.5e-9, 5.12e-9, 1e-8, 2e-8, 5e-8, 1e-7];

/// The paper's optimal incentive intensity (Fig. 10).
pub const GAMMA_STAR: f64 = 5.12e-9;

/// Builds the Table II game at the default operating point.
pub fn paper_game(seed: u64) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().build(seed).expect("table-ii builds");
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

/// Builds the Table II game with overrides for the sweep axes.
pub fn game_with(
    gamma: f64,
    rho_mean: f64,
    omega_e: f64,
    seed: u64,
) -> CoopetitionGame<SqrtAccuracy> {
    let mut config = MarketConfig::table_ii().with_rho_mean(rho_mean);
    config.params.gamma = gamma;
    config.params.omega_e = omega_e;
    let market = config.build(seed).expect("table-ii builds");
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

/// Trains the federated global model at the data fractions a scheme's
/// equilibrium prescribes (Figs. 12-15): shards are sized by each
/// organization's `|S_i|`, `fractions[i] = d_i*`.
pub fn train_at_equilibrium(
    game: &CoopetitionGame<SqrtAccuracy>,
    fractions: &[f64],
    model: tradefl_fl_sim::model::ModelKind,
    dataset: tradefl_fl_sim::data::DatasetKind,
    config: &tradefl_fl_sim::fed::FedConfig,
    test_samples: usize,
    seed: u64,
) -> tradefl_fl_sim::fed::FedOutcome {
    use tradefl_fl_sim::data::generate;
    use tradefl_fl_sim::fed::train_federated;
    use tradefl_fl_sim::model::Mlp;

    let market = game.market();
    let mut sizes: Vec<usize> = market.orgs().iter().map(|o| o.samples()).collect();
    let total: usize = sizes.iter().sum();
    sizes.push(test_samples);
    let pool = generate(dataset, total + test_samples, seed ^ 0xda7a);
    let mut shards = pool.shard(&sizes);
    let test = shards.pop().expect("test shard present");
    let global = Mlp::for_kind(model, test.dim(), test.classes, seed ^ 0x0de1);
    train_federated(global, &shards, &test, fractions, config)
        .expect("training at a validated equilibrium succeeds")
}

/// Shared driver for Figs. 13-14: per-round global-model loss for all
/// schemes' equilibrium contributions on one model×dataset pair, with
/// the paper's shape checks. Exits non-zero if a check fails.
pub fn run_loss_figure(
    figure: &str,
    model: tradefl_fl_sim::model::ModelKind,
    dataset: tradefl_fl_sim::data::DatasetKind,
) {
    use tradefl_fl_sim::fed::FedConfig;
    use tradefl_solver::baselines::solve_scheme;
    use tradefl_solver::outcome::Scheme;

    let game = paper_game(SEED);
    let schemes = [Scheme::Dbr, Scheme::Fip, Scheme::Wpr, Scheme::Gca, Scheme::Tos];
    let fed = FedConfig { rounds: 12, local_epochs: 1, batch_size: 32, lr: 0.1, seed: SEED };

    let mut histories = Vec::new();
    for &scheme in &schemes {
        let eq = solve_scheme(&game, scheme).expect("scheme solves");
        let fr: Vec<f64> = (0..game.market().len()).map(|i| eq.profile[i].d).collect();
        let outcome = train_at_equilibrium(&game, &fr, model, dataset, &fed, 1500, SEED);
        histories.push(outcome.history);
    }

    let mut table = Table::new(
        format!("{figure}: global-model test loss per round ({model} on {dataset})"),
        &["round", "DBR", "FIP", "WPR", "GCA", "TOS"],
    );
    for round in 0..histories[0].len() {
        let mut row = vec![round.to_string()];
        for h in &histories {
            row.push(format!("{:.4}", h[round].loss));
        }
        table.row(row);
    }
    table.print();

    let final_loss: Vec<f32> = histories.iter().map(|h| h.last().unwrap().loss).collect();
    let final_acc: Vec<f32> = histories.iter().map(|h| h.last().unwrap().accuracy).collect();
    let mut summary = Table::new("final round", &["scheme", "loss", "accuracy"]);
    for (k, &scheme) in schemes.iter().enumerate() {
        summary.row(vec![
            scheme.label().into(),
            format!("{:.4}", final_loss[k]),
            format!("{:.4}", final_acc[k]),
        ]);
    }
    summary.print();

    let mut ok = true;
    ok &= check(
        "every scheme's loss decreases over training",
        histories.iter().all(|h| h.last().unwrap().loss < h[0].loss),
    );
    ok &= check(
        &format!("DBR beats WPR on final loss ({:.3} < {:.3})", final_loss[0], final_loss[2]),
        final_loss[0] < final_loss[2],
    );
    ok &= check(
        &format!("DBR beats GCA on final loss ({:.3} < {:.3})", final_loss[0], final_loss[3]),
        final_loss[0] < final_loss[3],
    );
    ok &= check(
        &format!("DBR tracks TOS closely (loss gap {:.3})", (final_loss[0] - final_loss[4]).abs()),
        final_loss[0] <= final_loss[4] + 0.25,
    );
    finish(ok);
}

/// A fixed-width text table that renders cleanly in terminals and in
/// EXPERIMENTS.md code blocks.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Prints a shape-check line: `PASS`/`FAIL` plus the claim text. Returns
/// whether it passed so binaries can exit non-zero on failure.
pub fn check(claim: &str, ok: bool) -> bool {
    println!("[{}] {claim}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Exits with an error code if any shape check failed.
pub fn finish(all_ok: bool) {
    if !all_ok {
        eprintln!("one or more shape checks FAILED");
        std::process::exit(1);
    }
}

/// RAII guard for the shared `--trace <path>` flag: armed by
/// [`trace_from_args`], it writes the observability recording as
/// `tradefl-trace/v1` JSON Lines when dropped (i.e. when `main`
/// returns, including the `finish` exit path staying untouched).
#[derive(Debug)]
pub struct TraceGuard(Option<std::path::PathBuf>);

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(path) = self.0.take() {
            match tradefl_runtime::obs::write_trace(&path) {
                Ok(()) => eprintln!("trace written to {}", path.display()),
                Err(e) => eprintln!("failed to write trace {}: {e}", path.display()),
            }
        }
    }
}

/// Arms tracing when `--trace <path>` is on the command line: enables
/// the recorder and returns a guard that writes the JSONL export on
/// drop. Call once at the top of `main`:
///
/// ```no_run
/// let _trace = tradefl_bench::trace_from_args();
/// ```
pub fn trace_from_args() -> TraceGuard {
    TraceGuard(tradefl_runtime::obs::trace_path_from_args())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["10".into(), "20".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains(" a  bb"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5678), "1234.568");
        assert!(fmt(5.12e-9).contains('e'));
    }

    #[test]
    fn paper_game_builds() {
        let g = paper_game(SEED);
        assert_eq!(g.market().len(), 10);
        let g2 = game_with(1e-8, 0.1, 1e-3, SEED);
        assert_eq!(g2.market().params().gamma, 1e-8);
    }
}
