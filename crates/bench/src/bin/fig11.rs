//! **Fig. 11** — social welfare vs the mean competition intensity μ
//! and the training-overhead weight ϖ_e.
//!
//! Paper shape: "social welfare decreases as μ and ϖ_e escalate".

use tradefl_bench::{check, finish, game_with, Table, GAMMA_STAR, SEED};
use tradefl_solver::dbr::DbrSolver;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    // μ sweeps upward from the calibrated default (0.03); beyond ≈0.05
    // the Theorem 1 rescaling saturates ρ (see DESIGN.md).
    let mus = [0.03, 0.035, 0.04, 0.045, 0.05];
    // γ* is calibrated against the default overhead weight (1.66e-3);
    // sweeping ϖ_e upward from well below it keeps the market in the
    // regime where both partial derivatives carry the paper's sign.
    let omegas = [1.0e-3, 1.33e-3, 1.66e-3];
    let mut table = Table::new(
        "Fig. 11: social welfare vs mu and omega_e (DBR, gamma = gamma*)",
        &["mu", "w_e=1.0e-3", "w_e=1.33e-3", "w_e=1.66e-3"],
    );
    let mut grid: Vec<Vec<f64>> = Vec::new();
    for &mu in &mus {
        let mut row = vec![format!("{mu}")];
        let mut series = Vec::new();
        for &omega_e in &omegas {
            let game = game_with(GAMMA_STAR, mu, omega_e, SEED);
            let eq = DbrSolver::new().solve(&game).expect("dbr converges");
            row.push(format!("{:.1}", eq.welfare));
            series.push(eq.welfare);
        }
        table.row(row);
        grid.push(series);
    }
    table.print();

    let mut ok = true;
    // Decreasing in mu at every omega_e column (first vs last row).
    for (col, &omega_e) in omegas.iter().enumerate() {
        let first = grid.first().unwrap()[col];
        let last = grid.last().unwrap()[col];
        let monotone_steps = grid
            .windows(2)
            .filter(|w| w[1][col] <= w[0][col] * 1.005)
            .count();
        ok &= check(
            &format!(
                "welfare decreases in mu at omega_e={omega_e:.1e} ({monotone_steps}/{} steps, {first:.0} -> {last:.0})",
                grid.len() - 1
            ),
            last < first && monotone_steps >= grid.len() - 2,
        );
    }
    // Decreasing in omega_e at every mu row.
    for (row, &mu) in mus.iter().enumerate() {
        let s = &grid[row];
        // Endpoint comparison with slack on the middle column: discrete
        // ladder switches cause ±0.2% blips.
        ok &= check(
            &format!("welfare decreases in omega_e at mu={mu} ({:.0} -> {:.0})", s[0], s[2]),
            s[2] < s[0] && s[1] <= s[0] * 1.005,
        );
    }
    finish(ok);
}
