//! **Extension experiment: price of anarchy vs γ.**
//!
//! Not a paper figure — it quantifies the mechanism's headline effect
//! directly: how much of the centralized welfare optimum does the
//! *decentralized* equilibrium capture, and how does the incentive
//! intensity move that ratio? TradeFL's redistribution should push the
//! PoA toward 1 around γ* and WPR (no redistribution) should stay
//! further from 1.

use tradefl_bench::{check, finish, game_with, Table, GAMMA_GRID, GAMMA_STAR, SEED};
use tradefl_core::config::MarketConfig;
use tradefl_solver::baselines::solve_scheme;
use tradefl_solver::outcome::Scheme;
use tradefl_solver::social::{solve_social_optimum, SocialOptions};

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let mu = MarketConfig::table_ii().rho_mean;
    let omega_e = MarketConfig::table_ii().params.omega_e;
    let mut table = Table::new(
        "Extension: price of anarchy vs gamma",
        &["gamma", "social W", "DBR W", "PoA(DBR)", "PoA(WPR)"],
    );
    let mut poa_dbr = Vec::new();
    let mut poa_wpr = Vec::new();
    for &gamma in &GAMMA_GRID {
        let game = game_with(gamma, mu, omega_e, SEED);
        let social = solve_social_optimum(&game, SocialOptions::default()).expect("solves");
        let dbr = solve_scheme(&game, Scheme::Dbr).expect("dbr");
        let wpr = solve_scheme(&game, Scheme::Wpr).expect("wpr");
        let pd = social.price_of_anarchy(dbr.welfare);
        let pw = social.price_of_anarchy(wpr.welfare);
        table.row(vec![
            format!("{gamma:.2e}"),
            format!("{:.1}", social.welfare),
            format!("{:.1}", dbr.welfare),
            format!("{pd:.4}"),
            format!("{pw:.4}"),
        ]);
        poa_dbr.push((gamma, pd));
        poa_wpr.push((gamma, pw));
    }
    table.print();

    let at = |series: &[(f64, f64)], g: f64| {
        series
            .iter()
            .find(|(gamma, _)| (*gamma - g).abs() <= 1e-12 + 1e-6 * g)
            .map(|(_, v)| *v)
            .expect("gamma on grid")
    };
    let mut ok = true;
    ok &= check(
        &format!(
            "redistribution at gamma* improves PoA over gamma=0 ({:.4} vs {:.4})",
            at(&poa_dbr, GAMMA_STAR),
            at(&poa_dbr, 0.0)
        ),
        at(&poa_dbr, GAMMA_STAR) < at(&poa_dbr, 0.0),
    );
    ok &= check(
        "WPR's PoA is flat in gamma (no redistribution in its payoff)",
        poa_wpr.iter().all(|(_, v)| (v - poa_wpr[0].1).abs() < 1e-6),
    );
    ok &= check(
        &format!(
            "DBR's best PoA is within 1% of the social optimum ({:.4})",
            poa_dbr.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min)
        ),
        poa_dbr.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min) < 1.01,
    );
    ok &= check(
        "PoA is always >= 1 (social optimum dominates every equilibrium)",
        poa_dbr.iter().chain(&poa_wpr).all(|(_, v)| *v >= 1.0 - 1e-9),
    );
    finish(ok);
}
