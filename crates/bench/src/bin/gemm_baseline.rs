//! Records the GEMM kernel perf baseline (`BENCH_gemm.json`).
//!
//! Each row is one of the paper's actual layer shapes, timed through
//! the naive reference product, the cache-blocked kernel, and — where
//! the shape is tall enough to split on MC-aligned row boundaries —
//! the pooled kernel. The blocked and naive results are checked for
//! numerical agreement before anything is timed, so the recorded
//! speedups always describe two implementations of the same product.
//!
//! Usage:
//!   gemm_baseline [--fast] [--out FILE]    # run benches, write JSON
//!   gemm_baseline --check FILE             # validate a baseline file
//!   gemm_baseline --gate CURRENT COMMITTED # regression gate
//!
//! Unlike the solver baseline, `--fast` keeps the *same shapes* and
//! only cuts the repeat count, so the CI gate compares fast-mode
//! medians against the committed full-mode file like-for-like.

use tradefl_bench::json::Json;
use tradefl_bench::timing::{time_interleaved_ms, time_ms};
use tradefl_fl_sim::linalg::{kernel, Matrix};
use tradefl_runtime::rng::{Rng, SeedableRng, StdRng};
use tradefl_runtime::sync::pool::{host_parallelism, Pool};

const SCHEMA: &str = "tradefl-bench-gemm/v1";
/// Pooled worker count (mirrors `perf_baseline`).
const WORKERS: usize = 4;

/// Which of the three kernel products a row exercises.
#[derive(Clone, Copy, PartialEq)]
enum Op {
    /// `A · B` — forward passes.
    MatMul,
    /// `A · Bᵀ` — backprop delta through a layer's weights.
    MatMulTransposed,
    /// `Aᵀ · B` — weight gradients.
    TransposedMatMul,
}

/// One benchmark shape: `out` is `m × n` with inner dimension `k`.
struct Spec {
    name: &'static str,
    op: Op,
    m: usize,
    k: usize,
    n: usize,
    /// Zero ~half of the left operand, like post-ReLU activations —
    /// the case the naive kernel's exact-zero skip was tuned for.
    sparse: bool,
    /// Also time the pooled kernel (only meaningful for `MatMul` rows
    /// tall enough to split; short rows fall back to the serial path).
    pooled: bool,
}

/// The paper's layer shapes (ResNet-analog 64→96→48→10 on the dim-64
/// datasets, MobileNet-analog 36→32→10 on EuroSAT-like; batch 32 for
/// training, 1500 test rows for evaluation — `train_at_equilibrium`'s
/// figure scale).
const SPECS: &[Spec] = &[
    // Largest shape in any figure run: full-test-set evaluation
    // through the ResNet-analog's first layer. The ISSUE's >=3x
    // acceptance bar is stated on this row.
    Spec { name: "eval_forward_1500x64x96", op: Op::MatMul, m: 1500, k: 64, n: 96, sparse: false, pooled: true },
    Spec { name: "train_forward_32x64x96", op: Op::MatMul, m: 32, k: 64, n: 96, sparse: false, pooled: false },
    Spec { name: "train_forward_32x36x32", op: Op::MatMul, m: 32, k: 36, n: 32, sparse: false, pooled: false },
    // Weight gradient dW = actsᵀ · delta for the 64→96 layer.
    Spec { name: "grad_weights_64x32x96", op: Op::TransposedMatMul, m: 64, k: 32, n: 96, sparse: false, pooled: false },
    // Backprop delta_prev = delta · Wᵀ through the 96→48 layer.
    Spec { name: "backprop_delta_32x48x96", op: Op::MatMulTransposed, m: 32, k: 48, n: 96, sparse: false, pooled: false },
    // Same gradient shape with ~50% exact zeros in the activations:
    // the one regime where the naive kernel's sparsity skip shines,
    // recorded honestly so the speedup table shows its best case too.
    Spec { name: "grad_weights_relu_sparse_64x32x96", op: Op::TransposedMatMul, m: 64, k: 32, n: 96, sparse: true, pooled: false },
];

/// Deterministic operand pair for a spec (values in `[-1, 1)`).
fn inputs(spec: &Spec, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6765_6d6d);
    let mut fill = |rows: usize, cols: usize, sparse: bool| {
        Matrix::from_fn(rows, cols, |_, _| {
            let v = rng.gen_range(-1.0..1.0) as f32;
            if sparse && rng.gen_bool(0.5) {
                0.0
            } else {
                v
            }
        })
    };
    match spec.op {
        Op::MatMul => {
            let a = fill(spec.m, spec.k, spec.sparse);
            let b = fill(spec.k, spec.n, false);
            (a, b)
        }
        Op::MatMulTransposed => {
            let a = fill(spec.m, spec.k, spec.sparse);
            let bt = fill(spec.n, spec.k, false);
            (a, bt)
        }
        Op::TransposedMatMul => {
            let at = fill(spec.k, spec.m, spec.sparse);
            let b = fill(spec.k, spec.n, false);
            (at, b)
        }
    }
}

fn naive(op: Op, a: &Matrix, b: &Matrix) -> Matrix {
    match op {
        Op::MatMul => kernel::matmul_reference(a, b),
        Op::MatMulTransposed => kernel::matmul_transposed_reference(a, b),
        Op::TransposedMatMul => kernel::transposed_matmul_reference(a, b),
    }
}

fn blocked(op: Op, a: &Matrix, b: &Matrix, out: &mut Matrix, ws: &mut kernel::Workspace) {
    match op {
        Op::MatMul => kernel::matmul_into(a, b, out, ws),
        Op::MatMulTransposed => kernel::matmul_transposed_into(a, b, out, ws),
        Op::TransposedMatMul => kernel::transposed_matmul_into(a, b, out, ws),
    }
}

struct GemmRow {
    spec: &'static Spec,
    naive_ms: f64,
    blocked_ms: f64,
    pooled_ms: Option<f64>,
}

impl GemmRow {
    fn blocked_speedup(&self) -> f64 {
        self.naive_ms / self.blocked_ms
    }
}

fn run_benches(fast: bool) -> Vec<GemmRow> {
    let repeats = if fast { 3 } else { 15 };
    let pool = Pool::new(WORKERS);
    let mut rows = Vec::new();
    for spec in SPECS {
        let (a, b) = inputs(spec, 42);
        let reference = naive(spec.op, &a, &b);
        let mut out = Matrix::zeros(0, 0);
        let mut ws = kernel::Workspace::new();
        blocked(spec.op, &a, &b, &mut out, &mut ws);
        // Agreement check before timing: same product, different
        // summation order, so a per-element ULP-scale bound.
        let tol = 1e-5 * spec.k as f32;
        for r in 0..out.rows() {
            for (got, want) in out.row(r).iter().zip(reference.row(r)) {
                assert!(
                    (got - want).abs() <= tol * want.abs().max(1.0),
                    "{}: blocked kernel disagrees with reference ({got} vs {want})",
                    spec.name
                );
            }
        }
        // Each timed variant owns its output so the closures can
        // coexist; capacity is reused after the first call.
        let mut out2 = Matrix::zeros(0, 0);
        let mut out3 = Matrix::zeros(0, 0);
        // The variants are timed interleaved, not back-to-back: the
        // recorded numbers are consumed as ratios, and interleaving
        // keeps shared-host slow periods from landing on one side of
        // the ratio only (see `timing::time_interleaved_ms`).
        let mut run_naive = || {
            let _ = naive(spec.op, &a, &b);
        };
        let mut run_blocked = || {
            blocked(spec.op, &a, &b, &mut out2, &mut ws);
        };
        let ms = time_interleaved_ms(repeats, &mut [&mut run_naive, &mut run_blocked]);
        let (naive_ms, blocked_ms) = (ms[0], ms[1]);
        // The pooled variant is timed apart from the interleave set:
        // its worker threads spin down across the batch boundary and
        // would contaminate whichever serial batch runs next.
        let pooled_ms = spec.pooled.then(|| {
            time_ms(repeats, || {
                kernel::matmul_into_pooled(&a, &b, &mut out3, &pool);
            })
        });
        rows.push(GemmRow { spec, naive_ms, blocked_ms, pooled_ms });
    }
    rows
}

fn render_json(rows: &[GemmRow], fast: bool, repeats_note: &str) -> String {
    let host = host_parallelism();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", if fast { "fast" } else { "full" }));
    out.push_str(&format!("  \"workers\": {WORKERS},\n"));
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"repeats\": \"{repeats_note}\",\n"));
    out.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let mut line = format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"naive_ms\": {:.4}, \"blocked_ms\": {:.4}, \"blocked_speedup\": {:.3}",
            row.spec.name,
            row.spec.m,
            row.spec.k,
            row.spec.n,
            row.naive_ms,
            row.blocked_ms,
            row.blocked_speedup()
        );
        if let Some(pooled_ms) = row.pooled_ms {
            line.push_str(&format!(
                ", \"pooled_ms\": {:.4}, \"pooled_speedup\": {:.3}",
                pooled_ms,
                row.naive_ms / pooled_ms
            ));
        }
        line.push_str(&format!("}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
        out.push_str(&line);
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `tradefl-bench-gemm/v1` file: right schema, non-empty
/// rows, positive finite timings, shapes present, and a consistent
/// `blocked_speedup` (pooled columns are optional — only tall `A · B`
/// rows carry them).
fn check_baseline(text: &str) -> Result<usize, String> {
    let root = Json::parse(text)?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}' != '{SCHEMA}'"));
    }
    for key in ["workers", "host_parallelism"] {
        let v = root
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
        if v < 1.0 {
            return Err(format!("\"{key}\" = {v} < 1"));
        }
    }
    let benches = match root.get("benches") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("\"benches\" is empty".into()),
        _ => return Err("missing \"benches\" array".into()),
    };
    for (i, row) in benches.iter().enumerate() {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("bench {i}: missing \"name\""))?;
        for key in ["m", "k", "n"] {
            let v = row
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("bench '{name}': missing \"{key}\""))?;
            if v < 1.0 {
                return Err(format!("bench '{name}': \"{key}\" = {v} < 1"));
            }
        }
        let mut nums = [0.0f64; 3];
        for (slot, key) in nums.iter_mut().zip(["naive_ms", "blocked_ms", "blocked_speedup"]) {
            *slot = row
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("bench '{name}': missing \"{key}\""))?;
            if !slot.is_finite() || *slot <= 0.0 {
                return Err(format!("bench '{name}': \"{key}\" = {slot} not positive"));
            }
        }
        let implied = nums[0] / nums[1];
        if (implied - nums[2]).abs() > 0.05 * implied.abs().max(1.0) {
            return Err(format!(
                "bench '{name}': blocked_speedup {} inconsistent with {:.3}",
                nums[2], implied
            ));
        }
        if let Some(pooled_ms) = row.get("pooled_ms").and_then(Json::as_num) {
            if !pooled_ms.is_finite() || pooled_ms <= 0.0 {
                return Err(format!("bench '{name}': \"pooled_ms\" = {pooled_ms} not positive"));
            }
            let pooled_speedup = row
                .get("pooled_speedup")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("bench '{name}': pooled_ms without pooled_speedup"))?;
            let implied = nums[0] / pooled_ms;
            if (implied - pooled_speedup).abs() > 0.05 * implied.abs().max(1.0) {
                return Err(format!(
                    "bench '{name}': pooled_speedup {pooled_speedup} inconsistent with {implied:.3}"
                ));
            }
        }
    }
    Ok(benches.len())
}

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = std::env::var("TRADEFL_BENCH_FAST").is_ok();
    let mut out_path = String::from("BENCH_gemm.json");
    let mut check_path: Option<String> = None;
    let mut gate_paths: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => {
                out_path = it.next().expect("--out needs a path").clone();
            }
            "--check" => {
                check_path = Some(it.next().expect("--check needs a path").clone());
            }
            "--gate" => {
                let cur = it.next().expect("--gate needs CURRENT and COMMITTED").clone();
                let com = it.next().expect("--gate needs CURRENT and COMMITTED").clone();
                gate_paths = Some((cur, com));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some((cur, com)) = gate_paths {
        use tradefl_bench::json::{gate_files, GATE_TOLERANCE};
        match gate_files(&cur, &com, GATE_TOLERANCE) {
            Ok(n) => println!(
                "gemm_baseline --gate: {cur} vs {com} OK ({n} medians within {GATE_TOLERANCE}x)"
            ),
            Err(e) => {
                eprintln!("gemm_baseline --gate: {cur} vs {com} REGRESSION: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("gemm_baseline --check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match check_baseline(&text) {
            Ok(n) => println!("gemm_baseline --check: {path} OK ({n} benches)"),
            Err(e) => {
                eprintln!("gemm_baseline --check: {path} MALFORMED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let repeats_note = if fast { "median of 3, interleaved (fast)" } else { "median of 15, interleaved" };
    let rows = run_benches(fast);
    let json = render_json(&rows, fast, repeats_note);
    check_baseline(&json).expect("self-emitted baseline must validate");
    std::fs::write(&out_path, &json).expect("baseline file writes");
    println!("wrote {out_path}");
    for row in &rows {
        let pooled = row
            .pooled_ms
            .map(|ms| format!("   pooled {ms:>9.4} ms ({:>5.2}x)", row.naive_ms / ms))
            .unwrap_or_default();
        println!(
            "  {:<34} naive {:>9.4} ms   blocked {:>9.4} ms ({:>5.2}x){pooled}",
            row.spec.name,
            row.naive_ms,
            row.blocked_ms,
            row.blocked_speedup()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_accepts_emitted_shape() {
        let rows = vec![
            GemmRow { spec: &SPECS[0], naive_ms: 4.0, blocked_ms: 1.0, pooled_ms: Some(2.0) },
            GemmRow { spec: &SPECS[1], naive_ms: 3.0, blocked_ms: 1.5, pooled_ms: None },
        ];
        let json = render_json(&rows, true, "median of 3, interleaved (fast)");
        assert_eq!(check_baseline(&json), Ok(2));
    }

    #[test]
    fn checker_rejects_bad_schemas_and_inconsistent_rows() {
        assert!(check_baseline("not json").is_err());
        assert!(check_baseline("{\"schema\": \"tradefl-bench-baseline/v1\"}").is_err());
        assert!(check_baseline(
            "{\"schema\": \"tradefl-bench-gemm/v1\", \"workers\": 4, \
             \"host_parallelism\": 1, \"benches\": [{\"name\": \"x\", \
             \"m\": 8, \"k\": 8, \"n\": 8, \"naive_ms\": 10.0, \
             \"blocked_ms\": 1.0, \"blocked_speedup\": 2.0}]}"
        )
        .is_err());
    }

    #[test]
    fn every_spec_agrees_with_the_reference() {
        for spec in SPECS {
            let (a, b) = inputs(spec, 7);
            let want = naive(spec.op, &a, &b);
            let mut out = Matrix::zeros(0, 0);
            let mut ws = kernel::Workspace::new();
            blocked(spec.op, &a, &b, &mut out, &mut ws);
            assert_eq!((out.rows(), out.cols()), (spec.m, spec.n), "{}", spec.name);
            let tol = 1e-5 * spec.k as f32;
            for r in 0..out.rows() {
                for (got, want) in out.row(r).iter().zip(want.row(r)) {
                    assert!(
                        (got - want).abs() <= tol * want.abs().max(1.0),
                        "{}: {got} vs {want}",
                        spec.name
                    );
                }
            }
        }
    }
}
