//! **Fig. 7** — impact of the incentive intensity γ on social welfare
//! under DBR.
//!
//! Paper shape: welfare is non-monotone in γ — it rises toward an
//! interior optimum and *drops* at large γ (the paper highlights drops
//! at γ = 5·10⁻⁸ and 10⁻⁷), because over-weighted redistribution makes
//! organizations contribute regardless of training overhead.

use tradefl_bench::{check, finish, game_with, Table, GAMMA_GRID, GAMMA_STAR, SEED};
use tradefl_core::config::MarketConfig;
use tradefl_solver::dbr::DbrSolver;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let mu = MarketConfig::table_ii().rho_mean;
    let omega_e = MarketConfig::table_ii().params.omega_e;
    let mut table = Table::new(
        "Fig. 7: social welfare vs gamma (DBR)",
        &["gamma", "welfare", "sum d_i", "damage"],
    );
    let mut series = Vec::new();
    for &gamma in &GAMMA_GRID {
        let game = game_with(gamma, mu, omega_e, SEED);
        let eq = DbrSolver::new().solve(&game).expect("dbr converges");
        table.row(vec![
            format!("{gamma:.2e}"),
            format!("{:.1}", eq.welfare),
            format!("{:.3}", eq.total_fraction),
            format!("{:.2}", eq.total_damage),
        ]);
        series.push((gamma, eq.welfare));
    }
    table.print();

    let welfare_at = |g: f64| {
        series
            .iter()
            .find(|(gamma, _)| (*gamma - g).abs() <= 1e-12 + 1e-6 * g)
            .map(|(_, w)| *w)
            .expect("gamma on grid")
    };
    let peak = series.iter().cloned().fold((0.0, f64::NEG_INFINITY), |a, b| {
        if b.1 > a.1 {
            b
        } else {
            a
        }
    });
    println!("\npeak welfare {:.1} at gamma = {:.2e}", peak.1, peak.0);

    let mut ok = true;
    ok &= check(
        "welfare is non-monotone in gamma (interior maximum)",
        peak.0 > 0.0 && peak.0 < 1e-7,
    );
    ok &= check(
        "welfare drops at gamma = 5e-8 and 1e-7 relative to the peak",
        welfare_at(5e-8) < peak.1 && welfare_at(1e-7) < peak.1,
    );
    ok &= check(
        "the measured peak sits at the paper's gamma* = 5.12e-9",
        (peak.0 - GAMMA_STAR).abs() < 1e-12,
    );
    ok &= check(
        "large gamma raises contribution but lowers welfare vs the peak",
        {
            let sum_d_peak = 0.0; // placeholder, recomputed below
            let _ = sum_d_peak;
            let g_peak = game_with(peak.0, mu, omega_e, SEED);
            let g_hi = game_with(1e-7, mu, omega_e, SEED);
            let d_peak = DbrSolver::new().solve(&g_peak).unwrap().total_fraction;
            let d_hi = DbrSolver::new().solve(&g_hi).unwrap().total_fraction;
            d_hi > d_peak && welfare_at(1e-7) < peak.1
        },
    );
    finish(ok);
}
