//! **Extension experiment: heterogeneous data quality.**
//!
//! The paper's footnote 3 holds data quality constant; this harness
//! relaxes it (`θ_i ∈ (0, 1]`, accuracy-effective volume `θ_i d_i s_i`)
//! and measures the *misalignment* it creates: Eq. (9) prices raw
//! volume, so a low-quality organization is compensated as if its data
//! were as useful as everyone else's. The harness quantifies the
//! welfare cost and shows the trading rule over-rewards low quality.

use tradefl_bench::{check, finish, Table, SEED};
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::market::{Market, MechanismParams};
use tradefl_core::org::Organization;
use tradefl_solver::dbr::DbrSolver;

/// A six-org market where orgs 0-2 hold full-quality data and orgs 3-5
/// hold data of quality `theta_low`.
fn quality_market(theta_low: f64) -> Market {
    let orgs: Vec<Organization> = (0..6)
        .map(|i| {
            Organization::builder(format!("org-{i}"))
                .data_bits(20e9)
                .samples(1500)
                .profitability(1500.0)
                .eta(100.0)
                .quality(if i < 3 { 1.0 } else { theta_low })
                .compute_levels(vec![1.6e9, 2.4e9, 3.2e9, 4.0e9])
                .build()
                .expect("valid org")
        })
        .collect();
    let rho: Vec<Vec<f64>> = (0..6)
        .map(|i| (0..6).map(|j| if i == j { 0.0 } else { 0.03 }).collect())
        .collect();
    Market::new(orgs, rho, MechanismParams::paper_default()).expect("valid market")
}

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let mut table = Table::new(
        "Extension: heterogeneous data quality (orgs 3-5 at theta_low)",
        &["theta_low", "welfare", "gain P", "d high-q", "d low-q", "R high-q", "R low-q"],
    );
    let mut rows = Vec::new();
    for &theta in &[1.0, 0.7, 0.4, 0.1] {
        let market = quality_market(theta);
        let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let eq = DbrSolver::new().solve(&game).expect("dbr converges");
        let d_high: f64 = (0..3).map(|i| eq.profile[i].d).sum::<f64>() / 3.0;
        let d_low: f64 = (3..6).map(|i| eq.profile[i].d).sum::<f64>() / 3.0;
        let r_high: f64 =
            (0..3).map(|i| game.redistribution(&eq.profile, i)).sum::<f64>() / 3.0;
        let r_low: f64 =
            (3..6).map(|i| game.redistribution(&eq.profile, i)).sum::<f64>() / 3.0;
        let gain = game.accuracy_gain(&eq.profile);
        table.row(vec![
            format!("{theta}"),
            format!("{:.1}", eq.welfare),
            format!("{gain:.4}"),
            format!("{d_high:.3}"),
            format!("{d_low:.3}"),
            format!("{r_high:.3}"),
            format!("{r_low:.3}"),
        ]);
        rows.push((theta, eq.welfare, gain, d_high, d_low, r_high, r_low));
        let _ = SEED;
    }
    table.print();

    let mut ok = true;
    ok &= check(
        "welfare falls as the low-quality cohort degrades",
        rows.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-6),
    );
    ok &= check(
        "global accuracy gain falls with quality",
        rows.windows(2).all(|w| w[1].2 <= w[0].2 + 1e-9),
    );
    // The misalignment has two regimes. At moderate degradation the
    // trading rule still pays full price for 40%-quality data (same d,
    // same R as the high-quality cohort). At extreme degradation the
    // *energy* cost — which also prices raw volume — outweighs the
    // shrunken private accuracy gain, and the low-quality cohort drops
    // to D_min and pays compensation instead: the mechanism partially
    // self-corrects through the cost side.
    let moderate = rows.iter().find(|r| r.0 == 0.4).unwrap();
    ok &= check(
        &format!(
            "at theta=0.4 the trading rule still pays full price (d_low={:.3} == d_high={:.3})",
            moderate.4, moderate.3
        ),
        (moderate.4 - moderate.3).abs() < 1e-3,
    );
    let worst = rows.last().unwrap();
    ok &= check(
        &format!(
            "at theta={} energy prices the junk data out (d_low={:.3}, R_low={:.3} < 0)",
            worst.0, worst.4, worst.6
        ),
        worst.4 < 0.05 && worst.6 < 0.0,
    );
    ok &= check(
        "at equal quality the cohorts behave identically",
        (rows[0].3 - rows[0].4).abs() < 1e-6 && (rows[0].5 - rows[0].6).abs() < 1e-6,
    );
    finish(ok);
}
