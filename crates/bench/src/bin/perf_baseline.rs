//! Records the serial-vs-pooled perf baseline (`BENCH_solvers.json`).
//!
//! Each bench runs the same workload once on a single-worker pool
//! (serial semantics) and once on a multi-worker pool, reporting the
//! median wall-clock of several repeats. Results are bit-compatible by
//! the determinism contract (DESIGN.md §6), so the comparison is pure
//! wall-clock. The CGBD traversal additionally contrasts the reference
//! odometer scan with the pooled table scan — the algorithmic half of
//! that speedup (per-cut lookup tables) applies even on single-core
//! hosts, which is why `host_parallelism` is recorded alongside
//! `workers`: read speedups against it.
//!
//! Rows whose work sits below the pool thresholds (`dbr_solve`,
//! `best_response`, `fedavg_round` at these sizes) execute the *same*
//! inline code on both pools, so their true ratio is 1.0 by
//! construction; they are timed with interleaved sampling
//! ([`time_interleaved_ms`]) so shared-host drift cannot open a fake
//! gap between two disjoint measurement windows. The rows that
//! genuinely engage worker threads stay on separate [`time_ms`]
//! windows — interleaving a multi-worker workload with a serial one
//! lets workers spinning down bleed into the serial batches (see
//! `gemm_baseline`).
//!
//! Usage:
//!   perf_baseline [--fast] [--out FILE]    # run benches, write JSON
//!   perf_baseline --check FILE             # validate a baseline file
//!   perf_baseline --gate CURRENT COMMITTED # regression gate
//!
//! `--fast` (or the `TRADEFL_BENCH_FAST` env var) shrinks instance
//! sizes and repeat counts to smoke-test scale for CI. `--gate`
//! compares a fresh measurement against a committed baseline with
//! [`tradefl_bench::json::gate`]'s generous tolerance and exits
//! non-zero on an order-of-magnitude regression.

use std::collections::BTreeSet;
use tradefl_bench::json::Json;
use tradefl_bench::timing::{time_interleaved_ms, time_ms};
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::strategy::StrategyProfile;
use tradefl_fl_sim::data::{generate, DatasetKind};
use tradefl_fl_sim::fed::{train_federated_with, FedConfig};
use tradefl_fl_sim::model::{Mlp, ModelKind};
use tradefl_runtime::sync::pool::Pool;
use tradefl_solver::bestresponse::{best_response_with, Objective};
use tradefl_solver::cgbd::exhaustive_optimum_with;
use tradefl_solver::dbr::DbrSolver;
use tradefl_solver::gbd::{traverse_pooled, traverse_reference, Cut};

const SCHEMA: &str = "tradefl-bench-baseline/v1";
/// Pooled worker count; the acceptance bar for the CGBD traversal
/// speedup is stated at 4+ workers.
const WORKERS: usize = 4;

fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

struct BenchRow {
    name: &'static str,
    serial_ms: f64,
    pooled_ms: f64,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.pooled_ms
    }
}

/// A realistic mid-solve cut stack: several optimality anchors plus a
/// feasibility cut, like CGBD holds a few iterations in.
fn cut_stack(g: &CoopetitionGame<SqrtAccuracy>) -> Vec<Cut> {
    let n = g.market().len();
    let d_min = g.market().params().d_min;
    let mut cuts = Vec::new();
    for (k, d) in [0.1, 0.2, 0.35, 0.5, 0.7, 0.9].into_iter().enumerate() {
        let u = vec![0.02 * k as f64; n];
        cuts.push(Cut::optimality(g, vec![d; n], u));
    }
    cuts.push(Cut::Feasibility {
        d: vec![d_min; n],
        lambda: vec![1.0 / n as f64; n],
    });
    cuts
}

fn run_benches(fast: bool) -> Vec<BenchRow> {
    let repeats = if fast { 3 } else { 15 };
    let mut rows = Vec::new();
    let serial_pool = Pool::new(1);
    let pooled_pool = Pool::new(WORKERS);

    // CGBD master traversal: reference odometer scan vs pooled table
    // scan over the full ladder product space.
    {
        let n = if fast { 6 } else { 8 };
        let g = game(n, 7);
        let cuts = cut_stack(&g);
        let visited = BTreeSet::new();
        let cap = 1u128 << 40;
        let reference = traverse_reference(&g, &cuts, &visited, cap).unwrap();
        let pooled = traverse_pooled(&g, &cuts, &visited, cap, &pooled_pool).unwrap();
        assert_eq!(reference.levels, pooled.levels, "traversal paths disagree");
        assert!(
            (reference.phi - pooled.phi).abs() <= 1e-9 * reference.phi.abs().max(1.0),
            "traversal phi mismatch: {} vs {}",
            reference.phi,
            pooled.phi
        );
        rows.push(BenchRow {
            name: "cgbd_traversal",
            serial_ms: time_ms(repeats, || {
                traverse_reference(&g, &cuts, &visited, cap).unwrap();
            }),
            pooled_ms: time_ms(repeats, || {
                traverse_pooled(&g, &cuts, &visited, cap, &pooled_pool).unwrap();
            }),
        });
    }

    // Exhaustive primal oracle over every ladder assignment.
    {
        let g = game(if fast { 3 } else { 4 }, 11);
        rows.push(BenchRow {
            name: "exhaustive_optimum",
            serial_ms: time_ms(repeats, || {
                exhaustive_optimum_with(&g, 1e-9, &serial_pool).unwrap();
            }),
            pooled_ms: time_ms(repeats, || {
                exhaustive_optimum_with(&g, 1e-9, &pooled_pool).unwrap();
            }),
        });
    }

    // Full DBR solve (Algorithm 2) on the paper-scale market.
    {
        let g = game(if fast { 6 } else { 10 }, 42);
        let mut serial = || {
            DbrSolver::new().solve_with(&g, &serial_pool).unwrap();
        };
        let mut pooled = || {
            DbrSolver::new().solve_with(&g, &pooled_pool).unwrap();
        };
        let ms = time_interleaved_ms(repeats, &mut [&mut serial, &mut pooled]);
        rows.push(BenchRow { name: "dbr_solve", serial_ms: ms[0], pooled_ms: ms[1] });
    }

    // One organization's best response at the minimal profile.
    {
        let g = game(if fast { 6 } else { 10 }, 42);
        let profile = StrategyProfile::minimal(g.market());
        let mut serial = || {
            best_response_with(&g, &profile, 0, Objective::Full, &serial_pool).unwrap();
        };
        let mut pooled = || {
            best_response_with(&g, &profile, 0, Objective::Full, &pooled_pool).unwrap();
        };
        let ms = time_interleaved_ms(repeats * 10, &mut [&mut serial, &mut pooled]);
        rows.push(BenchRow { name: "best_response", serial_ms: ms[0], pooled_ms: ms[1] });
    }

    // FedAvg rounds with per-silo local training.
    {
        let (orgs, per_shard, test_n) = if fast { (3, 120, 200) } else { (4, 260, 400) };
        let all = generate(DatasetKind::EurosatLike, per_shard * orgs + test_n, 11);
        let mut sizes = vec![per_shard; orgs];
        sizes.push(test_n);
        let mut shards = all.shard(&sizes);
        let test = shards.pop().unwrap();
        let fractions = vec![1.0; orgs];
        let config = FedConfig {
            rounds: if fast { 1 } else { 2 },
            local_epochs: 1,
            batch_size: 32,
            lr: 0.1,
            seed: 1,
        };
        let mk = || Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 3);
        let mut serial = || {
            train_federated_with(mk(), &shards, &test, &fractions, &config, &serial_pool)
                .unwrap();
        };
        let mut pooled = || {
            train_federated_with(mk(), &shards, &test, &fractions, &config, &pooled_pool)
                .unwrap();
        };
        let ms = time_interleaved_ms(repeats, &mut [&mut serial, &mut pooled]);
        rows.push(BenchRow { name: "fedavg_round", serial_ms: ms[0], pooled_ms: ms[1] });
    }

    rows
}

fn render_json(rows: &[BenchRow], fast: bool, repeats_note: &str) -> String {
    let host = tradefl_runtime::sync::pool::host_parallelism();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", if fast { "fast" } else { "full" }));
    out.push_str(&format!("  \"workers\": {WORKERS},\n"));
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"repeats\": \"{repeats_note}\",\n"));
    out.push_str("  \"benches\": [\n");
    for (k, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.4}, \"pooled_ms\": {:.4}, \"speedup\": {:.3}}}{}\n",
            row.name,
            row.serial_ms,
            row.pooled_ms,
            row.speedup(),
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
/// Validates a baseline file: well-formed JSON, right schema tag, and
/// every bench row carries finite positive timings and a consistent
/// speedup. Returns an explanation on the first violation.
fn check_baseline(text: &str) -> Result<usize, String> {
    let root = Json::parse(text)?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}' != '{SCHEMA}'"));
    }
    for key in ["workers", "host_parallelism"] {
        let v = root
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
        if v < 1.0 {
            return Err(format!("\"{key}\" = {v} < 1"));
        }
    }
    let benches = match root.get("benches") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("\"benches\" is empty".into()),
        _ => return Err("missing \"benches\" array".into()),
    };
    for (k, row) in benches.iter().enumerate() {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("bench {k}: missing \"name\""))?;
        let mut nums = [0.0f64; 3];
        for (slot, key) in nums.iter_mut().zip(["serial_ms", "pooled_ms", "speedup"]) {
            *slot = row
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("bench '{name}': missing \"{key}\""))?;
            if !slot.is_finite() || *slot <= 0.0 {
                return Err(format!("bench '{name}': \"{key}\" = {slot} not positive"));
            }
        }
        let implied = nums[0] / nums[1];
        if (implied - nums[2]).abs() > 0.05 * implied.abs().max(1.0) {
            return Err(format!(
                "bench '{name}': speedup {} inconsistent with {:.3}",
                nums[2], implied
            ));
        }
    }
    Ok(benches.len())
}

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = std::env::var("TRADEFL_BENCH_FAST").is_ok();
    let mut out_path = String::from("BENCH_solvers.json");
    let mut check_path: Option<String> = None;
    let mut gate_paths: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => {
                out_path = it.next().expect("--out needs a path").clone();
            }
            "--check" => {
                check_path = Some(it.next().expect("--check needs a path").clone());
            }
            "--gate" => {
                let cur = it.next().expect("--gate needs CURRENT and COMMITTED").clone();
                let com = it.next().expect("--gate needs CURRENT and COMMITTED").clone();
                gate_paths = Some((cur, com));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some((cur, com)) = gate_paths {
        use tradefl_bench::json::{gate_files, GATE_TOLERANCE};
        match gate_files(&cur, &com, GATE_TOLERANCE) {
            Ok(n) => println!(
                "perf_baseline --gate: {cur} vs {com} OK ({n} medians within {GATE_TOLERANCE}x)"
            ),
            Err(e) => {
                eprintln!("perf_baseline --gate: {cur} vs {com} REGRESSION: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("perf_baseline --check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match check_baseline(&text) {
            Ok(n) => println!("perf_baseline --check: {path} OK ({n} benches)"),
            Err(e) => {
                eprintln!("perf_baseline --check: {path} MALFORMED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let repeats_note = if fast {
        "median of 3, paired rows interleaved (fast)"
    } else {
        "median of 15, paired rows interleaved"
    };
    let rows = run_benches(fast);
    let json = render_json(&rows, fast, repeats_note);
    check_baseline(&json).expect("self-emitted baseline must validate");
    std::fs::write(&out_path, &json).expect("baseline file writes");
    println!("wrote {out_path}");
    for row in &rows {
        println!(
            "  {:<20} serial {:>10.3} ms   pooled {:>10.3} ms   speedup {:>6.2}x",
            row.name,
            row.serial_ms,
            row.pooled_ms,
            row.speedup()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_accepts_emitted_shape() {
        let rows = vec![
            BenchRow { name: "a", serial_ms: 2.0, pooled_ms: 1.0 },
            BenchRow { name: "b", serial_ms: 3.0, pooled_ms: 3.0 },
        ];
        let json = render_json(&rows, true, "median of 3 (fast)");
        assert_eq!(check_baseline(&json), Ok(2));
    }

    #[test]
    fn checker_rejects_garbage_and_bad_schemas() {
        assert!(check_baseline("not json").is_err());
        assert!(check_baseline("{\"schema\": \"other/v9\"}").is_err());
        assert!(check_baseline(
            "{\"schema\": \"tradefl-bench-baseline/v1\", \"workers\": 4, \
             \"host_parallelism\": 1, \"benches\": []}"
        )
        .is_err());
        // Inconsistent speedup field.
        assert!(check_baseline(
            "{\"schema\": \"tradefl-bench-baseline/v1\", \"workers\": 4, \
             \"host_parallelism\": 1, \"benches\": [{\"name\": \"x\", \
             \"serial_ms\": 10.0, \"pooled_ms\": 1.0, \"speedup\": 2.0}]}"
        )
        .is_err());
    }
}
