//! **Fig. 12** — global-model accuracy and total data contribution
//! `Σ_i d_i` under different γ.
//!
//! Paper shape: TOS is flat at `Σ d_i = 10`; DBR's contribution grows
//! with γ and exceeds GCA's by up to 64% (at γ*); accuracy tracks the
//! contributed data.

use tradefl_bench::{check, finish, train_at_equilibrium, Table, GAMMA_STAR, SEED};
use tradefl_bench::game_with;
use tradefl_core::config::MarketConfig;
use tradefl_fl_sim::data::DatasetKind;
use tradefl_fl_sim::fed::FedConfig;
use tradefl_fl_sim::model::ModelKind;
use tradefl_solver::baselines::solve_scheme;
use tradefl_solver::outcome::Scheme;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let gammas = [0.0, 2e-9, GAMMA_STAR, 2e-8, 1e-7];
    let schemes = [Scheme::Dbr, Scheme::Gca, Scheme::Wpr, Scheme::Tos];
    let mu = MarketConfig::table_ii().rho_mean;
    let omega_e = MarketConfig::table_ii().params.omega_e;
    let fed = FedConfig { rounds: 8, local_epochs: 1, batch_size: 32, lr: 0.1, seed: SEED };

    let mut data_table = Table::new(
        "Fig. 12a: total data contribution (sum d_i) vs gamma",
        &["gamma", "DBR", "GCA", "WPR", "TOS"],
    );
    let mut acc_table = Table::new(
        "Fig. 12b: global-model accuracy vs gamma (MobileNet/SVHN analogs)",
        &["gamma", "DBR", "GCA", "WPR", "TOS"],
    );
    let mut fractions: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut accuracies: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &gamma in &gammas {
        let game = game_with(gamma, mu, omega_e, SEED);
        let mut drow = vec![format!("{gamma:.2e}")];
        let mut arow = vec![format!("{gamma:.2e}")];
        for (k, &scheme) in schemes.iter().enumerate() {
            let eq = solve_scheme(&game, scheme).expect("scheme solves");
            let fr: Vec<f64> = (0..game.market().len()).map(|i| eq.profile[i].d).collect();
            let outcome = train_at_equilibrium(
                &game,
                &fr,
                ModelKind::MobilenetLike,
                DatasetKind::SvhnLike,
                &fed,
                1000,
                SEED,
            );
            drow.push(format!("{:.3}", eq.total_fraction));
            arow.push(format!("{:.4}", outcome.final_accuracy()));
            fractions[k].push(eq.total_fraction);
            accuracies[k].push(outcome.final_accuracy() as f64);
        }
        data_table.row(drow);
        acc_table.row(arow);
    }
    data_table.print();
    acc_table.print();

    let star = 2; // index of GAMMA_STAR in `gammas`
    let dbr_gain = (fractions[0][star] - fractions[1][star]) / fractions[1][star] * 100.0;
    let max_gain = (0..gammas.len())
        .map(|g| (fractions[0][g] - fractions[1][g]) / fractions[1][g] * 100.0)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nDBR vs GCA data contribution: +{dbr_gain:.1}% at gamma*, up to +{max_gain:.1}% over the sweep (paper: up to +64%)"
    );

    let mut ok = true;
    ok &= check("TOS contribution is flat at sum d_i = 10", fractions[3].iter().all(|&v| (v - 10.0).abs() < 1e-9));
    ok &= check(
        &format!("DBR contributes more data than GCA at gamma* (+{dbr_gain:.0}%)"),
        dbr_gain > 20.0,
    );
    ok &= check(
        &format!("the maximum DBR-over-GCA gain is large (+{max_gain:.0}%, paper: +64%)"),
        max_gain > 40.0,
    );
    ok &= check(
        "DBR contribution is non-decreasing in gamma",
        fractions[0].windows(2).all(|w| w[1] >= w[0] - 1e-9),
    );
    ok &= check(
        "WPR contribution ignores gamma",
        fractions[2].iter().all(|&v| (v - fractions[2][0]).abs() < 1e-9),
    );
    // Accuracy tracks contribution: TOS >= DBR >= WPR at gamma*.
    ok &= check(
        &format!(
            "accuracy ordering at gamma*: TOS ({:.3}) >= DBR ({:.3}) > WPR ({:.3})",
            accuracies[3][star], accuracies[0][star], accuracies[2][star]
        ),
        accuracies[3][star] >= accuracies[0][star] - 0.02
            && accuracies[0][star] > accuracies[2][star],
    );
    finish(ok);
}
