//! **trace_check** — validates a `tradefl-trace/v1` JSON Lines file
//! (the `--trace out.jsonl` output of the examples and bench binaries).
//!
//! Usage: `trace_check <file.jsonl>`
//!
//! Checks, line by line with the in-tree JSON reader (no serde by
//! policy):
//!
//! - line 1 is a `meta` record with the exact schema tag, and its
//!   `events` count matches the number of event lines that follow;
//! - every line is a well-formed, single-object JSON document whose
//!   `kind` is one of `meta` / `event` / `counter` / `gauge` / `hist`;
//! - event records carry a known subsystem, a `seq`, a `name`, and a
//!   `fields` object, and `seq` values are contiguous from 0 *per
//!   subsystem* (the logical-clock contract: no gaps, no wall-clock);
//! - counters/gauges/hists carry the fields the exporter writes
//!   (`value`, or `count`/`sum`/`min`/`max`/`buckets`), with counts
//!   consistent with the sparse bucket list.
//!
//! Exits non-zero with a line-numbered explanation on the first
//! violation — `scripts/ci.sh` runs this against a fresh end-to-end
//! trace on every build.

use std::collections::BTreeMap;
use tradefl_bench::json::Json;

const SCHEMA: &str = "tradefl-trace/v1";
const SUBSYSTEMS: [&str; 7] = ["cgbd", "dbr", "primal", "fed", "pool", "ledger", "engine"];

fn field_num(line: &Json, key: &str) -> Result<f64, String> {
    line.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric '{key}'"))
}

fn field_str<'a>(line: &'a Json, key: &str) -> Result<&'a str, String> {
    line.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string '{key}'"))
}

/// A JSON number that is also a plausible metric value: finite, or one
/// of the exporter's non-finite string spellings.
fn metric_value_ok(v: &Json) -> bool {
    match v {
        Json::Num(x) => x.is_finite(),
        Json::Str(s) => matches!(s.as_str(), "NaN" | "Infinity" | "-Infinity"),
        _ => false,
    }
}

fn check_event(line: &Json, clocks: &mut BTreeMap<String, u64>) -> Result<(), String> {
    let sub = field_str(line, "sub")?;
    if !SUBSYSTEMS.contains(&sub) {
        return Err(format!("unknown subsystem '{sub}'"));
    }
    field_str(line, "name")?;
    let seq = field_num(line, "seq")?;
    if seq < 0.0 || seq.fract() != 0.0 {
        return Err(format!("seq {seq} is not a non-negative integer"));
    }
    let expected = clocks.entry(sub.to_string()).or_insert(0);
    if seq as u64 != *expected {
        return Err(format!(
            "subsystem '{sub}' logical clock jumped: seq {seq}, expected {expected}"
        ));
    }
    *expected += 1;
    let fields = line
        .get("fields")
        .and_then(Json::as_obj)
        .ok_or("missing 'fields' object")?;
    for (key, value) in fields {
        let ok = matches!(value, Json::Bool(_)) || metric_value_ok(value);
        if !ok {
            return Err(format!("field '{key}' has non-scalar value {value:?}"));
        }
    }
    Ok(())
}

fn check_hist(line: &Json) -> Result<(), String> {
    let count = field_num(line, "count")?;
    for key in ["sum", "min", "max"] {
        let v = line.get(key).ok_or_else(|| format!("missing '{key}'"))?;
        if !metric_value_ok(v) {
            return Err(format!("'{key}' is not a metric value: {v:?}"));
        }
    }
    let Some(Json::Arr(buckets)) = line.get("buckets") else {
        return Err("missing 'buckets' array".into());
    };
    let mut total = 0.0;
    for b in buckets {
        let Json::Arr(pair) = b else {
            return Err(format!("bucket entry is not a pair: {b:?}"));
        };
        let [index, bucket_count] = pair.as_slice() else {
            return Err(format!("bucket entry is not a pair: {b:?}"));
        };
        let index = index.as_num().ok_or("bucket index not a number")?;
        if !(0.0..64.0).contains(&index) || index.fract() != 0.0 {
            return Err(format!("bucket index {index} out of range"));
        }
        total += bucket_count.as_num().ok_or("bucket count not a number")?;
    }
    if total != count {
        return Err(format!("bucket counts sum to {total}, header says {count}"));
    }
    Ok(())
}

/// Validates a whole trace document. Returns `(events, metrics)` line
/// counts on success.
fn check_trace(text: &str) -> Result<(usize, usize), String> {
    let mut lines = text.lines().enumerate();
    let (_, meta_line) = lines.next().ok_or("empty trace file")?;
    let meta = Json::parse(meta_line).map_err(|e| format!("line 1: {e}"))?;
    if field_str(&meta, "kind").map_err(|e| format!("line 1: {e}"))? != "meta" {
        return Err("line 1: first record must be 'meta'".into());
    }
    let schema = field_str(&meta, "schema").map_err(|e| format!("line 1: {e}"))?;
    if schema != SCHEMA {
        return Err(format!("line 1: schema '{schema}', expected '{SCHEMA}'"));
    }
    let declared_events = field_num(&meta, "events").map_err(|e| format!("line 1: {e}"))?;
    field_num(&meta, "events_dropped").map_err(|e| format!("line 1: {e}"))?;

    let mut clocks = BTreeMap::new();
    let mut events = 0usize;
    let mut metrics = 0usize;
    let mut seen_metric = false;
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let fail = |e: String| format!("line {lineno}: {e}");
        let line = Json::parse(raw).map_err(fail)?;
        match field_str(&line, "kind").map_err(fail)? {
            "event" => {
                if seen_metric {
                    return Err(fail("event record after metric records".into()));
                }
                events += 1;
                check_event(&line, &mut clocks).map_err(fail)?;
            }
            "counter" => {
                seen_metric = true;
                metrics += 1;
                field_str(&line, "name").map_err(fail)?;
                let v = field_num(&line, "value").map_err(fail)?;
                if v < 0.0 || v.fract() != 0.0 {
                    return Err(fail(format!("counter value {v} is not a u64")));
                }
            }
            "gauge" => {
                seen_metric = true;
                metrics += 1;
                field_str(&line, "name").map_err(fail)?;
                let v = line.get("value").ok_or_else(|| fail("missing 'value'".into()))?;
                if !metric_value_ok(v) {
                    return Err(fail(format!("gauge value is not a metric value: {v:?}")));
                }
            }
            "hist" => {
                seen_metric = true;
                metrics += 1;
                field_str(&line, "name").map_err(fail)?;
                check_hist(&line).map_err(fail)?;
            }
            "meta" => return Err(fail("duplicate 'meta' record".into())),
            other => return Err(fail(format!("unknown kind '{other}'"))),
        }
    }
    if events as f64 != declared_events {
        return Err(format!(
            "meta declares {declared_events} events, file has {events}"
        ));
    }
    Ok((events, metrics))
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <file.jsonl>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match check_trace(&text) {
        Ok((events, metrics)) => {
            println!(
                "[PASS] {path}: valid {SCHEMA} ({events} events, {metrics} metric records)"
            );
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exported_trace() -> String {
        use tradefl_runtime::obs;
        let ((), snap) = obs::with_local(|| {
            obs::event(obs::Subsystem::Cgbd, "iteration", &[("k", 0u64.into())]);
            obs::event(obs::Subsystem::Cgbd, "iteration", &[("k", 1u64.into())]);
            obs::event(obs::Subsystem::Fed, "round", &[("loss", 0.5.into())]);
            obs::counter_add("cgbd.cuts_added", 2);
            obs::gauge_set("fed.loss", 0.5);
            obs::hist_record("dbr.br_delta", 0.25);
        });
        snap.to_jsonl()
    }

    #[test]
    fn real_exports_validate() {
        let trace = exported_trace();
        let (events, metrics) = check_trace(&trace).unwrap();
        assert_eq!(events, 3);
        assert_eq!(metrics, 3);
    }

    #[test]
    fn violations_are_caught() {
        let trace = exported_trace();
        // Wrong schema tag.
        assert!(check_trace(&trace.replace("tradefl-trace/v1", "v0")).is_err());
        // Event-count mismatch.
        assert!(check_trace(&trace.replace("\"events\":3", "\"events\":4")).is_err());
        // A gap in a subsystem's logical clock.
        assert!(check_trace(&trace.replace("\"seq\":1", "\"seq\":5")).is_err());
        // Unknown subsystem.
        assert!(check_trace(&trace.replace("\"sub\":\"fed\"", "\"sub\":\"hal\"")).is_err());
        // Garbage line.
        assert!(check_trace(&format!("{trace}not json\n")).is_err());
        // Truncated to no meta.
        assert!(check_trace("").is_err());
    }
}
