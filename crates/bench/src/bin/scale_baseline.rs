//! Records the thousand-silo scaling baseline (`BENCH_scale.json`).
//!
//! Three scaling surfaces, each timed at N = 10 / 100 / 1000 silos
//! where applicable:
//!
//! * `dbr_solve_nN` — one full discrete-best-response equilibrium
//!   solve on the Table-II market scaled to N organizations. The
//!   incremental evaluator makes one sweep O(N·log N), so the solve
//!   time must stay *sub-quadratic* in N: the checker enforces
//!   `dbr_solve_n1000 ≤ 20 × dbr_solve_n100` (a quadratic sweep
//!   would put the ratio near 100). The `dbr_solve_n10000` row runs a
//!   ten-thousand-org market on a ~1%-dense CSR ρ: the checker bounds
//!   its resident ρ bytes at 100 MB (the dense matrix alone is 800 MB)
//!   and its solve time at 25 × `dbr_solve_n1000`.
//! * `dbr_sparse_agreement_n1000` — the same N = 1000 market solved on
//!   its dense ρ and on a CSR twin holding the identical entries; the
//!   `bit_identical` field (gated to 1) pins the zero-skip argument:
//!   sparse iteration changes where time goes, never a single bit of
//!   the equilibrium.
//! * `fedavg_round_nN` — one hierarchical streaming FedAvg round over
//!   N silos (16 samples each, EuroSAT-like, MobileNet-analog model).
//!   The row records `rounds_per_sec` and the aggregation buffer
//!   footprint `agg_buffer_bytes` = O(model × min(workers, groups)),
//!   which is independent of N — the point of the streaming reduce.
//! * `batched_gemm_32x64x96` — the per-silo gradient-shaped products
//!   of a thousand-silo round, serial loop vs
//!   [`kernel::matmul_batch_into_pooled`]'s one pooled dispatch with
//!   per-chunk shared packing buffers.
//!
//! Usage:
//!   scale_baseline [--fast] [--out FILE]    # run benches, write JSON
//!   scale_baseline --check FILE             # validate a baseline file
//!   scale_baseline --gate CURRENT COMMITTED # regression gate
//!
//! `--fast` drops the N = 1000 rows and shrinks the GEMM batch, so
//! the CI gate compares only the rows both files carry (the gate
//! skips rows present on one side — see `tradefl_bench::json::gate`).

use tradefl_bench::json::Json;
use tradefl_bench::timing::{time_interleaved_ms, time_ms};
use tradefl_bench::SEED;
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_fl_sim::data::{generate, DatasetKind};
use tradefl_fl_sim::fed::{train_federated_grouped, FedConfig, EDGE_GROUP_SIZE};
use tradefl_fl_sim::linalg::{kernel, Matrix};
use tradefl_fl_sim::model::{Mlp, ModelKind};
use tradefl_runtime::rng::{Rng, SeedableRng, StdRng};
use tradefl_runtime::sync::pool::{host_parallelism, Pool};
use tradefl_solver::dbr::DbrSolver;

const SCHEMA: &str = "tradefl-bench-scale/v1";
/// Pooled worker count (mirrors `perf_baseline` / `gemm_baseline`).
const WORKERS: usize = 4;
/// Samples per silo in the FedAvg rows: small enough that N = 1000
/// stays affordable, large enough that the N = 1000 round crosses the
/// pool-engagement threshold (16 000 steps ≥ `POOLED_FED_MIN_STEPS`).
const SAMPLES_PER_SILO: usize = 16;
/// Acceptance bound on `dbr_solve_n1000 / dbr_solve_n100`: the sweep
/// is O(N·log N) + one O(N²)-but-tiny trace row per round, so 10×
/// more silos must cost well under the ~100× a quadratic sweep pays.
const DBR_SCALE_BOUND: f64 = 20.0;
/// ρ density of the ten-thousand-org row: ~1% of the off-diagonal
/// entries per row, the cross-silo-competition sparsity the tentpole
/// targets.
const SPARSE_DENSITY: f64 = 0.01;
/// Acceptance bound on `dbr_solve_n10000 / dbr_solve_n1000`: 10× the
/// orgs at ~2× the stored entries must stay well under quadratic.
const DBR_10K_SCALE_BOUND: f64 = 25.0;
/// Acceptance bound on the ten-thousand-org market's resident ρ bytes
/// (100 MB). The dense matrix alone would be 800 MB.
const RHO_RESIDENT_MAX_BYTES: f64 = (100 * 1024 * 1024) as f64;

/// One recorded row: a name, numeric `_ms` medians (gated), and
/// documentation fields (counts, derived rates — never gated).
struct Row {
    name: String,
    /// `(key, value)` pairs; keys ending in `_ms` are gate-compared.
    nums: Vec<(&'static str, f64)>,
}

fn game_with_orgs(n: usize) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().with_orgs(n).build(SEED).expect("market builds");
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

fn bench_dbr(n: usize, repeats: usize) -> Row {
    let game = game_with_orgs(n);
    let mut iterations = 0usize;
    let solve_ms = time_ms(repeats, || {
        let eq = DbrSolver::new().solve(&game).expect("dbr converges");
        iterations = eq.iterations;
    });
    Row {
        name: format!("dbr_solve_n{n}"),
        nums: vec![
            ("solve_ms", solve_ms),
            ("orgs", n as f64),
            ("iterations", iterations as f64),
        ],
    }
}

fn bench_dbr_sparse_10k(repeats: usize) -> Row {
    let n = 10_000;
    let market = MarketConfig::table_ii()
        .with_orgs(n)
        .build_sparse(SEED, SPARSE_DENSITY)
        .expect("sparse market builds");
    let nnz = market.rho_nnz();
    let resident = market.rho_resident_bytes();
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let mut iterations = 0usize;
    let solve_ms = time_ms(repeats, || {
        let eq = DbrSolver::new().solve(&game).expect("dbr converges");
        iterations = eq.iterations;
    });
    Row {
        name: String::from("dbr_solve_n10000"),
        nums: vec![
            ("solve_ms", solve_ms),
            ("orgs", n as f64),
            ("iterations", iterations as f64),
            ("rho_nnz", nnz as f64),
            ("rho_resident_bytes", resident as f64),
        ],
    }
}

fn bench_sparse_dense_agreement(n: usize, repeats: usize) -> Row {
    use tradefl_core::market::{Market, RhoMatrix};
    let dense = MarketConfig::table_ii().with_orgs(n).build(SEED).expect("market builds");
    let RhoMatrix::Dense(rows) = dense.rho_matrix() else {
        panic!("table_ii builds a dense rho");
    };
    let sparse_rho = RhoMatrix::from_dense_thresholded(rows, 0.0);
    let sparse_resident = sparse_rho.resident_bytes();
    let dense_resident = dense.rho_resident_bytes();
    let sparse = Market::with_rho(dense.orgs().to_vec(), sparse_rho, dense.params().clone())
        .expect("sparse twin builds");
    let game_dense = CoopetitionGame::new(dense, SqrtAccuracy::paper_default());
    let game_sparse = CoopetitionGame::new(sparse, SqrtAccuracy::paper_default());
    let mut run_dense = || {
        DbrSolver::new().solve(&game_dense).expect("dense dbr converges");
    };
    let mut run_sparse = || {
        DbrSolver::new().solve(&game_sparse).expect("sparse dbr converges");
    };
    let ms = time_interleaved_ms(repeats, &mut [&mut run_dense, &mut run_sparse]);
    let (dense_ms, sparse_ms) = (ms[0], ms[1]);
    let eq_d = DbrSolver::new().solve(&game_dense).expect("dense dbr converges");
    let eq_s = DbrSolver::new().solve(&game_sparse).expect("sparse dbr converges");
    let identical = eq_d.welfare.to_bits() == eq_s.welfare.to_bits()
        && eq_d.potential.to_bits() == eq_s.potential.to_bits()
        && eq_d.iterations == eq_s.iterations
        && eq_d
            .profile
            .iter()
            .zip(eq_s.profile.iter())
            .all(|(a, b)| a.d.to_bits() == b.d.to_bits() && a.level == b.level);
    Row {
        name: format!("dbr_sparse_agreement_n{n}"),
        nums: vec![
            ("dense_ms", dense_ms),
            ("sparse_ms", sparse_ms),
            ("bit_identical", if identical { 1.0 } else { 0.0 }),
            ("dense_rho_bytes", dense_resident as f64),
            ("sparse_rho_bytes", sparse_resident as f64),
        ],
    }
}

fn bench_fedavg(n: usize, repeats: usize, pool: &Pool) -> Row {
    let total = n * SAMPLES_PER_SILO + 256;
    let corpus = generate(DatasetKind::EurosatLike, total, SEED);
    let mut sizes = vec![SAMPLES_PER_SILO; n];
    sizes.push(256);
    let mut shards = corpus.shard(&sizes);
    let test = shards.pop().expect("test shard");
    let fractions = vec![1.0f64; n];
    let config = FedConfig { rounds: 1, local_epochs: 1, batch_size: 16, ..FedConfig::default() };
    let template = Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, 1);
    let round_ms = time_ms(repeats, || {
        let outcome = train_federated_grouped(
            template.clone(),
            &shards,
            &test,
            &fractions,
            &config,
            EDGE_GROUP_SIZE,
            pool,
        )
        .expect("round trains");
        assert!(outcome.final_accuracy() >= 0.0);
    });
    // The streaming reduce's live footprint: one f64 partial per
    // active group slot plus the global accumulator — a function of
    // the worker count and the model, never of N.
    let n_groups = n.div_ceil(EDGE_GROUP_SIZE);
    let slots = pool.workers().min(n_groups).max(1);
    let agg_buffer_bytes = (slots + 1) * template.param_count() * 8;
    Row {
        name: format!("fedavg_round_n{n}"),
        nums: vec![
            ("round_ms", round_ms),
            ("silos", n as f64),
            ("rounds_per_sec", 1000.0 / round_ms),
            ("agg_buffer_bytes", agg_buffer_bytes as f64),
        ],
    }
}

fn bench_batched_gemm(count: usize, repeats: usize, pool: &Pool) -> Row {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x7363_616c);
    let pairs: Vec<(Matrix, Matrix)> = (0..count)
        .map(|_| {
            let a = Matrix::from_fn(32, 64, |_, _| rng.gen_range(-1.0..1.0));
            let b = Matrix::from_fn(64, 96, |_, _| rng.gen_range(-1.0..1.0));
            (a, b)
        })
        .collect();
    let ops: Vec<(&Matrix, &Matrix)> = pairs.iter().map(|(a, b)| (a, b)).collect();
    let mut outs_serial: Vec<Matrix> = (0..count).map(|_| Matrix::zeros(0, 0)).collect();
    let mut outs_batched: Vec<Matrix> = (0..count).map(|_| Matrix::zeros(0, 0)).collect();
    let mut ws = kernel::Workspace::new();
    let mut run_serial = || {
        for ((a, b), out) in ops.iter().zip(outs_serial.iter_mut()) {
            kernel::matmul_into(a, b, out, &mut ws);
        }
    };
    let mut run_batched = || {
        kernel::matmul_batch_into_pooled(&ops, &mut outs_batched, pool);
    };
    let ms = time_interleaved_ms(repeats, &mut [&mut run_serial, &mut run_batched]);
    let (serial_ms, batched_ms) = (ms[0], ms[1]);
    Row {
        name: String::from("batched_gemm_32x64x96"),
        nums: vec![
            ("serial_ms", serial_ms),
            ("batched_ms", batched_ms),
            ("products", count as f64),
            ("batched_speedup", serial_ms / batched_ms),
        ],
    }
}

fn run_benches(fast: bool) -> Vec<Row> {
    let pool = Pool::new(WORKERS);
    let sizes: &[usize] = if fast { &[10, 100] } else { &[10, 100, 1000] };
    let repeats = if fast { 2 } else { 5 };
    let mut rows = Vec::new();
    for &n in sizes {
        rows.push(bench_dbr(n, repeats));
    }
    if !fast {
        rows.push(bench_dbr_sparse_10k(3));
        rows.push(bench_sparse_dense_agreement(1000, 3));
    }
    for &n in sizes {
        rows.push(bench_fedavg(n, repeats, &pool));
    }
    rows.push(bench_batched_gemm(if fast { 200 } else { 1000 }, repeats, &pool));
    rows
}

fn render_json(rows: &[Row], fast: bool) -> String {
    let host = host_parallelism();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", if fast { "fast" } else { "full" }));
    out.push_str(&format!("  \"workers\": {WORKERS},\n"));
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let mut line = format!("    {{\"name\": \"{}\"", row.name);
        for (key, value) in &row.nums {
            if value.fract() == 0.0 && value.abs() < 1e15 && !key.ends_with("_ms") {
                line.push_str(&format!(", \"{key}\": {}", *value as i64));
            } else {
                line.push_str(&format!(", \"{key}\": {value:.4}"));
            }
        }
        line.push_str(&format!("}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
        out.push_str(&line);
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `tradefl-bench-scale/v1` file: right schema, non-empty
/// rows, every `_ms` field positive and finite, and — when both rows
/// are present — the sub-quadratic DBR bound
/// `dbr_solve_n1000 ≤ DBR_SCALE_BOUND × dbr_solve_n100`.
fn check_baseline(text: &str) -> Result<usize, String> {
    let root = Json::parse(text)?;
    let schema = root.get("schema").and_then(Json::as_str).ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}' != '{SCHEMA}'"));
    }
    for key in ["workers", "host_parallelism"] {
        let v = root
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
        if v < 1.0 {
            return Err(format!("\"{key}\" = {v} < 1"));
        }
    }
    let benches = match root.get("benches") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("\"benches\" is empty".into()),
        _ => return Err("missing \"benches\" array".into()),
    };
    let mut solve_n100 = None;
    let mut solve_n1000 = None;
    let mut solve_n10000 = None;
    let mut resident_10k = None;
    let mut agreement = None;
    for (i, row) in benches.iter().enumerate() {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("bench {i}: missing \"name\""))?;
        let fields = row.as_obj().ok_or_else(|| format!("bench '{name}': not an object"))?;
        let mut timed = 0usize;
        for (key, value) in fields {
            if !key.ends_with("_ms") {
                continue;
            }
            let ms = value
                .as_num()
                .ok_or_else(|| format!("bench '{name}': \"{key}\" not numeric"))?;
            if !ms.is_finite() || ms <= 0.0 {
                return Err(format!("bench '{name}': \"{key}\" = {ms} not positive"));
            }
            timed += 1;
        }
        if timed == 0 {
            return Err(format!("bench '{name}': no \"_ms\" field"));
        }
        let solve = row.get("solve_ms").and_then(Json::as_num);
        match name {
            "dbr_solve_n100" => solve_n100 = solve,
            "dbr_solve_n1000" => solve_n1000 = solve,
            "dbr_solve_n10000" => {
                solve_n10000 = solve;
                resident_10k = Some(
                    row.get("rho_resident_bytes")
                        .and_then(Json::as_num)
                        .ok_or("dbr_solve_n10000: missing \"rho_resident_bytes\"")?,
                );
            }
            "dbr_sparse_agreement_n1000" => {
                agreement = Some(
                    row.get("bit_identical")
                        .and_then(Json::as_num)
                        .ok_or("dbr_sparse_agreement_n1000: missing \"bit_identical\"")?,
                );
            }
            _ => {}
        }
    }
    if let (Some(n100), Some(n1000)) = (solve_n100, solve_n1000) {
        if n1000 > DBR_SCALE_BOUND * n100 {
            return Err(format!(
                "dbr_solve_n1000 ({n1000:.3} ms) exceeds {DBR_SCALE_BOUND}x dbr_solve_n100 \
                 ({n100:.3} ms): the sweep is no longer sub-quadratic"
            ));
        }
    }
    if let (Some(n1000), Some(n10000)) = (solve_n1000, solve_n10000) {
        if n10000 > DBR_10K_SCALE_BOUND * n1000 {
            return Err(format!(
                "dbr_solve_n10000 ({n10000:.3} ms) exceeds {DBR_10K_SCALE_BOUND}x \
                 dbr_solve_n1000 ({n1000:.3} ms): the sparse sweep is no longer \
                 scaling in stored entries"
            ));
        }
    }
    if let Some(bytes) = resident_10k {
        if bytes > RHO_RESIDENT_MAX_BYTES {
            return Err(format!(
                "dbr_solve_n10000 holds {bytes:.0} resident rho bytes, over the \
                 {RHO_RESIDENT_MAX_BYTES:.0}-byte cap — the sparse representation \
                 has regressed toward dense"
            ));
        }
    }
    if let Some(flag) = agreement {
        if flag != 1.0 {
            return Err(
                "dbr_sparse_agreement_n1000: sparse and dense equilibria are no longer \
                 bit-identical"
                    .into(),
            );
        }
    }
    Ok(benches.len())
}

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = std::env::var("TRADEFL_BENCH_FAST").is_ok();
    let mut out_path = String::from("BENCH_scale.json");
    let mut check_path: Option<String> = None;
    let mut gate_paths: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => {
                out_path = it.next().expect("--out needs a path").clone();
            }
            "--check" => {
                check_path = Some(it.next().expect("--check needs a path").clone());
            }
            "--gate" => {
                let cur = it.next().expect("--gate needs CURRENT and COMMITTED").clone();
                let com = it.next().expect("--gate needs CURRENT and COMMITTED").clone();
                gate_paths = Some((cur, com));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some((cur, com)) = gate_paths {
        use tradefl_bench::json::{gate_files, GATE_TOLERANCE};
        match gate_files(&cur, &com, GATE_TOLERANCE) {
            Ok(n) => println!(
                "scale_baseline --gate: {cur} vs {com} OK ({n} medians within {GATE_TOLERANCE}x)"
            ),
            Err(e) => {
                eprintln!("scale_baseline --gate: {cur} vs {com} REGRESSION: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("scale_baseline --check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match check_baseline(&text) {
            Ok(n) => println!("scale_baseline --check: {path} OK ({n} benches)"),
            Err(e) => {
                eprintln!("scale_baseline --check: {path} MALFORMED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let rows = run_benches(fast);
    let json = render_json(&rows, fast);
    check_baseline(&json).expect("self-emitted baseline must validate");
    std::fs::write(&out_path, &json).expect("baseline file writes");
    println!("wrote {out_path}");
    for row in &rows {
        let rendered: Vec<String> =
            row.nums.iter().map(|(k, v)| format!("{k} {v:.4}")).collect();
        println!("  {:<24} {}", row.name, rendered.join("   "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_rows() -> Vec<Row> {
        vec![
            Row {
                name: String::from("dbr_solve_n100"),
                nums: vec![("solve_ms", 2.0), ("orgs", 100.0), ("iterations", 7.0)],
            },
            Row {
                name: String::from("dbr_solve_n1000"),
                nums: vec![("solve_ms", 30.0), ("orgs", 1000.0), ("iterations", 9.0)],
            },
            Row {
                name: String::from("fedavg_round_n100"),
                nums: vec![
                    ("round_ms", 12.0),
                    ("silos", 100.0),
                    ("rounds_per_sec", 83.3),
                    ("agg_buffer_bytes", 65536.0),
                ],
            },
        ]
    }

    #[test]
    fn checker_accepts_emitted_shape() {
        let json = render_json(&fake_rows(), false);
        assert_eq!(check_baseline(&json), Ok(3));
    }

    #[test]
    fn checker_enforces_the_sub_quadratic_dbr_bound() {
        let mut rows = fake_rows();
        rows[1].nums[0].1 = 2.0 * DBR_SCALE_BOUND * rows[0].nums[0].1 + 1.0;
        let json = render_json(&rows, false);
        let err = check_baseline(&json).unwrap_err();
        assert!(err.contains("sub-quadratic"), "{err}");
    }

    fn ten_k_rows() -> Vec<Row> {
        let mut rows = fake_rows();
        rows.push(Row {
            name: String::from("dbr_solve_n10000"),
            nums: vec![
                ("solve_ms", 200.0),
                ("orgs", 10000.0),
                ("iterations", 9.0),
                ("rho_nnz", 2_000_000.0),
                ("rho_resident_bytes", 33_000_000.0),
            ],
        });
        rows.push(Row {
            name: String::from("dbr_sparse_agreement_n1000"),
            nums: vec![
                ("dense_ms", 3.0),
                ("sparse_ms", 2.5),
                ("bit_identical", 1.0),
                ("dense_rho_bytes", 8_000_000.0),
                ("sparse_rho_bytes", 6_000_000.0),
            ],
        });
        rows
    }

    #[test]
    fn checker_accepts_the_ten_k_rows() {
        let json = render_json(&ten_k_rows(), false);
        assert_eq!(check_baseline(&json), Ok(5));
    }

    #[test]
    fn checker_enforces_the_ten_k_scale_bound() {
        let mut rows = ten_k_rows();
        rows[3].nums[0].1 = 2.0 * DBR_10K_SCALE_BOUND * rows[1].nums[0].1 + 1.0;
        let err = check_baseline(&render_json(&rows, false)).unwrap_err();
        assert!(err.contains("dbr_solve_n10000"), "{err}");
    }

    #[test]
    fn checker_enforces_the_resident_rho_cap() {
        let mut rows = ten_k_rows();
        rows[3].nums[4].1 = RHO_RESIDENT_MAX_BYTES + 1.0;
        let err = check_baseline(&render_json(&rows, false)).unwrap_err();
        assert!(err.contains("resident rho bytes"), "{err}");
    }

    #[test]
    fn checker_enforces_sparse_dense_bit_identity() {
        let mut rows = ten_k_rows();
        rows[4].nums[2].1 = 0.0;
        let err = check_baseline(&render_json(&rows, false)).unwrap_err();
        assert!(err.contains("bit-identical"), "{err}");
        // The field itself is mandatory on the agreement row.
        rows[4].nums.remove(2);
        let err = check_baseline(&render_json(&rows, false)).unwrap_err();
        assert!(err.contains("bit_identical"), "{err}");
    }

    #[test]
    fn checker_rejects_bad_schemas_and_rows() {
        assert!(check_baseline("not json").is_err());
        assert!(check_baseline("{\"schema\": \"tradefl-bench-gemm/v1\"}").is_err());
        assert!(check_baseline(
            "{\"schema\": \"tradefl-bench-scale/v1\", \"workers\": 4, \
             \"host_parallelism\": 1, \"benches\": [{\"name\": \"x\", \
             \"solve_ms\": -1.0}]}"
        )
        .is_err());
        assert!(check_baseline(
            "{\"schema\": \"tradefl-bench-scale/v1\", \"workers\": 4, \
             \"host_parallelism\": 1, \"benches\": [{\"name\": \"x\", \
             \"orgs\": 10}]}"
        )
        .is_err());
    }

    #[test]
    fn fast_mode_rows_are_a_subset_of_full_mode_rows() {
        // The CI gate compares fast-mode output against the committed
        // full-mode file; every fast row name must exist there.
        let fast_names = ["dbr_solve_n10", "dbr_solve_n100", "fedavg_round_n10",
            "fedavg_round_n100", "batched_gemm_32x64x96"];
        let full_names = ["dbr_solve_n10", "dbr_solve_n100", "dbr_solve_n1000",
            "dbr_solve_n10000", "dbr_sparse_agreement_n1000",
            "fedavg_round_n10", "fedavg_round_n100", "fedavg_round_n1000",
            "batched_gemm_32x64x96"];
        for name in fast_names {
            assert!(full_names.contains(&name), "{name} missing from full mode");
        }
    }
}
