//! **Fig. 15** — final global-model accuracy for all four
//! model×dataset pairs under each scheme's equilibrium contributions
//! (γ = γ*).
//!
//! Paper shape: DBR improves accuracy over GCA/WPR/FIP (up to +23.2%
//! relative on MobileNet-SVHN) and stays close to TOS.

use tradefl_bench::{check, finish, paper_game, train_at_equilibrium, Table, SEED};
use tradefl_fl_sim::data::DatasetKind;
use tradefl_fl_sim::fed::FedConfig;
use tradefl_fl_sim::model::ModelKind;
use tradefl_solver::baselines::solve_scheme;
use tradefl_solver::outcome::Scheme;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let game = paper_game(SEED);
    let schemes = [Scheme::Dbr, Scheme::Fip, Scheme::Wpr, Scheme::Gca, Scheme::Tos];
    let pairs = [
        (ModelKind::Resnet18Like, DatasetKind::Cifar10Like),
        (ModelKind::AlexnetLike, DatasetKind::FmnistLike),
        (ModelKind::MobilenetLike, DatasetKind::SvhnLike),
        (ModelKind::DensenetLike, DatasetKind::EurosatLike),
    ];
    let fed = FedConfig { rounds: 12, local_epochs: 1, batch_size: 32, lr: 0.1, seed: SEED };

    // Equilibrium fractions per scheme (computed once; the market does
    // not depend on the model/dataset pair).
    let fractions: Vec<Vec<f64>> = schemes
        .iter()
        .map(|&s| {
            let eq = solve_scheme(&game, s).expect("scheme solves");
            (0..game.market().len()).map(|i| eq.profile[i].d).collect()
        })
        .collect();

    let mut table = Table::new(
        "Fig. 15: final accuracy by scheme and model-dataset pair",
        &["pair", "DBR", "FIP", "WPR", "GCA", "TOS"],
    );
    let mut ok = true;
    let mut mobilenet_svhn_gain = 0.0f64;
    for (model, dataset) in pairs {
        let accs: Vec<f64> = fractions
            .iter()
            .map(|fr| {
                train_at_equilibrium(&game, fr, model, dataset, &fed, 1500, SEED)
                    .final_accuracy() as f64
            })
            .collect();
        let mut row = vec![format!("{model}/{dataset}")];
        row.extend(accs.iter().map(|a| format!("{a:.4}")));
        table.row(row);

        let (dbr, fip, wpr, gca, tos) = (accs[0], accs[1], accs[2], accs[3], accs[4]);
        ok &= check(
            &format!("{model}/{dataset}: DBR >= GCA ({dbr:.3} vs {gca:.3})"),
            dbr >= gca - 0.005,
        );
        ok &= check(
            &format!("{model}/{dataset}: DBR > WPR ({dbr:.3} vs {wpr:.3})"),
            dbr > wpr,
        );
        ok &= check(
            &format!("{model}/{dataset}: DBR close to TOS ({dbr:.3} vs {tos:.3})"),
            dbr >= tos - 0.06,
        );
        ok &= check(
            &format!("{model}/{dataset}: DBR >= FIP - eps ({dbr:.3} vs {fip:.3})"),
            dbr >= fip - 0.02,
        );
        if model == ModelKind::MobilenetLike {
            mobilenet_svhn_gain = (dbr - gca) / gca * 100.0;
        }
    }
    table.print();
    println!(
        "\nDBR over GCA on MobileNet/SVHN: +{mobilenet_svhn_gain:.1}% relative accuracy (paper: up to +23.2%)"
    );
    ok &= check(
        &format!("DBR improves accuracy over GCA on MobileNet/SVHN (+{mobilenet_svhn_gain:.1}%)"),
        mobilenet_svhn_gain > 0.0,
    );
    finish(ok);
}
