//! **Table II** — experimental parameters.
//!
//! Prints the configured parameter ranges (matching the paper's table)
//! and a concrete sampled market, verifying each sampled value falls in
//! its range.

use tradefl_bench::{check, finish, Table, SEED};
use tradefl_core::config::MarketConfig;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let config = MarketConfig::table_ii();
    let mut table = Table::new("Table II: experimental parameters", &["parameter", "value"]);
    table.row(vec!["|N|".into(), config.orgs.to_string()]);
    table.row(vec!["D_min".into(), config.params.d_min.to_string()]);
    table.row(vec![
        "p_i".into(),
        format!("[{}, {}]", config.profitability.0, config.profitability.1),
    ]);
    table.row(vec![
        "s_i (bits)".into(),
        format!("[{:.1e}, {:.1e}]", config.data_bits.0, config.data_bits.1),
    ]);
    table.row(vec![
        "|S_i|".into(),
        format!("[{}, {}]", config.samples.0, config.samples.1),
    ]);
    table.row(vec!["kappa".into(), format!("{:.0e}", config.params.kappa)]);
    table.row(vec![
        "F_i^(m)".into(),
        format!("[{:.1}, {:.1}] GHz", config.f_max.0 / 1e9, config.f_max.1 / 1e9),
    ]);
    table.row(vec!["gamma*".into(), format!("{:.2e}", config.params.gamma)]);
    table.row(vec!["lambda".into(), config.params.lambda.to_string()]);
    table.row(vec!["omega_e".into(), config.params.omega_e.to_string()]);
    table.row(vec!["tau (s)".into(), config.params.tau.to_string()]);
    table.row(vec!["rho mean (mu)".into(), config.rho_mean.to_string()]);
    table.print();

    let market = config.build(SEED).unwrap();
    let mut sampled = Table::new(
        format!("sampled market (seed {SEED})"),
        &["org", "p_i", "s_i (Gbit)", "|S_i|", "F^(m) (GHz)", "eta", "z_i"],
    );
    let mut ok = true;
    for (i, org) in market.orgs().iter().enumerate() {
        sampled.row(vec![
            org.name().to_string(),
            format!("{:.0}", org.profitability()),
            format!("{:.1}", org.data_bits() / 1e9),
            org.samples().to_string(),
            format!("{:.2}", org.max_frequency() / 1e9),
            format!("{:.0}", org.eta()),
            format!("{:.0}", market.weight(i)),
        ]);
        ok &= org.profitability() >= 500.0 && org.profitability() <= 2500.0;
        ok &= org.data_bits() >= 15e9 && org.data_bits() <= 25e9;
        ok &= (1000..=2000).contains(&org.samples());
        ok &= org.max_frequency() >= 3e9 && org.max_frequency() <= 5e9;
        ok &= market.weight(i) > 0.0;
    }
    sampled.print();
    let ok = check("all sampled parameters within Table II ranges, z_i > 0", ok);
    finish(ok);
}
