//! **Fig. 10** — social welfare vs γ for several mean competition
//! intensities μ (with `ρ_{i,j} ~ N(μ, (μ/5)²)`).
//!
//! Paper shape: welfare surges to its maximum at `γ* ≈ 5.12·10⁻⁹` and
//! then drops (non-monotone), and welfare decreases as μ rises.

use tradefl_bench::{check, finish, game_with, Table, GAMMA_GRID, GAMMA_STAR, SEED};
use tradefl_core::config::MarketConfig;
use tradefl_solver::dbr::DbrSolver;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let omega_e = MarketConfig::table_ii().params.omega_e;
    // Sweep μ from the calibrated default upward. The z_i > 0 rescaling
    // required by Theorem 1 saturates ρ near μ ≈ 0.05 for Table II's
    // profitability range, so the meaningful band is [0.03, 0.045].
    let mus = [0.03, 0.0375, 0.045];
    let mut table = Table::new(
        "Fig. 10: social welfare vs gamma for several mu (DBR)",
        &["gamma", "mu=0.03", "mu=0.0375", "mu=0.045"],
    );
    let mut grid: Vec<Vec<f64>> = vec![Vec::new(); mus.len()];
    for &gamma in &GAMMA_GRID {
        let mut row = vec![format!("{gamma:.2e}")];
        for (k, &mu) in mus.iter().enumerate() {
            let game = game_with(gamma, mu, omega_e, SEED);
            let eq = DbrSolver::new().solve(&game).expect("dbr converges");
            row.push(format!("{:.1}", eq.welfare));
            grid[k].push(eq.welfare);
        }
        table.row(row);
    }
    table.print();

    let mut ok = true;
    for (k, &mu) in mus.iter().enumerate() {
        let series = &grid[k];
        let (peak_idx, peak) = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let peak_gamma = GAMMA_GRID[peak_idx];
        println!(
            "mu={mu}: peak welfare {:.1} at gamma {:.2e}, endpoint {:.1}",
            peak, peak_gamma, series.last().unwrap()
        );
        ok &= check(
            &format!("mu={mu}: welfare is non-monotone with an interior peak"),
            peak_idx > 0 && peak_idx < series.len() - 1,
        );
        ok &= check(
            &format!("mu={mu}: welfare at the end of the sweep is below the peak"),
            *series.last().unwrap() < *peak,
        );
    }
    // The default-mu curve peaks at the paper's gamma*.
    let default_series = &grid[0];
    let peak_idx = default_series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    ok &= check(
        &format!(
            "default mu peaks at gamma* = {GAMMA_STAR:.2e} (measured {:.2e})",
            GAMMA_GRID[peak_idx]
        ),
        (GAMMA_GRID[peak_idx] - GAMMA_STAR).abs() < 1e-12,
    );
    // Welfare decreases with mu at gamma*.
    let star = 4;
    ok &= check(
        "welfare decreases as mu increases (at gamma*)",
        grid[0][star] > grid[1][star] && grid[1][star] > grid[2][star],
    );
    finish(ok);
}
