//! **Fig. 6** — social welfare under different schemes.
//!
//! Paper shape: CGBD attains the highest social welfare, followed by
//! DBR; WPR, FIP and GCA trail (WPR lacks compensation, FIP is grid-
//! restricted, GCA ties compute greedily to data).

use tradefl_bench::{check, finish, paper_game, Table, SEED};
use tradefl_solver::baselines::solve_scheme;
use tradefl_solver::outcome::Scheme;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let game = paper_game(SEED);
    let schemes = [Scheme::Cgbd, Scheme::Dbr, Scheme::Wpr, Scheme::Fip, Scheme::Gca];
    let outcomes: Vec<_> = schemes
        .iter()
        .map(|&s| solve_scheme(&game, s).expect("scheme solves"))
        .collect();

    let mut table = Table::new(
        "Fig. 6: social welfare by scheme",
        &["scheme", "welfare", "sum d_i", "damage", "potential"],
    );
    for o in &outcomes {
        table.row(vec![
            o.scheme.label().into(),
            format!("{:.1}", o.welfare),
            format!("{:.3}", o.total_fraction),
            format!("{:.2}", o.total_damage),
            format!("{:.4}", o.potential),
        ]);
    }
    table.print();

    let w = |s: Scheme| outcomes.iter().find(|o| o.scheme == s).unwrap().welfare;
    let mut ok = true;
    // The potential-maximizing schemes must dominate on welfare; allow
    // CGBD ≈ DBR (they find the same NE when it is unique).
    let top = w(Scheme::Cgbd).max(w(Scheme::Dbr));
    let tol = 1e-4 * top.abs();
    ok &= check(
        "CGBD/DBR welfare beats WPR (compensation matters)",
        top > w(Scheme::Wpr) + tol,
    );
    ok &= check("CGBD/DBR welfare >= FIP", top >= w(Scheme::Fip) - tol);
    ok &= check("CGBD/DBR welfare >= GCA", top >= w(Scheme::Gca) - tol);
    ok &= check(
        "CGBD and DBR agree closely",
        (w(Scheme::Cgbd) - w(Scheme::Dbr)).abs() <= 0.02 * top.abs(),
    );
    ok &= check(
        "WPR contributes the least data",
        outcomes
            .iter()
            .all(|o| o.scheme == Scheme::Wpr || o.total_fraction
                >= outcomes.iter().find(|x| x.scheme == Scheme::Wpr).unwrap().total_fraction),
    );
    finish(ok);
}
