//! **Extension experiment: synchronous vs asynchronous training and
//! data heterogeneity.**
//!
//! Footnote 2 claims TradeFL applies to asynchronous scenarios and
//! footnote 4 assumes i.i.d. silos; this harness measures both ends:
//!
//! * sync FedAvg vs staleness-weighted async at the same equilibrium
//!   contributions and a matched update budget;
//! * accuracy as the Dirichlet label skew grows (β sweep).

use tradefl_bench::{check, finish, paper_game, Table, SEED};
use tradefl_fl_sim::async_fed::{train_async, AsyncConfig, OrgTiming};
use tradefl_fl_sim::data::{dirichlet_shard, generate, label_skew, DatasetKind};
use tradefl_fl_sim::fed::{train_federated, FedConfig};
use tradefl_fl_sim::model::{Mlp, ModelKind};
use tradefl_solver::dbr::DbrSolver;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let game = paper_game(SEED);
    let eq = DbrSolver::new().solve(&game).expect("dbr converges");
    let market = game.market();
    let n = market.len();
    let fractions: Vec<f64> = (0..n).map(|i| eq.profile[i].d).collect();

    // Shared pool and shards.
    let mut sizes: Vec<usize> = market.orgs().iter().map(|o| o.samples()).collect();
    let total: usize = sizes.iter().sum();
    sizes.push(1500);
    let pool = generate(DatasetKind::SvhnLike, total + 1500, SEED ^ 0xda7a);
    let mut shards = pool.shard(&sizes);
    let test = shards.pop().expect("test shard");

    // --- Part 1: sync vs async at matched budgets -------------------
    let rounds = 10;
    let fed = FedConfig { rounds, local_epochs: 1, batch_size: 32, lr: 0.1, seed: SEED };
    let sync = train_federated(
        Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, SEED),
        &shards,
        &test,
        &fractions,
        &fed,
    )
    .expect("sync trains");

    let timings: Vec<OrgTiming> = (0..n)
        .map(|i| {
            let org = market.org(i);
            OrgTiming {
                comm: org.comm_time(),
                compute: org
                    .training_time(eq.profile[i].d, org.frequency(eq.profile[i].level)),
            }
        })
        .collect();
    // Match the *time* budget of synchronous training: the sync barrier
    // waits for the slowest organization each round.
    let slowest = timings.iter().map(OrgTiming::latency).fold(0.0f64, f64::max);
    let async_cfg = AsyncConfig {
        updates: 100_000,
        time_budget: Some(slowest * rounds as f64),
        seed: SEED,
        lr: 0.1,
        batch_size: 32,
        local_epochs: 1,
        ..AsyncConfig::default()
    };
    let asynch = train_async(
        Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, SEED),
        &shards,
        &test,
        &fractions,
        &timings,
        &async_cfg,
    )
    .expect("async trains");

    let mut t = Table::new(
        "sync FedAvg vs staleness-weighted async (equilibrium contributions)",
        &["mode", "updates", "final loss", "final acc", "max staleness"],
    );
    t.row(vec![
        "sync".into(),
        format!("{rounds} rounds"),
        format!("{:.4}", sync.final_loss()),
        format!("{:.4}", sync.final_accuracy()),
        "-".into(),
    ]);
    t.row(vec![
        "async".into(),
        format!("{} updates", asynch.updates.len()),
        format!("{:.4}", asynch.final_loss()),
        format!("{:.4}", asynch.final_accuracy()),
        asynch.max_staleness().to_string(),
    ]);
    t.print();

    let mut ok = true;
    ok &= check(
        "both modes improve over the untrained model",
        sync.final_accuracy() > sync.history[0].accuracy + 0.03
            && asynch.final_accuracy() > asynch.history[0].accuracy + 0.03,
    );
    ok &= check(
        &format!(
            "async stays within 0.05 accuracy of sync ({:.3} vs {:.3})",
            asynch.final_accuracy(),
            sync.final_accuracy()
        ),
        (asynch.final_accuracy() - sync.final_accuracy()).abs() < 0.05,
    );
    ok &= check(
        "heterogeneous latencies produced stale updates (the async regime is real)",
        asynch.max_staleness() > 0,
    );

    // --- Part 2: non-i.i.d. label skew ------------------------------
    let mut t = Table::new(
        "accuracy vs Dirichlet label skew (sync FedAvg, full contributions)",
        &["beta", "label skew", "final acc"],
    );
    let org_sizes: Vec<usize> = market.orgs().iter().map(|o| o.samples()).collect();
    let mut accs = Vec::new();
    for &beta in &[100.0, 1.0, 0.1] {
        let shards = dirichlet_shard(&pool.take(total), &org_sizes, beta, SEED);
        let skew = label_skew(&shards);
        let out = train_federated(
            Mlp::for_kind(ModelKind::MobilenetLike, test.dim(), test.classes, SEED),
            &shards,
            &test,
            &vec![1.0; n],
            &fed,
        )
        .expect("trains");
        t.row(vec![
            format!("{beta}"),
            format!("{skew:.3}"),
            format!("{:.4}", out.final_accuracy()),
        ]);
        accs.push((skew, out.final_accuracy()));
    }
    t.print();
    ok &= check(
        "label skew grows as beta shrinks",
        accs[0].0 < accs[1].0 && accs[1].0 < accs[2].0,
    );
    ok &= check(
        &format!(
            "extreme skew costs accuracy vs iid ({:.3} vs {:.3})",
            accs[2].1, accs[0].1
        ),
        accs[2].1 <= accs[0].1 + 0.01,
    );
    finish(ok);
}
