//! **Extension experiment: trading-rule payments vs Shapley-fair
//! shares.**
//!
//! Eq. (9) pays for *raw contributed volume*; the Shapley value of the
//! accuracy coalition game pays for *marginal model improvement*. This
//! harness measures how closely the two align at the DBR equilibrium —
//! on homogeneous-quality markets they should correlate strongly
//! (volume ≈ usefulness), and with heterogeneous quality the
//! volume-priced rule visibly over-pays the low-quality cohort relative
//! to its Shapley share.

use tradefl_bench::{check, finish, Table, SEED};
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::contribution::shapley_accuracy;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::market::{Market, MechanismParams};
use tradefl_core::org::Organization;
use tradefl_solver::dbr::DbrSolver;

fn spearman_like(a: &[f64], b: &[f64]) -> f64 {
    // Pearson correlation on ranks (simple tie-free ranking).
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&x, &y| v[x].total_cmp(&v[y]));
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        cov += (ra[i] - mean) * (rb[i] - mean);
        va += (ra[i] - mean).powi(2);
        vb += (rb[i] - mean).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let mut ok = true;

    // --- Homogeneous quality: volume pricing tracks Shapley ---------
    let market = MarketConfig::table_ii().with_orgs(8).build(SEED).unwrap();
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let eq = DbrSolver::new().solve(&game).expect("dbr converges");
    let shapley = shapley_accuracy(&game, &eq.profile);
    let volumes: Vec<f64> = (0..8)
        .map(|i| eq.profile[i].d * game.market().org(i).data_bits())
        .collect();
    let mut t = Table::new(
        "homogeneous quality: contributed volume vs Shapley value (DBR equilibrium)",
        &["org", "d_i", "volume (Gbit)", "shapley", "share"],
    );
    let shares = shapley.shares();
    for i in 0..8 {
        t.row(vec![
            format!("org-{i}"),
            format!("{:.3}", eq.profile[i].d),
            format!("{:.1}", volumes[i] / 1e9),
            format!("{:.5}", shapley.values[i]),
            format!("{:.3}", shares[i]),
        ]);
    }
    t.print();
    let corr = spearman_like(&volumes, &shapley.values);
    println!("rank correlation(volume, shapley) = {corr:.3}");
    ok &= check(
        &format!("with homogeneous quality, volume pricing ranks like Shapley (corr {corr:.2})"),
        corr > 0.9,
    );
    ok &= check(
        "Shapley efficiency: values sum to the clamped accuracy gain",
        (shapley.values.iter().sum::<f64>()
            - (shapley.grand_value - shapley.empty_value))
            .abs()
            < 1e-9,
    );

    // --- Heterogeneous quality: volume pricing over-pays junk -------
    let orgs: Vec<Organization> = (0..6)
        .map(|i| {
            Organization::builder(format!("org-{i}"))
                .data_bits(20e9)
                .profitability(1500.0)
                .eta(100.0)
                .quality(if i < 3 { 1.0 } else { 0.4 })
                .compute_levels(vec![1.6e9, 2.4e9, 3.2e9, 4.0e9])
                .build()
                .unwrap()
        })
        .collect();
    let rho: Vec<Vec<f64>> = (0..6)
        .map(|i| (0..6).map(|j| if i == j { 0.0 } else { 0.03 }).collect())
        .collect();
    let market = Market::new(orgs, rho, MechanismParams::paper_default()).unwrap();
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let eq = DbrSolver::new().solve(&game).expect("dbr converges");
    let shapley = shapley_accuracy(&game, &eq.profile);
    let shares = shapley.shares();
    let raw_volume: Vec<f64> = (0..6)
        .map(|i| eq.profile[i].d * game.market().org(i).data_bits())
        .collect();
    let volume_total: f64 = raw_volume.iter().sum();
    let mut t = Table::new(
        "heterogeneous quality (orgs 3-5 at theta=0.4): payment shares",
        &["org", "theta", "volume share (Eq.9 basis)", "shapley share"],
    );
    for i in 0..6 {
        t.row(vec![
            format!("org-{i}"),
            if i < 3 { "1.0".into() } else { "0.4".into() },
            format!("{:.3}", raw_volume[i] / volume_total),
            format!("{:.3}", shares[i]),
        ]);
    }
    t.print();
    let low_volume_share: f64 = (3..6).map(|i| raw_volume[i] / volume_total).sum();
    let low_shapley_share: f64 = (3..6).map(|i| shares[i]).sum();
    println!(
        "low-quality cohort: volume share {low_volume_share:.3} vs shapley share {low_shapley_share:.3}"
    );
    ok &= check(
        &format!(
            "volume pricing over-credits the low-quality cohort ({low_volume_share:.2} > {low_shapley_share:.2})"
        ),
        low_volume_share > low_shapley_share + 0.03,
    );
    finish(ok);
}
