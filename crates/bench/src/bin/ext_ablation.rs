//! **Extension experiment: design-choice ablations (quality side).**
//!
//! The Criterion benches measure the *cost* of each design choice; this
//! harness measures the *quality*: solution values, iteration counts
//! and agreement between the alternatives DESIGN.md §8 lists.

use tradefl_bench::{check, finish, paper_game, Table, SEED};
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_solver::cgbd::{CgbdOptions, CgbdSolver};
use tradefl_solver::dbr::{DbrOptions, DbrSolver, UpdateOrder};
use tradefl_solver::gbd::MasterSearch;
use tradefl_solver::primal::PrimalProblem;

fn small_game(n: usize) -> CoopetitionGame<SqrtAccuracy> {
    let market = MarketConfig::table_ii().with_orgs(n).build(SEED).unwrap();
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let mut ok = true;

    // --- Ablation 1: master search (traversal vs coordinate descent) --
    let g = small_game(6); // 4^6 = 4096: traversal exact and affordable
    let traversal = CgbdSolver::with_options(CgbdOptions {
        master: MasterSearch::Traversal { cap: 10_000 },
        ..CgbdOptions::default()
    })
    .solve(&g)
    .expect("traversal cgbd");
    let cd = CgbdSolver::with_options(CgbdOptions {
        master: MasterSearch::CoordinateDescent { restarts: 12, max_sweeps: 30, seed: 1 },
        ..CgbdOptions::default()
    })
    .solve(&g)
    .expect("cd cgbd");
    let mut t = Table::new(
        "ablation 1: CGBD master search (6 orgs, 4^6 ladder space)",
        &["master", "potential", "iterations", "gap to exact"],
    );
    let exact = traversal.equilibrium.potential;
    for (name, r) in [("traversal", &traversal), ("coordinate descent", &cd)] {
        t.row(vec![
            name.into(),
            format!("{:.6}", r.equilibrium.potential),
            r.equilibrium.iterations.to_string(),
            format!("{:.2e}", (exact - r.equilibrium.potential).abs()),
        ]);
    }
    t.print();
    ok &= check(
        "coordinate-descent master matches the exact traversal within 0.1%",
        (exact - cd.equilibrium.potential).abs() <= 1e-3 * exact.abs(),
    );

    // --- Ablation 2: primal solver (interior point vs projected grad) --
    let g10 = paper_game(SEED);
    let levels: Vec<usize> =
        (0..10).map(|i| g10.market().org(i).compute_level_count() - 1).collect();
    let prob = PrimalProblem::new(&g10, &levels);
    let ip = prob.solve(1e-10).expect("ip");
    let pg = prob.solve_projected(1e-9, 20_000).expect("pg");
    let mut t = Table::new(
        "ablation 2: primal solver (10 orgs, fastest ladder)",
        &["solver", "U(d*)", "iterations"],
    );
    t.row(vec!["interior point".into(), format!("{:.8}", ip.value), ip.iterations.to_string()]);
    t.row(vec!["projected gradient".into(), format!("{:.8}", pg.value), pg.iterations.to_string()]);
    t.print();
    ok &= check(
        "both primal solvers agree on the optimum within 1e-4 relative",
        (ip.value - pg.value).abs() <= 1e-4 * ip.value.abs().max(1.0),
    );
    ok &= check(
        "the interior point method returns deadline multipliers (PG does not)",
        ip.multipliers.iter().any(|&u| u > 0.0) || ip.multipliers.iter().all(|&u| u >= 0.0),
    );

    // --- Ablation 3: DBR update order and damping -------------------
    let runs = [
        ("round-robin", DbrOptions::default()),
        (
            "shuffled",
            DbrOptions { order: UpdateOrder::Shuffled { seed: 5 }, ..DbrOptions::default() },
        ),
        ("damped 0.45", DbrOptions { damping: 0.45, ..DbrOptions::default() }),
        ("damped 0.2", DbrOptions { damping: 0.2, ..DbrOptions::default() }),
    ];
    let mut t = Table::new(
        "ablation 3: DBR variants (10 orgs)",
        &["variant", "potential", "welfare", "iterations"],
    );
    let mut potentials = Vec::new();
    for (name, opts) in runs {
        let eq = DbrSolver::with_options(opts).solve(&g10).expect("dbr variant");
        t.row(vec![
            name.into(),
            format!("{:.6}", eq.potential),
            format!("{:.1}", eq.welfare),
            eq.iterations.to_string(),
        ]);
        potentials.push((name, eq.potential, eq.iterations));
    }
    t.print();
    let base = potentials[0].1;
    ok &= check(
        "every DBR variant reaches the same potential plateau (±0.1%)",
        potentials.iter().all(|(_, p, _)| (p - base).abs() <= 1e-3 * base.abs()),
    );
    ok &= check(
        "damping strictly lengthens the path to equilibrium",
        potentials[3].2 > potentials[0].2,
    );
    finish(ok);
}
