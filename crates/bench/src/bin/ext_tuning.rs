//! **Extension experiment: adaptive γ tuning.**
//!
//! §VI closes with "an appropriate γ, e.g. γ*, helps maximize social
//! welfare under different competition intensities". This harness runs
//! the derivative-free tuner (`solver::tuning`) on markets with
//! different competition intensities μ and checks it recovers a
//! welfare-maximizing γ each time — the platform-side control loop the
//! paper implies but does not build.

use tradefl_bench::{check, finish, Table, GAMMA_STAR, SEED};
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_solver::dbr::DbrSolver;
use tradefl_solver::tuning::{tune_gamma, TuneOptions};

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let mut table = Table::new(
        "Extension: adaptive gamma tuning across competition intensities",
        &["mu", "tuned gamma", "welfare", "evals", "vs fixed gamma*"],
    );
    let mut ok = true;
    for &mu in &[0.02, 0.03, 0.045] {
        let market = MarketConfig::table_ii().with_rho_mean(mu).build(SEED).unwrap();
        let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let report = tune_gamma(&game, TuneOptions::default()).expect("tuner runs");
        // Welfare if the platform had just used the paper's fixed gamma*.
        let fixed = {
            let params = game.market().params().with_gamma(GAMMA_STAR);
            let tuned = game.with_params(params).unwrap();
            DbrSolver::new().solve(&tuned).unwrap().welfare
        };
        table.row(vec![
            format!("{mu}"),
            format!("{:.3e}", report.gamma_star),
            format!("{:.1}", report.welfare),
            report.samples.len().to_string(),
            format!("{:+.1}", report.welfare - fixed),
        ]);
        ok &= check(
            &format!("mu={mu}: tuned welfare >= fixed-gamma* welfare ({:.1} vs {fixed:.1})", report.welfare),
            report.welfare >= fixed - 1e-6 * fixed.abs(),
        );
        ok &= check(
            &format!("mu={mu}: tuned gamma is interior ({:.2e})", report.gamma_star),
            report.gamma_star > 0.0 && report.gamma_star < 1e-7,
        );
    }
    table.print();
    finish(ok);
}
