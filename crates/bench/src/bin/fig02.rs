//! **Fig. 2** — impact of `d_i` on the data-accuracy function
//! `P(d_i, d_-i)` (the pre-experiments of §III-C).
//!
//! For four model×dataset pairs, trains the federated global model at
//! increasing total data sizes (`|S^k| ∈ [2000, 20000]`, `d_-i = 0.5`
//! in spirit: everything else fixed), reports measured accuracy, and
//! fits the paper's `c₀ − c₁/√x` curve. Shape checks: accuracy is
//! increasing in the data volume with a muted (diminishing) growth
//! rate — i.e. Eq. (5) holds empirically.

use tradefl_bench::{check, finish, Table, SEED};
use tradefl_fl_sim::data::DatasetKind;
use tradefl_fl_sim::fed::FedConfig;
use tradefl_fl_sim::model::ModelKind;
use tradefl_fl_sim::probe::{measure_accuracy_curve, SqrtFit};

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let pairs = [
        (ModelKind::Resnet18Like, DatasetKind::Cifar10Like),
        (ModelKind::AlexnetLike, DatasetKind::FmnistLike),
        (ModelKind::MobilenetLike, DatasetKind::SvhnLike),
        (ModelKind::DensenetLike, DatasetKind::EurosatLike),
    ];
    let sizes = [2000usize, 4000, 8000, 14000, 20000];
    let config = FedConfig { rounds: 10, local_epochs: 1, batch_size: 32, lr: 0.1, seed: SEED };

    let mut ok = true;
    let mut fits = Table::new(
        "Fig. 2: fitted accuracy curves  acc(x) = c0 - c1/sqrt(x)",
        &["model", "dataset", "c0", "c1", "R^2"],
    );
    for (model, dataset) in pairs {
        let pts = measure_accuracy_curve(model, dataset, &sizes, 10, 1500, &config, SEED)
            .expect("probe runs");
        let mut table = Table::new(
            format!("{model} on {dataset}: accuracy vs total samples"),
            &["samples", "accuracy", "fitted"],
        );
        let fit = SqrtFit::fit(&pts);
        for p in &pts {
            table.row(vec![
                p.samples.to_string(),
                format!("{:.4}", p.accuracy),
                format!("{:.4}", fit.predict(p.samples as f64)),
            ]);
        }
        table.print();
        fits.row(vec![
            model.label().into(),
            dataset.label().into(),
            format!("{:.4}", fit.c0),
            format!("{:.4}", fit.c1),
            format!("{:.3}", fit.r_squared),
        ]);

        // Eq. (5) shape: increasing overall, diminishing increments.
        let first = pts.first().unwrap().accuracy;
        let last = pts.last().unwrap().accuracy;
        ok &= check(
            &format!("{model}/{dataset}: accuracy increases with data ({first:.3} -> {last:.3})"),
            last > first,
        );
        let early_gain = pts[1].accuracy - pts[0].accuracy;
        let late_gain = pts[4].accuracy - pts[3].accuracy;
        ok &= check(
            &format!(
                "{model}/{dataset}: growth rate is muted at scale (early {early_gain:+.3}, late {late_gain:+.3})"
            ),
            late_gain < early_gain + 0.02,
        );
        ok &= check(
            &format!("{model}/{dataset}: sqrt fit is increasing (c1 = {:.3} > 0)", fit.c1),
            fit.c1 > 0.0,
        );
    }
    fits.print();
    finish(ok);
}
