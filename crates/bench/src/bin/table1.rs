//! **Table I** — key functions in the proposed smart contract.
//!
//! Exercises every ABI function of the settlement contract on a live
//! private chain and reports the measured gas per call, reproducing the
//! paper's function inventory with this implementation's costs.

use tradefl_bench::{check, finish, fmt, Table, SEED};
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_ledger::settlement::SettlementSession;
use tradefl_solver::dbr::DbrSolver;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let market = MarketConfig::table_ii().with_orgs(5).build(SEED).unwrap();
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let equilibrium = DbrSolver::new().solve(&game).expect("dbr converges");
    let session = SettlementSession::deploy(&game).expect("deploys");
    let report = session.settle(&game, &equilibrium.profile).expect("settles");

    let descriptions = [
        ("register()", "Join the trading session", "Registered"),
        ("depositSubmit()", "Issue bonds to the contract", "DepositSubmitted"),
        ("contributionSubmit()", "Submit contribution", "ContributionSubmitted"),
        ("payoffCalculate()", "Calculate the payoff", "PayoffCalculated"),
        ("payoffTransfer()", "Perform payoff redistribution", "PayoffTransferred"),
        ("profileRecord()", "Record the contribution profile", "ProfileRecorded"),
    ];
    let mut table = Table::new(
        "Table I: key functions in the TradeFL smart contract",
        &["function", "description", "events emitted"],
    );
    let mut ok = true;
    for (func, desc, event) in descriptions {
        let count = session.web3().logs_by_event(event).len();
        table.row(vec![func.to_string(), desc.to_string(), count.to_string()]);
        ok &= check(&format!("{func} executed on-chain (emitted {count} {event})"), count > 0);
    }
    table.print();

    println!(
        "\nsettlement: total gas {}, chain height {}, max |on-chain − Eq.(10)| = {}",
        report.total_gas,
        report.chain_height,
        fmt(report.max_abs_error)
    );
    ok &= check("on-chain redistribution matches Eq. (10)", report.consistent(1e-3));
    ok &= check("chain verifies end-to-end", session.web3().verify_chain().is_ok());
    finish(ok);
}
