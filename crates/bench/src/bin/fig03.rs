//! **Fig. 3** — procedure of the proposed TradeFL based on
//! smart-contract: a step-by-step transcript of the three-stage
//! protocol (deposit → contribute → settle), plus the credibility
//! properties: immutability (tamper detection) and traceability
//! (arbitration from recorded events).

use tradefl_bench::{check, finish, Table, SEED};
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_ledger::settlement::SettlementSession;
use tradefl_ledger::tx::Value;
use tradefl_ledger::types::Wei;
use tradefl_solver::dbr::DbrSolver;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let market = MarketConfig::table_ii().with_orgs(3).build(SEED).unwrap();
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let eq = DbrSolver::new().solve(&game).expect("dbr converges");
    let session = SettlementSession::deploy(&game).expect("deploys");

    println!("step 0: contract deployed at {}", session.contract());
    let report = session.settle(&game, &eq.profile).expect("settles");
    let w3 = session.web3();

    let mut transcript = Table::new(
        "Fig. 3: on-chain procedure transcript",
        &["step", "event", "count", "example fields"],
    );
    for (step, event) in [
        ("1a", "Registered"),
        ("1b", "DepositSubmitted"),
        ("2", "ContributionSubmitted"),
        ("3a", "PayoffCalculated"),
        ("3b", "PayoffTransferred"),
        ("3c", "ProfileRecorded"),
    ] {
        let logs = w3.logs_by_event(event);
        let example = logs
            .first()
            .map(|l| {
                l.fields
                    .iter()
                    .map(|(k, v)| match v {
                        Value::Fixed(f) => format!("{k}={:.4}", f.to_f64()),
                        Value::I128(i) => format!("{k}={i}"),
                        Value::Addr(a) => format!("{k}={a}"),
                        other => format!("{k}={other:?}"),
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        transcript.row(vec![step.into(), event.into(), logs.len().to_string(), example]);
    }
    transcript.print();

    println!(
        "\nchain height {}, total settlement gas {}",
        report.chain_height, report.total_gas
    );

    let mut ok = true;
    // Credibility property 1: automatic, undeniable execution — the
    // refunds moved real balances.
    let refunds = w3.logs_by_event("PayoffTransferred");
    ok &= check("payoffTransfer executed automatically for every org", refunds.len() == 3);

    // Credibility property 2: immutability — tampering with a recorded
    // contribution is detected by chain verification.
    let tampered_ok = w3.with_node(|node| {
        let mut chain = node.chain().clone();
        // Rewrite history: change the value attached to the 2nd block's
        // first transaction in a cloned chain.
        let blocks = chain.blocks().len();
        assert!(blocks > 2);
        // Find a block with transactions.
        let target = (0..blocks)
            .find(|&i| !chain.block(i).unwrap().txs.is_empty())
            .expect("some block has txs");
        let mut serialized = chain.block(target).unwrap().clone();
        serialized.txs[0].value = Wei(987_654_321);
        // Rebuild the chain with the tampered block in place.
        let mut altered = tradefl_ledger::chain::Blockchain::new();
        for i in 0..blocks {
            let mut b = chain.block(i).unwrap().clone();
            if i == target {
                b = serialized.clone();
            }
            // push() validates; bypass by collecting errors.
            if altered.push(b).is_err() {
                return true; // tamper detected at insertion
            }
        }
        chain = altered;
        chain.verify().is_err()
    });
    ok &= check("tampering with a recorded contribution is detected", tampered_ok);

    // Credibility property 3: traceability — arbitration can replay the
    // full profile history from events alone.
    let profiles = w3.logs_by_event("ProfileRecorded");
    let mut arbitration = Table::new(
        "arbitration evidence (replayed from chain events)",
        &["org", "d", "f (GHz)", "R_i (payoff units)"],
    );
    for log in &profiles {
        let d = log.field("d").and_then(Value::as_fixed).map(|f| f.to_f64());
        let f_ghz = log.field("f_ghz").and_then(Value::as_fixed).map(|f| f.to_f64());
        let r = log
            .field("redistribution")
            .and_then(Value::as_fixed)
            .map(|f| f.to_f64());
        arbitration.row(vec![
            format!("{}", log.field("org").and_then(Value::as_addr).unwrap()),
            format!("{:.4}", d.unwrap_or(f64::NAN)),
            format!("{:.3}", f_ghz.unwrap_or(f64::NAN)),
            format!("{:.4}", r.unwrap_or(f64::NAN)),
        ]);
    }
    arbitration.print();
    ok &= check("profile history replayable from events", profiles.len() == 3);
    ok &= check(
        "recorded d match the equilibrium profile",
        profiles.iter().zip(0..3).all(|(log, _)| {
            let d = log.field("d").and_then(Value::as_fixed).unwrap().to_f64();
            (0..3).any(|i| (eq.profile[i].d - d).abs() < 1e-6)
        }),
    );
    finish(ok);
}
