//! **Fig. 4** — dynamics of the value of the potential function.
//!
//! Replays the per-iteration potential value for CGBD, DBR, FIP and GCA
//! on the Table II market. Paper shape: all schemes converge; CGBD
//! attains the largest final potential, with DBR a close second.

use tradefl_bench::{check, finish, fmt, paper_game, Table, SEED};
use tradefl_solver::baselines::solve_scheme;
use tradefl_solver::outcome::Scheme;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let game = paper_game(SEED);
    let schemes = [Scheme::Cgbd, Scheme::Dbr, Scheme::Fip, Scheme::Gca];
    let outcomes: Vec<_> = schemes
        .iter()
        .map(|&s| solve_scheme(&game, s).expect("scheme solves"))
        .collect();

    let max_len = outcomes.iter().map(|o| o.potential_trace.len()).max().unwrap();
    let mut table = Table::new(
        "Fig. 4: potential-function value per iteration",
        &["iter", "CGBD", "DBR", "FIP", "GCA"],
    );
    for k in 0..max_len {
        let mut row = vec![k.to_string()];
        for o in &outcomes {
            // Hold the final value once a scheme has converged.
            let v = o
                .potential_trace
                .get(k)
                .or(o.potential_trace.last())
                .copied()
                .unwrap_or(f64::NAN);
            row.push(fmt(v));
        }
        table.row(row);
    }
    table.print();

    let mut summary = Table::new("final potential", &["scheme", "U", "iterations"]);
    for o in &outcomes {
        summary.row(vec![o.scheme.label().into(), fmt(o.potential), o.iterations.to_string()]);
    }
    summary.print();

    let u = |s: Scheme| outcomes.iter().find(|o| o.scheme == s).unwrap().potential;
    let tol = 1e-6 * u(Scheme::Cgbd).abs().max(1.0);
    let mut ok = true;
    ok &= check("all schemes converge", outcomes.iter().all(|o| o.converged || o.scheme == Scheme::Cgbd));
    ok &= check(
        "CGBD achieves the largest potential value",
        u(Scheme::Cgbd) >= u(Scheme::Dbr) - tol
            && u(Scheme::Cgbd) >= u(Scheme::Fip) - tol
            && u(Scheme::Cgbd) >= u(Scheme::Gca) - tol,
    );
    ok &= check(
        "the CGBD-DBR gap is small (paper: 'rather small')",
        (u(Scheme::Cgbd) - u(Scheme::Dbr)).abs() <= 0.05 * u(Scheme::Cgbd).abs(),
    );
    ok &= check(
        "restricted baselines (FIP, GCA) do not beat DBR",
        u(Scheme::Dbr) >= u(Scheme::Fip) - tol && u(Scheme::Dbr) >= u(Scheme::Gca) - tol,
    );
    finish(ok);
}
