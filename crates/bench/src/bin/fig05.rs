//! **Fig. 5** — dynamics of organizations' payoffs under DBR.
//!
//! Prints each organization's payoff after every DBR round. Paper
//! shape: payoffs converge to the NE within a few tens of iterations.

use tradefl_bench::{check, finish, paper_game, Table, SEED};
use tradefl_solver::dbr::{DbrOptions, DbrSolver};

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let game = paper_game(SEED);
    // Damped best responses (κ = 0.45) reproduce the paper's gradual
    // multi-iteration convergence; exact best responses (κ = 1) reach
    // the same equilibrium in 2-3 rounds (checked at the end).
    let eq = DbrSolver::with_options(DbrOptions { damping: 0.45, ..DbrOptions::default() })
        .solve(&game)
        .expect("dbr converges");

    let n = game.market().len();
    let headers: Vec<String> = std::iter::once("iter".to_string())
        .chain((0..n).map(|i| format!("org-{i}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Fig. 5: per-organization payoff per DBR iteration", &header_refs);
    for (k, payoffs) in eq.payoff_traces.iter().enumerate() {
        let mut row = vec![k.to_string()];
        row.extend(payoffs.iter().map(|p| format!("{p:.1}")));
        table.row(row);
    }
    table.print();

    let mut ok = true;
    ok &= check("DBR converges to the NE", eq.converged);
    ok &= check(
        &format!("convergence within ~25 iterations (paper: ~25); took {}", eq.iterations),
        (5..=40).contains(&eq.iterations),
    );
    // Exact best responses land on the same plateau, just faster.
    let exact = DbrSolver::new().solve(&game).expect("exact dbr");
    ok &= check(
        &format!(
            "damped and exact dynamics reach the same potential ({:.4} vs {:.4})",
            eq.potential, exact.potential
        ),
        (eq.potential - exact.potential).abs() <= 1e-3 * exact.potential.abs().max(1.0),
    );
    // Payoffs settle: the last two rows agree.
    let rows = &eq.payoff_traces;
    let settled = rows[rows.len() - 1]
        .iter()
        .zip(&rows[rows.len() - 2])
        .all(|(a, b)| (a - b).abs() <= 1e-6 * a.abs().max(1.0));
    ok &= check("payoffs are settled at the fixed point", settled);
    // NE quality: no sampled unilateral deviation helps.
    let gain = game.best_sampled_deviation_gain(&eq.profile, 24);
    ok &= check(
        &format!("no sampled deviation improves any payoff (best gain {gain:.2e})"),
        gain < 1e-3 * eq.welfare.abs().max(1.0),
    );
    // Individual rationality at the NE (Theorem 2).
    let audit = tradefl_core::mechanism::MechanismAudit::evaluate(&game, &eq.profile);
    ok &= check(
        &format!("individual rationality at the NE (min payoff {:.1})", audit.min_payoff),
        audit.individually_rational(1e-9),
    );
    finish(ok);
}
