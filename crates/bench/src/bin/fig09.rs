//! **Fig. 9** — coopetition damage under different schemes as a
//! function of γ.
//!
//! Paper shape: "due to the marginal effect of data contribution, the
//! coopetition damage decreases as γ increases for all schemes except
//! WPR", and DBR attains the lowest damage.

use tradefl_bench::{check, finish, game_with, Table, GAMMA_GRID, SEED};
use tradefl_core::config::MarketConfig;
use tradefl_solver::baselines::solve_scheme;
use tradefl_solver::outcome::Scheme;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let mu = MarketConfig::table_ii().rho_mean;
    let omega_e = MarketConfig::table_ii().params.omega_e;
    let schemes = [Scheme::Dbr, Scheme::Wpr, Scheme::Fip, Scheme::Gca];
    let mut table = Table::new(
        "Fig. 9: total coopetition damage vs gamma by scheme",
        &["gamma", "DBR", "WPR", "FIP", "GCA"],
    );
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &gamma in &GAMMA_GRID {
        let game = game_with(gamma, mu, omega_e, SEED);
        let mut row = vec![format!("{gamma:.2e}")];
        for (k, &scheme) in schemes.iter().enumerate() {
            let eq = solve_scheme(&game, scheme).expect("scheme solves");
            row.push(format!("{:.3}", eq.total_damage));
            per_scheme[k].push(eq.total_damage);
        }
        table.row(row);
    }
    table.print();

    let mut ok = true;
    // Damage decreases (weakly) in gamma for the redistribution-aware
    // schemes; tolerate small non-monotonic blips from discrete levels.
    for (k, name) in [(0usize, "DBR"), (2, "FIP"), (3, "GCA")] {
        let d = &per_scheme[k];
        let decreasing_pairs = d.windows(2).filter(|w| w[1] <= w[0] * 1.02).count();
        ok &= check(
            &format!("{name} damage trends downward in gamma ({decreasing_pairs}/{} steps)", d.len() - 1),
            decreasing_pairs >= d.len() - 2 && d.last().unwrap() < d.first().unwrap(),
        );
    }
    // WPR is flat (gamma-invariant).
    let wpr = &per_scheme[1];
    ok &= check(
        "WPR damage does not respond to gamma",
        (wpr.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - wpr.iter().cloned().fold(f64::INFINITY, f64::min))
            <= 1e-6 * wpr[0].abs().max(1.0),
    );
    // DBR achieves the lowest damage at the largest gamma.
    let last = GAMMA_GRID.len() - 1;
    ok &= check(
        "DBR reaches the lowest damage among schemes at large gamma",
        (1..schemes.len()).all(|k| per_scheme[0][last] <= per_scheme[k][last] + 1e-9),
    );
    finish(ok);
}
