//! **Fig. 13** — training loss of the global model per round
//! (model-dataset pair A: ResNet-18 analog on CIFAR-10 analog),
//! comparing the schemes' equilibrium contributions at γ = γ*.
//!
//! Paper shape: DBR converges to a lower loss than FIP/WPR/GCA and
//! tracks TOS closely.

use tradefl_bench::run_loss_figure;
use tradefl_fl_sim::data::DatasetKind;
use tradefl_fl_sim::model::ModelKind;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    run_loss_figure("Fig. 13", ModelKind::Resnet18Like, DatasetKind::Cifar10Like);
}
