//! Records the market-engine perf baseline (`BENCH_engine.json`).
//!
//! Each row boots the persistent engine ([`tradefl_engine::Engine`])
//! on a workload shape — single session, multi-session, multi-session
//! under a seeded fault schedule — runs it to settlement, and records:
//!
//! * `setup_ms` — plan building (equilibrium solves) + network boot,
//! * `run_ms` — draining the whole event loop to settlement,
//! * `round_p99_ms` — p99 wall-clock latency of a block-producing
//!   event-loop step (sync + mine + archive apply + gossip fan-out),
//! * `settlements_per_sec` — scripted settlement transactions landed
//!   on-chain per wall-clock second of run time.
//!
//! Every run asserts full settlement and survivor convergence before
//! anything is recorded, so the baseline never times a broken engine.
//!
//! Usage:
//!   engine_baseline [--fast] [--out FILE]    # run benches, write JSON
//!   engine_baseline --check FILE             # validate a baseline file
//!   engine_baseline --gate CURRENT COMMITTED # regression gate
//!
//! `--fast` keeps the same workloads and only cuts the repeat count,
//! so the CI gate compares fast-mode medians against the committed
//! full-mode file like-for-like.

use std::time::Instant;
use tradefl_bench::json::Json;
use tradefl_engine::{Engine, EngineConfig, SessionSpec};
use tradefl_runtime::sim::faults::FaultConfig;
use tradefl_runtime::sync::pool::host_parallelism;

const SCHEMA: &str = "tradefl-bench-engine/v1";
const HORIZON: u64 = 1 << 10;
const SEED: u64 = 42;

struct Spec {
    name: &'static str,
    sessions: usize,
    validators: usize,
    faulty: bool,
}

const SPECS: &[Spec] = &[
    Spec { name: "single_session_3v", sessions: 1, validators: 3, faulty: false },
    Spec { name: "multi_session_4v", sessions: 3, validators: 4, faulty: false },
    Spec { name: "multi_session_4v_faulty", sessions: 3, validators: 4, faulty: true },
];

fn config_for(spec: &Spec) -> EngineConfig {
    EngineConfig {
        validators: spec.validators,
        sessions: (0..spec.sessions)
            .map(|s| SessionSpec {
                name: format!("bench-{s}"),
                orgs: 3 + s % 3,
                seed: SEED.wrapping_add(s as u64),
            })
            .collect(),
        batch_interval: 8,
        mean_arrival_gap: 3.0,
        admission_capacity: 32,
        horizon: HORIZON,
        faults: if spec.faulty {
            FaultConfig::from_seed(SEED, spec.validators, HORIZON)
        } else {
            FaultConfig::none()
        },
        ..EngineConfig::default()
    }
}

struct EngineRow {
    spec: &'static Spec,
    blocks: u64,
    txs: usize,
    setup_ms: f64,
    run_ms: f64,
    round_p99_ms: f64,
    settlements_per_sec: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn p99(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let idx = ((samples.len() as f64 * 0.99).ceil() as usize).clamp(1, samples.len());
    samples[idx - 1]
}

fn run_benches(fast: bool) -> Vec<EngineRow> {
    let repeats = if fast { 3 } else { 9 };
    let mut rows = Vec::new();
    for spec in SPECS {
        let mut setup_samples = Vec::with_capacity(repeats);
        let mut run_samples = Vec::with_capacity(repeats);
        let mut round_samples = Vec::new();
        let mut blocks = 0u64;
        let mut txs = 0usize;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let mut engine =
                Engine::new(config_for(spec), SEED).expect("bench engine boots");
            setup_samples.push(t0.elapsed().as_secs_f64() * 1e3);

            txs = (0..spec.sessions)
                .map(|s| 4 * (3 + s % 3) + 2) // the Fig. 3 script length
                .sum();
            let t0 = Instant::now();
            loop {
                let height_before = engine.height();
                let ts = Instant::now();
                let more = engine.step().expect("bench run completes");
                if engine.height() > height_before {
                    round_samples.push(ts.elapsed().as_secs_f64() * 1e3);
                }
                if !more {
                    break;
                }
            }
            run_samples.push(t0.elapsed().as_secs_f64() * 1e3);
            let report = engine.report().expect("bench report");
            assert!(
                report.fully_settled(),
                "{}: bench workload must settle and converge: {report:?}",
                spec.name
            );
            blocks = report.blocks;
        }
        let run_ms = median(&mut run_samples);
        rows.push(EngineRow {
            spec,
            blocks,
            txs,
            setup_ms: median(&mut setup_samples),
            run_ms,
            round_p99_ms: p99(&mut round_samples),
            settlements_per_sec: txs as f64 / (run_ms / 1e3),
        });
    }
    rows
}

fn render_json(rows: &[EngineRow], fast: bool, repeats_note: &str) -> String {
    let host = host_parallelism();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", if fast { "fast" } else { "full" }));
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"repeats\": \"{repeats_note}\",\n"));
    out.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"sessions\": {}, \"validators\": {}, \
             \"blocks\": {}, \"txs\": {}, \"setup_ms\": {:.3}, \"run_ms\": {:.3}, \
             \"round_p99_ms\": {:.4}, \"settlements_per_sec\": {:.1}}}{}\n",
            row.spec.name,
            row.spec.sessions,
            row.spec.validators,
            row.blocks,
            row.txs,
            row.setup_ms,
            row.run_ms,
            row.round_p99_ms,
            row.settlements_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `tradefl-bench-engine/v1` file: right schema, non-empty
/// rows, positive finite timings, and a `settlements_per_sec`
/// consistent with `txs / run_ms`.
fn check_baseline(text: &str) -> Result<usize, String> {
    let root = Json::parse(text)?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}' != '{SCHEMA}'"));
    }
    let benches = match root.get("benches") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("\"benches\" is empty".into()),
        _ => return Err("missing \"benches\" array".into()),
    };
    for (i, row) in benches.iter().enumerate() {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("bench {i}: missing \"name\""))?;
        for key in ["sessions", "validators", "blocks", "txs"] {
            let v = row
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("bench '{name}': missing \"{key}\""))?;
            if v < 1.0 {
                return Err(format!("bench '{name}': \"{key}\" = {v} < 1"));
            }
        }
        let mut nums = [0.0f64; 4];
        let keys = ["setup_ms", "run_ms", "round_p99_ms", "settlements_per_sec"];
        for (slot, key) in nums.iter_mut().zip(keys) {
            *slot = row
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("bench '{name}': missing \"{key}\""))?;
            if !slot.is_finite() || *slot <= 0.0 {
                return Err(format!("bench '{name}': \"{key}\" = {slot} not positive"));
            }
        }
        let txs = row.get("txs").and_then(Json::as_num).unwrap_or(0.0);
        let implied = txs / (nums[1] / 1e3);
        if (implied - nums[3]).abs() > 0.05 * implied.abs().max(1.0) {
            return Err(format!(
                "bench '{name}': settlements_per_sec {} inconsistent with {implied:.1}",
                nums[3]
            ));
        }
        if nums[2] > nums[1] {
            return Err(format!(
                "bench '{name}': round_p99_ms {} exceeds run_ms {}",
                nums[2], nums[1]
            ));
        }
    }
    Ok(benches.len())
}

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = std::env::var("TRADEFL_BENCH_FAST").is_ok();
    let mut out_path = String::from("BENCH_engine.json");
    let mut check_path: Option<String> = None;
    let mut gate_paths: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => {
                out_path = it.next().expect("--out needs a path").clone();
            }
            "--check" => {
                check_path = Some(it.next().expect("--check needs a path").clone());
            }
            "--gate" => {
                let cur = it.next().expect("--gate needs CURRENT and COMMITTED").clone();
                let com = it.next().expect("--gate needs CURRENT and COMMITTED").clone();
                gate_paths = Some((cur, com));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some((cur, com)) = gate_paths {
        use tradefl_bench::json::{gate_files, GATE_TOLERANCE};
        match gate_files(&cur, &com, GATE_TOLERANCE) {
            Ok(n) => println!(
                "engine_baseline --gate: {cur} vs {com} OK ({n} medians within {GATE_TOLERANCE}x)"
            ),
            Err(e) => {
                eprintln!("engine_baseline --gate: {cur} vs {com} REGRESSION: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("engine_baseline --check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match check_baseline(&text) {
            Ok(n) => println!("engine_baseline --check: {path} OK ({n} benches)"),
            Err(e) => {
                eprintln!("engine_baseline --check: {path} MALFORMED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let repeats_note = if fast { "median of 3 (fast)" } else { "median of 9" };
    let rows = run_benches(fast);
    let json = render_json(&rows, fast, repeats_note);
    check_baseline(&json).expect("self-emitted baseline must validate");
    std::fs::write(&out_path, &json).expect("baseline file writes");
    println!("wrote {out_path}");
    for row in &rows {
        println!(
            "  {:<26} setup {:>8.2} ms   run {:>8.2} ms   round p99 {:>7.3} ms   {:>8.1} settlements/s",
            row.spec.name, row.setup_ms, row.run_ms, row.round_p99_ms, row.settlements_per_sec
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_accepts_emitted_shape() {
        let rows = vec![
            EngineRow {
                spec: &SPECS[0],
                blocks: 9,
                txs: 14,
                setup_ms: 5.0,
                run_ms: 2.0,
                round_p99_ms: 0.5,
                settlements_per_sec: 14.0 / (2.0 / 1e3),
            },
            EngineRow {
                spec: &SPECS[1],
                blocks: 12,
                txs: 48,
                setup_ms: 15.0,
                run_ms: 6.0,
                round_p99_ms: 0.9,
                settlements_per_sec: 48.0 / (6.0 / 1e3),
            },
        ];
        let json = render_json(&rows, true, "median of 3 (fast)");
        assert_eq!(check_baseline(&json), Ok(2));
    }

    #[test]
    fn checker_rejects_bad_schemas_and_inconsistent_rows() {
        assert!(check_baseline("not json").is_err());
        assert!(check_baseline("{\"schema\": \"tradefl-bench-gemm/v1\"}").is_err());
        // settlements_per_sec inconsistent with txs / run_ms.
        assert!(check_baseline(
            "{\"schema\": \"tradefl-bench-engine/v1\", \"benches\": [{\
             \"name\": \"x\", \"sessions\": 1, \"validators\": 3, \"blocks\": 2, \
             \"txs\": 14, \"setup_ms\": 5.0, \"run_ms\": 2.0, \
             \"round_p99_ms\": 0.5, \"settlements_per_sec\": 1.0}]}"
        )
        .is_err());
    }

    #[test]
    fn percentile_is_order_insensitive_and_bounded() {
        let mut a = vec![3.0, 1.0, 2.0];
        assert_eq!(p99(&mut a), 3.0);
        let mut b: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        assert_eq!(p99(&mut b), 198.0);
        let mut c = vec![7.0];
        assert_eq!(p99(&mut c), 7.0);
        assert_eq!(median(&mut vec![5.0, 1.0, 9.0]), 5.0);
    }
}
