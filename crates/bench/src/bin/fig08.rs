//! **Fig. 8** — social welfare under the different schemes as a
//! function of γ.
//!
//! Paper shape: DBR (and CGBD) dominate the baselines across the γ
//! range; WPR is flat in γ (its payoff ignores redistribution).

use tradefl_bench::{check, finish, game_with, Table, GAMMA_GRID, SEED};
use tradefl_core::config::MarketConfig;
use tradefl_solver::baselines::solve_scheme;
use tradefl_solver::outcome::Scheme;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    let mu = MarketConfig::table_ii().rho_mean;
    let omega_e = MarketConfig::table_ii().params.omega_e;
    let schemes = [Scheme::Dbr, Scheme::Wpr, Scheme::Fip, Scheme::Gca];
    let mut table = Table::new(
        "Fig. 8: social welfare vs gamma by scheme",
        &["gamma", "DBR", "WPR", "FIP", "GCA"],
    );
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for &gamma in &GAMMA_GRID {
        let game = game_with(gamma, mu, omega_e, SEED);
        let mut row = vec![format!("{gamma:.2e}")];
        for (k, &scheme) in schemes.iter().enumerate() {
            let eq = solve_scheme(&game, scheme).expect("scheme solves");
            row.push(format!("{:.1}", eq.welfare));
            per_scheme[k].push(eq.welfare);
        }
        table.row(row);
    }
    table.print();

    let mut ok = true;
    // DBR dominates WPR up to (and at) the welfare peak; past the peak,
    // over-incentivization can push DBR below the redistribution-free
    // baseline — that is exactly Fig. 7's warning about large gamma.
    let peak_idx = per_scheme[0]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    let dominated_up_to_peak = per_scheme[0][..=peak_idx]
        .iter()
        .zip(&per_scheme[1])
        .all(|(dbr, wpr)| dbr >= wpr);
    ok &= check(
        &format!("DBR >= WPR at every gamma up to the peak (index {peak_idx})"),
        dominated_up_to_peak,
    );
    let star = 4; // index of 5.12e-9 in GAMMA_GRID
    ok &= check(
        "at gamma*, DBR beats every baseline",
        (1..schemes.len()).all(|k| per_scheme[0][star] >= per_scheme[k][star]),
    );
    // WPR is gamma-invariant: its objective drops R_i entirely.
    let wpr_spread = per_scheme[1]
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    ok &= check(
        "WPR welfare is flat in gamma",
        (wpr_spread.1 - wpr_spread.0).abs() <= 1e-6 * wpr_spread.1.abs().max(1.0),
    );
    finish(ok);
}
