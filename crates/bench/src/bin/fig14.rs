//! **Fig. 14** — training loss of the global model per round
//! (model-dataset pair B: MobileNet analog on SVHN analog), comparing
//! the schemes' equilibrium contributions at γ = γ*.
//!
//! Paper shape: as Fig. 13 — DBR converges to a lower loss than
//! FIP/WPR/GCA and tracks TOS closely.

use tradefl_bench::run_loss_figure;
use tradefl_fl_sim::data::DatasetKind;
use tradefl_fl_sim::model::ModelKind;

fn main() {
    let _trace = tradefl_bench::trace_from_args();
    run_loss_figure("Fig. 14", ModelKind::MobilenetLike, DatasetKind::SvhnLike);
}
