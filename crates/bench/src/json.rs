//! Minimal recursive-descent JSON reader (the workspace has no serde
//! by policy), shared by the schema validators: `perf_baseline --check`
//! and `trace_check` both parse with it and then assert their schemas
//! by hand. The bench-regression [`gate`] lives here too, so every
//! baseline flavor (`BENCH_solvers.json`, `BENCH_gemm.json`) shares
//! one comparison rule.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses one complete JSON document (trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        Parser::parse(text)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", ch as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = *self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or_else(|| self.error("bad escape"))?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        _ => return Err(self.error("unsupported escape")),
                    });
                    self.pos += 2;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through byte-wise.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser::new(text);
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing garbage"));
        }
        Ok(v)
    }
}

/// Default multiplicative tolerance for [`gate`]: a freshly measured
/// median may be up to this many times the committed one before the
/// gate fails. Deliberately generous — the CI smoke run shares the
/// host with the rest of the gate and the fast-mode solver instances
/// are smaller than the committed full-mode ones, so the gate exists
/// to catch order-of-magnitude regressions, not percent-level drift.
pub const GATE_TOLERANCE: f64 = 3.0;

/// Compares a freshly measured baseline (`current`) against a
/// committed one (`committed`): `benches[]` rows are matched by
/// `name`, and within matched rows every numeric field whose key ends
/// in `_ms` and that both rows carry is compared. The gate fails if
/// any current median exceeds `tolerance ×` the committed median.
/// Rows or fields present on only one side are skipped (instance
/// sizes and columns may evolve independently), but an empty
/// comparison set is an error so the gate can never pass vacuously.
///
/// Returns the number of `(row, field)` pairs compared.
///
/// # Errors
///
/// The first parse/shape failure, or the full list of tolerance
/// violations.
pub fn gate(current: &str, committed: &str, tolerance: f64) -> Result<usize, String> {
    let cur = Json::parse(current).map_err(|e| format!("current baseline: {e}"))?;
    let com = Json::parse(committed).map_err(|e| format!("committed baseline: {e}"))?;
    let cur_schema = cur.get("schema").and_then(Json::as_str).unwrap_or_default();
    let com_schema = com.get("schema").and_then(Json::as_str).unwrap_or_default();
    if cur_schema != com_schema {
        return Err(format!("schema mismatch: '{cur_schema}' vs '{com_schema}'"));
    }
    let rows = |doc: &Json| match doc.get("benches") {
        Some(Json::Arr(rows)) => rows.clone(),
        _ => Vec::new(),
    };
    let cur_rows = rows(&cur);
    let com_rows = rows(&com);
    let mut compared = 0usize;
    let mut violations = Vec::new();
    for com_row in &com_rows {
        let Some(name) = com_row.get("name").and_then(Json::as_str) else { continue };
        let Some(cur_row) = cur_rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        let Some(fields) = com_row.as_obj() else { continue };
        for (key, value) in fields {
            if !key.ends_with("_ms") {
                continue;
            }
            let (Some(com_ms), Some(cur_ms)) =
                (value.as_num(), cur_row.get(key).and_then(Json::as_num))
            else {
                continue;
            };
            compared += 1;
            if cur_ms > tolerance * com_ms {
                violations.push(format!(
                    "{name}.{key}: {cur_ms:.3} ms exceeds {tolerance}x committed {com_ms:.3} ms"
                ));
            }
        }
    }
    if !violations.is_empty() {
        return Err(violations.join("; "));
    }
    if compared == 0 {
        return Err("no comparable (bench, field) pairs — the gate would be vacuous".into());
    }
    Ok(compared)
}

/// [`gate`] over files on disk, with path context on read failures.
///
/// # Errors
///
/// Unreadable files, plus everything [`gate`] rejects.
pub fn gate_files(current: &str, committed: &str, tolerance: f64) -> Result<usize, String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    gate(&read(current)?, &read(committed)?, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap(), &Json::Arr(vec![
            Json::Num(1.0),
            Json::Num(2.5),
            Json::Num(-300.0)
        ]));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap(), &Json::Null);
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{} trailing", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    fn baseline(rows: &str) -> String {
        format!("{{\"schema\": \"s/v1\", \"benches\": [{rows}]}}")
    }

    #[test]
    fn gate_passes_within_tolerance_and_counts_pairs() {
        let committed = baseline(
            "{\"name\": \"a\", \"serial_ms\": 10.0, \"pooled_ms\": 4.0, \"speedup\": 2.5}, \
             {\"name\": \"b\", \"serial_ms\": 1.0}",
        );
        let current = baseline(
            "{\"name\": \"a\", \"serial_ms\": 25.0, \"pooled_ms\": 2.0, \"speedup\": 12.5}, \
             {\"name\": \"b\", \"serial_ms\": 2.9}",
        );
        // serial_ms/pooled_ms on row a plus serial_ms on row b (3
        // pairs); the non-`_ms` speedup field is ignored even though
        // it blew up.
        assert_eq!(gate(&current, &committed, 3.0), Ok(3));
    }

    #[test]
    fn gate_fails_on_a_regression_and_names_the_field() {
        let committed = baseline("{\"name\": \"a\", \"serial_ms\": 1.0, \"pooled_ms\": 1.0}");
        let current = baseline("{\"name\": \"a\", \"serial_ms\": 1.5, \"pooled_ms\": 40.0}");
        let err = gate(&current, &committed, 3.0).unwrap_err();
        assert!(err.contains("a.pooled_ms"), "{err}");
        assert!(!err.contains("serial_ms"), "{err}");
    }

    #[test]
    fn gate_skips_one_sided_rows_but_rejects_a_vacuous_comparison() {
        let committed = baseline(
            "{\"name\": \"kept\", \"serial_ms\": 1.0, \"extra_ms\": 1.0}, \
             {\"name\": \"retired\", \"serial_ms\": 1.0}",
        );
        let current = baseline("{\"name\": \"kept\", \"serial_ms\": 1.0}");
        assert_eq!(gate(&current, &committed, 3.0), Ok(1));
        let disjoint = baseline("{\"name\": \"new\", \"serial_ms\": 1.0}");
        assert!(gate(&disjoint, &committed, 3.0).is_err());
    }

    #[test]
    fn gate_rejects_schema_mismatch_and_garbage() {
        let a = baseline("{\"name\": \"x\", \"serial_ms\": 1.0}");
        let other = "{\"schema\": \"other/v2\", \"benches\": [{\"name\": \"x\", \"serial_ms\": 1.0}]}";
        assert!(gate(&a, other, 3.0).is_err());
        assert!(gate("nope", &a, 3.0).is_err());
        assert!(gate(&a, "nope", 3.0).is_err());
    }
}
