//! Minimal recursive-descent JSON reader (the workspace has no serde
//! by policy), shared by the schema validators: `perf_baseline --check`
//! and `trace_check` both parse with it and then assert their schemas
//! by hand.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses one complete JSON document (trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        Parser::parse(text)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", ch as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = *self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or_else(|| self.error("bad escape"))?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        _ => return Err(self.error("unsupported escape")),
                    });
                    self.pos += 2;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through byte-wise.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser::new(text);
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing garbage"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap(), &Json::Arr(vec![
            Json::Num(1.0),
            Json::Num(2.5),
            Json::Num(-300.0)
        ]));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap(), &Json::Null);
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{} trailing", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }
}
