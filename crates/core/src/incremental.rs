//! Incremental payoff evaluation for best-response sweeps at scale.
//!
//! Every payoff-shaped quantity in [`crate::game`] decomposes into a
//! handful of aggregates over the market: the effective data volume
//! `Ω = Σ_j d_j θ_j s_j`, the per-organization resource indices
//! `res_j = d_j s_j + λ f_j`, and strategy-*independent* constants
//! (`q_i`, `z_i`, `Σ_j ρ_{i,j} p_j`). A best-response bisection at
//! organization `i` evaluates the payoff at 64+ candidate `d` values,
//! and the only aggregate a candidate perturbs is `Ω` — by exactly one
//! addend. [`IncrementalEval`] maintains those aggregates so one
//! candidate evaluation costs `O(log N)` (a single [`SumTree`] path)
//! instead of the `O(N)` full recomputation [`crate::game`] performs,
//! which is what makes a DBR sweep sub-quadratic in `N`.
//!
//! # Determinism contract
//!
//! f64 addition is not associative, so an aggregate maintained by
//! "subtract old, add new" running updates would drift from a fresh
//! evaluation — and worse, would depend on the whole update *history*.
//! This module instead keeps every aggregate in a form whose value is
//! a pure function of the **current** strategy profile:
//!
//! * `Ω` lives in a fixed-shape binary [`SumTree`]; replacing leaf `i`
//!   recomputes only the root path, and the resulting node values are
//!   bit-identical to rebuilding the same tree from scratch (each node
//!   is always `left + right` of the same children).
//! * `res_i` is overwritten wholesale on commit (a direct `O(1)`
//!   formula, no accumulation).
//! * the mover-side dot product `Σ_j ρ_{i,j} res_j` is computed fresh
//!   per query in fixed `j` order (ρ_{i,i} = 0, so organization `i`'s
//!   own candidates never perturb it — it is loop-invariant across one
//!   bisection).
//!
//! Hence the invariant the property tests pin: after *any* sequence of
//! [`IncrementalEval::commit`] calls, every query is **bit-identical**
//! to the same query on a freshly constructed evaluator at the final
//! profile. The evaluator's payoffs differ from
//! [`CoopetitionGame::payoff`] only by floating-point reassociation
//! (the game sums `Ω` left-to-right and redistribution pairwise);
//! agreement to ~1e-12 relative is asserted separately.

use crate::accuracy::AccuracyModel;
use crate::game::CoopetitionGame;
use crate::strategy::{Strategy, StrategyProfile};

/// A fixed-shape binary sum tree over `n` f64 leaves (padded with
/// zeros to the next power of two).
///
/// Replacing one leaf updates `O(log n)` ancestors; because every
/// internal node is always recomputed as `left + right`, the node
/// values — and in particular the root total — are bit-identical to a
/// from-scratch rebuild at the same leaves, for any update history.
#[derive(Debug, Clone)]
pub struct SumTree {
    /// `nodes[1]` is the root; leaf `i` lives at `nodes[cap + i]`.
    nodes: Vec<f64>,
    /// Leaf capacity (power of two).
    cap: usize,
    /// Number of live leaves.
    len: usize,
}

impl SumTree {
    /// Builds a tree over the given leaves.
    pub fn new(leaves: &[f64]) -> Self {
        let len = leaves.len();
        let cap = len.max(1).next_power_of_two();
        let mut nodes = vec![0.0; 2 * cap];
        nodes[cap..cap + len].copy_from_slice(leaves);
        for i in (1..cap).rev() {
            nodes[i] = nodes[2 * i] + nodes[2 * i + 1];
        }
        Self { nodes, cap, len }
    }

    /// Number of live leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Leaf `i`'s current value.
    pub fn leaf(&self, i: usize) -> f64 {
        assert!(i < self.len, "leaf {i} out of bounds ({})", self.len);
        self.nodes[self.cap + i]
    }

    /// The sum of all leaves (the root node).
    pub fn total(&self) -> f64 {
        self.nodes[1]
    }

    /// Replaces leaf `i` and recomputes its root path.
    pub fn set(&mut self, i: usize, value: f64) {
        assert!(i < self.len, "leaf {i} out of bounds ({})", self.len);
        let mut node = self.cap + i;
        self.nodes[node] = value;
        while node > 1 {
            node /= 2;
            self.nodes[node] = self.nodes[2 * node] + self.nodes[2 * node + 1];
        }
    }

    /// The root total *as if* leaf `i` were `value`, without mutating
    /// the tree — bit-identical to `set(i, value); total()` because it
    /// performs exactly the same additions along the same path.
    pub fn total_with(&self, i: usize, value: f64) -> f64 {
        assert!(i < self.len, "leaf {i} out of bounds ({})", self.len);
        let mut node = self.cap + i;
        let mut acc = value;
        while node > 1 {
            let sibling = node ^ 1;
            // The path node is the left child exactly when its index is
            // even; addition order must match `set`'s `left + right`.
            acc = if node % 2 == 0 {
                acc + self.nodes[sibling]
            } else {
                self.nodes[sibling] + acc
            };
            node /= 2;
        }
        acc
    }
}

/// Incremental payoff evaluator over a [`CoopetitionGame`].
///
/// Holds the current strategy profile plus the aggregates described in
/// the module docs. Constructing one is `O(N²)` (the per-organization
/// constants each take an `O(N)` pass); every candidate evaluation
/// afterwards is `O(log N)`, and committing an accepted move is
/// `O(log N)` too.
#[derive(Debug)]
pub struct IncrementalEval<'g, A> {
    game: &'g CoopetitionGame<A>,
    profile: StrategyProfile,
    /// `q_i = Σ_j ρ_{i,j}` — strategy-independent.
    q: Vec<f64>,
    /// `z_i = p_i − Σ_j ρ_{i,j} p_j` — strategy-independent.
    z: Vec<f64>,
    /// `Σ_j ρ_{i,j} p_j` (Eq. 7's damage weights) — strategy-independent.
    weighted_p: Vec<f64>,
    /// `res_j = d_j s_j + λ f_j` at the current profile.
    res: Vec<f64>,
    /// `Ω` aggregated over leaves `d_j θ_j s_j`.
    omega: SumTree,
}

impl<'g, A: AccuracyModel> IncrementalEval<'g, A> {
    /// Builds the evaluator at `profile` (assumed validated).
    pub fn new(game: &'g CoopetitionGame<A>, profile: StrategyProfile) -> Self {
        let market = game.market();
        let n = market.len();
        assert_eq!(profile.len(), n, "profile length mismatch");
        // One pass over each ρ row's stored entries yields all three
        // per-org constants (q_i, Σ_j ρ p_j, and z_i = p_i − Σ_j ρ p_j);
        // the ascending-j accumulation order matches
        // `market.competition_pressure`/`weight`, so the values are
        // bit-identical to the per-call formulas, and on a sparse
        // market the whole pass is O(nnz) rather than O(N²).
        let p: Vec<f64> = (0..n).map(|j| market.org(j).profitability()).collect();
        let mut q = vec![0.0f64; n];
        let mut weighted_p = vec![0.0f64; n];
        let mut z = vec![0.0f64; n];
        for i in 0..n {
            let mut row_q = 0.0f64;
            let mut row_wp = 0.0f64;
            // `for_each` lowers to the iterator's `fold`, which the row
            // iterator overrides to dispatch on the ρ representation once
            // per row instead of once per element.
            market.rho_row(i).for_each(|(j, rho)| {
                row_q += rho;
                row_wp += rho * p[j];
            });
            q[i] = row_q;
            weighted_p[i] = row_wp;
            z[i] = p[i] - row_wp;
        }
        let res: Vec<f64> =
            (0..n).map(|i| Self::resource_index_of(game, &profile[i], i)).collect();
        let leaves: Vec<f64> = (0..n)
            .map(|i| profile[i].d * market.org(i).effective_bits())
            .collect();
        let omega = SumTree::new(&leaves);
        Self { game, profile, q, z, weighted_p, res, omega }
    }

    /// The current strategy profile.
    pub fn profile(&self) -> &StrategyProfile {
        &self.profile
    }

    /// The game this evaluator reads.
    pub fn game(&self) -> &'g CoopetitionGame<A> {
        self.game
    }

    /// The current effective data volume `Ω`.
    pub fn omega(&self) -> f64 {
        self.omega.total()
    }

    /// Commits organization `i`'s new strategy: `O(log N)`.
    pub fn commit(&mut self, i: usize, strategy: Strategy) {
        let eff = self.game.market().org(i).effective_bits();
        self.profile.set(i, strategy);
        self.res[i] = Self::resource_index_of(self.game, &strategy, i);
        self.omega.set(i, strategy.d * eff);
    }

    /// `res_i = d_i s_i + λ f_i` (Eq. 9's index) for an arbitrary
    /// candidate strategy.
    fn resource_index_of(game: &CoopetitionGame<A>, s: &Strategy, i: usize) -> f64 {
        let org = game.market().org(i);
        s.d * org.data_bits() + game.market().params().lambda * org.frequency(s.level)
    }

    /// The mover-side redistribution dot `Σ_j ρ_{i,j} res_j`, computed
    /// fresh in fixed `j` order. `ρ_{i,i} = 0`, so the result does not
    /// depend on organization `i`'s own strategy — callers evaluate it
    /// once per mover and reuse it across a whole bisection.
    pub fn rho_res(&self, i: usize) -> f64 {
        // Stored-entry iteration: same ascending-j order (and therefore
        // the same bits) as indexed `rho(i, j)` lookups over a dense
        // row, but O(deg) on a sparse market.
        self.game.market().rho_row(i).map(|(j, rho)| rho * self.res[j]).sum()
    }

    /// Payoff `C_i` (Eq. 11) with organization `i` playing `candidate`
    /// and everyone else at the current profile: `O(log N)`.
    ///
    /// `rho_res_i` must be [`Self::rho_res`]`(i)` (loop-invariant
    /// across candidates, see there).
    pub fn payoff_at(&self, i: usize, candidate: Strategy, rho_res_i: f64) -> f64 {
        let (revenue, overhead, damage) = self.common_terms(i, candidate);
        let gamma = self.game.market().params().gamma;
        let res_i = Self::resource_index_of(self.game, &candidate, i);
        let redistribution = gamma * (self.q[i] * res_i - rho_res_i);
        revenue - overhead - damage + redistribution
    }

    /// The WPR objective (redistribution dropped) at a candidate.
    pub fn payoff_without_redistribution_at(&self, i: usize, candidate: Strategy) -> f64 {
        let (revenue, overhead, damage) = self.common_terms(i, candidate);
        revenue - overhead - damage
    }

    /// Organization `i`'s payoff at a candidate **up to the
    /// mover-invariant additive constant** `−γ Σ_j ρ_{i,j} res_j`:
    /// because `ρ_{i,i} = 0`, that redistribution cross-term does not
    /// depend on `i`'s own strategy, so dropping it preserves every
    /// comparison *between* organization `i`'s candidates (argmax,
    /// improvement tests) while keeping the evaluation `O(log N)` — no
    /// `O(N)` dot product per mover. Never compare this value across
    /// different organizations or against [`Self::payoff_at`].
    pub fn mover_payoff_at(&self, i: usize, candidate: Strategy) -> f64 {
        let (revenue, overhead, damage) = self.common_terms(i, candidate);
        let gamma = self.game.market().params().gamma;
        let res_i = Self::resource_index_of(self.game, &candidate, i);
        revenue - overhead - damage + gamma * (self.q[i] * res_i)
    }

    /// Revenue, overhead and damage shared by both objectives.
    fn common_terms(&self, i: usize, candidate: Strategy) -> (f64, f64, f64) {
        let market = self.game.market();
        let org = market.org(i);
        let params = market.params();
        let accuracy = self.game.accuracy();
        let omega = self.omega.total_with(i, candidate.d * org.effective_bits());
        let gain = accuracy.gain(omega);
        let revenue = org.profitability() * gain;
        let f = org.frequency(candidate.level);
        let comp = params.kappa * f * f * org.eta() * candidate.d * org.data_bits();
        let overhead = params.omega_e * (comp + org.comm_energy());
        let omega_without = (omega - candidate.d * org.effective_bits()).max(0.0);
        let damage = self.weighted_p[i] * (gain - accuracy.gain(omega_without));
        (revenue, overhead, damage)
    }

    /// `∂C_i/∂d` at a candidate (the bisection's oracle):
    /// `z_i P'(Ω) θ_i s_i + (γ q_i − ϖ_e κ f² η_i) s_i`.
    pub fn payoff_d_deriv_at(&self, i: usize, candidate: Strategy) -> f64 {
        let market = self.game.market();
        let org = market.org(i);
        let params = market.params();
        let omega = self.omega.total_with(i, candidate.d * org.effective_bits());
        let f = org.frequency(candidate.level);
        let s = org.data_bits();
        self.z[i] * self.game.accuracy().gain_deriv(omega) * org.effective_bits()
            + (params.gamma * self.q[i] - params.omega_e * params.kappa * f * f * org.eta())
                * s
    }

    /// The WPR derivative (γ treated as 0).
    pub fn payoff_without_redistribution_d_deriv_at(
        &self,
        i: usize,
        candidate: Strategy,
    ) -> f64 {
        let market = self.game.market();
        let org = market.org(i);
        let params = market.params();
        let omega = self.omega.total_with(i, candidate.d * org.effective_bits());
        let f = org.frequency(candidate.level);
        let s = org.data_bits();
        self.z[i] * self.game.accuracy().gain_deriv(omega) * org.effective_bits()
            - params.omega_e * params.kappa * f * f * org.eta() * s
    }

    /// The full payoff vector at the current profile (one `O(N)`
    /// [`Self::rho_res`] per organization — `O(N²)` total, but with a
    /// single fused multiply-add per cell; used once per DBR round for
    /// the trace rows).
    pub fn payoff_vector(&self) -> Vec<f64> {
        (0..self.profile.len())
            .map(|i| self.payoff_at(i, self.profile[i], self.rho_res(i)))
            .collect()
    }

    /// Total coopetition damage `Σ_i D_i` (the Fig. 9 y-axis) at the
    /// current profile in `O(N)`: the cached damage weights
    /// `Σ_j ρ_{i,j} p_j` replace the `O(N)` sum
    /// [`CoopetitionGame::damage`] performs per organization.
    pub fn total_damage(&self) -> f64 {
        let accuracy = self.game.accuracy();
        let market = self.game.market();
        let omega = self.omega.total();
        let gain = accuracy.gain(omega);
        (0..self.profile.len())
            .map(|i| {
                let without =
                    omega - self.profile[i].d * market.org(i).effective_bits();
                self.weighted_p[i] * (gain - accuracy.gain(without.max(0.0)))
            })
            .sum()
    }

    /// The exact weighted potential `U = P(Ω) + Σ_i h_i(π_i)/z_i`
    /// (Theorem 1) at the current profile, in `O(N)`: the cached `q_i`
    /// and `z_i` replace [`crate::market::Market::competition_pressure`]
    /// and `weight`'s per-call `O(N)` ρ-row sums, which make
    /// [`CoopetitionGame::potential`] `O(N²)`. Agrees with the game to
    /// floating-point reassociation (`Ω` comes from the tree).
    pub fn potential(&self) -> f64 {
        let market = self.game.market();
        let params = market.params();
        let p = self.game.accuracy().gain(self.omega.total());
        let own: f64 = (0..self.profile.len())
            .map(|i| {
                let org = market.org(i);
                let s = &self.profile[i];
                let f = org.frequency(s.level);
                let comp = params.kappa * f * f * org.eta() * s.d * org.data_bits();
                let energy = comp + org.comm_energy();
                let h = -params.omega_e * energy + params.gamma * self.q[i] * self.res[i];
                h / self.z[i]
            })
            .sum();
        p + own
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::SqrtAccuracy;
    use crate::config::MarketConfig;
    use tradefl_runtime::{prop_assert, props};

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    fn random_strategy(
        g: &mut tradefl_runtime::check::Gen,
        game: &CoopetitionGame<SqrtAccuracy>,
        i: usize,
    ) -> Strategy {
        let levels = game.market().org(i).compute_level_count();
        let level = g.usize(0..levels);
        let (lo, hi) = game.market().feasible_range(i, level).unwrap_or((0.1, 1.0));
        Strategy::new(lo + (hi - lo) * g.f64(0.0..1.0), level)
    }

    #[test]
    fn sum_tree_matches_linear_sum_closely_and_updates_exactly() {
        let leaves: Vec<f64> = (0..13).map(|i| (i as f64) * 0.37 + 0.01).collect();
        let mut tree = SumTree::new(&leaves);
        let linear: f64 = leaves.iter().sum();
        assert!((tree.total() - linear).abs() < 1e-12 * linear.abs());
        // set + total == total_with, bitwise.
        for (i, v) in [(0usize, 2.5f64), (12, -1.0), (7, 0.0)] {
            let predicted = tree.total_with(i, v);
            tree.set(i, v);
            assert_eq!(predicted.to_bits(), tree.total().to_bits());
        }
        assert_eq!(tree.leaf(0), 2.5);
    }

    #[test]
    fn sum_tree_single_leaf_and_empty() {
        let one = SumTree::new(&[3.25]);
        assert_eq!(one.total(), 3.25);
        assert_eq!(one.total_with(0, 1.5), 1.5);
        let empty = SumTree::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.total(), 0.0);
    }

    props! {
        #![cases = 32]

        fn committed_state_is_bit_identical_to_scratch_rebuild(g) {
            let n = g.usize(2..=12);
            let game = game(n, g.u64(0..200));
            let mut eval = IncrementalEval::new(
                &game,
                StrategyProfile::minimal(game.market()),
            );
            // An arbitrary sequence of unilateral strategy changes.
            let moves = g.usize(1..=24);
            for _ in 0..moves {
                let i = g.usize(0..n);
                let s = random_strategy(g, &game, i);
                eval.commit(i, s);
            }
            let fresh = IncrementalEval::new(&game, eval.profile().clone());
            prop_assert!(
                eval.omega().to_bits() == fresh.omega().to_bits(),
                "omega {} != fresh {}", eval.omega(), fresh.omega()
            );
            for i in 0..n {
                let rr = eval.rho_res(i);
                let rr_fresh = fresh.rho_res(i);
                prop_assert!(
                    rr.to_bits() == rr_fresh.to_bits(),
                    "rho_res[{}] {} != fresh {}", i, rr, rr_fresh
                );
                let p = eval.payoff_at(i, eval.profile()[i], rr);
                let p_fresh = fresh.payoff_at(i, fresh.profile()[i], rr_fresh);
                prop_assert!(
                    p.to_bits() == p_fresh.to_bits(),
                    "payoff[{}] {} != fresh {}", i, p, p_fresh
                );
                let w = eval.payoff_without_redistribution_at(i, eval.profile()[i]);
                let w_fresh =
                    fresh.payoff_without_redistribution_at(i, fresh.profile()[i]);
                prop_assert!(w.to_bits() == w_fresh.to_bits());
                let d = eval.payoff_d_deriv_at(i, eval.profile()[i]);
                let d_fresh = fresh.payoff_d_deriv_at(i, fresh.profile()[i]);
                prop_assert!(d.to_bits() == d_fresh.to_bits());
            }
        }

        fn evaluator_agrees_with_the_game_to_rounding(g) {
            let n = g.usize(2..=10);
            let game = game(n, g.u64(0..200));
            let profile: StrategyProfile = (0..n)
                .map(|i| random_strategy(g, &game, i))
                .collect();
            let eval = IncrementalEval::new(&game, profile.clone());
            for i in 0..n {
                let scale = game.payoff(&profile, i).abs().max(1.0);
                let inc = eval.payoff_at(i, profile[i], eval.rho_res(i));
                let exact = game.payoff(&profile, i);
                prop_assert!(
                    (inc - exact).abs() <= 1e-9 * scale,
                    "payoff[{}] incremental {} vs game {}", i, inc, exact
                );
                let inc_w = eval.payoff_without_redistribution_at(i, profile[i]);
                let exact_w = game.payoff_without_redistribution(&profile, i);
                prop_assert!((inc_w - exact_w).abs() <= 1e-9 * scale);
                let inc_d = eval.payoff_d_deriv_at(i, profile[i]);
                let exact_d = game.payoff_d_deriv(&profile, i);
                prop_assert!(
                    (inc_d - exact_d).abs()
                        <= 1e-9 * exact_d.abs().max(1.0),
                    "deriv[{}] incremental {} vs game {}", i, inc_d, exact_d
                );
            }
            let inc_u = eval.potential();
            let exact_u = game.potential(&profile);
            prop_assert!(
                (inc_u - exact_u).abs() <= 1e-9 * exact_u.abs().max(1.0),
                "potential incremental {} vs game {}", inc_u, exact_u
            );
        }

        fn mover_payoff_preserves_candidate_comparisons(g) {
            let n = g.usize(2..=10);
            let game = game(n, g.u64(0..200));
            let eval = IncrementalEval::new(
                &game,
                StrategyProfile::minimal(game.market()),
            );
            let i = g.usize(0..n);
            let a = random_strategy(g, &game, i);
            let b = random_strategy(g, &game, i);
            let rr = eval.rho_res(i);
            let true_gap = eval.payoff_at(i, a, rr) - eval.payoff_at(i, b, rr);
            let mover_gap = eval.mover_payoff_at(i, a) - eval.mover_payoff_at(i, b);
            let scale = true_gap.abs().max(eval.payoff_at(i, a, rr).abs()).max(1.0);
            prop_assert!(
                (true_gap - mover_gap).abs() <= 1e-9 * scale,
                "shift leaked into a comparison: true {} vs mover {}",
                true_gap, mover_gap
            );
        }

        fn candidate_evaluation_equals_commit_then_evaluate(g) {
            let n = g.usize(2..=8);
            let game = game(n, g.u64(0..200));
            let mut eval = IncrementalEval::new(
                &game,
                StrategyProfile::minimal(game.market()),
            );
            let i = g.usize(0..n);
            let s = random_strategy(g, &game, i);
            let rr = eval.rho_res(i);
            let predicted = eval.payoff_at(i, s, rr);
            eval.commit(i, s);
            let committed = eval.payoff_at(i, s, eval.rho_res(i));
            prop_assert!(
                predicted.to_bits() == committed.to_bits(),
                "candidate {} != committed {}", predicted, committed
            );
        }
    }
}
