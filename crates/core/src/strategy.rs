//! Resource-contribution strategies `π_i = {d_i, f_i}` (§IV-A).

use crate::error::{ModelError, Result};
use crate::market::Market;

/// One organization's strategy: the contributed data fraction
/// `d_i ∈ [D_min, 1]` and the chosen compute-ladder index
/// (so `f_i = F_i^(level+1)` in the paper's 1-based notation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strategy {
    /// Contributed data fraction `d_i`.
    pub d: f64,
    /// Zero-based index into the organization's compute ladder.
    pub level: usize,
}

impl Strategy {
    /// Creates a strategy; range checks happen against a concrete market
    /// in [`StrategyProfile::validate`].
    pub fn new(d: f64, level: usize) -> Self {
        Self { d, level }
    }
}

/// A full strategy profile `π = {π_i}_{i∈N}`.
///
/// # Examples
///
/// ```
/// use tradefl_core::strategy::{Strategy, StrategyProfile};
///
/// let profile = StrategyProfile::from_parts(&[0.5, 0.25], &[0, 1]);
/// assert_eq!(profile.len(), 2);
/// assert_eq!(profile[1].level, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyProfile(Vec<Strategy>);

impl StrategyProfile {
    /// Creates a profile from explicit strategies.
    pub fn new(strategies: Vec<Strategy>) -> Self {
        Self(strategies)
    }

    /// Creates a profile from parallel slices of fractions and levels.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_parts(d: &[f64], levels: &[usize]) -> Self {
        assert_eq!(d.len(), levels.len(), "parallel slices must have equal length");
        Self(d.iter().zip(levels).map(|(&d, &l)| Strategy::new(d, l)).collect())
    }

    /// The profile every solver starts from: `d_i = D_min` and the
    /// *fastest* compute level (Algorithm 2's initialization).
    pub fn minimal(market: &Market) -> Self {
        Self(
            (0..market.len())
                .map(|i| {
                    Strategy::new(
                        market.params().d_min,
                        market.org(i).compute_level_count() - 1,
                    )
                })
                .collect(),
        )
    }

    /// Number of strategies.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the per-organization strategies.
    pub fn iter(&self) -> std::slice::Iter<'_, Strategy> {
        self.0.iter()
    }

    /// The data fractions `d` as a vector.
    pub fn fractions(&self) -> Vec<f64> {
        self.0.iter().map(|s| s.d).collect()
    }

    /// The ladder indices as a vector.
    pub fn levels(&self) -> Vec<usize> {
        self.0.iter().map(|s| s.level).collect()
    }

    /// The chosen frequencies `f_i` (Hz) under `market`.
    ///
    /// # Panics
    ///
    /// Panics if the profile length mismatches the market or a level is
    /// out of range; call [`StrategyProfile::validate`] first for a
    /// fallible check.
    pub fn frequencies(&self, market: &Market) -> Vec<f64> {
        assert_eq!(self.0.len(), market.len());
        self.0
            .iter()
            .enumerate()
            .map(|(i, s)| market.org(i).frequency(s.level))
            .collect()
    }

    /// Replaces organization `i`'s strategy, returning the new profile
    /// (used by best-response dynamics).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with(&self, i: usize, s: Strategy) -> Self {
        let mut next = self.clone();
        next.0[i] = s;
        next
    }

    /// Mutable access for in-place solver updates.
    pub fn set(&mut self, i: usize, s: Strategy) {
        self.0[i] = s;
    }

    /// Checks shape, box constraints `C^(1)`, ladder bounds `C^(2)` and
    /// the training deadline `C^(3)` against a market.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ModelError`].
    pub fn validate(&self, market: &Market) -> Result<()> {
        if self.0.len() != market.len() {
            return Err(ModelError::ProfileLength {
                expected: market.len(),
                found: self.0.len(),
            });
        }
        let d_min = market.params().d_min;
        for (i, s) in self.0.iter().enumerate() {
            let org = market.org(i);
            if s.level >= org.compute_level_count() {
                return Err(ModelError::InvalidComputeLevel {
                    org: i,
                    level: s.level,
                    m: org.compute_level_count(),
                });
            }
            if !s.d.is_finite() {
                return Err(ModelError::NotFinite { name: "d_i" });
            }
            if s.d < d_min - 1e-12 || s.d > 1.0 + 1e-12 {
                return Err(ModelError::OutOfRange {
                    name: "d_i",
                    value: s.d,
                    min: d_min,
                    max: 1.0,
                });
            }
            let t = org.comm_time() + org.training_time(s.d, org.frequency(s.level));
            if t > market.params().tau * (1.0 + 1e-9) {
                return Err(ModelError::Infeasible { org: i });
            }
        }
        Ok(())
    }

    /// Total contributed data `Ω = Σ_i d_i s_i` in bits.
    pub fn total_data(&self, market: &Market) -> f64 {
        market.total_data(&self.fractions())
    }

    /// Sum of data fractions `Σ_i d_i` (the Fig. 12 y-axis).
    pub fn total_fraction(&self) -> f64 {
        self.0.iter().map(|s| s.d).sum()
    }

    /// Maximum per-coordinate distance to another profile: data-fraction
    /// distance plus 1.0 for any level change (solver stopping criteria).
    pub fn distance(&self, other: &StrategyProfile) -> f64 {
        assert_eq!(self.0.len(), other.0.len());
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| {
                let dd = (a.d - b.d).abs();
                if a.level != b.level {
                    dd + 1.0
                } else {
                    dd
                }
            })
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<usize> for StrategyProfile {
    type Output = Strategy;
    fn index(&self, i: usize) -> &Strategy {
        &self.0[i]
    }
}

impl FromIterator<Strategy> for StrategyProfile {
    fn from_iter<T: IntoIterator<Item = Strategy>>(iter: T) -> Self {
        Self(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a StrategyProfile {
    type Item = &'a Strategy;
    type IntoIter = std::slice::Iter<'a, Strategy>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for StrategyProfile {
    type Item = Strategy;
    type IntoIter = std::vec::IntoIter<Strategy>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MechanismParams;
    use crate::org::Organization;

    fn market(n: usize) -> Market {
        let orgs = (0..n)
            .map(|i| {
                Organization::builder(format!("o{i}"))
                    .compute_levels(vec![1e9, 2e9, 3e9])
                    .build()
                    .unwrap()
            })
            .collect();
        let rho = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 0.05 }).collect())
            .collect();
        Market::new(orgs, rho, MechanismParams::paper_default()).unwrap()
    }

    #[test]
    fn minimal_profile_is_feasible() {
        let m = market(3);
        let p = StrategyProfile::minimal(&m);
        p.validate(&m).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].d, m.params().d_min);
        assert_eq!(p[0].level, 2);
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let m = market(3);
        let p = StrategyProfile::from_parts(&[0.5, 0.5], &[0, 0]);
        assert!(matches!(p.validate(&m), Err(ModelError::ProfileLength { .. })));
    }

    #[test]
    fn validate_rejects_bad_level_and_fraction() {
        let m = market(2);
        // d=0.2 is deadline-feasible even at level 0, so the bad level on
        // org 1 is what trips validation.
        let p = StrategyProfile::from_parts(&[0.2, 0.2], &[0, 9]);
        assert!(matches!(p.validate(&m), Err(ModelError::InvalidComputeLevel { .. })));
        let p = StrategyProfile::from_parts(&[0.001, 0.5], &[2, 2]);
        assert!(matches!(p.validate(&m), Err(ModelError::OutOfRange { .. })));
        let p = StrategyProfile::from_parts(&[f64::NAN, 0.5], &[2, 2]);
        assert!(matches!(p.validate(&m), Err(ModelError::NotFinite { .. })));
    }

    #[test]
    fn validate_rejects_deadline_violation() {
        let m = market(1);
        // At level 0 (1 GHz): cap = 590*1e9/2e12 = 0.295, so d=0.9 violates C3.
        let p = StrategyProfile::from_parts(&[0.9], &[0]);
        assert!(matches!(p.validate(&m), Err(ModelError::Infeasible { org: 0 })));
        // d=0.9 at level 2 (3 GHz, cap 0.885)? 0.9 > 0.885 -> still infeasible.
        let p = StrategyProfile::from_parts(&[0.9], &[2]);
        assert!(p.validate(&m).is_err());
        let p = StrategyProfile::from_parts(&[0.8], &[2]);
        assert!(p.validate(&m).is_ok());
    }

    #[test]
    fn with_replaces_single_entry() {
        let m = market(2);
        let p = StrategyProfile::minimal(&m);
        let q = p.with(1, Strategy::new(0.5, 1));
        assert_eq!(q[1].d, 0.5);
        assert_eq!(q[1].level, 1);
        assert_eq!(q[0], p[0]);
        assert_eq!(p[1].d, m.params().d_min, "original untouched");
    }

    #[test]
    fn distance_counts_levels_and_fractions() {
        let a = StrategyProfile::from_parts(&[0.2, 0.4], &[0, 1]);
        let b = StrategyProfile::from_parts(&[0.2, 0.5], &[0, 2]);
        assert!((a.distance(&b) - 1.1).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn totals_and_iteration() {
        let m = market(2);
        let p = StrategyProfile::from_parts(&[0.25, 0.5], &[2, 2]);
        assert!((p.total_fraction() - 0.75).abs() < 1e-12);
        assert!((p.total_data(&m) - 15e9).abs() < 1.0);
        assert_eq!(p.frequencies(&m), vec![3e9, 3e9]);
        let collected: StrategyProfile = p.iter().copied().collect();
        assert_eq!(collected, p);
    }
}
