//! The coopetition game `𝒢` (§III-C..E, §IV).
//!
//! [`CoopetitionGame`] couples a [`Market`] with an [`AccuracyModel`] and
//! implements every economic quantity of the paper:
//!
//! * revenue `p_i P(Ω)` (§III-C1),
//! * coopetition damage `D_i` (Eqs. 6-7),
//! * training overhead `E_i` (Eq. 8),
//! * payoff redistribution `r_{i,j}`, `R_i` (Eqs. 9-10),
//! * payoff `C_i` (Eq. 11) and social welfare,
//! * the weighted potential `U` (Eq. 15 / Theorem 1).
//!
//! # A note on Eq. (15)
//!
//! The paper's printed potential (15) includes the *full* received
//! redistribution `Σ_j r_{i,j}/z_i` per organization. The subtrahend
//! `−γ ρ_{i,j}(d_j s_j + λ f_j)` inside `r_{i,j}` depends on the
//! *opponents'* strategies, so changing `π_i` also changes the terms
//! filed under every other organization `j ≠ i` (through `r_{j,i}`), and
//! the printed form violates the exact identity (14) it is meant to
//! satisfy. The paper's own proof (its Eq. 16) silently freezes those
//! cross terms, which is equivalent to keeping only the part of `r_{i,j}`
//! that depends on `π_i`:
//!
//! ```text
//!   U(π) = P(Ω) − Σ_i [ ϖ_e E_i − γ q_i (d_i s_i + λ f_i) ] / z_i,
//!   q_i = Σ_j ρ_{i,j},   z_i = p_i − Σ_j ρ_{i,j} p_j
//! ```
//!
//! [`CoopetitionGame::potential`] implements this exact weighted
//! potential (identity (14) holds to machine precision — see the tests
//! and the `potential_identity` property test), while
//! [`CoopetitionGame::potential_paper_eq15`] evaluates the printed form
//! verbatim for comparison. Both are maximized by the same best-response
//! dynamics; only the exact form certifies convergence.

use crate::accuracy::AccuracyModel;
use crate::error::Result;
use crate::market::Market;
use crate::strategy::{Strategy, StrategyProfile};

/// Itemized payoff of one organization under a strategy profile
/// (the terms of Eq. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayoffBreakdown {
    /// Revenue from the global model, `p_i · P(Ω)`.
    pub revenue: f64,
    /// Weighted training overhead, `ϖ_e · E_i`.
    pub overhead: f64,
    /// Coopetition damage `D_i` (Eq. 7).
    pub damage: f64,
    /// Received payoff redistribution `R_i` (Eq. 10; may be negative).
    pub redistribution: f64,
}

impl PayoffBreakdown {
    /// The payoff `C_i = revenue − overhead − damage + redistribution`.
    pub fn total(&self) -> f64 {
        self.revenue - self.overhead - self.damage + self.redistribution
    }
}

/// The coopetition game: market + data-accuracy function.
///
/// Generic over the accuracy model so that solvers monomorphize; use
/// `CoopetitionGame<Box<dyn AccuracyModel>>` for dynamic dispatch.
///
/// # Examples
///
/// ```
/// use tradefl_core::accuracy::SqrtAccuracy;
/// use tradefl_core::config::MarketConfig;
/// use tradefl_core::game::CoopetitionGame;
/// use tradefl_core::strategy::StrategyProfile;
///
/// let market = MarketConfig::table_ii().build(42)?;
/// let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
/// let profile = StrategyProfile::minimal(game.market());
/// let welfare = game.social_welfare(&profile);
/// assert!(welfare.is_finite());
/// # Ok::<(), tradefl_core::error::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoopetitionGame<A> {
    market: Market,
    accuracy: A,
}

impl<A: AccuracyModel> CoopetitionGame<A> {
    /// Couples a market with a data-accuracy model.
    pub fn new(market: Market, accuracy: A) -> Self {
        Self { market, accuracy }
    }

    /// The underlying market.
    pub fn market(&self) -> &Market {
        &self.market
    }

    /// The data-accuracy model.
    pub fn accuracy(&self) -> &A {
        &self.accuracy
    }

    /// Consumes the game, returning its parts.
    pub fn into_parts(self) -> (Market, A) {
        (self.market, self.accuracy)
    }

    /// Rebuilds the game with different mechanism parameters (γ sweeps).
    ///
    /// # Errors
    ///
    /// Propagates market validation errors.
    pub fn with_params(&self, params: crate::market::MechanismParams) -> Result<Self>
    where
        A: Clone,
    {
        Ok(Self { market: self.market.with_params(params)?, accuracy: self.accuracy.clone() })
    }

    /// Accuracy gain `P(Ω)` of the global model under `profile` (Eq. 4).
    pub fn accuracy_gain(&self, profile: &StrategyProfile) -> f64 {
        self.accuracy.gain(profile.total_data(&self.market))
    }

    /// Total energy `E_i` of Eq. (8): computation + communication.
    pub fn energy(&self, profile: &StrategyProfile, i: usize) -> f64 {
        let org = self.market.org(i);
        let s = &profile[i];
        let f = org.frequency(s.level);
        let comp = self.market.params().kappa * f * f * org.eta() * s.d * org.data_bits();
        comp + org.comm_energy()
    }

    /// Profit `ϖ_j` that competitor `j` gains from `i`'s contribution
    /// (Eq. 6): `p_j · [P(Ω) − P(Ω − d_i s_i)]`.
    pub fn competitor_profit(&self, profile: &StrategyProfile, i: usize, j: usize) -> f64 {
        let omega = profile.total_data(&self.market);
        let omega_without_i =
            omega - profile[i].d * self.market.org(i).effective_bits();
        let marginal = self.accuracy.gain(omega) - self.accuracy.gain(omega_without_i.max(0.0));
        self.market.org(j).profitability() * marginal
    }

    /// Coopetition damage `D_i = Σ_j ρ_{i,j} ϖ_j` (Eq. 7).
    pub fn damage(&self, profile: &StrategyProfile, i: usize) -> f64 {
        let omega = profile.total_data(&self.market);
        let omega_without_i =
            omega - profile[i].d * self.market.org(i).effective_bits();
        let marginal = self.accuracy.gain(omega) - self.accuracy.gain(omega_without_i.max(0.0));
        // Stored-entry iteration: ascending-j like the dense indexed
        // loop (bit-identical), O(deg) on a sparse market.
        let weighted_p: f64 = self
            .market
            .rho_row(i)
            .map(|(j, rho)| rho * self.market.org(j).profitability())
            .sum();
        weighted_p * marginal
    }

    /// Contributed-resource index `d_i s_i + λ f_i` used by Eq. (9).
    pub fn resource_index(&self, profile: &StrategyProfile, i: usize) -> f64 {
        let org = self.market.org(i);
        let s = &profile[i];
        s.d * org.data_bits() + self.market.params().lambda * org.frequency(s.level)
    }

    /// Pairwise payoff redistribution `r_{i,j}` (Eq. 9): what `i`
    /// receives from `j` (negative means `i` pays `j`).
    pub fn redistribution_pair(&self, profile: &StrategyProfile, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let params = self.market.params();
        params.gamma
            * self.market.rho(i, j)
            * (self.resource_index(profile, i) - self.resource_index(profile, j))
    }

    /// Total redistribution `R_i = Σ_j r_{i,j}` (Eq. 10).
    pub fn redistribution(&self, profile: &StrategyProfile, i: usize) -> f64 {
        // Same arithmetic as summing `redistribution_pair` over all j
        // (ρ_ii = 0 and skipped zero entries contribute ±0.0, which is
        // an accumulator no-op), but O(deg) on a sparse market.
        let gamma = self.market.params().gamma;
        let res_i = self.resource_index(profile, i);
        self.market
            .rho_row(i)
            .map(|(j, rho)| gamma * rho * (res_i - self.resource_index(profile, j)))
            .sum()
    }

    /// Itemized payoff of organization `i` (the terms of Eq. 11).
    pub fn payoff_breakdown(&self, profile: &StrategyProfile, i: usize) -> PayoffBreakdown {
        let p = self.market.org(i).profitability();
        PayoffBreakdown {
            revenue: p * self.accuracy_gain(profile),
            overhead: self.market.params().omega_e * self.energy(profile, i),
            damage: self.damage(profile, i),
            redistribution: self.redistribution(profile, i),
        }
    }

    /// Payoff `C_i(π_i, π_-i)` (Eq. 11).
    pub fn payoff(&self, profile: &StrategyProfile, i: usize) -> f64 {
        self.payoff_breakdown(profile, i).total()
    }

    /// Payoff with the redistribution term removed — the WPR baseline's
    /// objective (§VI, "DBR Without Payoff Redistribution").
    pub fn payoff_without_redistribution(&self, profile: &StrategyProfile, i: usize) -> f64 {
        let b = self.payoff_breakdown(profile, i);
        b.revenue - b.overhead - b.damage
    }

    /// Social welfare `Σ_i C_i(π_i, π_-i)` (§III-E).
    pub fn social_welfare(&self, profile: &StrategyProfile) -> f64 {
        (0..self.market.len()).map(|i| self.payoff(profile, i)).sum()
    }

    /// Total coopetition damage `Σ_i D_i` (the Fig. 9 y-axis).
    pub fn total_damage(&self, profile: &StrategyProfile) -> f64 {
        (0..self.market.len()).map(|i| self.damage(profile, i)).sum()
    }

    /// The strategy-dependent *own* term of `C_i` divided by `z_i`,
    /// i.e. `h_i(π_i)/z_i` with
    /// `h_i = −ϖ_e E_i + γ q_i (d_i s_i + λ f_i)`; building block of the
    /// exact potential.
    fn own_term_over_weight(&self, profile: &StrategyProfile, i: usize) -> f64 {
        let params = self.market.params();
        let q_i = self.market.competition_pressure(i);
        let h = -params.omega_e * self.energy(profile, i)
            + params.gamma * q_i * self.resource_index(profile, i);
        h / self.market.weight(i)
    }

    /// The exact weighted potential `U(π)` (Theorem 1; see the module
    /// docs for the correction relative to the printed Eq. 15):
    /// `U = P(Ω) + Σ_i h_i(π_i)/z_i`.
    ///
    /// Satisfies `C_i(π) − C_i(π') = z_i · [U(π) − U(π')]` exactly for
    /// any unilateral deviation of organization `i`.
    pub fn potential(&self, profile: &StrategyProfile) -> f64 {
        let p = self.accuracy_gain(profile);
        let own: f64 = (0..self.market.len())
            .map(|i| self.own_term_over_weight(profile, i))
            .sum();
        p + own
    }

    /// The paper's Eq. (15) evaluated verbatim:
    /// `P(Ω) − Σ_i [ϖ_e κ f_i² η_i d_i s_i − Σ_j r_{i,j}]/z_i`.
    ///
    /// Retained for comparison; it differs from [`Self::potential`] by
    /// opponent-dependent cross terms and therefore does not satisfy
    /// identity (14) exactly (demonstrated in the test suite).
    pub fn potential_paper_eq15(&self, profile: &StrategyProfile) -> f64 {
        let p = self.accuracy_gain(profile);
        let params = self.market.params();
        let sum: f64 = (0..self.market.len())
            .map(|i| {
                let org = self.market.org(i);
                let s = &profile[i];
                let f = org.frequency(s.level);
                let comp = params.kappa * f * f * org.eta() * s.d * org.data_bits();
                (params.omega_e * comp - self.redistribution(profile, i))
                    / self.market.weight(i)
            })
            .sum();
        p - sum
    }

    /// Partial derivative of `C_i` with respect to `d_i` at `profile`
    /// (the level part of `π_i` held fixed):
    /// `∂C_i/∂d_i = z_i P'(Ω) s_i + (γ q_i − ϖ_e κ f_i² η_i) s_i`.
    ///
    /// Concave in `d_i` because `P' ` is non-increasing and `z_i > 0`;
    /// best-response solvers bisect its root.
    pub fn payoff_d_deriv(&self, profile: &StrategyProfile, i: usize) -> f64 {
        let org = self.market.org(i);
        let params = self.market.params();
        let omega = profile.total_data(&self.market);
        let f = org.frequency(profile[i].level);
        let z = self.market.weight(i);
        let q = self.market.competition_pressure(i);
        let s = org.data_bits();
        z * self.accuracy.gain_deriv(omega) * org.effective_bits()
            + (params.gamma * q - params.omega_e * params.kappa * f * f * org.eta()) * s
    }

    /// Same derivative for the WPR objective (γ treated as 0).
    pub fn payoff_without_redistribution_d_deriv(
        &self,
        profile: &StrategyProfile,
        i: usize,
    ) -> f64 {
        let org = self.market.org(i);
        let params = self.market.params();
        let omega = profile.total_data(&self.market);
        let f = org.frequency(profile[i].level);
        let z = self.market.weight(i);
        let s = org.data_bits();
        z * self.accuracy.gain_deriv(omega) * org.effective_bits()
            - params.omega_e * params.kappa * f * f * org.eta() * s
    }

    /// Gradient of the exact potential with respect to the data vector
    /// `d` at fixed levels — what the centralized primal solver ascends:
    /// `∂U/∂d_i = P'(Ω) s_i + (γ q_i − ϖ_e κ f_i² η_i) s_i / z_i`.
    pub fn potential_d_grad(&self, profile: &StrategyProfile) -> Vec<f64> {
        let params = self.market.params();
        let omega = profile.total_data(&self.market);
        let p_deriv = self.accuracy.gain_deriv(omega);
        (0..self.market.len())
            .map(|i| {
                let org = self.market.org(i);
                let f = org.frequency(profile[i].level);
                let s = org.data_bits();
                let own =
                    (params.gamma * self.market.competition_pressure(i)
                        - params.omega_e * params.kappa * f * f * org.eta())
                        * s;
                p_deriv * org.effective_bits() + own / self.market.weight(i)
            })
            .collect()
    }

    /// Verifies the weighted-potential identity (Definition 8 / Eq. 14)
    /// for a unilateral deviation of organization `i`, returning the
    /// absolute discrepancy
    /// `| z_i (U(π) − U(π')) − (C_i(π) − C_i(π')) |`.
    pub fn potential_identity_gap(
        &self,
        profile: &StrategyProfile,
        i: usize,
        deviation: Strategy,
    ) -> f64 {
        let deviated = profile.with(i, deviation);
        let z = self.market.weight(i);
        let lhs = z * (self.potential(profile) - self.potential(&deviated));
        let rhs = self.payoff(profile, i) - self.payoff(&deviated, i);
        (lhs - rhs).abs()
    }

    /// Whether `profile` is an ε-Nash equilibrium against a *sampled*
    /// deviation set: for each organization, every ladder level paired
    /// with `grid` evenly spaced feasible data fractions.
    ///
    /// Returns the largest payoff improvement any sampled unilateral
    /// deviation achieves (≤ `0 + ε` at an ε-NE).
    pub fn best_sampled_deviation_gain(&self, profile: &StrategyProfile, grid: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.market.len() {
            let current = self.payoff(profile, i);
            let org = self.market.org(i);
            for level in 0..org.compute_level_count() {
                let Some((lo, hi)) = self.market.feasible_range(i, level) else {
                    continue;
                };
                for k in 0..=grid {
                    let d = lo + (hi - lo) * k as f64 / grid as f64;
                    let gain =
                        self.payoff(&profile.with(i, Strategy::new(d, level)), i) - current;
                    worst = worst.max(gain);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::SqrtAccuracy;
    use crate::config::MarketConfig;

    fn game() -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(4).build(7).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    fn mid_profile(g: &CoopetitionGame<SqrtAccuracy>) -> StrategyProfile {
        (0..g.market().len())
            .map(|i| {
                let level = g.market().org(i).compute_level_count() - 1;
                let (lo, hi) = g.market().feasible_range(i, level).unwrap();
                Strategy::new(0.5 * (lo + hi), level)
            })
            .collect()
    }

    #[test]
    fn breakdown_total_matches_payoff() {
        let g = game();
        let p = mid_profile(&g);
        for i in 0..g.market().len() {
            let b = g.payoff_breakdown(&p, i);
            assert!((b.total() - g.payoff(&p, i)).abs() < 1e-9);
        }
    }

    #[test]
    fn redistribution_sums_to_zero_with_symmetric_rho() {
        let g = game();
        let p = mid_profile(&g);
        let total: f64 = (0..g.market().len()).map(|i| g.redistribution(&p, i)).sum();
        assert!(total.abs() < 1e-6, "budget balance: sum R_i = {total}");
    }

    #[test]
    fn redistribution_pair_is_antisymmetric() {
        let g = game();
        let mut p = mid_profile(&g);
        p.set(0, Strategy::new(0.3, 1));
        let r01 = g.redistribution_pair(&p, 0, 1);
        let r10 = g.redistribution_pair(&p, 1, 0);
        assert!((r01 + r10).abs() < 1e-9);
        assert_eq!(g.redistribution_pair(&p, 2, 2), 0.0);
    }

    #[test]
    fn bigger_contributor_receives_positive_redistribution() {
        let g = game();
        let mut p = StrategyProfile::minimal(g.market());
        let level = g.market().org(0).compute_level_count() - 1;
        let (_, hi) = g.market().feasible_range(0, level).unwrap();
        p.set(0, Strategy::new(hi, level));
        assert!(g.redistribution(&p, 0) > 0.0, "top contributor is compensated");
        assert!(g.redistribution(&p, 1) < 0.0, "minimal contributor pays");
    }

    #[test]
    fn potential_identity_holds_exactly() {
        let g = game();
        let p = mid_profile(&g);
        for i in 0..g.market().len() {
            for level in 0..g.market().org(i).compute_level_count() {
                if let Some((lo, hi)) = g.market().feasible_range(i, level) {
                    for d in [lo, 0.5 * (lo + hi), hi] {
                        let gap = g.potential_identity_gap(&p, i, Strategy::new(d, level));
                        assert!(gap < 1e-6, "identity gap {gap} at i={i} level={level} d={d}");
                    }
                }
            }
        }
    }

    #[test]
    fn paper_eq15_violates_identity_where_exact_form_holds() {
        // Demonstrates the cross-term discrepancy discussed in the module
        // docs: the printed Eq. (15) is not an exact potential.
        let g = game();
        let p = mid_profile(&g);
        let i = 0;
        let dev = Strategy::new(g.market().params().d_min, 0);
        let deviated = p.with(i, dev);
        let z = g.market().weight(i);
        let lhs = z * (g.potential_paper_eq15(&p) - g.potential_paper_eq15(&deviated));
        let rhs = g.payoff(&p, i) - g.payoff(&deviated, i);
        // The payoff change is large; Eq. (15)'s cross terms leave a
        // visible residual while the exact potential's gap is ~0.
        assert!((lhs - rhs).abs() > 1e-6, "expected a residual, got {}", (lhs - rhs).abs());
        assert!(g.potential_identity_gap(&p, i, dev) < 1e-6);
    }

    #[test]
    fn payoff_d_derivative_matches_finite_difference() {
        let g = game();
        let p = mid_profile(&g);
        for i in 0..g.market().len() {
            let h = 1e-7;
            let up = p.with(i, Strategy::new(p[i].d + h, p[i].level));
            let dn = p.with(i, Strategy::new(p[i].d - h, p[i].level));
            let fd = (g.payoff(&up, i) - g.payoff(&dn, i)) / (2.0 * h);
            let an = g.payoff_d_deriv(&p, i);
            let rel = (fd - an).abs() / an.abs().max(1.0);
            assert!(rel < 1e-4, "i={i}: fd={fd} analytic={an}");
        }
    }

    #[test]
    fn potential_gradient_matches_finite_difference() {
        let g = game();
        let p = mid_profile(&g);
        let grad = g.potential_d_grad(&p);
        for i in 0..g.market().len() {
            let h = 1e-7;
            let up = p.with(i, Strategy::new(p[i].d + h, p[i].level));
            let dn = p.with(i, Strategy::new(p[i].d - h, p[i].level));
            let fd = (g.potential(&up) - g.potential(&dn)) / (2.0 * h);
            let rel = (fd - grad[i]).abs() / grad[i].abs().max(1e-12);
            assert!(rel < 1e-3, "i={i}: fd={fd} analytic={}", grad[i]);
        }
    }

    #[test]
    fn damage_is_nonnegative_and_grows_with_own_data() {
        let g = game();
        let p = StrategyProfile::minimal(g.market());
        let level = g.market().org(0).compute_level_count() - 1;
        let (_, hi) = g.market().feasible_range(0, level).unwrap();
        let p_hi = p.with(0, Strategy::new(hi, level));
        assert!(g.damage(&p, 0) >= 0.0);
        assert!(g.damage(&p_hi, 0) > g.damage(&p, 0));
    }

    #[test]
    fn wpr_payoff_drops_redistribution_only() {
        let g = game();
        let mut p = mid_profile(&g);
        p.set(0, Strategy::new(g.market().params().d_min, 0));
        for i in 0..g.market().len() {
            let full = g.payoff(&p, i);
            let wpr = g.payoff_without_redistribution(&p, i);
            let r = g.redistribution(&p, i);
            assert!((full - wpr - r).abs() < 1e-9);
        }
    }

    #[test]
    fn welfare_is_sum_of_payoffs_and_redistribution_cancels() {
        let g = game();
        let p = mid_profile(&g);
        let w = g.social_welfare(&p);
        let no_r: f64 = (0..g.market().len())
            .map(|i| g.payoff_without_redistribution(&p, i))
            .sum();
        assert!((w - no_r).abs() < 1e-6, "redistribution is welfare-neutral");
    }

    #[test]
    fn energy_includes_comm_and_scales_with_d() {
        let g = game();
        let p = StrategyProfile::minimal(g.market());
        let e_min = g.energy(&p, 0);
        assert!(e_min > g.market().org(0).comm_energy() * 0.999);
        let level = p[0].level;
        let (_, hi) = g.market().feasible_range(0, level).unwrap();
        let e_hi = g.energy(&p.with(0, Strategy::new(hi, level)), 0);
        assert!(e_hi > e_min);
    }

    fn quality_game(thetas: &[f64]) -> CoopetitionGame<SqrtAccuracy> {
        let orgs: Vec<_> = thetas
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                crate::org::Organization::builder(format!("q{i}"))
                    .quality(t)
                    .compute_levels(vec![1.5e9, 3e9])
                    .build()
                    .unwrap()
            })
            .collect();
        let n = orgs.len();
        let rho = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 0.05 }).collect())
            .collect();
        let market =
            Market::new(orgs, rho, crate::market::MechanismParams::paper_default()).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    #[test]
    fn lower_quality_lowers_accuracy_gain_but_not_energy() {
        let high = quality_game(&[1.0, 1.0]);
        let low = quality_game(&[0.5, 0.5]);
        let p = StrategyProfile::from_parts(&[0.4, 0.4], &[1, 1]);
        assert!(
            high.accuracy_gain(&p) > low.accuracy_gain(&p),
            "half-quality data must yield a lower gain"
        );
        assert_eq!(high.energy(&p, 0), low.energy(&p, 0), "energy prices raw volume");
        assert_eq!(
            high.resource_index(&p, 0),
            low.resource_index(&p, 0),
            "the trading rule prices raw volume"
        );
    }

    #[test]
    fn potential_identity_holds_with_heterogeneous_quality() {
        let g = quality_game(&[1.0, 0.7, 0.3]);
        let p = StrategyProfile::from_parts(&[0.3, 0.4, 0.5], &[1, 1, 1]);
        for i in 0..3 {
            let gap = g.potential_identity_gap(&p, i, Strategy::new(0.15, 0));
            assert!(gap < 1e-6, "identity gap {gap} at org {i}");
        }
    }

    #[test]
    fn payoff_derivative_accounts_for_quality() {
        let g = quality_game(&[1.0, 0.4]);
        let p = StrategyProfile::from_parts(&[0.4, 0.4], &[1, 1]);
        for i in 0..2 {
            let h = 1e-7;
            let up = p.with(i, Strategy::new(p[i].d + h, p[i].level));
            let dn = p.with(i, Strategy::new(p[i].d - h, p[i].level));
            let fd = (g.payoff(&up, i) - g.payoff(&dn, i)) / (2.0 * h);
            let an = g.payoff_d_deriv(&p, i);
            assert!(
                (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                "i={i}: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn quality_builder_bounds() {
        assert!(crate::org::Organization::builder("x").quality(0.0).build().is_err());
        assert!(crate::org::Organization::builder("x").quality(1.5).build().is_err());
        assert!(crate::org::Organization::builder("x").quality(0.5).build().is_ok());
        let o = crate::org::Organization::builder("x").quality(0.5).build().unwrap();
        assert_eq!(o.effective_bits(), 0.5 * o.data_bits());
    }

    #[test]
    fn sampled_deviation_gain_is_zero_only_near_equilibrium() {
        let g = game();
        // The minimal profile is generally not an NE at γ*: orgs want to
        // contribute more to earn redistribution.
        let p = StrategyProfile::minimal(g.market());
        assert!(g.best_sampled_deviation_gain(&p, 8) > 0.0);
    }
}
