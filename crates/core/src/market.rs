//! The cross-silo FL market: organizations, competition, mechanism knobs.

use crate::error::{ensure_in_range, ensure_positive, ModelError, Result};
use crate::org::Organization;

/// Global mechanism and platform parameters (§III, Table II).
///
/// * `gamma` — incentive intensity `γ`: compensation price per unit of
///   contributed-resource difference (Eq. 9).
/// * `lambda` — unit-uniformizing weight `λ` that maps Hz onto the bit
///   scale inside the redistribution rule (Eq. 9).
/// * `kappa` — effective switched capacitance `κ` of the compute chipset
///   (Eq. 8); Table II uses `10^-27`.
/// * `omega_e` — training-overhead weight `ϖ_e` in the payoff (Eq. 11).
/// * `tau` — the round deadline `τ` (seconds) of constraint `C_i^(3)`.
/// * `d_min` — minimum participating data fraction `D_min ∈ (0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismParams {
    /// Incentive intensity `γ` (Eq. 9).
    pub gamma: f64,
    /// Unit-uniformizing factor `λ` (Eq. 9).
    pub lambda: f64,
    /// Effective capacitance `κ` (Eq. 8).
    pub kappa: f64,
    /// Training-overhead weight `ϖ_e` (Eq. 11).
    pub omega_e: f64,
    /// Round deadline `τ` in seconds (constraint `C_i^(3)`).
    pub tau: f64,
    /// Minimum data fraction `D_min` (§III-A).
    pub d_min: f64,
}

impl MechanismParams {
    /// The paper's operating point: `γ* = 5.12·10⁻⁹` (Fig. 10),
    /// `κ = 10⁻²⁷` (Table II), and calibration values for the remaining
    /// knobs documented in DESIGN.md.
    pub fn paper_default() -> Self {
        Self {
            gamma: 5.12e-9,
            lambda: 3.0,
            kappa: 1e-27,
            omega_e: 1.66e-3,
            tau: 600.0,
            d_min: 0.01,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `gamma` is negative or not finite, if
    /// `lambda`, `kappa`, `omega_e` or `tau` is non-positive, or if
    /// `d_min` lies outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !self.gamma.is_finite() {
            return Err(ModelError::NotFinite { name: "gamma" });
        }
        if self.gamma < 0.0 {
            return Err(ModelError::OutOfRange {
                name: "gamma",
                value: self.gamma,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        ensure_positive("lambda", self.lambda)?;
        ensure_positive("kappa", self.kappa)?;
        ensure_positive("omega_e", self.omega_e)?;
        ensure_positive("tau", self.tau)?;
        ensure_in_range("d_min", self.d_min, f64::MIN_POSITIVE, 1.0)?;
        Ok(())
    }

    /// Returns a copy with a different incentive intensity `γ`; the
    /// figure harnesses sweep γ with this.
    pub fn with_gamma(&self, gamma: f64) -> Self {
        Self { gamma, ..self.clone() }
    }

    /// Returns a copy with a different overhead weight `ϖ_e` (Fig. 11).
    pub fn with_omega_e(&self, omega_e: f64) -> Self {
        Self { omega_e, ..self.clone() }
    }
}

impl Default for MechanismParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The set of organizations `𝒪`, the competition-intensity matrix `ρ`,
/// and the mechanism parameters — everything §III needs that is not the
/// data-accuracy function.
///
/// Invariants enforced at construction:
/// * `ρ` is square of dimension `|N|`, entries in `[0, 1]`, zero
///   diagonal, and **symmetric** (budget balance, Def. 5, requires it);
/// * every potential weight `z_i = p_i − Σ_j ρ_ij p_j` is strictly
///   positive (Theorem 1);
/// * every organization can meet the deadline at `D_min` on its fastest
///   compute level (otherwise it cannot participate at all).
#[derive(Debug, Clone, PartialEq)]
pub struct Market {
    orgs: Vec<Organization>,
    rho: Vec<Vec<f64>>,
    params: MechanismParams,
}

impl Market {
    /// Builds and validates a market.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on any violated invariant; see the type
    /// docs for the list.
    pub fn new(
        orgs: Vec<Organization>,
        rho: Vec<Vec<f64>>,
        params: MechanismParams,
    ) -> Result<Self> {
        params.validate()?;
        let n = orgs.len();
        if n == 0 {
            return Err(ModelError::NonPositive { name: "|N|", value: 0.0 });
        }
        if rho.len() != n {
            return Err(ModelError::DimensionMismatch { expected: n, found: rho.len() });
        }
        for (i, row) in rho.iter().enumerate() {
            if row.len() != n {
                return Err(ModelError::DimensionMismatch { expected: n, found: row.len() });
            }
            for (j, &v) in row.iter().enumerate() {
                ensure_in_range("rho_ij", v, 0.0, 1.0)?;
                // lint:allow(no-float-eq): rho_ii must be exactly zero by construction
                if i == j && v != 0.0 {
                    return Err(ModelError::SelfCompetition { i });
                }
                if (v - rho[j][i]).abs() > 1e-12 {
                    return Err(ModelError::AsymmetricCompetition { i, j });
                }
            }
        }
        let market = Self { orgs, rho, params };
        for i in 0..n {
            let z = market.weight(i);
            if z <= 0.0 {
                return Err(ModelError::NonPositiveWeight { i, z });
            }
            // Participation must be possible at all: D_min at the fastest
            // frequency within the deadline.
            let org = &market.orgs[i];
            let t = org.comm_time()
                + org.training_time(market.params.d_min, org.max_frequency());
            if t > market.params.tau {
                return Err(ModelError::Infeasible { org: i });
            }
        }
        Ok(market)
    }

    /// Number of organizations `|N|`.
    pub fn len(&self) -> usize {
        self.orgs.len()
    }

    /// Whether the market is empty (never true for a constructed market).
    pub fn is_empty(&self) -> bool {
        self.orgs.is_empty()
    }

    /// The organizations in index order.
    pub fn orgs(&self) -> &[Organization] {
        &self.orgs
    }

    /// Organization at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= |N|`.
    pub fn org(&self, i: usize) -> &Organization {
        &self.orgs[i]
    }

    /// Competition intensity `ρ_{i,j} ∈ [0, 1]` (Def. 1 discussion).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn rho(&self, i: usize, j: usize) -> f64 {
        self.rho[i][j]
    }

    /// The full competition matrix.
    pub fn rho_matrix(&self) -> &[Vec<f64>] {
        &self.rho
    }

    /// Mechanism parameters.
    pub fn params(&self) -> &MechanismParams {
        &self.params
    }

    /// Replaces the mechanism parameters (used by γ/ϖ_e sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the new parameters are invalid or make
    /// some organization unable to participate within the deadline.
    pub fn with_params(&self, params: MechanismParams) -> Result<Self> {
        Self::new(self.orgs.clone(), self.rho.clone(), params)
    }

    /// Restricts the market to an organization subset (coalition
    /// analyses, what-if scenarios). Indices keep their relative order;
    /// the competition matrix is sliced accordingly.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `indices` is empty, contains an
    /// out-of-range or duplicate index, or if the sliced market violates
    /// a market invariant (cannot happen: removing organizations only
    /// raises every `z_i`).
    pub fn subset(&self, indices: &[usize]) -> Result<Market> {
        if indices.is_empty() {
            return Err(ModelError::NonPositive { name: "|subset|", value: 0.0 });
        }
        let mut seen = vec![false; self.orgs.len()];
        for &i in indices {
            if i >= self.orgs.len() {
                return Err(ModelError::DimensionMismatch {
                    expected: self.orgs.len(),
                    found: i,
                });
            }
            if seen[i] {
                return Err(ModelError::DimensionMismatch {
                    expected: self.orgs.len(),
                    found: i,
                });
            }
            seen[i] = true;
        }
        let orgs: Vec<Organization> =
            indices.iter().map(|&i| self.orgs[i].clone()).collect();
        let rho: Vec<Vec<f64>> = indices
            .iter()
            .map(|&i| indices.iter().map(|&j| self.rho[i][j]).collect())
            .collect();
        Market::new(orgs, rho, self.params.clone())
    }

    /// Total competition pressure on `i`: `q_i = Σ_j ρ_{i,j}`.
    pub fn competition_pressure(&self, i: usize) -> f64 {
        self.rho[i].iter().sum()
    }

    /// The weighted-potential-game weight
    /// `z_i = p_i − Σ_j ρ_{i,j} p_j` (Theorem 1); strictly positive by
    /// construction.
    pub fn weight(&self, i: usize) -> f64 {
        let own = self.orgs[i].profitability();
        let pressure: f64 = self
            .rho[i]
            .iter()
            .zip(&self.orgs)
            .map(|(&rho_ij, o)| rho_ij * o.profitability())
            .sum();
        own - pressure
    }

    /// Largest data fraction organization `i` can train within the
    /// deadline at ladder level `level`, before intersecting the
    /// `[D_min, 1]` box:
    /// `d ≤ (τ − T_i^(1) − T_i^(3)) · f / (η_i s_i)`.
    pub fn deadline_cap(&self, i: usize, level: usize) -> f64 {
        let org = &self.orgs[i];
        let budget = self.params.tau - org.comm_time();
        if budget <= 0.0 {
            return 0.0;
        }
        budget * org.frequency(level) / (org.eta() * org.data_bits())
    }

    /// The feasible interval `[D_min, min(1, deadline_cap)]` for `d_i` at
    /// the given ladder level, or `None` when even `D_min` violates the
    /// deadline there.
    pub fn feasible_range(&self, i: usize, level: usize) -> Option<(f64, f64)> {
        let hi = self.deadline_cap(i, level).min(1.0);
        if hi + 1e-15 < self.params.d_min {
            None
        } else {
            Some((self.params.d_min, hi.max(self.params.d_min)))
        }
    }

    /// Accuracy-effective total data volume `Ω = Σ_i θ_i d_i s_i`
    /// (bits) for the given data fractions. With the default quality
    /// `θ_i = 1` this is the paper's `Σ d_i s_i`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != |N|`.
    pub fn total_data(&self, d: &[f64]) -> f64 {
        assert_eq!(d.len(), self.orgs.len(), "fraction vector length mismatch");
        d.iter().zip(&self.orgs).map(|(&di, o)| di * o.effective_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org(p: f64) -> Organization {
        Organization::builder("o")
            .profitability(p)
            .compute_levels(vec![1e9, 2e9, 3e9])
            .build()
            .unwrap()
    }

    fn symmetric_rho(n: usize, v: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { v }).collect())
            .collect()
    }

    #[test]
    fn valid_market_constructs() {
        let m = Market::new(
            vec![org(1000.0), org(2000.0)],
            symmetric_rho(2, 0.1),
            MechanismParams::paper_default(),
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        // z_0 = 1000 - 0.1*2000 = 800
        assert!((m.weight(0) - 800.0).abs() < 1e-9);
        assert!((m.competition_pressure(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rejects_asymmetric_rho() {
        let mut rho = symmetric_rho(2, 0.1);
        rho[0][1] = 0.2;
        let r = Market::new(vec![org(1000.0), org(1000.0)], rho, MechanismParams::default());
        assert!(matches!(r, Err(ModelError::AsymmetricCompetition { .. })));
    }

    #[test]
    fn rejects_self_competition() {
        let mut rho = symmetric_rho(2, 0.1);
        rho[1][1] = 0.3;
        let r = Market::new(vec![org(1000.0), org(1000.0)], rho, MechanismParams::default());
        assert!(matches!(r, Err(ModelError::SelfCompetition { i: 1 })));
    }

    #[test]
    fn rejects_nonpositive_weight() {
        // rho = 0.9 between two equally profitable orgs: z = p - 0.9 p > 0,
        // but with three orgs z = p(1 - 1.8) < 0.
        let r = Market::new(
            vec![org(1000.0), org(1000.0), org(1000.0)],
            symmetric_rho(3, 0.9),
            MechanismParams::default(),
        );
        assert!(matches!(r, Err(ModelError::NonPositiveWeight { .. })));
    }

    #[test]
    fn rejects_wrong_rho_shape() {
        let r = Market::new(
            vec![org(1000.0), org(1000.0)],
            vec![vec![0.0, 0.1]],
            MechanismParams::default(),
        );
        assert!(matches!(r, Err(ModelError::DimensionMismatch { .. })));
    }

    #[test]
    fn deadline_cap_matches_closed_form() {
        let m = Market::new(
            vec![org(1000.0)],
            symmetric_rho(1, 0.0),
            MechanismParams::paper_default(),
        )
        .unwrap();
        let o = m.org(0);
        let cap = m.deadline_cap(0, 0);
        let expect = (m.params().tau - o.comm_time()) * o.frequency(0) / (o.eta() * o.data_bits());
        assert!((cap - expect).abs() < 1e-12);
        // With τ=600, comm=10, f=1e9, η=100, s=20e9: cap = 590e9/2e12 = 0.295.
        assert!((cap - 0.295).abs() < 1e-9);
    }

    #[test]
    fn feasible_range_clamps_and_rejects() {
        let mut p = MechanismParams::paper_default();
        p.tau = 20.0; // 10 s of compute budget
        let m = Market::new(vec![org(1000.0)], symmetric_rho(1, 0.0), p).unwrap();
        // cap at level 0 (1 GHz) = 10*1e9/2e12 = 0.005 < D_min = 0.01,
        // but level 2 (3 GHz) caps at 0.015 >= D_min.
        assert!(m.feasible_range(0, 0).is_none());
        let (lo, hi) = m.feasible_range(0, 2).unwrap();
        assert_eq!(lo, 0.01);
        assert!((hi - 0.015).abs() < 1e-12);
    }

    #[test]
    fn market_rejects_fully_infeasible_org() {
        let mut p = MechanismParams::paper_default();
        p.tau = 10.5; // 0.5 s budget; cap at 3 GHz = 0.00075 < D_min
        let r = Market::new(vec![org(1000.0)], symmetric_rho(1, 0.0), p);
        assert!(matches!(r, Err(ModelError::Infeasible { org: 0 })));
    }

    #[test]
    fn total_data_sums_fractions() {
        let m = Market::new(
            vec![org(1000.0), org(1000.0)],
            symmetric_rho(2, 0.05),
            MechanismParams::paper_default(),
        )
        .unwrap();
        let omega = m.total_data(&[0.5, 0.25]);
        assert!((omega - (0.5 * 20e9 + 0.25 * 20e9)).abs() < 1.0);
    }

    #[test]
    fn subset_slices_orgs_and_rho() {
        let m = Market::new(
            vec![org(1000.0), org(1500.0), org(2000.0)],
            vec![
                vec![0.00, 0.01, 0.02],
                vec![0.01, 0.00, 0.03],
                vec![0.02, 0.03, 0.00],
            ],
            MechanismParams::paper_default(),
        )
        .unwrap();
        let sub = m.subset(&[0, 2]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.org(1).profitability(), 2000.0);
        assert_eq!(sub.rho(0, 1), 0.02);
        // Removing a competitor raises the remaining weights.
        assert!(sub.weight(0) > m.weight(0));
        // Error cases.
        assert!(m.subset(&[]).is_err());
        assert!(m.subset(&[5]).is_err());
        assert!(m.subset(&[1, 1]).is_err());
    }

    #[test]
    fn gamma_zero_is_allowed_negative_rejected() {
        let mut p = MechanismParams::paper_default();
        p.gamma = 0.0;
        assert!(p.validate().is_ok());
        p.gamma = -1e-9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn with_gamma_and_omega_e_copies() {
        let p = MechanismParams::paper_default();
        assert_eq!(p.with_gamma(1e-8).gamma, 1e-8);
        assert_eq!(p.with_omega_e(0.1).omega_e, 0.1);
        assert_eq!(p.with_gamma(1e-8).lambda, p.lambda);
    }
}
