//! The cross-silo FL market: organizations, competition, mechanism knobs.

use crate::error::{ensure_in_range, ensure_positive, ModelError, Result};
use crate::org::Organization;

/// Global mechanism and platform parameters (§III, Table II).
///
/// * `gamma` — incentive intensity `γ`: compensation price per unit of
///   contributed-resource difference (Eq. 9).
/// * `lambda` — unit-uniformizing weight `λ` that maps Hz onto the bit
///   scale inside the redistribution rule (Eq. 9).
/// * `kappa` — effective switched capacitance `κ` of the compute chipset
///   (Eq. 8); Table II uses `10^-27`.
/// * `omega_e` — training-overhead weight `ϖ_e` in the payoff (Eq. 11).
/// * `tau` — the round deadline `τ` (seconds) of constraint `C_i^(3)`.
/// * `d_min` — minimum participating data fraction `D_min ∈ (0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismParams {
    /// Incentive intensity `γ` (Eq. 9).
    pub gamma: f64,
    /// Unit-uniformizing factor `λ` (Eq. 9).
    pub lambda: f64,
    /// Effective capacitance `κ` (Eq. 8).
    pub kappa: f64,
    /// Training-overhead weight `ϖ_e` (Eq. 11).
    pub omega_e: f64,
    /// Round deadline `τ` in seconds (constraint `C_i^(3)`).
    pub tau: f64,
    /// Minimum data fraction `D_min` (§III-A).
    pub d_min: f64,
}

impl MechanismParams {
    /// The paper's operating point: `γ* = 5.12·10⁻⁹` (Fig. 10),
    /// `κ = 10⁻²⁷` (Table II), and calibration values for the remaining
    /// knobs documented in DESIGN.md.
    pub fn paper_default() -> Self {
        Self {
            gamma: 5.12e-9,
            lambda: 3.0,
            kappa: 1e-27,
            omega_e: 1.66e-3,
            tau: 600.0,
            d_min: 0.01,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `gamma` is negative or not finite, if
    /// `lambda`, `kappa`, `omega_e` or `tau` is non-positive, or if
    /// `d_min` lies outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !self.gamma.is_finite() {
            return Err(ModelError::NotFinite { name: "gamma" });
        }
        if self.gamma < 0.0 {
            return Err(ModelError::OutOfRange {
                name: "gamma",
                value: self.gamma,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        ensure_positive("lambda", self.lambda)?;
        ensure_positive("kappa", self.kappa)?;
        ensure_positive("omega_e", self.omega_e)?;
        ensure_positive("tau", self.tau)?;
        ensure_in_range("d_min", self.d_min, f64::MIN_POSITIVE, 1.0)?;
        Ok(())
    }

    /// Returns a copy with a different incentive intensity `γ`; the
    /// figure harnesses sweep γ with this.
    pub fn with_gamma(&self, gamma: f64) -> Self {
        Self { gamma, ..self.clone() }
    }

    /// Returns a copy with a different overhead weight `ϖ_e` (Fig. 11).
    pub fn with_omega_e(&self, omega_e: f64) -> Self {
        Self { omega_e, ..self.clone() }
    }
}

impl Default for MechanismParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The competition-intensity matrix `ρ` in one of two layouts.
///
/// * [`RhoMatrix::Dense`] — the seed's `Vec<Vec<f64>>` rows; iteration
///   visits every column including explicit zeros. This is the layout
///   every existing constructor produces, and its accumulation order is
///   the bit-for-bit reference for all mechanism sums.
/// * [`RhoMatrix::Sparse`] — a symmetric CSR layout storing only
///   non-zero entries as `(column, value)` pairs per row, columns
///   strictly ascending. Row iteration skips the zeros a dense row
///   would visit; because every consumer accumulates with `+` starting
///   from `+0.0`, and adding `±0.0` to a non-`-0.0` accumulator is a
///   bitwise no-op, sparse sums are **bit-identical** to dense sums
///   over the same values (pinned by `tests/determinism.rs`).
///
/// At N=10,000 a ~1%-dense market stores ~2M entries (~32 MB) instead
/// of the 800 MB dense matrix, and every row sweep costs O(deg) rather
/// than O(N).
#[derive(Debug, Clone, PartialEq)]
pub enum RhoMatrix {
    /// Full row-major matrix, `rows[i][j] = ρ_ij`.
    Dense(Vec<Vec<f64>>),
    /// Symmetric CSR: row `i` holds `cols[row_ptr[i]..row_ptr[i+1]]`
    /// (strictly ascending) with matching `vals`.
    Sparse {
        /// Matrix dimension `|N|`.
        n: usize,
        /// Row start offsets, `n + 1` entries.
        row_ptr: Vec<usize>,
        /// Column indices, ascending within each row.
        cols: Vec<usize>,
        /// Entry values aligned with `cols`.
        vals: Vec<f64>,
    },
}

impl RhoMatrix {
    /// Wraps dense rows without copying.
    pub fn dense(rows: Vec<Vec<f64>>) -> Self {
        RhoMatrix::Dense(rows)
    }

    /// Builds a sparse symmetric matrix from upper- (or mixed-)
    /// triangle triplets `(i, j, v)`. Each triplet is mirrored to both
    /// `(i, j)` and `(j, i)`; exact zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on an out-of-range index, a diagonal
    /// entry, or the same unordered pair listed twice.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Self> {
        let mut entries = Vec::with_capacity(triplets.len() * 2);
        for &(i, j, v) in triplets {
            if i >= n || j >= n {
                return Err(ModelError::DimensionMismatch { expected: n, found: i.max(j) });
            }
            if i == j {
                return Err(ModelError::SelfCompetition { i });
            }
            // lint:allow(no-float-eq): dropping exact zeros is the sparsity contract
            if v == 0.0 {
                continue;
            }
            entries.push((i, j, v));
            entries.push((j, i, v));
        }
        entries.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                let (i, j) = (w[0].0.min(w[0].1), w[0].0.max(w[0].1));
                return Err(ModelError::DuplicateCompetitionEntry { i, j });
            }
        }
        let mut row_ptr = vec![0usize; n + 1];
        for &(i, _, _) in &entries {
            row_ptr[i + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let cols = entries.iter().map(|e| e.1).collect();
        let vals = entries.iter().map(|e| e.2).collect();
        Ok(RhoMatrix::Sparse { n, row_ptr, cols, vals })
    }

    /// Builds a sparse matrix from dense rows, keeping only entries
    /// with `|v| > threshold`. `threshold = 0.0` drops exact zeros
    /// only, which preserves every mechanism sum bit-for-bit.
    pub fn from_dense_thresholded(rows: &[Vec<f64>], threshold: f64) -> Self {
        let n = rows.len();
        let mut row_ptr = vec![0usize; n + 1];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v.abs() > threshold {
                    cols.push(j);
                    vals.push(v);
                }
            }
            row_ptr[i + 1] = cols.len();
        }
        RhoMatrix::Sparse { n, row_ptr, cols, vals }
    }

    /// Matrix dimension (number of rows).
    pub fn n(&self) -> usize {
        match self {
            RhoMatrix::Dense(rows) => rows.len(),
            RhoMatrix::Sparse { n, .. } => *n,
        }
    }

    /// Number of stored entries (dense: all N², sparse: non-zeros).
    pub fn nnz(&self) -> usize {
        match self {
            RhoMatrix::Dense(rows) => rows.iter().map(Vec::len).sum(),
            RhoMatrix::Sparse { cols, .. } => cols.len(),
        }
    }

    /// Resident heap bytes of the matrix storage.
    pub fn resident_bytes(&self) -> usize {
        match self {
            RhoMatrix::Dense(rows) => {
                rows.capacity() * std::mem::size_of::<Vec<f64>>()
                    + rows.iter().map(|r| r.capacity() * 8).sum::<usize>()
            }
            RhoMatrix::Sparse { row_ptr, cols, vals, .. } => {
                (row_ptr.capacity() + cols.capacity()) * std::mem::size_of::<usize>()
                    + vals.capacity() * 8
            }
        }
    }

    /// Entry `ρ_ij`; zero for an unstored sparse pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            RhoMatrix::Dense(rows) => rows[i][j],
            RhoMatrix::Sparse { n, row_ptr, cols, vals } => {
                assert!(i < *n && j < *n, "rho index out of range");
                let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
                match cols[lo..hi].binary_search(&j) {
                    Ok(k) => vals[lo + k],
                    Err(_) => 0.0,
                }
            }
        }
    }

    /// Iterates row `i` as `(j, ρ_ij)` pairs in ascending `j`. Dense
    /// rows yield every column (zeros included, matching the seed's
    /// accumulation order exactly); sparse rows yield stored entries
    /// only.
    pub fn row_iter(&self, i: usize) -> RhoRowIter<'_> {
        match self {
            RhoMatrix::Dense(rows) => RhoRowIter::Dense(rows[i].iter().enumerate()),
            RhoMatrix::Sparse { row_ptr, cols, vals, .. } => {
                let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
                RhoRowIter::Sparse(cols[lo..hi].iter().zip(vals[lo..hi].iter()))
            }
        }
    }

    /// Row sum `Σ_j ρ_ij` in ascending-`j` accumulation order.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row_iter(i).map(|(_, v)| v).sum()
    }

    /// Restricts the matrix to the given (duplicate-free, in-range)
    /// index subset, preserving the representation. Row order follows
    /// `indices`; sparse rows are re-sorted by new column index so the
    /// CSR invariant holds for any index order.
    pub fn restrict(&self, indices: &[usize]) -> RhoMatrix {
        match self {
            RhoMatrix::Dense(rows) => RhoMatrix::Dense(
                indices
                    .iter()
                    .map(|&i| indices.iter().map(|&j| rows[i][j]).collect())
                    .collect(),
            ),
            RhoMatrix::Sparse { n, row_ptr, cols, vals } => {
                let mut new_index = vec![usize::MAX; *n];
                for (new_j, &old_j) in indices.iter().enumerate() {
                    new_index[old_j] = new_j;
                }
                let mut out_ptr = vec![0usize; indices.len() + 1];
                let mut out_cols = Vec::new();
                let mut out_vals = Vec::new();
                let mut row = Vec::new();
                for (new_i, &old_i) in indices.iter().enumerate() {
                    row.clear();
                    for k in row_ptr[old_i]..row_ptr[old_i + 1] {
                        let nj = new_index[cols[k]];
                        if nj != usize::MAX {
                            row.push((nj, vals[k]));
                        }
                    }
                    row.sort_by_key(|e| e.0);
                    for &(j, v) in &row {
                        out_cols.push(j);
                        out_vals.push(v);
                    }
                    out_ptr[new_i + 1] = out_cols.len();
                }
                RhoMatrix::Sparse {
                    n: indices.len(),
                    row_ptr: out_ptr,
                    cols: out_cols,
                    vals: out_vals,
                }
            }
        }
    }

    /// Validates shape, entry range, zero diagonal, and symmetry for
    /// `n` organizations. Dense checks mirror the seed's loop exactly
    /// (same error order); sparse checks every stored entry against
    /// its transpose in O(nnz log deg).
    fn validate(&self, n: usize) -> Result<()> {
        match self {
            RhoMatrix::Dense(rows) => {
                if rows.len() != n {
                    return Err(ModelError::DimensionMismatch { expected: n, found: rows.len() });
                }
                for (i, row) in rows.iter().enumerate() {
                    if row.len() != n {
                        return Err(ModelError::DimensionMismatch {
                            expected: n,
                            found: row.len(),
                        });
                    }
                    for (j, &v) in row.iter().enumerate() {
                        ensure_in_range("rho_ij", v, 0.0, 1.0)?;
                        // lint:allow(no-float-eq): rho_ii must be exactly zero by construction
                        if i == j && v != 0.0 {
                            return Err(ModelError::SelfCompetition { i });
                        }
                        if (v - rows[j][i]).abs() > 1e-12 {
                            return Err(ModelError::AsymmetricCompetition { i, j });
                        }
                    }
                }
            }
            RhoMatrix::Sparse { n: dim, row_ptr, cols, vals } => {
                if *dim != n || row_ptr.len() != n + 1 || cols.len() != vals.len() {
                    return Err(ModelError::DimensionMismatch { expected: n, found: *dim });
                }
                for i in 0..n {
                    let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
                    if lo > hi || hi > cols.len() {
                        return Err(ModelError::DimensionMismatch { expected: n, found: hi });
                    }
                    let mut prev: Option<usize> = None;
                    for k in lo..hi {
                        let (j, v) = (cols[k], vals[k]);
                        if j >= n {
                            return Err(ModelError::DimensionMismatch { expected: n, found: j });
                        }
                        if prev.is_some_and(|p| p >= j) {
                            return Err(ModelError::DuplicateCompetitionEntry { i, j });
                        }
                        prev = Some(j);
                        ensure_in_range("rho_ij", v, 0.0, 1.0)?;
                        // lint:allow(no-float-eq): rho_ii must be exactly zero by construction
                        if i == j && v != 0.0 {
                            return Err(ModelError::SelfCompetition { i });
                        }
                        if (v - self.get(j, i)).abs() > 1e-12 {
                            return Err(ModelError::AsymmetricCompetition { i, j });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Iterator over one row of a [`RhoMatrix`] as `(column, value)`.
#[derive(Debug, Clone)]
pub enum RhoRowIter<'a> {
    /// Dense row: every column, zeros included.
    Dense(std::iter::Enumerate<std::slice::Iter<'a, f64>>),
    /// Sparse row: stored entries only.
    Sparse(std::iter::Zip<std::slice::Iter<'a, usize>, std::slice::Iter<'a, f64>>),
}

impl Iterator for RhoRowIter<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            RhoRowIter::Dense(it) => it.next().map(|(j, &v)| (j, v)),
            RhoRowIter::Sparse(it) => it.next().map(|(&j, &v)| (j, v)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RhoRowIter::Dense(it) => it.size_hint(),
            RhoRowIter::Sparse(it) => it.size_hint(),
        }
    }

    // Row iteration sits inside every O(nnz) mechanism sum; routing
    // the whole loop through one variant match (instead of one per
    // element) lets the inner slice iteration vectorize exactly like
    // the pre-enum direct indexing did. `sum`, `map(..).sum()`, and
    // `for_each` all lower to `fold`.
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, (usize, f64)) -> B,
    {
        match self {
            RhoRowIter::Dense(it) => it.fold(init, |acc, (j, &v)| f(acc, (j, v))),
            RhoRowIter::Sparse(it) => it.fold(init, |acc, (&j, &v)| f(acc, (j, v))),
        }
    }
}

/// The set of organizations `𝒪`, the competition-intensity matrix `ρ`,
/// and the mechanism parameters — everything §III needs that is not the
/// data-accuracy function.
///
/// Invariants enforced at construction:
/// * `ρ` is square of dimension `|N|`, entries in `[0, 1]`, zero
///   diagonal, and **symmetric** (budget balance, Def. 5, requires it);
/// * every potential weight `z_i = p_i − Σ_j ρ_ij p_j` is strictly
///   positive (Theorem 1);
/// * every organization can meet the deadline at `D_min` on its fastest
///   compute level (otherwise it cannot participate at all).
#[derive(Debug, Clone, PartialEq)]
pub struct Market {
    orgs: Vec<Organization>,
    rho: RhoMatrix,
    params: MechanismParams,
}

impl Market {
    /// Builds and validates a market from dense `ρ` rows.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on any violated invariant; see the type
    /// docs for the list.
    pub fn new(
        orgs: Vec<Organization>,
        rho: Vec<Vec<f64>>,
        params: MechanismParams,
    ) -> Result<Self> {
        Self::with_rho(orgs, RhoMatrix::dense(rho), params)
    }

    /// Builds and validates a market from either `ρ` representation;
    /// sparse markets validate and solve in O(nnz) rather than O(N²).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on any violated invariant; see the type
    /// docs for the list.
    pub fn with_rho(
        orgs: Vec<Organization>,
        rho: RhoMatrix,
        params: MechanismParams,
    ) -> Result<Self> {
        params.validate()?;
        let n = orgs.len();
        if n == 0 {
            return Err(ModelError::NonPositive { name: "|N|", value: 0.0 });
        }
        rho.validate(n)?;
        let market = Self { orgs, rho, params };
        for i in 0..n {
            let z = market.weight(i);
            if z <= 0.0 {
                return Err(ModelError::NonPositiveWeight { i, z });
            }
            // Participation must be possible at all: D_min at the fastest
            // frequency within the deadline.
            let org = &market.orgs[i];
            let t = org.comm_time()
                + org.training_time(market.params.d_min, org.max_frequency());
            if t > market.params.tau {
                return Err(ModelError::Infeasible { org: i });
            }
        }
        Ok(market)
    }

    /// Number of organizations `|N|`.
    pub fn len(&self) -> usize {
        self.orgs.len()
    }

    /// Whether the market is empty (never true for a constructed market).
    pub fn is_empty(&self) -> bool {
        self.orgs.is_empty()
    }

    /// The organizations in index order.
    pub fn orgs(&self) -> &[Organization] {
        &self.orgs
    }

    /// Organization at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= |N|`.
    pub fn org(&self, i: usize) -> &Organization {
        &self.orgs[i]
    }

    /// Competition intensity `ρ_{i,j} ∈ [0, 1]` (Def. 1 discussion).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn rho(&self, i: usize, j: usize) -> f64 {
        self.rho.get(i, j)
    }

    /// The full competition matrix.
    pub fn rho_matrix(&self) -> &RhoMatrix {
        &self.rho
    }

    /// Iterates row `i` of `ρ` as `(j, ρ_ij)` pairs in ascending `j`;
    /// sparse markets yield stored entries only (O(deg), not O(N)).
    pub fn rho_row(&self, i: usize) -> RhoRowIter<'_> {
        self.rho.row_iter(i)
    }

    /// Stored `ρ` entry count (dense: N², sparse: non-zeros).
    pub fn rho_nnz(&self) -> usize {
        self.rho.nnz()
    }

    /// Resident heap bytes of the `ρ` storage.
    pub fn rho_resident_bytes(&self) -> usize {
        self.rho.resident_bytes()
    }

    /// Mechanism parameters.
    pub fn params(&self) -> &MechanismParams {
        &self.params
    }

    /// Replaces the mechanism parameters (used by γ/ϖ_e sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the new parameters are invalid or make
    /// some organization unable to participate within the deadline.
    pub fn with_params(&self, params: MechanismParams) -> Result<Self> {
        Self::with_rho(self.orgs.clone(), self.rho.clone(), params)
    }

    /// Restricts the market to an organization subset (coalition
    /// analyses, what-if scenarios). Indices keep their relative order;
    /// the competition matrix is sliced accordingly.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `indices` is empty, contains an
    /// out-of-range or duplicate index, or if the sliced market violates
    /// a market invariant (cannot happen: removing organizations only
    /// raises every `z_i`).
    pub fn subset(&self, indices: &[usize]) -> Result<Market> {
        if indices.is_empty() {
            return Err(ModelError::NonPositive { name: "|subset|", value: 0.0 });
        }
        let mut seen = vec![false; self.orgs.len()];
        for &i in indices {
            if i >= self.orgs.len() {
                return Err(ModelError::DimensionMismatch {
                    expected: self.orgs.len(),
                    found: i,
                });
            }
            if seen[i] {
                return Err(ModelError::DimensionMismatch {
                    expected: self.orgs.len(),
                    found: i,
                });
            }
            seen[i] = true;
        }
        let orgs: Vec<Organization> =
            indices.iter().map(|&i| self.orgs[i].clone()).collect();
        Market::with_rho(orgs, self.rho.restrict(indices), self.params.clone())
    }

    /// Total competition pressure on `i`: `q_i = Σ_j ρ_{i,j}`.
    pub fn competition_pressure(&self, i: usize) -> f64 {
        self.rho.row_sum(i)
    }

    /// The weighted-potential-game weight
    /// `z_i = p_i − Σ_j ρ_{i,j} p_j` (Theorem 1); strictly positive by
    /// construction.
    pub fn weight(&self, i: usize) -> f64 {
        let own = self.orgs[i].profitability();
        let pressure: f64 = self
            .rho
            .row_iter(i)
            .map(|(j, rho_ij)| rho_ij * self.orgs[j].profitability())
            .sum();
        own - pressure
    }

    /// Largest data fraction organization `i` can train within the
    /// deadline at ladder level `level`, before intersecting the
    /// `[D_min, 1]` box:
    /// `d ≤ (τ − T_i^(1) − T_i^(3)) · f / (η_i s_i)`.
    pub fn deadline_cap(&self, i: usize, level: usize) -> f64 {
        let org = &self.orgs[i];
        let budget = self.params.tau - org.comm_time();
        if budget <= 0.0 {
            return 0.0;
        }
        budget * org.frequency(level) / (org.eta() * org.data_bits())
    }

    /// The feasible interval `[D_min, min(1, deadline_cap)]` for `d_i` at
    /// the given ladder level, or `None` when even `D_min` violates the
    /// deadline there.
    pub fn feasible_range(&self, i: usize, level: usize) -> Option<(f64, f64)> {
        let hi = self.deadline_cap(i, level).min(1.0);
        if hi + 1e-15 < self.params.d_min {
            None
        } else {
            Some((self.params.d_min, hi.max(self.params.d_min)))
        }
    }

    /// Accuracy-effective total data volume `Ω = Σ_i θ_i d_i s_i`
    /// (bits) for the given data fractions. With the default quality
    /// `θ_i = 1` this is the paper's `Σ d_i s_i`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != |N|`.
    pub fn total_data(&self, d: &[f64]) -> f64 {
        assert_eq!(d.len(), self.orgs.len(), "fraction vector length mismatch");
        d.iter().zip(&self.orgs).map(|(&di, o)| di * o.effective_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org(p: f64) -> Organization {
        Organization::builder("o")
            .profitability(p)
            .compute_levels(vec![1e9, 2e9, 3e9])
            .build()
            .unwrap()
    }

    fn symmetric_rho(n: usize, v: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { v }).collect())
            .collect()
    }

    #[test]
    fn valid_market_constructs() {
        let m = Market::new(
            vec![org(1000.0), org(2000.0)],
            symmetric_rho(2, 0.1),
            MechanismParams::paper_default(),
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        // z_0 = 1000 - 0.1*2000 = 800
        assert!((m.weight(0) - 800.0).abs() < 1e-9);
        assert!((m.competition_pressure(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rejects_asymmetric_rho() {
        let mut rho = symmetric_rho(2, 0.1);
        rho[0][1] = 0.2;
        let r = Market::new(vec![org(1000.0), org(1000.0)], rho, MechanismParams::default());
        assert!(matches!(r, Err(ModelError::AsymmetricCompetition { .. })));
    }

    #[test]
    fn rejects_self_competition() {
        let mut rho = symmetric_rho(2, 0.1);
        rho[1][1] = 0.3;
        let r = Market::new(vec![org(1000.0), org(1000.0)], rho, MechanismParams::default());
        assert!(matches!(r, Err(ModelError::SelfCompetition { i: 1 })));
    }

    #[test]
    fn rejects_nonpositive_weight() {
        // rho = 0.9 between two equally profitable orgs: z = p - 0.9 p > 0,
        // but with three orgs z = p(1 - 1.8) < 0.
        let r = Market::new(
            vec![org(1000.0), org(1000.0), org(1000.0)],
            symmetric_rho(3, 0.9),
            MechanismParams::default(),
        );
        assert!(matches!(r, Err(ModelError::NonPositiveWeight { .. })));
    }

    #[test]
    fn rejects_wrong_rho_shape() {
        let r = Market::new(
            vec![org(1000.0), org(1000.0)],
            vec![vec![0.0, 0.1]],
            MechanismParams::default(),
        );
        assert!(matches!(r, Err(ModelError::DimensionMismatch { .. })));
    }

    #[test]
    fn deadline_cap_matches_closed_form() {
        let m = Market::new(
            vec![org(1000.0)],
            symmetric_rho(1, 0.0),
            MechanismParams::paper_default(),
        )
        .unwrap();
        let o = m.org(0);
        let cap = m.deadline_cap(0, 0);
        let expect = (m.params().tau - o.comm_time()) * o.frequency(0) / (o.eta() * o.data_bits());
        assert!((cap - expect).abs() < 1e-12);
        // With τ=600, comm=10, f=1e9, η=100, s=20e9: cap = 590e9/2e12 = 0.295.
        assert!((cap - 0.295).abs() < 1e-9);
    }

    #[test]
    fn feasible_range_clamps_and_rejects() {
        let mut p = MechanismParams::paper_default();
        p.tau = 20.0; // 10 s of compute budget
        let m = Market::new(vec![org(1000.0)], symmetric_rho(1, 0.0), p).unwrap();
        // cap at level 0 (1 GHz) = 10*1e9/2e12 = 0.005 < D_min = 0.01,
        // but level 2 (3 GHz) caps at 0.015 >= D_min.
        assert!(m.feasible_range(0, 0).is_none());
        let (lo, hi) = m.feasible_range(0, 2).unwrap();
        assert_eq!(lo, 0.01);
        assert!((hi - 0.015).abs() < 1e-12);
    }

    #[test]
    fn market_rejects_fully_infeasible_org() {
        let mut p = MechanismParams::paper_default();
        p.tau = 10.5; // 0.5 s budget; cap at 3 GHz = 0.00075 < D_min
        let r = Market::new(vec![org(1000.0)], symmetric_rho(1, 0.0), p);
        assert!(matches!(r, Err(ModelError::Infeasible { org: 0 })));
    }

    #[test]
    fn total_data_sums_fractions() {
        let m = Market::new(
            vec![org(1000.0), org(1000.0)],
            symmetric_rho(2, 0.05),
            MechanismParams::paper_default(),
        )
        .unwrap();
        let omega = m.total_data(&[0.5, 0.25]);
        assert!((omega - (0.5 * 20e9 + 0.25 * 20e9)).abs() < 1.0);
    }

    #[test]
    fn subset_slices_orgs_and_rho() {
        let m = Market::new(
            vec![org(1000.0), org(1500.0), org(2000.0)],
            vec![
                vec![0.00, 0.01, 0.02],
                vec![0.01, 0.00, 0.03],
                vec![0.02, 0.03, 0.00],
            ],
            MechanismParams::paper_default(),
        )
        .unwrap();
        let sub = m.subset(&[0, 2]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.org(1).profitability(), 2000.0);
        assert_eq!(sub.rho(0, 1), 0.02);
        // Removing a competitor raises the remaining weights.
        assert!(sub.weight(0) > m.weight(0));
        // Error cases.
        assert!(m.subset(&[]).is_err());
        assert!(m.subset(&[5]).is_err());
        assert!(m.subset(&[1, 1]).is_err());
    }

    fn dense_rows() -> Vec<Vec<f64>> {
        vec![
            vec![0.00, 0.01, 0.00],
            vec![0.01, 0.00, 0.03],
            vec![0.00, 0.03, 0.00],
        ]
    }

    #[test]
    fn sparse_from_triplets_mirrors_and_sorts() {
        let m = RhoMatrix::from_triplets(3, &[(1, 2, 0.03), (0, 1, 0.01), (0, 2, 0.0)]).unwrap();
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 4); // two pairs, mirrored; the zero dropped
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j).to_bits(), dense_rows()[i][j].to_bits());
            }
        }
        let row: Vec<(usize, f64)> = m.row_iter(1).collect();
        assert_eq!(row, vec![(0, 0.01), (2, 0.03)]);
    }

    #[test]
    fn sparse_triplet_errors() {
        assert!(matches!(
            RhoMatrix::from_triplets(3, &[(0, 3, 0.1)]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            RhoMatrix::from_triplets(3, &[(1, 1, 0.1)]),
            Err(ModelError::SelfCompetition { i: 1 })
        ));
        assert!(matches!(
            RhoMatrix::from_triplets(3, &[(0, 1, 0.1), (1, 0, 0.1)]),
            Err(ModelError::DuplicateCompetitionEntry { i: 0, j: 1 })
        ));
    }

    #[test]
    fn thresholded_matches_dense_bitwise() {
        let rows = dense_rows();
        let sp = RhoMatrix::from_dense_thresholded(&rows, 0.0);
        assert_eq!(sp.nnz(), 4);
        for i in 0..3 {
            assert_eq!(sp.row_sum(i).to_bits(), RhoMatrix::dense(rows.clone()).row_sum(i).to_bits());
        }
    }

    #[test]
    fn sparse_market_matches_dense_market() {
        let orgs = vec![org(1000.0), org(1500.0), org(2000.0)];
        let params = MechanismParams::paper_default();
        let dense = Market::new(orgs.clone(), dense_rows(), params.clone()).unwrap();
        let sparse = Market::with_rho(
            orgs,
            RhoMatrix::from_dense_thresholded(&dense_rows(), 0.0),
            params,
        )
        .unwrap();
        for i in 0..3 {
            assert_eq!(dense.weight(i).to_bits(), sparse.weight(i).to_bits());
            assert_eq!(
                dense.competition_pressure(i).to_bits(),
                sparse.competition_pressure(i).to_bits()
            );
        }
        assert!(sparse.rho_resident_bytes() < dense.rho_resident_bytes());
        // Subset preserves the sparse representation and agrees too.
        let (ds, ss) = (dense.subset(&[2, 0]).unwrap(), sparse.subset(&[2, 0]).unwrap());
        assert_eq!(ds.rho(0, 1).to_bits(), ss.rho(0, 1).to_bits());
        assert_eq!(ds.weight(0).to_bits(), ss.weight(0).to_bits());
    }

    #[test]
    fn sparse_validation_rejects_asymmetry_and_diagonal() {
        let orgs = vec![org(1000.0), org(1000.0)];
        let asym = RhoMatrix::Sparse {
            n: 2,
            row_ptr: vec![0, 1, 1],
            cols: vec![1],
            vals: vec![0.1],
        };
        assert!(matches!(
            Market::with_rho(orgs.clone(), asym, MechanismParams::default()),
            Err(ModelError::AsymmetricCompetition { .. })
        ));
        let diag = RhoMatrix::Sparse {
            n: 2,
            row_ptr: vec![0, 1, 1],
            cols: vec![0],
            vals: vec![0.1],
        };
        assert!(matches!(
            Market::with_rho(orgs, diag, MechanismParams::default()),
            Err(ModelError::SelfCompetition { i: 0 })
        ));
    }

    #[test]
    fn gamma_zero_is_allowed_negative_rejected() {
        let mut p = MechanismParams::paper_default();
        p.gamma = 0.0;
        assert!(p.validate().is_ok());
        p.gamma = -1e-9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn with_gamma_and_omega_e_copies() {
        let p = MechanismParams::paper_default();
        assert_eq!(p.with_gamma(1e-8).gamma, 1e-8);
        assert_eq!(p.with_omega_e(0.1).omega_e, 0.1);
        assert_eq!(p.with_gamma(1e-8).lambda, p.lambda);
    }
}
