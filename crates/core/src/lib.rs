//! Coopetition model, payoff functions and potential game for **TradeFL**.
//!
//! This crate implements the economic core of *"TradeFL: A Trading
//! Mechanism for Cross-Silo Federated Learning"* (Yuan et al., ICDCS
//! 2023): organizations that both cooperate (jointly train a global
//! model) and compete (share a market), the payoff-redistribution
//! trading rule that compensates coopetition damage, and the weighted
//! potential game whose Nash equilibrium the companion crate
//! `tradefl-solver` computes.
//!
//! # Quick start
//!
//! ```
//! use tradefl_core::accuracy::SqrtAccuracy;
//! use tradefl_core::config::MarketConfig;
//! use tradefl_core::game::CoopetitionGame;
//! use tradefl_core::mechanism::MechanismAudit;
//! use tradefl_core::strategy::StrategyProfile;
//!
//! // Ten organizations sampled from the paper's Table II.
//! let market = MarketConfig::table_ii().build(42)?;
//! let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
//!
//! // Everyone contributes the minimum: payoffs, damage and welfare.
//! let profile = StrategyProfile::minimal(game.market());
//! let audit = MechanismAudit::evaluate(&game, &profile);
//! assert!(audit.budget_balanced_rel(1e-9)); // Σ R_i = 0 (Def. 5)
//! # Ok::<(), tradefl_core::error::ModelError>(())
//! ```
//!
//! # Modules
//!
//! * [`accuracy`] — data-accuracy functions `P(Ω)` (Eq. 4-5), including
//!   the paper's sqrt bound and an empirical interpolation.
//! * [`org`] — organization parameters and Eq. (2) timing.
//! * [`market`] — the organization set, competition matrix `ρ` and
//!   mechanism knobs (γ, λ, κ, ϖ_e, τ, D_min).
//! * [`strategy`] — strategies `π_i = {d_i, f_i}` and profiles.
//! * [`game`] — payoffs (Eq. 11), redistribution (Eq. 9-10), damage
//!   (Eq. 6-7) and the weighted potential (Eq. 15 / Thm. 1).
//! * [`incremental`] — `O(log N)` incremental payoff evaluation for
//!   best-response sweeps at thousand-silo scale.
//! * [`mechanism`] — individual-rationality and budget-balance audits
//!   (Defs. 3-5, Thm. 2).
//! * [`contribution`] — exact Shapley values of the accuracy game.
//! * [`config`] — reproducible Table II market generation.
//! * [`error`] — validation errors.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod config;
pub mod contribution;
pub mod error;
pub mod game;
pub mod incremental;
pub mod market;
pub mod mechanism;
pub mod org;
pub mod strategy;

pub use accuracy::{AccuracyModel, SqrtAccuracy};
pub use config::MarketConfig;
pub use contribution::{shapley_accuracy, ShapleyReport};
pub use error::ModelError;
pub use game::{CoopetitionGame, PayoffBreakdown};
pub use incremental::{IncrementalEval, SumTree};
pub use market::{Market, MechanismParams, RhoMatrix};
pub use mechanism::MechanismAudit;
pub use org::Organization;
pub use strategy::{Strategy, StrategyProfile};
