//! Organizations participating in cross-silo federated learning (§III-A).

use crate::error::{ensure_positive, ModelError, Result};

/// One cross-silo FL participant (a financial/medical/pharma entity).
///
/// Carries the per-organization constants of §III: local dataset size
/// `s_i` (bits) and sample count `|S_i|`, per-bit processing cost `η_i`
/// (CPU cycles/bit), the discrete compute ladder `F_i^(1..m)` (Hz),
/// profitability `p_i` (revenue per unit of global-model performance),
/// and the fixed communication times/powers of the download/upload phases.
///
/// Construct via [`OrganizationBuilder`]; all parameters are validated.
///
/// # Examples
///
/// ```
/// use tradefl_core::org::Organization;
///
/// let org = Organization::builder("hospital-a")
///     .data_bits(20e9)
///     .samples(1500)
///     .profitability(1200.0)
///     .compute_levels(vec![1.0e9, 2.0e9, 3.0e9])
///     .build()?;
/// assert_eq!(org.compute_level_count(), 3);
/// # Ok::<(), tradefl_core::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Organization {
    name: String,
    s_bits: f64,
    quality: f64,
    samples: usize,
    eta: f64,
    compute_levels: Vec<f64>,
    profitability: f64,
    t_download: f64,
    t_upload: f64,
    power_download: f64,
    power_upload: f64,
}

impl Organization {
    /// Starts building an organization with the given display name.
    pub fn builder(name: impl Into<String>) -> OrganizationBuilder {
        OrganizationBuilder::new(name)
    }

    /// Display name of the organization.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Local dataset size `s_i` in bits.
    pub fn data_bits(&self) -> f64 {
        self.s_bits
    }

    /// Data quality `θ_i ∈ (0, 1]` (the paper's footnote 3 treats this
    /// as a constant; we expose it so heterogeneous-quality markets can
    /// be studied). Only the *accuracy-effective* volume is scaled;
    /// energy, deadlines and the trading rule price raw volume.
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// Accuracy-effective dataset size `θ_i · s_i` in bits.
    pub fn effective_bits(&self) -> f64 {
        self.quality * self.s_bits
    }

    /// Number of local data samples `|S_i|`.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Compute cost `η_i` in CPU cycles per bit of training data.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The discrete compute ladder `F_i^(1..m)` in Hz, strictly ascending.
    pub fn compute_levels(&self) -> &[f64] {
        &self.compute_levels
    }

    /// Number of compute levels `m`.
    pub fn compute_level_count(&self) -> usize {
        self.compute_levels.len()
    }

    /// Compute frequency (Hz) at ladder index `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= m`; use [`Organization::compute_levels`] to
    /// inspect the ladder first.
    pub fn frequency(&self, level: usize) -> f64 {
        self.compute_levels[level]
    }

    /// The fastest available frequency `F_i^(m)`.
    pub fn max_frequency(&self) -> f64 {
        // lint:allow(no-panic-in-lib): the compute ladder is validated non-empty at construction
        *self.compute_levels.last().expect("ladder is never empty")
    }

    /// Profitability `p_i`: revenue per unit of global-model performance.
    pub fn profitability(&self) -> f64 {
        self.profitability
    }

    /// Average model download time `T_i^(1)` in seconds.
    pub fn t_download(&self) -> f64 {
        self.t_download
    }

    /// Average model upload time `T_i^(3)` in seconds.
    pub fn t_upload(&self) -> f64 {
        self.t_upload
    }

    /// Communication power draw during download `E_DL` (watts).
    pub fn power_download(&self) -> f64 {
        self.power_download
    }

    /// Communication power draw during upload `E_UL` (watts).
    pub fn power_upload(&self) -> f64 {
        self.power_upload
    }

    /// Local-training time `T_i^(2)(d, f) = η_i · d · s_i / f` (Eq. 2).
    ///
    /// `d` is the contributed data fraction and `f` the chosen frequency
    /// in Hz.
    pub fn training_time(&self, d: f64, f: f64) -> f64 {
        self.eta * d * self.s_bits / f
    }

    /// Fixed communication time `T_i^(1) + T_i^(3)`.
    pub fn comm_time(&self) -> f64 {
        self.t_download + self.t_upload
    }

    /// Fixed communication energy
    /// `E_i^comm = E_DL · T_i^(1) + E_UL · T_i^(3)` (§III-D), in joules.
    pub fn comm_energy(&self) -> f64 {
        self.power_download * self.t_download + self.power_upload * self.t_upload
    }
}

/// Builder for [`Organization`]; see [`Organization::builder`].
///
/// Defaults (used by tests and the Table II generator): `η = 100`
/// cycles/bit, one-level ladder at 3 GHz, `T^(1) = T^(3) = 5 s`,
/// `E_DL = E_UL = 10 W`.
#[derive(Debug, Clone)]
pub struct OrganizationBuilder {
    name: String,
    s_bits: f64,
    quality: f64,
    samples: usize,
    eta: f64,
    compute_levels: Vec<f64>,
    profitability: f64,
    t_download: f64,
    t_upload: f64,
    power_download: f64,
    power_upload: f64,
}

impl OrganizationBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            s_bits: 20e9,
            quality: 1.0,
            samples: 1500,
            eta: 100.0,
            compute_levels: vec![3.0e9],
            profitability: 1500.0,
            t_download: 5.0,
            t_upload: 5.0,
            power_download: 10.0,
            power_upload: 10.0,
        }
    }

    /// Sets the local dataset size `s_i` in bits.
    pub fn data_bits(mut self, s_bits: f64) -> Self {
        self.s_bits = s_bits;
        self
    }

    /// Sets the local sample count `|S_i|`.
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the data quality `θ_i ∈ (0, 1]` (default 1.0).
    pub fn quality(mut self, quality: f64) -> Self {
        self.quality = quality;
        self
    }

    /// Sets the per-bit compute cost `η_i` (cycles/bit).
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Sets the compute ladder `F_i^(1..m)` in Hz (must end up strictly
    /// ascending).
    pub fn compute_levels(mut self, levels: Vec<f64>) -> Self {
        self.compute_levels = levels;
        self
    }

    /// Sets the profitability `p_i`.
    pub fn profitability(mut self, p: f64) -> Self {
        self.profitability = p;
        self
    }

    /// Sets the model download time `T_i^(1)` (seconds).
    pub fn t_download(mut self, t: f64) -> Self {
        self.t_download = t;
        self
    }

    /// Sets the model upload time `T_i^(3)` (seconds).
    pub fn t_upload(mut self, t: f64) -> Self {
        self.t_upload = t;
        self
    }

    /// Sets the download power draw `E_DL` (watts).
    pub fn power_download(mut self, w: f64) -> Self {
        self.power_download = w;
        self
    }

    /// Sets the upload power draw `E_UL` (watts).
    pub fn power_upload(mut self, w: f64) -> Self {
        self.power_upload = w;
        self
    }

    /// Validates and produces the [`Organization`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if a numeric parameter is non-positive or
    /// not finite, if the ladder is empty, or if it is not strictly
    /// ascending. Communication times/powers may be zero (an organization
    /// co-located with the server) but not negative.
    pub fn build(self) -> Result<Organization> {
        ensure_positive("s_i", self.s_bits)?;
        crate::error::ensure_in_range("theta_i", self.quality, f64::MIN_POSITIVE, 1.0)?;
        ensure_positive("eta_i", self.eta)?;
        ensure_positive("p_i", self.profitability)?;
        if self.samples == 0 {
            return Err(ModelError::NonPositive { name: "|S_i|", value: 0.0 });
        }
        for (name, v) in [
            ("T_i^(1)", self.t_download),
            ("T_i^(3)", self.t_upload),
            ("E_DL", self.power_download),
            ("E_UL", self.power_upload),
        ] {
            if !v.is_finite() {
                return Err(ModelError::NotFinite { name });
            }
            if v < 0.0 {
                return Err(ModelError::OutOfRange { name, value: v, min: 0.0, max: f64::INFINITY });
            }
        }
        if self.compute_levels.is_empty() {
            return Err(ModelError::EmptyComputeLevels { i: 0 });
        }
        for w in self.compute_levels.windows(2) {
            if !(w[1] > w[0]) {
                return Err(ModelError::UnsortedComputeLevels { i: 0 });
            }
        }
        for &f in &self.compute_levels {
            ensure_positive("F_i", f)?;
        }
        Ok(Organization {
            name: self.name,
            s_bits: self.s_bits,
            quality: self.quality,
            samples: self.samples,
            eta: self.eta,
            compute_levels: self.compute_levels,
            profitability: self.profitability,
            t_download: self.t_download,
            t_upload: self.t_upload,
            power_download: self.power_download,
            power_upload: self.power_upload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let org = Organization::builder("o").build().unwrap();
        assert_eq!(org.name(), "o");
        assert!(org.data_bits() > 0.0);
        assert_eq!(org.compute_level_count(), 1);
    }

    #[test]
    fn training_time_matches_eq2() {
        let org = Organization::builder("o")
            .data_bits(10e9)
            .eta(50.0)
            .compute_levels(vec![2.5e9])
            .build()
            .unwrap();
        // T2 = 50 * 0.5 * 10e9 / 2.5e9 = 100 s
        assert!((org.training_time(0.5, 2.5e9) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn comm_energy_combines_both_phases() {
        let org = Organization::builder("o")
            .t_download(4.0)
            .t_upload(6.0)
            .power_download(2.0)
            .power_upload(3.0)
            .build()
            .unwrap();
        assert!((org.comm_energy() - (8.0 + 18.0)).abs() < 1e-12);
        assert!((org.comm_time() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_unsorted_ladder() {
        let r = Organization::builder("o").compute_levels(vec![3e9, 2e9]).build();
        assert!(matches!(r, Err(ModelError::UnsortedComputeLevels { .. })));
    }

    #[test]
    fn rejects_equal_ladder_entries() {
        let r = Organization::builder("o").compute_levels(vec![2e9, 2e9]).build();
        assert!(r.is_err());
    }

    #[test]
    fn rejects_empty_ladder_and_bad_scalars() {
        assert!(Organization::builder("o").compute_levels(vec![]).build().is_err());
        assert!(Organization::builder("o").data_bits(0.0).build().is_err());
        assert!(Organization::builder("o").samples(0).build().is_err());
        assert!(Organization::builder("o").eta(-1.0).build().is_err());
        assert!(Organization::builder("o").t_download(-0.1).build().is_err());
        assert!(Organization::builder("o").profitability(f64::NAN).build().is_err());
    }

    #[test]
    fn zero_comm_times_are_allowed() {
        let org = Organization::builder("local")
            .t_download(0.0)
            .t_upload(0.0)
            .build()
            .unwrap();
        assert_eq!(org.comm_energy(), 0.0);
    }

    #[test]
    fn max_frequency_is_ladder_top() {
        let org = Organization::builder("o")
            .compute_levels(vec![1e9, 2e9, 5e9])
            .build()
            .unwrap();
        assert_eq!(org.max_frequency(), 5e9);
        assert_eq!(org.frequency(1), 2e9);
    }
}
